// Tokenizer for pps_lint (tools/pps_lint/README in DESIGN.md).
//
// A deliberately small C++ lexer: identifiers, numbers, string/char
// literals, punctuation (longest-match), with comments and preprocessor
// lines stripped from the token stream but comments retained per line so
// the checkers can honour `// ckpt-skip:` / `// pps-lint: allow(...)`
// annotations and the fixture self-test can read `// expect-finding(...)`
// expectations.  It does not expand macros or track templates precisely —
// the structural pass (model.h) layers house-style heuristics on top.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace lint {

enum class TokKind {
  kIdentifier,
  kNumber,
  kString,  // string or character literal (raw strings included)
  kPunct,
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  // Concatenated `//` and `/* */` comment text per line (keyed by the line
  // the comment starts on); used for lint annotations.
  std::map<int, std::string> comments;
  // Lines that contain nothing but whitespace and comments: an annotation
  // on such a line applies to the next code line.
  std::map<int, bool> comment_only_lines;
};

// Tokenizes `source`; never fails (unterminated literals are consumed to
// end of file, which is good enough for a linter).
LexedFile Lex(const std::string& path, const std::string& source);

// Reads a file fully; throws std::runtime_error when unreadable.
std::string ReadWholeFile(const std::string& path);

}  // namespace lint
