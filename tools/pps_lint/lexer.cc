#include "lexer.h"

#include <cctype>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so the longest match wins.
const char* const kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "++", "--", "+=",
    "-=",  "*=",  "/=",  "%=",  "==",  "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",  "&=",  "|=",  "^=",  ".*",
};

}  // namespace

std::string ReadWholeFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) throw std::runtime_error("pps_lint: cannot read " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

LexedFile Lex(const std::string& path, const std::string& source) {
  LexedFile out;
  out.path = path;
  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  // Per-line bookkeeping for comment-only detection.
  int code_seen_on_line = 0;

  auto new_line = [&] {
    if (code_seen_on_line == 0 && out.comments.count(line) != 0) {
      out.comment_only_lines[line] = true;
    }
    ++line;
    code_seen_on_line = 0;
  };
  auto add_comment = [&](int at, const std::string& text) {
    std::string& slot = out.comments[at];
    if (!slot.empty()) slot += ' ';
    slot += text;
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      new_line();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: drop the whole (continued) line.
    if (c == '#' && code_seen_on_line == 0) {
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          new_line();
          i += 2;
          continue;
        }
        if (source[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && source[j] != '\n') ++j;
      add_comment(line, source.substr(i + 2, j - (i + 2)));
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int at = line;
      std::size_t j = i + 2;
      std::string text;
      while (j + 1 < n && !(source[j] == '*' && source[j + 1] == '/')) {
        if (source[j] == '\n') new_line();
        text += source[j];
        ++j;
      }
      add_comment(at, text);
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    code_seen_on_line += 1;
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && source[j] != '(') delim += source[j++];
      const std::string close = ")" + delim + "\"";
      std::size_t end = source.find(close, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k) {
        if (source[k] == '\n') new_line();
      }
      out.tokens.push_back({TokKind::kString, "<raw-string>", line});
      i = (end == n) ? n : end + close.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\' && j + 1 < n) ++j;
        if (source[j] == '\n') new_line();
        ++j;
      }
      out.tokens.push_back({TokKind::kString, "<literal>", line});
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(source[j])) ++j;
      out.tokens.push_back({TokKind::kIdentifier, source.substr(i, j - i),
                            line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n &&
             (IsIdentChar(source[j]) || source[j] == '.' ||
              source[j] == '\'' ||
              ((source[j] == '+' || source[j] == '-') && j > i &&
               (source[j - 1] == 'e' || source[j - 1] == 'E' ||
                source[j - 1] == 'p' || source[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, source.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (source.compare(i, len, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  new_line();  // flush the final line's comment-only flag
  return out;
}

}  // namespace lint
