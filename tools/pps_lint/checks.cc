#include "checks.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

namespace lint {
namespace {

bool PathContains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

bool PathEndsWith(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Basename(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

// Wall-clock reads are legitimate only in benchmark timing code.
bool ClockAllowlisted(const std::string& path) {
  return PathContains(path, "bench/") ||
         Basename(path).rfind("bench_", 0) == 0;
}

bool Allowed(const LexedFile& file, int line, const std::string& checker) {
  return LineAnnotated(file, line, "allow(" + checker);
}

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdentifier; }

const std::set<std::string>& SlotFields() {
  // Slot-typed fields of the core structs (sim::Cell, traffic::TraceEntry,
  // switch snapshots): `x.arrival` etc. are Slot-typed expressions even
  // when `x` itself is not in the symbol table.
  static const std::set<std::string> kFields = {
      "arrival", "departure", "dispatched", "reached_output", "tag", "slot"};
  return kFields;
}

// --- slot-arith -------------------------------------------------------------

// Identifier-shaped keywords after which `+`/`-` is unary.
bool UnaryContextKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "return", "case", "throw", "co_return", "co_yield",
      "operator", "new", "delete", "else", "sizeof"};
  return kKeywords.count(t) != 0;
}

void CheckSlotArith(const FileModel& fm, const std::set<std::string>& slots,
                    std::vector<Finding>& out) {
  const std::string& path = fm.lex.path;
  // The helpers themselves (and the Cell convenience accessors) live here.
  if (PathEndsWith(path, "sim/types.h") || PathEndsWith(path, "sim/cell.h")) {
    return;
  }
  const std::vector<Token>& toks = fm.lex.tokens;
  auto is_slot_expr_end = [&](std::size_t i) {  // expression ending at i
    if (!IsIdent(toks[i])) return false;
    if (slots.count(toks[i].text) != 0) return true;
    return i >= 2 && SlotFields().count(toks[i].text) != 0 &&
           (toks[i - 1].text == "." || toks[i - 1].text == "->");
  };
  auto is_slot_expr_start = [&](std::size_t i) {  // expression starting at i
    if (i >= toks.size() || !IsIdent(toks[i])) return false;
    const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";
    if (slots.count(toks[i].text) != 0 && !call) return true;
    return i + 2 < toks.size() &&
           (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
           SlotFields().count(toks[i + 2].text) != 0;
  };
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct || (t.text != "+" && t.text != "-")) {
      continue;
    }
    // Binary only: the left neighbour must terminate an expression.
    const Token& prev = toks[i - 1];
    const bool binary =
        (IsIdent(prev) && !UnaryContextKeyword(prev.text)) ||
        prev.kind == TokKind::kNumber || prev.text == ")" || prev.text == "]";
    if (!binary) continue;
    const bool left_slot = is_slot_expr_end(i - 1);
    const bool right_slot = is_slot_expr_start(i + 1);
    if (!left_slot && !right_slot) continue;
    if (Allowed(fm.lex, t.line, kSlotArith)) continue;
    out.push_back(
        {path, t.line, kSlotArith,
         "raw `" + t.text +
             "` on a Slot-typed operand; use SlotPlus / SlotDifference / "
             "CheckedSlotPlus (sim/types.h) so sentinel operands assert "
             "instead of overflowing"});
  }
}

// --- determinism: banned calls and types ------------------------------------

// Skips from the `<` at `open` to the index of its matching `>`.
std::size_t MatchCloseAngle(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    if (t == ">") {
      if (--depth == 0) return i;
    }
    if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    }
    if (t == ";" || t == "{") break;  // malformed; stop scanning
  }
  return open;
}

void CheckBannedTokens(const FileModel& fm, std::vector<Finding>& out) {
  const std::string& path = fm.lex.path;
  const std::vector<Token>& toks = fm.lex.tokens;
  static const std::set<std::string> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  static const std::set<std::string> kBannedCalls = {
      "rand",      "srand",    "random_shuffle", "time",
      "clock",     "gettimeofday", "localtime",  "gmtime"};
  auto report = [&](const Token& t, const std::string& msg) {
    if (!Allowed(fm.lex, t.line, kDeterminism)) {
      out.push_back({path, t.line, kDeterminism, msg});
    }
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (!IsIdent(t)) continue;
    const bool member_access =
        i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (t.text == "random_device") {
      report(t, "std::random_device is non-deterministic; seed sim::Rng "
                "from the run configuration instead");
      continue;
    }
    if (kClocks.count(t.text) != 0 && !ClockAllowlisted(path)) {
      report(t, "wall-clock read (`std::chrono::" + t.text +
                    "`) outside the bench-timing allowlist makes results "
                    "irreproducible");
      continue;
    }
    const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";
    if (call && !member_access && kBannedCalls.count(t.text) != 0) {
      report(t, "`" + t.text +
                    "()` injects wall-clock / libc-RNG state; use sim::Rng "
                    "or the harness clock");
      continue;
    }
    if ((t.text == "hash" || t.text == "less") && i + 1 < toks.size() &&
        toks[i + 1].text == "<") {
      const std::size_t close = MatchCloseAngle(toks, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].text == "*") {
          report(t, "std::" + t.text +
                        " over a pointer type orders/hashes by address, "
                        "which varies across runs");
          break;
        }
      }
      continue;
    }
    if (t.text == "reinterpret_cast" && i + 1 < toks.size() &&
        toks[i + 1].text == "<") {
      const std::size_t close = MatchCloseAngle(toks, i + 1);
      for (std::size_t j = i + 2; j < close; ++j) {
        if (toks[j].text == "uintptr_t" || toks[j].text == "intptr_t") {
          report(t, "casting a pointer to an integer bakes an address into "
                    "arithmetic; addresses vary across runs");
          break;
        }
      }
    }
  }
}

// --- determinism: unordered iteration in serialization/merge paths ----------

// Collects identifiers declared with an unordered container type inside a
// token range (locals and parameters).
std::set<std::string> UnorderedDeclsIn(const std::vector<Token>& toks,
                                       std::size_t begin, std::size_t end) {
  std::set<std::string> decls;
  for (std::size_t i = begin; i < end; ++i) {
    if (!IsIdent(toks[i]) ||
        (toks[i].text != "unordered_map" && toks[i].text != "unordered_set")) {
      continue;
    }
    if (i + 1 >= end || toks[i + 1].text != "<") continue;
    std::size_t j = MatchCloseAngle(toks, i + 1);
    if (j == i + 1) continue;
    ++j;
    while (j < end &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < end && IsIdent(toks[j])) decls.insert(toks[j].text);
  }
  return decls;
}

void CheckUnorderedIteration(const Project& project,
                             std::vector<Finding>& out) {
  for (const auto& [name, cls] : project.classes) {
    for (const char* method : {"SaveState", "Merge"}) {
      const auto it = cls.bodies.find(method);
      if (it == cls.bodies.end() || !it->second.found()) continue;
      const MethodBody& body = it->second;
      const LexedFile& file = *body.file;
      // The canonical sorted-key helper's own implementation lives here.
      if (PathEndsWith(file.path, "ckpt/serializer.h")) continue;
      const std::vector<Token>& toks = file.tokens;
      std::set<std::string> unordered = cls.unordered_members;
      const std::set<std::string> locals =
          UnorderedDeclsIn(toks, body.begin, body.end);
      unordered.insert(locals.begin(), locals.end());
      if (unordered.empty()) continue;
      for (std::size_t i = body.begin; i + 1 < body.end; ++i) {
        if (!IsIdent(toks[i]) || toks[i].text != "for" ||
            toks[i + 1].text != "(") {
          continue;
        }
        // Find the range-for `:` at parenthesis depth 1.
        int depth = 0;
        std::size_t colon = 0, close = 0;
        for (std::size_t j = i + 1; j < body.end; ++j) {
          const std::string& p = toks[j].text;
          if (p == "(") ++depth;
          if (p == ")") {
            if (--depth == 0) {
              close = j;
              break;
            }
          }
          if (p == ":" && depth == 1 && colon == 0) colon = j;
        }
        if (colon == 0 || close == 0) continue;
        bool sorted = false, hit = false;
        int hit_line = toks[i].line;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (!IsIdent(toks[j])) continue;
          if (toks[j].text == "SortedKeys") sorted = true;
          if (unordered.count(toks[j].text) != 0) {
            hit = true;
            hit_line = toks[j].line;
          }
        }
        if (hit && !sorted && !Allowed(file, hit_line, kDeterminism) &&
            !Allowed(file, toks[i].line, kDeterminism)) {
          out.push_back(
              {file.path, toks[i].line, kDeterminism,
               "range-for over an unordered container inside " + cls.name +
                   "::" + method +
                   " has traversal-order-dependent results; iterate "
                   "ckpt::SortedKeys(...) instead"});
        }
      }
    }
  }
}

// --- ckpt-coverage ----------------------------------------------------------

bool BodyMentions(const MethodBody& body, const std::string& name) {
  const std::vector<Token>& toks = body.file->tokens;
  for (std::size_t i = body.begin; i < body.end; ++i) {
    if (toks[i].kind == TokKind::kIdentifier && toks[i].text == name) {
      return true;
    }
  }
  return false;
}

void CheckCkptCoverage(const Project& project, std::vector<Finding>& out) {
  for (const auto& [name, cls] : project.classes) {
    if (cls.ambiguous || cls.members.empty()) continue;
    if (cls.declared_methods.count("SaveState") == 0 ||
        cls.declared_methods.count("LoadState") == 0) {
      continue;
    }
    const auto save = cls.bodies.find("SaveState");
    const auto load = cls.bodies.find("LoadState");
    // Pure-virtual interfaces (or bodies outside the scanned set) cannot
    // be checked; the concrete classes behind them are.
    if (save == cls.bodies.end() || !save->second.found() ||
        load == cls.bodies.end() || !load->second.found()) {
      continue;
    }
    for (const Member& m : cls.members) {
      if (m.ckpt_skip) continue;
      const bool in_save = BodyMentions(save->second, m.name);
      const bool in_load = BodyMentions(load->second, m.name);
      if (in_save && in_load) continue;
      const std::string where =
          (!in_save && !in_load)
              ? "SaveState or LoadState"
              : (!in_save ? "SaveState" : "LoadState");
      if (cls.file == nullptr) continue;
      out.push_back(
          {cls.file->path, m.line, kCkptCoverage,
           "member '" + m.name + "' of " + cls.name +
               " is not referenced in " + where +
               "; serialize it or annotate `// ckpt-skip: <reason>`"});
    }
  }
}

}  // namespace

std::vector<Finding> RunChecks(const Project& project) {
  std::vector<Finding> out;

  // Slot symbols declared in a header apply to the sibling .cc (and vice
  // versa): `Slot next_release_;` in foo.h types uses inside foo.cc.
  std::map<std::string, std::set<std::string>> by_stem;
  auto stem_of = [](const std::string& path) {
    const auto dot = path.find_last_of('.');
    return dot == std::string::npos ? path : path.substr(0, dot);
  };
  for (const auto& fm : project.files) {
    auto& slots = by_stem[stem_of(fm->lex.path)];
    slots.insert(fm->slot_vars.begin(), fm->slot_vars.end());
  }

  for (const auto& fm : project.files) {
    CheckSlotArith(*fm, by_stem[stem_of(fm->lex.path)], out);
    CheckBannedTokens(*fm, out);
  }
  CheckUnorderedIteration(project, out);
  CheckCkptCoverage(project, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.checker, a.message) <
           std::tie(b.path, b.line, b.checker, b.message);
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.path == b.path && a.line == b.line &&
                                 a.checker == b.checker;
                        }),
            out.end());
  return out;
}

}  // namespace lint
