// The three pps_lint checkers (DESIGN.md "Static-analysis gates"):
//
//   ckpt-coverage  every non-static data member of a class declaring
//                  SaveState/LoadState must be referenced in both bodies,
//                  or carry `// ckpt-skip: <reason>`.
//   determinism    no std::random_device / rand / wall-clock reads
//                  (std::chrono clocks are allowed only under bench/ or
//                  with an annotation), no pointer hashing/ordering, and
//                  no range-for over unordered containers inside
//                  SaveState/Merge unless routed through
//                  ckpt::SortedKeys (src/ckpt/serializer.h).
//   slot-arith     raw `+`/`-` with a Slot-typed operand outside
//                  src/sim/{types,cell}.h must use SlotPlus /
//                  SlotDifference / CheckedSlotPlus.
//
// Any finding can be suppressed in place with
// `// pps-lint: allow(<checker>): <reason>` on the flagged line or on the
// comment lines directly above it.
#pragma once

#include <string>
#include <vector>

#include "model.h"

namespace lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string checker;
  std::string message;
};

inline const char kCkptCoverage[] = "ckpt-coverage";
inline const char kDeterminism[] = "determinism";
inline const char kSlotArith[] = "slot-arith";

// Runs every checker over the project; findings are sorted by
// (path, line, checker) and deduplicated.
std::vector<Finding> RunChecks(const Project& project);

}  // namespace lint
