#include "model.h"

#include <algorithm>

namespace lint {
namespace {

const std::set<std::string>& InterestingMethods() {
  static const std::set<std::string> kMethods = {"SaveState", "LoadState",
                                                 "Merge"};
  return kMethods;
}

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdentifier; }

// Statement-leading keywords that can never begin a data-member
// declaration.
bool IsNonMemberLead(const std::string& t) {
  static const std::set<std::string> kLeads = {
      "using",  "typedef", "friend",    "template", "public",
      "private", "protected", "operator", "static",   "enum",
      "class",  "struct",  "union",     "namespace", "return"};
  return kLeads.count(t) != 0;
}

// One parsed scope on the brace stack.
struct Scope {
  enum Kind { kNamespace, kClass, kBlock, kFunction } kind = kBlock;
  ClassInfo* cls = nullptr;        // for kClass
  std::vector<std::size_t> stmt;   // statement token buffer (class scope)
};

// Finds the token index of the `(` matching the `)` at `close`, walking
// backwards; returns close when unbalanced.
std::size_t MatchOpenParen(const std::vector<Token>& toks, std::size_t close) {
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    const std::string& t = toks[i].text;
    if (toks[i].kind == TokKind::kPunct) {
      if (t == ")") ++depth;
      if (t == "(") {
        --depth;
        if (depth == 0) return i;
      }
    }
  }
  return close;
}

// From a `{` believed to open a function body, extracts the function
// name: skips trailing qualifiers back to the parameter list's `)`, then
// returns the identifier in front of the matching `(`.  `*class_name` is
// set for out-of-line `Class::Method` heads.  Returns "" when the brace
// is not a function body.
std::string FunctionNameBefore(const std::vector<Token>& toks,
                               std::size_t brace, std::string* class_name) {
  class_name->clear();
  std::size_t i = brace;
  // Skip a constructor initializer list: `) : a_(x), b_(y) {`.  Walk back
  // over balanced `(...)` groups and identifiers until something else.
  static const std::set<std::string> kQuals = {"const",   "override",
                                               "final",   "noexcept",
                                               "mutable", "try"};
  while (i > 0) {
    const Token& prev = toks[i - 1];
    if (IsIdent(prev) && kQuals.count(prev.text) != 0) {
      --i;
      continue;
    }
    break;
  }
  if (i == 0 || toks[i - 1].text != ")") {
    // Allow one initializer-list hop: `...) : member_(v) {`.
    // Handled by the caller treating non-`)` heads as plain blocks.
    return "";
  }
  const std::size_t open = MatchOpenParen(toks, i - 1);
  if (open == i - 1 || open == 0) return "";
  // `: a_(x), b_(y)` initializer groups — keep walking left across them
  // until the parameter list, recognized by an identifier() preceded by
  // `::`, a type, or a class-scope position.  One hop at a time:
  std::size_t name_idx = open;
  while (name_idx > 0 && !IsIdent(toks[name_idx - 1])) {
    // `operator<<(`, `](` (lambda), `)(`: not a named function.
    if (toks[name_idx - 1].text == "," || toks[name_idx - 1].text == ":") {
      // Initializer-list group: skip the group and continue left.
      std::size_t j = name_idx - 1;
      // Walk left to the previous `)` then across it.
      while (j > 0 && toks[j - 1].text != ")") --j;
      if (j == 0) return "";
      const std::size_t prev_open = MatchOpenParen(toks, j - 1);
      if (prev_open == j - 1) return "";
      name_idx = prev_open;
      continue;
    }
    return "";
  }
  if (name_idx == 0) return "";
  const Token& name = toks[name_idx - 1];
  if (!IsIdent(name)) return "";
  if (name_idx >= 3 && toks[name_idx - 2].text == "::" &&
      IsIdent(toks[name_idx - 3])) {
    *class_name = toks[name_idx - 3].text;
  }
  return name.text;
}

// Skips forward from `open_brace` to one past its matching `}`.
std::size_t SkipBraces(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}") {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

ClassInfo& RegisterClass(Project& project, const std::string& name,
                         const LexedFile* file, int line) {
  auto [it, inserted] = project.classes.try_emplace(name);
  ClassInfo& cls = *&it->second;
  if (inserted) {
    cls.name = name;
    cls.file = file;
    cls.line = line;
  } else if (cls.file != nullptr && !cls.declared_methods.empty() &&
             cls.file != file) {
    // A second definition elsewhere: only a problem when both declare
    // checkpoint methods (the later ProcessStatement calls detect that
    // and flip `ambiguous`).  Track the newest definition site anyway.
  }
  return cls;
}

// Processes one class-scope statement: records SaveState/LoadState/Merge
// declarations and data-member declarations.
void ProcessStatement(ClassInfo& cls, const LexedFile& file,
                      const std::vector<std::size_t>& stmt) {
  const std::vector<Token>& toks = file.tokens;
  if (stmt.empty()) return;
  if (IsNonMemberLead(toks[stmt[0]].text)) return;
  bool statement_has_unordered = false;
  // Method declaration?
  for (std::size_t k = 0; k + 1 < stmt.size(); ++k) {
    const Token& t = toks[stmt[k]];
    if (IsIdent(t) && InterestingMethods().count(t.text) != 0 &&
        toks[stmt[k + 1]].text == "(") {
      if (cls.declared_methods.count(t.text) != 0 && cls.file != &file) {
        cls.ambiguous = true;
      }
      cls.declared_methods.insert(t.text);
      return;
    }
  }
  for (std::size_t idx : stmt) {
    const std::string& t = toks[idx].text;
    if (t == "unordered_map" || t == "unordered_set") {
      statement_has_unordered = true;
    }
  }
  // Data members: identifiers ending in `_` at top nesting, before the
  // first top-level `=` or `{` (everything after is initializer).
  int paren = 0, angle = 0, bracket = 0;
  for (std::size_t k = 0; k < stmt.size(); ++k) {
    const Token& t = toks[stmt[k]];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++paren;
      if (t.text == ")") paren = std::max(0, paren - 1);
      if (t.text == "[") ++bracket;
      if (t.text == "]") bracket = std::max(0, bracket - 1);
      if (t.text == "<" && k > 0 && IsIdent(toks[stmt[k - 1]])) ++angle;
      if (t.text == ">") angle = std::max(0, angle - 1);
      if (t.text == ">>") angle = std::max(0, angle - 2);
      if (paren == 0 && angle == 0 && bracket == 0 &&
          (t.text == "=" || t.text == "{")) {
        break;
      }
      continue;
    }
    if (paren != 0 || angle != 0 || bracket != 0) continue;
    if (!IsIdent(t) || t.text.size() < 2 || t.text.back() != '_') continue;
    // The terminating `;` is not buffered, so the statement's last token
    // is implicitly followed by one.
    const std::string next =
        (k + 1 < stmt.size()) ? toks[stmt[k + 1]].text : ";";
    if (next != ";" && next != "=" && next != "{" && next != "[" &&
        next != ",") {
      continue;
    }
    Member m;
    m.name = t.text;
    m.line = t.line;
    m.ckpt_skip = LineAnnotated(file, t.line, "ckpt-skip");
    if (std::none_of(cls.members.begin(), cls.members.end(),
                     [&](const Member& e) { return e.name == m.name; })) {
      cls.members.push_back(m);
    }
    if (statement_has_unordered) cls.unordered_members.insert(m.name);
  }
}

// Scans the file for `(sim::)Slot name` declarations.
void CollectSlotVars(FileModel& fm) {
  const std::vector<Token>& toks = fm.lex.tokens;
  fm.slot_vars.insert("kNoSlot");
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!IsIdent(toks[i]) || toks[i].text != "Slot") continue;
    if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j >= toks.size() || !IsIdent(toks[j])) continue;
    if (j + 1 < toks.size() && toks[j + 1].text == "(") continue;  // function
    fm.slot_vars.insert(toks[j].text);
  }
}

}  // namespace

bool LineAnnotated(const LexedFile& file, int line,
                   const std::string& needle) {
  auto has = [&](int l) {
    auto it = file.comments.find(l);
    return it != file.comments.end() &&
           it->second.find(needle) != std::string::npos;
  };
  if (has(line)) return true;
  for (int l = line - 1;
       l > 0 && file.comment_only_lines.count(l) != 0; --l) {
    if (has(l)) return true;
  }
  return false;
}

void AddFile(Project& project, LexedFile lex) {
  project.files.push_back(std::make_unique<FileModel>());
  FileModel& fm = *project.files.back();
  fm.lex = std::move(lex);
  CollectSlotVars(fm);

  const LexedFile& file = fm.lex;
  const std::vector<Token>& toks = file.tokens;
  std::vector<Scope> stack;
  stack.push_back({Scope::kNamespace, nullptr, {}});

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    Scope& top = stack.back();

    if (t.kind == TokKind::kPunct && t.text == "}") {
      // Class-scope statement buffers survive the pop on purpose: a
      // nested `enum class E { ... };` or brace-init `vector<int> v_{4};`
      // finishes at the following `;`, which processes the buffered head.
      if (stack.size() > 1) stack.pop_back();
      continue;
    }

    if (t.kind == TokKind::kPunct && t.text == "{") {
      // Decide what this brace opens based on the lookbehind.
      std::string cls_name;
      const std::string fn = FunctionNameBefore(toks, i, &cls_name);
      if (!fn.empty() && InterestingMethods().count(fn) != 0) {
        ClassInfo* owner = nullptr;
        if (top.kind == Scope::kClass) {
          owner = top.cls;
        } else if (!cls_name.empty()) {
          owner = &RegisterClass(project, cls_name, nullptr, t.line);
        }
        if (owner != nullptr) {
          owner->declared_methods.insert(fn);
          MethodBody body;
          body.file = &file;
          body.begin = i;
          body.end = SkipBraces(toks, i);
          if (owner->bodies.count(fn) != 0 &&
              owner->bodies[fn].file != &file) {
            owner->ambiguous = true;
          }
          owner->bodies[fn] = body;
          i = body.end - 1;  // the `}` is consumed by the loop header
          if (top.kind == Scope::kClass) top.stmt.clear();
          continue;
        }
      }
      if (!fn.empty()) {
        // Some other function body: skip it wholesale (its braces must
        // not disturb class-scope statement tracking).
        i = SkipBraces(toks, i) - 1;
        if (top.kind == Scope::kClass) top.stmt.clear();
        continue;
      }
      stack.push_back({Scope::kBlock, nullptr, {}});
      continue;
    }

    // namespace / class heads.
    if (IsIdent(t) && t.text == "namespace") {
      std::size_t j = i + 1;
      while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
        ++j;
      }
      if (j < toks.size() && toks[j].text == "{") {
        stack.push_back({Scope::kNamespace, nullptr, {}});
        i = j;
      } else {
        i = j;
      }
      continue;
    }
    if (IsIdent(t) && (t.text == "class" || t.text == "struct") &&
        (i == 0 || toks[i - 1].text != "enum")) {
      // Definition iff `name` is directly followed by `{`, `:` or `final`.
      if (i + 1 < toks.size() && IsIdent(toks[i + 1])) {
        const std::string& name = toks[i + 1].text;
        std::size_t j = i + 2;
        if (j < toks.size() &&
            (toks[j].text == "{" || toks[j].text == ":" ||
             toks[j].text == "final")) {
          // Skip the (possibly templated) base clause to the `{`.
          while (j < toks.size() && toks[j].text != "{" &&
                 toks[j].text != ";") {
            ++j;
          }
          if (j < toks.size() && toks[j].text == "{") {
            ClassInfo& cls =
                RegisterClass(project, name, &file, toks[i + 1].line);
            if (cls.file == nullptr) cls.file = &file;
            stack.push_back({Scope::kClass, &cls, {}});
            i = j;
            continue;
          }
          i = j;
          continue;
        }
      }
      continue;
    }

    if (top.kind != Scope::kClass) continue;

    // Class-scope statement tracking.
    if (t.kind == TokKind::kPunct && t.text == ";") {
      ProcessStatement(*top.cls, file, top.stmt);
      top.stmt.clear();
      continue;
    }
    if (t.kind == TokKind::kPunct && t.text == ":" && top.stmt.size() == 1 &&
        IsNonMemberLead(toks[top.stmt[0]].text)) {
      top.stmt.clear();  // access specifier `public:` etc.
      continue;
    }
    top.stmt.push_back(i);
  }
}

}  // namespace lint
