// Structural pass for pps_lint: classes, data members, the checkpoint /
// merge method bodies, and Slot-typed symbols, extracted from the token
// stream with house-style heuristics instead of a full C++ parser.
//
// The heuristics this pass (and therefore the whole linter) relies on are
// the repo's enforced conventions, documented in DESIGN.md:
//   * private data members carry a trailing underscore (clang-tidy
//     readability-identifier-naming.PrivateMemberSuffix enforces this), so
//     a class-scope identifier `foo_` followed by `;`/`=`/`{`/`[`/`,` is a
//     data-member declaration;
//   * checkpointing is spelled `SaveState(ckpt::Writer&)` /
//     `LoadState(ckpt::Reader&)`, inline or as `Class::SaveState` in the
//     matching .cc; shard reductions are spelled `Merge`.
// A member the linter cannot see under these conventions cannot be
// checked — the fixture self-test (tests/lint_fixtures/) pins exactly what
// is and is not recognized.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace lint {

struct Member {
  std::string name;
  int line = 0;
  bool ckpt_skip = false;  // carries a `// ckpt-skip: <reason>` annotation
};

// A captured method body: a token range inside the file it was defined in.
struct MethodBody {
  const LexedFile* file = nullptr;
  std::size_t begin = 0;  // token index of the `{`
  std::size_t end = 0;    // token index one past the matching `}`
  bool found() const { return file != nullptr && end > begin; }
};

struct ClassInfo {
  std::string name;
  const LexedFile* file = nullptr;  // file of the definition
  int line = 0;
  std::vector<Member> members;
  std::set<std::string> unordered_members;  // unordered_map/set members
  std::set<std::string> declared_methods;   // SaveState/LoadState/Merge
  std::map<std::string, MethodBody> bodies;
  // Two same-named class definitions both declaring checkpoint methods:
  // the linter cannot attribute out-of-line bodies, so it skips the name.
  bool ambiguous = false;
};

struct FileModel {
  LexedFile lex;
  // Identifiers declared with type (sim::)Slot anywhere in the file, plus
  // the well-known kNoSlot sentinel.
  std::set<std::string> slot_vars;
};

struct Project {
  std::vector<std::unique_ptr<FileModel>> files;
  std::map<std::string, ClassInfo> classes;  // keyed by simple class name
};

// Parses `lex` into `project` (classes merge across files so that
// out-of-line `Class::SaveState` bodies in a .cc attach to the class
// defined in its header).
void AddFile(Project& project, LexedFile lex);

// True when `line` (or the run of comment-only lines directly above it)
// carries a comment containing `needle`.
bool LineAnnotated(const LexedFile& file, int line, const std::string& needle);

}  // namespace lint
