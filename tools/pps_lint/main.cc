// pps_lint: domain-specific static analysis for the PPS simulator.
//
// Enforces the repo's three machine-checkable house contracts — checkpoint
// field coverage, determinism, and checked slot arithmetic (see checks.h
// and DESIGN.md "Static-analysis gates") — over any set of files or
// directories, with no toolchain dependency beyond a C++20 compiler.
//
// Usage:
//   pps_lint [--root DIR] [-p BUILD_DIR] [PATH...]
//       Lints PATH... (files or directories, default: src bench tests
//       tools, resolved against --root / the current directory).  With
//       -p, the file list is augmented from BUILD_DIR/compile_commands
//       .json.  Exit 1 when findings exist.
//   pps_lint --self-test FIXTURE_DIR
//       Mutation-style self check: every fixture line carrying
//       `// expect-finding(<checker>)` must produce exactly that finding,
//       and no unannotated line may produce any.  Exit 1 on mismatch.
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "checks.h"
#include "lexer.h"
#include "model.h"

namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

bool SkippedDir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         name == ".git";
}

void CollectFiles(const fs::path& root, std::vector<std::string>& out) {
  if (fs::is_regular_file(root)) {
    if (IsSourceFile(root)) out.push_back(root.string());
    return;
  }
  if (!fs::is_directory(root)) return;
  for (fs::recursive_directory_iterator it(root), end; it != end; ++it) {
    if (it->is_directory() && SkippedDir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      out.push_back(it->path().string());
    }
  }
}

// Minimal compile_commands.json scan: collect every `"file": "..."` value.
// (No JSON dependency; the format CMake emits is regular enough.)
void CollectFromCompdb(const std::string& build_dir,
                       std::vector<std::string>& out) {
  const std::string path = build_dir + "/compile_commands.json";
  std::string text;
  try {
    text = lint::ReadWholeFile(path);
  } catch (const std::exception& e) {
    std::cerr << "pps_lint: warning: " << e.what() << " (ignoring -p)\n";
    return;
  }
  const std::string key = "\"file\":";
  for (std::size_t pos = text.find(key); pos != std::string::npos;
       pos = text.find(key, pos + key.size())) {
    const std::size_t open = text.find('"', pos + key.size());
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    const std::string file = text.substr(open + 1, close - open - 1);
    if (IsSourceFile(file) &&
        file.find("lint_fixtures") == std::string::npos) {
      out.push_back(file);
    }
  }
}

lint::Project BuildProject(const std::vector<std::string>& files) {
  lint::Project project;
  project.files.reserve(files.size());
  for (const std::string& f : files) {
    lint::AddFile(project, lint::Lex(f, lint::ReadWholeFile(f)));
  }
  return project;
}

// Expected findings parsed from `// expect-finding(<checker>)` comments.
std::set<std::tuple<std::string, int, std::string>> ExpectedFindings(
    const lint::Project& project) {
  std::set<std::tuple<std::string, int, std::string>> expected;
  const std::string key = "expect-finding(";
  for (const auto& fm : project.files) {
    for (const auto& [line, text] : fm->lex.comments) {
      for (std::size_t pos = text.find(key); pos != std::string::npos;
           pos = text.find(key, pos + key.size())) {
        const std::size_t close = text.find(')', pos + key.size());
        if (close == std::string::npos) break;
        expected.emplace(fm->lex.path, line,
                         text.substr(pos + key.size(),
                                     close - pos - key.size()));
      }
    }
  }
  return expected;
}

int SelfTest(const std::string& fixture_dir) {
  std::vector<std::string> files;
  CollectFiles(fixture_dir, files);
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "pps_lint: self-test found no fixtures in " << fixture_dir
              << "\n";
    return 2;
  }
  const lint::Project project = BuildProject(files);
  const auto expected = ExpectedFindings(project);
  if (expected.empty()) {
    std::cerr << "pps_lint: self-test fixtures carry no expect-finding "
                 "annotations\n";
    return 2;
  }
  std::set<std::tuple<std::string, int, std::string>> actual;
  for (const lint::Finding& f : lint::RunChecks(project)) {
    actual.emplace(f.path, f.line, f.checker);
  }
  int bad = 0;
  for (const auto& [path, line, checker] : expected) {
    if (actual.count({path, line, checker}) == 0) {
      std::cerr << "MISSING  " << path << ":" << line << ": expected ["
                << checker << "] finding did not fire\n";
      ++bad;
    }
  }
  for (const auto& [path, line, checker] : actual) {
    if (expected.count({path, line, checker}) == 0) {
      std::cerr << "SPURIOUS " << path << ":" << line << ": unexpected ["
                << checker << "] finding\n";
      ++bad;
    }
  }
  if (bad != 0) {
    std::cerr << "pps_lint self-test FAILED (" << bad << " mismatches over "
              << files.size() << " fixtures)\n";
    return 1;
  }
  std::cout << "pps_lint self-test passed: " << expected.size()
            << " seeded findings fired, zero spurious (" << files.size()
            << " fixtures)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string self_test_dir;
  std::string compdb;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::cerr << "pps_lint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--self-test") {
      self_test_dir = need_value("--self-test");
    } else if (arg == "--root") {
      root = need_value("--root");
    } else if (arg == "-p") {
      compdb = need_value("-p");
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: pps_lint [--root DIR] [-p BUILD_DIR] [PATH...]\n"
                   "       pps_lint --self-test FIXTURE_DIR\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pps_lint: unknown flag " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  try {
    if (!self_test_dir.empty()) return SelfTest(self_test_dir);

    if (paths.empty()) paths = {"src", "bench", "tests", "tools"};
    std::vector<std::string> files;
    for (const std::string& p : paths) {
      const fs::path resolved =
          fs::path(p).is_absolute() ? fs::path(p) : fs::path(root) / p;
      CollectFiles(resolved, files);
    }
    if (!compdb.empty()) CollectFromCompdb(compdb, files);
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    if (files.empty()) {
      std::cerr << "pps_lint: no source files found\n";
      return 2;
    }

    const lint::Project project = BuildProject(files);
    const std::vector<lint::Finding> findings = lint::RunChecks(project);
    for (const lint::Finding& f : findings) {
      std::cout << f.path << ":" << f.line << ": [" << f.checker << "] "
                << f.message << "\n";
    }
    if (!findings.empty()) {
      std::cout << "pps_lint: " << findings.size() << " finding(s) over "
                << files.size() << " files\n";
      return 1;
    }
    std::cout << "pps_lint: clean (" << files.size() << " files)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pps_lint: " << e.what() << "\n";
    return 2;
  }
}
