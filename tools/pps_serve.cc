// pps_serve: the windowed service driver, now crash-safe.
//
// Streams a traffic::Trace (text or compact binary framing) — or a
// heavy-tailed stochastic workload (--source=mmpp|pareto) — through any
// registered fabric with O(1) trace memory and emits one JSON line per
// service window, followed by a final `summary` line with the whole-run
// RunResult.
//
// Two checkpointing modes:
//   plain       --checkpoint-every=E --checkpoint=run.ckpt writes a
//               single rolling snapshot file; --resume=run.ckpt continues
//               it (PR 7 behaviour, byte-identical output).
//   supervised  --supervise=1 hands the run to serve::Supervisor:
//               checkpoints rotate through --keep-checkpoints generations
//               at "<--checkpoint>.gNNNNNNNN", recoverable failures
//               (ckpt::IoError / ckpt::CorruptError) roll back to the
//               newest valid generation and replay (bounded by
//               --max-retries consecutive failures, exponential backoff
//               from --backoff-ms), and restarting the binary resumes
//               from the surviving generations automatically.
//
// Forked resumes (--fork=run.ckpt) restore the exact checkpoint state but
// let the continuation diverge deliberately: --fork-seed=S reseeds the
// stochastic source's randomness from the resume slot onward, and
// --fork-faults=FILE.json (a fault::FaultSchedule JSON) replaces the fault
// timeline for the remainder of the run.  What-if replays of a captured
// run — "same first 100k slots, different failures after" — come out as
// ordinary diverged window rows.
//
// SIGINT/SIGTERM stop gracefully in both modes: the current slot
// finishes, a final resumable checkpoint and the partial window row go
// out, and the exit code is 0.  --io-faults injects deterministic
// filesystem faults (see ckpt/faulty_io.h) for recovery drills.
//
// Exit codes: 0 success or graceful stop; 2 usage error; 3 fatal
// model/config error; 4 retry budget exhausted; 5 checkpoint generations
// exist but none validates.
//
// Usage:
//   pps_serve --fabric=pps/rr-per-output --trace=cells.trace
//             --ports=8 --planes=4 [--rate-ratio=2] [--window=1024]
//             [--threads=T] [--drain-grace=G] [--max-slots=M]
//             [--source=trace|mmpp|pareto] [--load=L] [--seed=S]
//             [--source-cutoff=C] [--alpha=A] [--min-burst=B]
//             [--max-burst=B] [--phases=P] [--base-burst=B]
//             [--checkpoint-every=E --checkpoint=run.ckpt]
//             [--resume=run.ckpt]
//             [--supervise=1 --keep-checkpoints=N --max-retries=R
//              --backoff-ms=MS]
//             [--io-faults=spec --io-fault-seed=S]
//
// Convert a text trace to the binary framing with --pack-trace:
//   pps_serve --pack-trace=in.trace --out=out.btrace

#include <atomic>
#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/faulty_io.h"
#include "fault/fault_schedule.h"
#include "ckpt/io.h"
#include "core/harness.h"
#include "core/metrics_json.h"
#include "core/slot_engine.h"
#include "fabric/registry.h"
#include "serve/signals.h"
#include "serve/supervisor.h"
#include "sim/error.h"
#include "traffic/bursty.h"
#include "traffic/trace.h"

namespace {

// A bad command line: reported with the usage text and exit code 2,
// distinct from runtime failures.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

constexpr std::string_view kUsage =
    "usage: pps_serve --fabric=NAME --trace=PATH --ports=N --planes=K\n"
    "                 [--rate-ratio=R] [--buffer=B] [--reseq-timeout=T]\n"
    "                 [--window=W] [--threads=T] [--drain-grace=G]\n"
    "                 [--max-slots=M] [--source=trace|mmpp|pareto]\n"
    "                 [--load=L] [--seed=S] [--source-cutoff=C]\n"
    "                 [--alpha=A] [--min-burst=B] [--max-burst=B]\n"
    "                 [--phases=P] [--base-burst=B]\n"
    "                 [--checkpoint-every=E --checkpoint=PATH]\n"
    "                 [--resume=PATH] [--supervise=0|1]\n"
    "                 [--fork=PATH [--fork-seed=S]\n"
    "                  [--fork-faults=SCHEDULE.json]]\n"
    "                 [--keep-checkpoints=N] [--max-retries=R]\n"
    "                 [--backoff-ms=MS]\n"
    "                 [--io-faults=kind@op,...] [--io-fault-seed=S]\n"
    "   or: pps_serve --pack-trace=IN.trace --out=OUT.btrace\n"
    "exit codes: 0 ok/graceful stop, 2 usage, 3 fatal error,\n"
    "            4 retries exhausted, 5 no valid checkpoint\n";

struct Args {
  std::string fabric = "pps/rr-per-output";
  std::string trace;
  std::string pack_trace;  // --pack-trace mode: input text trace
  std::string out;         // --pack-trace mode: output binary trace
  pps::SwitchConfig config{.num_ports = 8, .num_planes = 4, .rate_ratio = 2};
  core::RunOptions options;

  std::string source = "trace";  // trace | mmpp | pareto
  double load = 0.6;
  std::uint64_t seed = 1;
  double alpha = 1.5;
  double min_burst = 1.0;
  std::int64_t max_burst = 100'000;
  std::int64_t phases = 4;
  double base_burst = 2.0;

  bool supervise = false;
  int keep_checkpoints = 3;
  int max_retries = 5;
  std::int64_t backoff_ms = 100;

  std::string io_faults;
  std::uint64_t io_fault_seed = 0;

  std::string fork_from;    // --fork=PATH (a resume that may diverge)
  std::string fork_faults;  // --fork-faults=FILE.json (FaultSchedule JSON)
};

std::int64_t ParseInt(std::string_view flag, std::string_view value) {
  std::int64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw UsageError("bad integer for --" + std::string(flag) + ": '" +
                     std::string(value) + "'");
  }
  return parsed;
}

double ParseDouble(std::string_view flag, std::string_view value) {
  // std::from_chars for doubles is missing on some libstdc++ configs the
  // tree still builds with; strtod on a NUL-terminated copy is enough.
  const std::string copy(value);
  char* end = nullptr;
  const double parsed = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    throw UsageError("bad number for --" + std::string(flag) + ": '" + copy +
                     "'");
  }
  return parsed;
}

bool ParseBool(std::string_view flag, std::string_view value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw UsageError("bad boolean for --" + std::string(flag) + ": '" +
                   std::string(value) + "' (want 0/1/true/false)");
}

Args Parse(int argc, char** argv) {
  Args args;
  args.options.window_slots = 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.size() <= 2 || !arg.starts_with("--") ||
        eq == std::string_view::npos) {
      throw UsageError("expected --flag=value, got '" + std::string(arg) +
                       "'");
    }
    const std::string_view flag = arg.substr(2, eq - 2);
    const std::string_view value = arg.substr(eq + 1);
    if (flag == "fabric") {
      args.fabric = value;
    } else if (flag == "trace") {
      args.trace = value;
    } else if (flag == "pack-trace") {
      args.pack_trace = value;
    } else if (flag == "out") {
      args.out = value;
    } else if (flag == "ports") {
      args.config.num_ports = static_cast<sim::PortId>(ParseInt(flag, value));
    } else if (flag == "planes") {
      args.config.num_planes = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "rate-ratio") {
      args.config.rate_ratio = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "buffer") {
      args.config.input_buffer_size = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "reseq-timeout") {
      args.config.reseq_timeout = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "window") {
      args.options.window_slots = ParseInt(flag, value);
    } else if (flag == "threads") {
      args.options.threads = static_cast<unsigned>(ParseInt(flag, value));
    } else if (flag == "drain-grace") {
      args.options.drain_grace = ParseInt(flag, value);
    } else if (flag == "max-slots") {
      args.options.max_slots = ParseInt(flag, value);
    } else if (flag == "source-cutoff") {
      args.options.source_cutoff = ParseInt(flag, value);
    } else if (flag == "checkpoint-every") {
      args.options.checkpoint_every = ParseInt(flag, value);
    } else if (flag == "checkpoint") {
      args.options.checkpoint_path = value;
    } else if (flag == "resume") {
      args.options.resume_from = value;
    } else if (flag == "fork") {
      args.fork_from = value;
    } else if (flag == "fork-seed") {
      args.options.fork_source_seed =
          static_cast<std::uint64_t>(ParseInt(flag, value));
    } else if (flag == "fork-faults") {
      args.fork_faults = value;
    } else if (flag == "source") {
      args.source = value;
    } else if (flag == "load") {
      args.load = ParseDouble(flag, value);
    } else if (flag == "seed") {
      args.seed = static_cast<std::uint64_t>(ParseInt(flag, value));
    } else if (flag == "alpha") {
      args.alpha = ParseDouble(flag, value);
    } else if (flag == "min-burst") {
      args.min_burst = ParseDouble(flag, value);
    } else if (flag == "max-burst") {
      args.max_burst = ParseInt(flag, value);
    } else if (flag == "phases") {
      args.phases = ParseInt(flag, value);
    } else if (flag == "base-burst") {
      args.base_burst = ParseDouble(flag, value);
    } else if (flag == "supervise") {
      args.supervise = ParseBool(flag, value);
    } else if (flag == "keep-checkpoints") {
      args.keep_checkpoints = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "max-retries") {
      args.max_retries = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "backoff-ms") {
      args.backoff_ms = ParseInt(flag, value);
    } else if (flag == "io-faults") {
      args.io_faults = value;
    } else if (flag == "io-fault-seed") {
      args.io_fault_seed = static_cast<std::uint64_t>(ParseInt(flag, value));
    } else {
      throw UsageError("unknown flag --" + std::string(flag));
    }
  }
  return args;
}

// Flag validation beyond per-value syntax: contradictions and missing
// requirements are usage errors (exit 2), caught before any run state or
// files are touched.
void Validate(const Args& args) {
  const bool packing = !args.pack_trace.empty();
  if (packing) {
    if (args.out.empty()) throw UsageError("--pack-trace needs --out=PATH");
    if (!args.trace.empty()) {
      throw UsageError("--pack-trace and --trace are mutually exclusive");
    }
    return;
  }
  if (!args.out.empty()) {
    throw UsageError("--out only makes sense with --pack-trace");
  }

  if (args.source == "trace") {
    if (args.trace.empty()) {
      throw UsageError("--source=trace needs --trace=PATH");
    }
  } else if (args.source == "mmpp" || args.source == "pareto") {
    if (!args.trace.empty()) {
      throw UsageError("--trace contradicts --source=" + args.source);
    }
    if (!(args.load > 0.0 && args.load < 1.0)) {
      throw UsageError("--load must be in (0,1) for stochastic sources");
    }
    if (args.options.source_cutoff <= 0) {
      throw UsageError("--source=" + args.source +
                       " is infinite; set --source-cutoff=SLOTS");
    }
  } else {
    throw UsageError("unknown --source=" + args.source +
                     " (want trace, mmpp, or pareto)");
  }

  if (args.options.checkpoint_every < 0) {
    throw UsageError("--checkpoint-every must be >= 0");
  }
  if (args.options.checkpoint_every > 0 &&
      args.options.checkpoint_path.empty()) {
    throw UsageError("--checkpoint-every needs --checkpoint=PATH");
  }
  if (args.options.checkpoint_every == 0 &&
      !args.options.checkpoint_path.empty()) {
    throw UsageError("--checkpoint needs --checkpoint-every=SLOTS");
  }
  if (!args.options.resume_from.empty() &&
      !ckpt::DefaultIo().Exists(args.options.resume_from)) {
    throw UsageError("--resume=" + args.options.resume_from +
                     ": file does not exist");
  }
  if (!args.fork_from.empty()) {
    if (!args.options.resume_from.empty()) {
      throw UsageError("--fork and --resume are mutually exclusive (a fork "
                       "IS a resume, with divergence allowed)");
    }
    if (args.supervise) {
      throw UsageError("--fork under --supervise=1 is not supported: the "
                       "supervisor replays checkpoints expecting "
                       "deterministic continuation");
    }
    if (!ckpt::DefaultIo().Exists(args.fork_from)) {
      throw UsageError("--fork=" + args.fork_from + ": file does not exist");
    }
    if (!args.fork_faults.empty() &&
        !ckpt::DefaultIo().Exists(args.fork_faults)) {
      throw UsageError("--fork-faults=" + args.fork_faults +
                       ": file does not exist");
    }
  } else {
    if (args.options.fork_source_seed != 0) {
      throw UsageError("--fork-seed needs --fork=PATH");
    }
    if (!args.fork_faults.empty()) {
      throw UsageError("--fork-faults needs --fork=PATH");
    }
  }
  if (args.supervise) {
    if (args.options.checkpoint_every <= 0) {
      throw UsageError(
          "--supervise=1 needs --checkpoint-every and --checkpoint (it "
          "recovers by rolling back to checkpoints)");
    }
    if (args.keep_checkpoints < 1) {
      throw UsageError("--keep-checkpoints must be >= 1");
    }
    if (args.max_retries < 0) throw UsageError("--max-retries must be >= 0");
    if (args.backoff_ms < 0) throw UsageError("--backoff-ms must be >= 0");
  } else if (!args.io_faults.empty()) {
    throw UsageError("--io-faults without --supervise=1 would just kill the "
                     "run; supervise it");
  }
  if (args.options.window_slots < 0) throw UsageError("--window must be >= 0");
  if (args.options.max_slots <= 0) throw UsageError("--max-slots must be > 0");
}

core::json::Value LossJson(const fault::LossBreakdown& l) {
  auto v = core::json::Value::MakeObject();
  v.Set("input_drops", l.input_drops);
  v.Set("stranded_cells", l.stranded_cells);
  v.Set("stale_dispatches", l.stale_dispatches);
  v.Set("link_drops", l.link_drops);
  v.Set("late_arrivals", l.late_arrivals);
  v.Set("buffer_overflows", l.buffer_overflows);
  return v;
}

void PrintRow(const core::WindowRow& row) {
  auto v = core::json::Value::MakeObject();
  v.Set("kind", "window");
  v.Set("index", row.index);
  v.Set("from", row.from);
  v.Set("to", row.to);
  v.Set("offered", row.offered);
  v.Set("finalized", row.finalized);
  v.Set("dropped", row.dropped);
  v.Set("losses", LossJson(row.losses));
  v.Set("max_relative_delay", row.max_relative_delay);
  v.Set("max_relative_jitter", row.max_relative_jitter);
  v.Set("mean_relative_delay", row.relative_delay.mean());
  v.Set("backlog", row.backlog);
  v.Set("shadow_backlog", row.shadow_backlog);
  std::cout << v.Dump() << "\n" << std::flush;
}

void PrintSummary(const core::RunResult& result) {
  auto v = core::json::Value::MakeObject();
  v.Set("kind", "summary");
  v.Set("cells", result.cells);
  v.Set("duration", result.duration);
  v.Set("drained", result.drained);
  v.Set("interrupted", result.interrupted);
  v.Set("dropped", result.dropped);
  v.Set("losses", LossJson(result.losses));
  v.Set("max_relative_delay", result.max_relative_delay);
  v.Set("max_relative_jitter", result.max_relative_jitter);
  v.Set("mean_relative_delay", result.relative_delay.mean());
  v.Set("traffic_burstiness", result.traffic_burstiness);
  v.Set("order_preserved", result.order_preserved);
  v.Set("resequencing_stalls", result.resequencing_stalls);
  std::cout << v.Dump() << "\n" << std::flush;
}

int PackTrace(const Args& args) {
  std::ifstream is(args.pack_trace, std::ios::binary);
  SIM_CHECK(is.good(), "cannot open trace " << args.pack_trace);
  traffic::Trace trace = traffic::Trace::Load(is);
  trace.Normalize();
  std::ofstream os(args.out, std::ios::binary | std::ios::trunc);
  SIM_CHECK(os.good(), "cannot open output " << args.out);
  trace.SaveBinary(os);
  SIM_CHECK(os.good(), "write failed for " << args.out);
  std::cerr << "packed " << trace.entries().size() << " entries into "
            << args.out << "\n";
  return 0;
}

std::unique_ptr<traffic::TrafficSource> MakeSource(const Args& args) {
  if (args.source == "mmpp") {
    return std::make_unique<traffic::MmppSource>(traffic::MmppSource::HeavyTailed(
        args.config.num_ports, args.load, static_cast<int>(args.phases),
        args.base_burst, sim::Rng(args.seed)));
  }
  if (args.source == "pareto") {
    return std::make_unique<traffic::ParetoOnOffSource>(
        args.config.num_ports, args.load, args.alpha, args.min_burst,
        args.max_burst, sim::Rng(args.seed));
  }
  return std::make_unique<traffic::StreamingTraceSource>(args.trace);
}

std::atomic<bool> g_stop{false};

int Serve(const Args& args) {
  args.config.Validate();
  serve::InstallStopHandlers(g_stop);

  core::RunOptions options = args.options;
  options.on_window = PrintRow;
  options.stop_flag = &g_stop;
  if (!args.fork_from.empty()) {
    options.fork = true;
    options.resume_from = args.fork_from;
    if (!args.fork_faults.empty()) {
      std::ifstream is(args.fork_faults, std::ios::binary);
      SIM_CHECK(is.good(), "cannot open fault schedule " << args.fork_faults);
      std::ostringstream buffer;
      buffer << is.rdbuf();
      options.fault_schedule = fault::FaultSchedule::FromJson(buffer.str());
    }
  }

  core::RunResult result;
  if (args.supervise) {
    ckpt::Io* io = nullptr;
    std::optional<ckpt::FaultyIo> faulty;
    if (!args.io_faults.empty()) {
      ckpt::IoFaultPlan plan;
      try {
        plan = ckpt::IoFaultPlan::Parse(args.io_faults, args.io_fault_seed);
      } catch (const sim::SimError& e) {
        throw UsageError(e.what());
      }
      faulty.emplace(ckpt::DefaultIo(), plan);
      io = &*faulty;
    }
    serve::SupervisorOptions sup;
    sup.checkpoint_base = args.options.checkpoint_path;
    sup.keep_checkpoints = args.keep_checkpoints;
    sup.max_retries = args.max_retries;
    sup.backoff_base_ms = args.backoff_ms;
    sup.io = io;
    sup.log = [](const std::string& line) { std::cerr << line << "\n"; };
    serve::Supervisor supervisor(std::move(sup));
    // The supervisor owns checkpoint placement; the base options carry
    // only the cadence (and a possible explicit --resume starting file).
    options.checkpoint_path.clear();
    result = supervisor.Run(
        [&args] { return fabric::Make(args.fabric, args.config); },
        [&args] { return MakeSource(args); }, options);
    if (supervisor.attempts() > 1) {
      std::cerr << "pps_serve: recovered; " << supervisor.attempts()
                << " attempts\n";
    }
  } else {
    std::unique_ptr<fabric::Fabric> fabric =
        fabric::Make(args.fabric, args.config);
    std::unique_ptr<traffic::TrafficSource> source = MakeSource(args);
    result = core::SlotEngine{}.Run(*fabric, *source, options);
  }
  if (result.interrupted) {
    std::cerr << "pps_serve: stopped gracefully at slot " << result.duration
              << "; checkpoint is resumable\n";
  }
  PrintSummary(result);
  return serve::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    Validate(args);
    if (!args.pack_trace.empty()) return PackTrace(args);
    return Serve(args);
  } catch (const UsageError& e) {
    std::cerr << "pps_serve: " << e.what() << "\n" << kUsage;
    return serve::kExitUsage;
  } catch (const serve::RetriesExhaustedError& e) {
    std::cerr << "pps_serve: " << e.what() << "\n";
    return serve::kExitRetriesExhausted;
  } catch (const serve::NoValidCheckpointError& e) {
    std::cerr << "pps_serve: " << e.what() << "\n";
    return serve::kExitNoValidCheckpoint;
  } catch (const sim::SimError& e) {
    std::cerr << "pps_serve: " << e.what() << "\n";
    return serve::kExitFatal;
  } catch (const std::exception& e) {
    // I/O and allocation failures surface as std::exception subclasses;
    // report them instead of letting them escape main and terminate.
    std::cerr << "pps_serve: " << e.what() << "\n";
    return 1;
  }
}
