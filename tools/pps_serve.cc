// pps_serve: the windowed service driver.
//
// Streams a traffic::Trace (text or compact binary framing) through any
// registered fabric with O(1) trace memory and emits one JSON line per
// service window — per-interval relative queuing delay, jitter, and the
// loss taxonomy — followed by a final `summary` line with the whole-run
// RunResult.  With --checkpoint-every the run snapshots its exact state
// periodically, and --resume continues a snapshot such that the row
// stream and summary are byte-identical to the uninterrupted run's
// post-snapshot output.
//
// Usage:
//   pps_serve --fabric=pps/rr-per-output --trace=cells.trace
//             --ports=8 --planes=4 [--rate-ratio=2] [--window=1024]
//             [--threads=T] [--drain-grace=G] [--max-slots=M]
//             [--checkpoint-every=E --checkpoint=run.ckpt]
//             [--resume=run.ckpt]
//
// Convert a text trace to the binary framing with --pack-trace:
//   pps_serve --pack-trace=in.trace --out=out.btrace

#include <charconv>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/harness.h"
#include "core/metrics_json.h"
#include "core/slot_engine.h"
#include "fabric/registry.h"
#include "sim/error.h"
#include "traffic/trace.h"

namespace {

struct Args {
  std::string fabric = "pps/rr-per-output";
  std::string trace;
  std::string pack_trace;  // --pack-trace mode: input text trace
  std::string out;         // --pack-trace mode: output binary trace
  pps::SwitchConfig config{.num_ports = 8, .num_planes = 4, .rate_ratio = 2};
  core::RunOptions options;
};

std::int64_t ParseInt(std::string_view flag, std::string_view value) {
  std::int64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  SIM_CHECK(ec == std::errc{} && ptr == value.data() + value.size(),
            "bad integer for --" << flag << ": '" << value << "'");
  return parsed;
}

Args Parse(int argc, char** argv) {
  Args args;
  args.options.window_slots = 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    SIM_CHECK(arg.size() > 2 && arg.starts_with("--") &&
                  eq != std::string_view::npos,
              "expected --flag=value, got '" << arg << "'");
    const std::string_view flag = arg.substr(2, eq - 2);
    const std::string_view value = arg.substr(eq + 1);
    if (flag == "fabric") {
      args.fabric = value;
    } else if (flag == "trace") {
      args.trace = value;
    } else if (flag == "pack-trace") {
      args.pack_trace = value;
    } else if (flag == "out") {
      args.out = value;
    } else if (flag == "ports") {
      args.config.num_ports = static_cast<sim::PortId>(ParseInt(flag, value));
    } else if (flag == "planes") {
      args.config.num_planes = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "rate-ratio") {
      args.config.rate_ratio = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "buffer") {
      args.config.input_buffer_size = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "reseq-timeout") {
      args.config.reseq_timeout = static_cast<int>(ParseInt(flag, value));
    } else if (flag == "window") {
      args.options.window_slots = ParseInt(flag, value);
    } else if (flag == "threads") {
      args.options.threads = static_cast<unsigned>(ParseInt(flag, value));
    } else if (flag == "drain-grace") {
      args.options.drain_grace = ParseInt(flag, value);
    } else if (flag == "max-slots") {
      args.options.max_slots = ParseInt(flag, value);
    } else if (flag == "checkpoint-every") {
      args.options.checkpoint_every = ParseInt(flag, value);
    } else if (flag == "checkpoint") {
      args.options.checkpoint_path = value;
    } else if (flag == "resume") {
      args.options.resume_from = value;
    } else {
      SIM_CHECK(false, "unknown flag --" << flag);
    }
  }
  return args;
}

core::json::Value LossJson(const fault::LossBreakdown& l) {
  auto v = core::json::Value::MakeObject();
  v.Set("input_drops", l.input_drops);
  v.Set("stranded_cells", l.stranded_cells);
  v.Set("stale_dispatches", l.stale_dispatches);
  v.Set("link_drops", l.link_drops);
  v.Set("late_arrivals", l.late_arrivals);
  v.Set("buffer_overflows", l.buffer_overflows);
  return v;
}

void PrintRow(const core::WindowRow& row) {
  auto v = core::json::Value::MakeObject();
  v.Set("kind", "window");
  v.Set("index", row.index);
  v.Set("from", row.from);
  v.Set("to", row.to);
  v.Set("offered", row.offered);
  v.Set("finalized", row.finalized);
  v.Set("dropped", row.dropped);
  v.Set("losses", LossJson(row.losses));
  v.Set("max_relative_delay", row.max_relative_delay);
  v.Set("max_relative_jitter", row.max_relative_jitter);
  v.Set("mean_relative_delay", row.relative_delay.mean());
  v.Set("backlog", row.backlog);
  v.Set("shadow_backlog", row.shadow_backlog);
  std::cout << v.Dump() << "\n" << std::flush;
}

void PrintSummary(const core::RunResult& result) {
  auto v = core::json::Value::MakeObject();
  v.Set("kind", "summary");
  v.Set("cells", result.cells);
  v.Set("duration", result.duration);
  v.Set("drained", result.drained);
  v.Set("dropped", result.dropped);
  v.Set("losses", LossJson(result.losses));
  v.Set("max_relative_delay", result.max_relative_delay);
  v.Set("max_relative_jitter", result.max_relative_jitter);
  v.Set("mean_relative_delay", result.relative_delay.mean());
  v.Set("traffic_burstiness", result.traffic_burstiness);
  v.Set("order_preserved", result.order_preserved);
  v.Set("resequencing_stalls", result.resequencing_stalls);
  std::cout << v.Dump() << "\n" << std::flush;
}

int PackTrace(const Args& args) {
  SIM_CHECK(!args.out.empty(), "--pack-trace needs --out=<path>");
  std::ifstream is(args.pack_trace, std::ios::binary);
  SIM_CHECK(is.good(), "cannot open trace " << args.pack_trace);
  traffic::Trace trace = traffic::Trace::Load(is);
  trace.Normalize();
  std::ofstream os(args.out, std::ios::binary | std::ios::trunc);
  SIM_CHECK(os.good(), "cannot open output " << args.out);
  trace.SaveBinary(os);
  SIM_CHECK(os.good(), "write failed for " << args.out);
  std::cerr << "packed " << trace.entries().size() << " entries into "
            << args.out << "\n";
  return 0;
}

int Serve(const Args& args) {
  SIM_CHECK(!args.trace.empty(), "--trace=<path> is required");
  args.config.Validate();
  std::unique_ptr<fabric::Fabric> fabric =
      fabric::Make(args.fabric, args.config);
  traffic::StreamingTraceSource source(args.trace);
  core::RunOptions options = args.options;
  options.on_window = PrintRow;
  const core::RunResult result =
      core::SlotEngine{}.Run(*fabric, source, options);
  PrintSummary(result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    if (!args.pack_trace.empty()) return PackTrace(args);
    return Serve(args);
  } catch (const sim::SimError& e) {
    std::cerr << "pps_serve: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // I/O and allocation failures surface as std::exception subclasses;
    // report them instead of letting them escape main and terminate.
    std::cerr << "pps_serve: " << e.what() << "\n";
    return 1;
  }
}
