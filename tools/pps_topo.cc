// pps_topo: run a multi-hop topology scenario end to end.
//
// Loads a topo::Scenario JSON (see examples/topologies/), validates and
// compiles it, drives every node slot-synchronously against one
// network-wide shadow OQ switch, and reports:
//   * per-hop latency attribution: one row per node (cells forwarded,
//     local queuing delay distribution, backlog, loss taxonomy);
//   * the end-to-end relative queuing delay of the whole network vs the
//     ideal single switch over its external ports.
//
// Scenario generation: --emit-clos=LEAVESxSPINESxEXT prints a ready
// 3-stage Clos scenario JSON to stdout (edit traffic/fabrics and feed it
// back in).  --validate=FILE.json only builds the topology, so config
// errors surface with exit 3 and a one-line SimError, never a crash.
//
// Exit codes: 0 success, 2 usage error, 3 model/config error.
//
// Usage:
//   pps_topo --scenario=FILE.json [--threads=T] [--max-slots=M]
//            [--drain-grace=G] [--source-cutoff=C] [--json=0|1]
//            [--checkpoint-every=E --checkpoint=PATH] [--resume=PATH]
//   pps_topo --emit-clos=MxNxR [--fabric=NAME] [--link-delay=D]
//   pps_topo --validate=FILE.json

#include <charconv>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "core/metrics_json.h"
#include "core/table.h"
#include "sim/error.h"
#include "topo/clos.h"
#include "topo/network_engine.h"
#include "topo/topology.h"

namespace {

class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

constexpr std::string_view kUsage =
    "usage: pps_topo --scenario=FILE.json [--threads=T] [--max-slots=M]\n"
    "                [--drain-grace=G] [--source-cutoff=C] [--json=0|1]\n"
    "                [--checkpoint-every=E --checkpoint=PATH]\n"
    "                [--resume=PATH]\n"
    "   or: pps_topo --emit-clos=MxNxR [--fabric=NAME] [--link-delay=D]\n"
    "   or: pps_topo --validate=FILE.json\n"
    "exit codes: 0 ok, 2 usage, 3 model/config error\n";

struct Args {
  std::string scenario;
  std::string validate;
  std::string emit_clos;
  std::string fabric = "cioq/islip-s2";
  sim::Slot link_delay = 0;
  bool json = false;
  topo::NetworkRunOptions options;
};

std::int64_t ParseInt(std::string_view flag, std::string_view value) {
  std::int64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw UsageError("bad integer for --" + std::string(flag) + ": '" +
                     std::string(value) + "'");
  }
  return parsed;
}

bool ParseBool(std::string_view flag, std::string_view value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw UsageError("bad boolean for --" + std::string(flag) + ": '" +
                   std::string(value) + "' (want 0/1/true/false)");
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.size() <= 2 || !arg.starts_with("--") ||
        eq == std::string_view::npos) {
      throw UsageError("expected --flag=value, got '" + std::string(arg) +
                       "'");
    }
    const std::string_view flag = arg.substr(2, eq - 2);
    const std::string_view value = arg.substr(eq + 1);
    if (flag == "scenario") {
      args.scenario = value;
    } else if (flag == "validate") {
      args.validate = value;
    } else if (flag == "emit-clos") {
      args.emit_clos = value;
    } else if (flag == "fabric") {
      args.fabric = value;
    } else if (flag == "link-delay") {
      args.link_delay = ParseInt(flag, value);
    } else if (flag == "json") {
      args.json = ParseBool(flag, value);
    } else if (flag == "threads") {
      args.options.threads = static_cast<unsigned>(ParseInt(flag, value));
    } else if (flag == "max-slots") {
      args.options.max_slots = ParseInt(flag, value);
    } else if (flag == "drain-grace") {
      args.options.drain_grace = ParseInt(flag, value);
    } else if (flag == "source-cutoff") {
      args.options.source_cutoff = ParseInt(flag, value);
    } else if (flag == "checkpoint-every") {
      args.options.checkpoint_every = ParseInt(flag, value);
    } else if (flag == "checkpoint") {
      args.options.checkpoint_path = value;
    } else if (flag == "resume") {
      args.options.resume_from = value;
    } else {
      throw UsageError("unknown flag --" + std::string(flag));
    }
  }
  const int modes = (args.scenario.empty() ? 0 : 1) +
                    (args.validate.empty() ? 0 : 1) +
                    (args.emit_clos.empty() ? 0 : 1);
  if (modes != 1) {
    throw UsageError(
        "pick exactly one of --scenario, --validate, --emit-clos");
  }
  if (args.options.max_slots <= 0) {
    throw UsageError("--max-slots must be > 0");
  }
  if (args.options.checkpoint_every > 0 &&
      args.options.checkpoint_path.empty()) {
    throw UsageError("--checkpoint-every needs --checkpoint=PATH");
  }
  return args;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SIM_CHECK(is.good(), "cannot open scenario " << path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

int EmitClos(const Args& args) {
  // "MxNxR": leaves x spines x externals-per-leaf.
  int dims[3] = {0, 0, 0};
  std::string_view spec = args.emit_clos;
  for (int d = 0; d < 3; ++d) {
    const auto x = spec.find('x');
    const std::string_view part =
        d < 2 ? spec.substr(0, x) : spec;
    if ((d < 2 && x == std::string_view::npos) || part.empty()) {
      throw UsageError("--emit-clos wants MxNxR, got '" + args.emit_clos +
                       "'");
    }
    dims[d] = static_cast<int>(ParseInt("emit-clos", part));
    if (d < 2) spec.remove_prefix(x + 1);
  }
  const topo::Scenario scenario = topo::MakeClos3(
      dims[0], dims[1], dims[2], args.fabric,
      pps::SwitchConfig{.num_ports = 1, .num_planes = 2, .rate_ratio = 2},
      args.link_delay);
  topo::Topology::Build(scenario);  // never emit an invalid scenario
  std::cout << topo::ToJson(scenario) << "\n";
  return 0;
}

core::json::Value LossJson(const fault::LossBreakdown& l) {
  auto v = core::json::Value::MakeObject();
  v.Set("input_drops", l.input_drops);
  v.Set("stranded_cells", l.stranded_cells);
  v.Set("stale_dispatches", l.stale_dispatches);
  v.Set("link_drops", l.link_drops);
  v.Set("late_arrivals", l.late_arrivals);
  v.Set("buffer_overflows", l.buffer_overflows);
  return v;
}

void PrintJson(const topo::NetworkRunResult& result) {
  auto v = core::json::Value::MakeObject();
  v.Set("kind", "network_summary");
  v.Set("cells", result.cells);
  v.Set("delivered", result.delivered);
  v.Set("dropped", result.dropped);
  v.Set("duration", result.duration);
  v.Set("drained", result.drained);
  v.Set("interrupted", result.interrupted);
  v.Set("max_hops", result.max_hops);
  v.Set("max_relative_delay", result.max_relative_delay);
  v.Set("max_relative_jitter", result.max_relative_jitter);
  v.Set("mean_relative_delay", result.relative_delay.mean());
  v.Set("mean_net_delay", result.net_delay.mean());
  v.Set("mean_shadow_delay", result.shadow_delay.mean());
  v.Set("order_preserved", result.order_preserved);
  v.Set("losses", LossJson(result.losses));
  auto hops = core::json::Value::MakeArray();
  for (const topo::NodeStats& ns : result.node_stats) {
    auto h = core::json::Value::MakeObject();
    h.Set("node", ns.name);
    h.Set("forwarded", ns.forwarded);
    h.Set("mean_hop_delay", ns.hop_delay.mean());
    h.Set("max_hop_delay", ns.max_hop_delay);
    h.Set("backlog", ns.backlog);
    h.Set("lost", ns.losses.total());
    hops.Append(h);
  }
  v.Set("hops", hops);
  std::cout << v.Dump() << "\n";
}

void PrintTable(const topo::Topology& topology,
                const topo::NetworkRunResult& result) {
  core::Table table("Per-hop attribution: " + topology.scenario().name,
                    {"node", "fabric", "forwarded", "mean hop delay",
                     "max hop delay", "backlog", "lost"});
  for (int k = 0; k < topology.num_nodes(); ++k) {
    const topo::NodeStats& ns =
        result.node_stats[static_cast<std::size_t>(k)];
    table.AddRow({ns.name, topology.node(k).fabric, core::Fmt(ns.forwarded),
                  core::Fmt(ns.hop_delay.mean(), 3),
                  core::Fmt(ns.max_hop_delay), core::Fmt(ns.backlog),
                  core::Fmt(ns.losses.total())});
  }
  table.Print(std::cout);
  std::cout << "end-to-end vs network-wide shadow OQ: "
            << topo::Summarize(result) << "\n";
}

int RunScenarioFile(const Args& args) {
  const topo::Topology topology =
      topo::Topology::Build(topo::FromJson(ReadWholeFile(args.scenario)));
  const topo::NetworkRunResult result =
      topo::RunScenario(topology, args.options);
  if (args.json) {
    PrintJson(result);
  } else {
    PrintTable(topology, result);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    if (!args.emit_clos.empty()) return EmitClos(args);
    if (!args.validate.empty()) {
      topo::Topology::Build(topo::FromJson(ReadWholeFile(args.validate)));
      std::cout << "ok\n";
      return 0;
    }
    return RunScenarioFile(args);
  } catch (const UsageError& e) {
    std::cerr << "pps_topo: " << e.what() << "\n" << kUsage;
    return 2;
  } catch (const sim::SimError& e) {
    std::cerr << "pps_topo: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "pps_topo: " << e.what() << "\n";
    return 1;
  }
}
