// Congestion study (Section 5 of the paper): floods one output to keep
// every plane queue backlogged, then shows that the extended FTD
// demultiplexor adds no relative queuing delay while the congestion lasts
// — and that the flood traffic cannot be leaky-bucket (Proposition 15).
//
//   $ ./congestion_study [h] [flood_slots] [sustain_slots]

#include <cstdlib>
#include <iostream>

#include "core/adversary_bursts.h"
#include "core/harness.h"
#include "core/table.h"
#include "demux/registry.h"
#include "sim/timeseries.h"
#include "switch/pps.h"
#include "traffic/leaky_bucket.h"
#include "traffic/trace.h"

int main(int argc, char** argv) {
  const int h = argc > 1 ? std::atoi(argv[1]) : 2;
  const sim::Slot flood = argc > 2 ? std::atol(argv[2]) : 8;
  const sim::Slot sustain = argc > 3 ? std::atol(argv[3]) : 512;

  pps::SwitchConfig config;
  config.num_ports = 16;
  config.rate_ratio = 2;
  config.num_planes = 8;  // S = 4 >= h
  const std::string algorithm = "ftd-h" + std::to_string(h);

  std::cout << "=== Congested-period behaviour of " << algorithm
            << " on a PPS (" << config.ToString() << ") ===\n\n";

  core::CongestionOptions copt;
  copt.flood_slots = flood;
  copt.sustain_slots = sustain;
  const auto plan = BuildCongestionTraffic(config, copt);

  traffic::BurstinessMeter meter(config.num_ports);
  for (const auto& e : plan.trace.entries()) {
    meter.Record(e.slot, e.input, e.output);
  }
  std::cout << "Traffic: flood of " << flood << " slots x " << config.num_ports
            << " inputs -> output " << plan.target_output << ", then "
            << sustain << " slots at exactly the line rate.\n"
            << "Measured burstiness B = " << meter.OutputBurstiness()
            << " = flood * (N - 1) — grows without bound in the flood "
               "length, so no fixed (R, B) envelope admits it "
               "(Proposition 15).\n\n";

  pps::BufferlessPps sw(config, demux::MakeFactory(algorithm));
  traffic::TraceTraffic source(plan.trace);
  core::RunOptions options;
  options.max_slots = 4'000'000;
  options.keep_timeline = true;
  const auto result = core::RunRelative(sw, source, options);

  std::cout << "Replay: " << core::Summarize(result) << "\n\n";

  // Backlog evolution at the hot output: a second, instrumented replay
  // sampling the plane backlogs toward j every slot.
  {
    pps::BufferlessPps probe(config, demux::MakeFactory(algorithm));
    traffic::TraceTraffic src2(plan.trace);
    sim::TimeSeries backlog;
    sim::CellId id = 0;
    std::uint64_t seq[64 * 64] = {};
    for (sim::Slot t = 0; t <= plan.sustain_end; ++t) {
      for (const auto& a : src2.ArrivalsAt(t)) {
        sim::Cell cell;
        cell.id = id++;
        cell.input = a.input;
        cell.output = a.output;
        cell.seq = seq[sim::MakeFlowId(a.input, a.output,
                                       config.num_ports)]++;
        probe.Inject(cell, t);
      }
      probe.Advance(t);
      std::int64_t total = 0;
      for (sim::PlaneId k = 0; k < config.num_planes; ++k) {
        total += probe.PlaneBacklog(k, plan.target_output);
      }
      backlog.Record(t, total);
    }
    core::Table evolution("Plane backlog toward the hot output over time",
                          {"window", "min", "mean", "max"});
    for (const auto& b : backlog.Buckets(8)) {
      evolution.AddRow({"[" + core::Fmt(b.from) + "," + core::Fmt(b.to) + ")",
                        core::Fmt(b.min), core::Fmt(b.mean, 1),
                        core::Fmt(b.max)});
    }
    evolution.Print(std::cout);
    std::cout << "\n";
  }
  const sim::Slot warm = result.MaxRelativeDelayIn(0, plan.flood_end);
  std::cout << "Relative queuing delay by arrival window:\n";
  std::cout << "  flood (warm-up)          : " << warm << " slots\n";
  for (sim::Slot from = plan.flood_end; from < plan.sustain_end;
       from += sustain / 4) {
    const sim::Slot to = std::min(plan.sustain_end, from + sustain / 4);
    std::cout << "  congested [" << from << ", " << to << ")      : "
              << result.MaxRelativeDelayIn(from, to) << " slots\n";
  }
  std::cout << "\nTheorem 14: after the warm-up, cells arriving during the "
               "congested period suffer no additional relative queuing "
               "delay — every plane queue stays backlogged, so the output "
               "line never idles, exactly like the reference switch.\n";
  return 0;
}
