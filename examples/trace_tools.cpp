// Trace utility: generate, inspect, and replay cell traces from the
// command line — the glue for using this library's adversaries on traces
// you keep, share, or post-process elsewhere.
//
//   trace_tools gen-align  <algorithm> <N> <K> <r'> <out.trace>
//       Builds the Theorem-6 alignment traffic for <algorithm> and saves
//       it (text format: "slot input output" lines).
//   trace_tools gen-random <N> <load> <slots> <seed> <out.trace>
//       Uniform Bernoulli traffic.
//   trace_tools info <file.trace> <N>
//       Cell count, horizon, per-port rates, exact leaky-bucket
//       burstiness, AQT admissibility.
//   trace_tools replay <file.trace> <algorithm> <N> <K> <r'>
//       Replays against a PPS + shadow switch and prints the relative
//       delay summary.
//   trace_tools transform <in.trace> <op> <arg> <out.trace>
//       op = shift | dilate | truncate (arg = slots/factor/horizon).

#include <fstream>
#include <iostream>
#include <string>

#include "core/adversary_alignment.h"
#include "core/harness.h"
#include "demux/registry.h"
#include "sim/rng.h"
#include "switch/pps.h"
#include "traffic/aqt.h"
#include "traffic/leaky_bucket.h"
#include "traffic/random_sources.h"
#include "traffic/trace.h"
#include "traffic/transforms.h"

namespace {

int Usage() {
  std::cerr
      << "usage:\n"
         "  trace_tools gen-align  <algorithm> <N> <K> <r'> <out.trace>\n"
         "  trace_tools gen-random <N> <load> <slots> <seed> <out.trace>\n"
         "  trace_tools info <file.trace> <N>\n"
         "  trace_tools replay <file.trace> <algorithm> <N> <K> <r'>\n"
         "  trace_tools transform <in.trace> shift|dilate|truncate <arg>"
         " <out.trace>\n";
  return 2;
}

traffic::Trace LoadTrace(const std::string& path) {
  std::ifstream in(path);
  SIM_CHECK(in.good(), "cannot open trace file: " << path);
  return traffic::Trace::Load(in);
}

int GenAlign(const std::string& algorithm, sim::PortId n, int k, int rp,
             const std::string& path) {
  pps::SwitchConfig cfg;
  cfg.num_ports = n;
  cfg.num_planes = k;
  cfg.rate_ratio = rp;
  const auto plan =
      core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
  std::ofstream out(path);
  SIM_CHECK(out.good(), "cannot write " << path);
  plan.trace.Save(out);
  std::cout << "wrote " << plan.trace.size() << " cells to " << path
            << " (aligned d=" << plan.d() << ", target plane "
            << plan.target_plane << ", burst at [" << plan.burst_start << ","
            << plan.burst_end << "))\n";
  return 0;
}

int GenRandom(sim::PortId n, double load, sim::Slot slots,
              std::uint64_t seed, const std::string& path) {
  traffic::BernoulliSource src(n, load, traffic::Pattern::kUniform,
                               sim::Rng(seed));
  traffic::Trace trace;
  for (sim::Slot t = 0; t < slots; ++t) {
    for (const auto& a : src.ArrivalsAt(t)) trace.Add(t, a.input, a.output);
  }
  trace.Normalize();
  std::ofstream out(path);
  SIM_CHECK(out.good(), "cannot write " << path);
  trace.Save(out);
  std::cout << "wrote " << trace.size() << " cells to " << path << "\n";
  return 0;
}

int Info(const std::string& path, sim::PortId n) {
  const auto trace = LoadTrace(path);
  trace.Validate(n);
  traffic::BurstinessMeter meter(n);
  traffic::AqtValidator aqt(n, /*window=*/32, 1, 1);
  for (const auto& e : trace.entries()) {
    meter.Record(e.slot, e.input, e.output);
    aqt.Record(e.slot, e.input, e.output);
  }
  std::cout << "cells               : " << trace.size() << "\n"
            << "horizon             : "
            << (trace.empty() ? 0 : trace.last_slot() + 1) << " slots\n"
            << "output burstiness B : " << meter.OutputBurstiness() << "\n"
            << "input burstiness    : " << meter.InputBurstiness() << "\n"
            << "AQT (rho=1, w=32)   : "
            << (aqt.admissible() ? "admissible" : "violated") << " (peak "
            << aqt.peak_utilization() << ")\n";
  return 0;
}

int Replay(const std::string& path, const std::string& algorithm,
           sim::PortId n, int k, int rp) {
  pps::SwitchConfig cfg;
  cfg.num_ports = n;
  cfg.num_planes = k;
  cfg.rate_ratio = rp;
  const auto needs = demux::NeedsOf(algorithm);
  if (needs.booked_planes) {
    cfg.plane_scheduling = pps::PlaneScheduling::kBooked;
  }
  cfg.snapshot_history = std::max(1, needs.snapshot_history);
  pps::BufferlessPps sw(cfg, demux::MakeFactory(algorithm));
  traffic::TraceTraffic src(LoadTrace(path));
  core::RunOptions opt;
  opt.max_slots = 10'000'000;
  const auto result = core::RunRelative(sw, src, opt);
  std::cout << core::Summarize(result) << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string cmd = argc > 1 ? argv[1] : "";
    if (cmd == "gen-align" && argc == 7) {
      return GenAlign(argv[2], std::atoi(argv[3]), std::atoi(argv[4]),
                      std::atoi(argv[5]), argv[6]);
    }
    if (cmd == "gen-random" && argc == 7) {
      return GenRandom(std::atoi(argv[2]), std::atof(argv[3]),
                       std::atol(argv[4]),
                       static_cast<std::uint64_t>(std::atoll(argv[5])),
                       argv[6]);
    }
    if (cmd == "info" && argc == 4) {
      return Info(argv[2], std::atoi(argv[3]));
    }
    if (cmd == "replay" && argc == 7) {
      return Replay(argv[2], argv[3], std::atoi(argv[4]), std::atoi(argv[5]),
                    std::atoi(argv[6]));
    }
    if (cmd == "transform" && argc == 6) {
      const auto trace = LoadTrace(argv[2]);
      const std::string op = argv[3];
      const long arg = std::atol(argv[4]);
      traffic::Trace out;
      if (op == "shift") {
        out = traffic::Shift(trace, arg);
      } else if (op == "dilate") {
        out = traffic::Dilate(trace, static_cast<int>(arg));
      } else if (op == "truncate") {
        out = traffic::Truncate(trace, arg);
      } else {
        return Usage();
      }
      std::ofstream file(argv[5]);
      SIM_CHECK(file.good(), "cannot write " << argv[5]);
      out.Save(file);
      std::cout << "wrote " << out.size() << " cells to " << argv[5] << "\n";
      return 0;
    }
    return Usage();
  } catch (const sim::SimError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
