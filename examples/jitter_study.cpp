// Jitter study: translates the paper's relative-delay-jitter lower bounds
// into downstream buffer requirements, the direction sketched in the
// paper's discussion ("it might be possible to translate our lower bounds
// on the relative queuing delay to bounds on the size of this internal
// buffer" of a jitter regulator).
//
// Setup: a periodic victim flow (one cell every `period` slots) crosses a
// PPS together with adversarial bursts toward the same output.  The PPS
// smears the victim's delay (delay jitter J > 0).  A downstream
// jitter regulator must then buffer ceil(J / period) + 1 cells to restore
// a perfectly periodic release — we sweep the regulator capacity and show
// exactly that threshold.
//
//   $ ./jitter_study [period] [bursts]

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/table.h"
#include "demux/registry.h"
#include "qos/jitter_regulator.h"
#include "sim/latency_recorder.h"
#include "switch/pps.h"
#include "traffic/trace.h"

int main(int argc, char** argv) {
  const sim::Slot period = argc > 1 ? std::atol(argv[1]) : 4;
  const int bursts = argc > 2 ? std::atoi(argv[2]) : 6;

  pps::SwitchConfig config;
  config.num_ports = 8;
  config.num_planes = 4;
  config.rate_ratio = 2;

  // Victim: flow 0 -> 7, one cell every `period` slots.  Cross traffic:
  // simultaneous 4-cell bursts from inputs 1..4 toward the same output
  // (two back-to-back rows per burst).  The burst both saturates the
  // output line for several slots and, when its round-robin pointers line
  // up with the victim's plane, adds plane-queue delay on top — so victim
  // cells near a burst are late and victim cells in quiet stretches are
  // not: delay jitter.
  traffic::Trace trace;
  const sim::Slot horizon = 64 * period;
  for (sim::Slot t = 0; t < horizon; t += period) trace.Add(t, 0, 7);
  for (int b = 1; b <= bursts; ++b) {
    // Vary the phase against the victim's grid so different victim cells
    // see different backlog.
    const sim::Slot start = b * (horizon / (bursts + 1)) + (b % period);
    for (sim::Slot row = 0; row < 2; ++row) {
      for (sim::PortId i = 1; i <= 4; ++i) trace.Add(start + row, i, 7);
    }
  }
  trace.Normalize();
  trace.Validate(config.num_ports);

  // Drive the PPS directly and record the victim flow's trajectory.
  pps::BufferlessPps sw(config, demux::MakeFactory("rr-per-output"));
  traffic::TraceTraffic source(trace);
  sim::LatencyRecorder recorder;
  recorder.set_num_ports(config.num_ports);
  std::vector<sim::Slot> victim_departures;
  std::uint64_t seq_by_flow[8 * 8] = {};
  sim::CellId next_id = 0;
  for (sim::Slot t = 0; t <= trace.last_slot() + 256; ++t) {
    for (const auto& a : source.ArrivalsAt(t)) {
      sim::Cell cell;
      cell.id = next_id++;
      cell.input = a.input;
      cell.output = a.output;
      cell.seq = seq_by_flow[sim::MakeFlowId(a.input, a.output, 8)]++;
      sw.Inject(cell, t);
    }
    for (const auto& cell : sw.Advance(t)) {
      recorder.Record(cell);
      if (cell.input == 0 && cell.output == 7) {
        victim_departures.push_back(cell.departure);
      }
    }
    if (t > trace.last_slot() && sw.Drained()) break;
  }

  const sim::Slot jitter = recorder.FlowJitter(sim::MakeFlowId(0, 7, 8));
  std::cout << "Victim flow 0->7: " << victim_departures.size()
            << " cells at period " << period << ", PPS delay jitter J = "
            << jitter << " slots.\n";
  std::cout << "Mansour/Patt-Shamir-style regulator sizing: required "
               "capacity = ceil(J/period) + 1 = "
            << qos::JitterRegulator::RequiredCapacity(jitter, period)
            << " cells.\n\n";

  core::Table table("Regulator capacity sweep (hold-back = J)",
                    {"capacity", "drops", "grid violations", "added delay"});
  for (int capacity = 1;
       capacity <= qos::JitterRegulator::RequiredCapacity(jitter, period) + 2;
       ++capacity) {
    qos::JitterRegulator reg(capacity, period, /*hold_back=*/jitter);
    for (const sim::Slot dep : victim_departures) {
      (void)reg.Push(dep);
      (void)reg.ReleasesUpTo(dep);
    }
    (void)reg.ReleasesUpTo(victim_departures.back() + jitter +
                           period * static_cast<sim::Slot>(capacity + 1));
    table.AddRow({core::Fmt(capacity), core::Fmt(reg.drops()),
                  core::Fmt(reg.max_grid_violation()),
                  core::Fmt(reg.max_added_delay())});
  }
  table.Print(std::cout);
  std::cout << "\nOnce the capacity reaches the jitter-derived threshold, "
               "drops and grid violations vanish: the switch's RDJ lower "
               "bound is, equivalently, a lower bound on downstream "
               "regulator buffers.\n";
  return 0;
}
