// Algorithm comparison: runs every registered demultiplexing algorithm —
// bufferless and input-buffered — against the same workload and prints a
// league table of relative queuing delay, jitter, and load balance.
//
//   $ ./algorithm_comparison [load] [slots]

#include <cstdlib>
#include <iostream>

#include "core/harness.h"
#include "core/table.h"
#include "demux/registry.h"
#include "sim/rng.h"
#include "switch/input_buffered_pps.h"
#include "switch/pps.h"
#include "traffic/random_sources.h"

namespace {

constexpr sim::PortId kPorts = 16;
constexpr int kRatePrime = 2;

pps::SwitchConfig ConfigFor(const std::string& algorithm, bool buffered) {
  pps::SwitchConfig cfg;
  cfg.num_ports = kPorts;
  cfg.rate_ratio = kRatePrime;
  cfg.num_planes = 2 * kRatePrime;  // S = 2
  const auto needs = demux::NeedsOf(algorithm);
  if (needs.booked_planes) {
    cfg.plane_scheduling = pps::PlaneScheduling::kBooked;
  }
  cfg.snapshot_history = std::max(1, needs.snapshot_history);
  if (buffered) cfg.input_buffer_size = 128;
  return cfg;
}

double PlaneImbalance(const std::vector<std::uint64_t>& per_plane) {
  std::uint64_t lo = per_plane[0], hi = per_plane[0];
  for (auto c : per_plane) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return lo == 0 ? 0.0 : static_cast<double>(hi) / static_cast<double>(lo);
}

}  // namespace

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::atof(argv[1]) : 0.9;
  const sim::Slot slots = argc > 2 ? std::atol(argv[2]) : 20'000;

  core::Table table(
      "Algorithm league table (N=16, r'=2, S=2, uniform Bernoulli load=" +
          core::Fmt(load, 2) + ")",
      {"algorithm", "class", "maxRQD", "meanRQD", "maxRDJ", "plane-imbalance",
       "reseq-stalls"});

  core::RunOptions options;
  options.max_slots = slots;
  options.drain_grace = slots / 4;

  for (const auto& name : demux::BufferlessAlgorithms()) {
    pps::BufferlessPps sw(ConfigFor(name, false), demux::MakeFactory(name));
    traffic::BernoulliSource src(kPorts, load, traffic::Pattern::kUniform,
                                 sim::Rng(777));
    const auto result = core::RunRelative(sw, src, options);
    table.AddRow({name, "bufferless", core::Fmt(result.max_relative_delay),
                  core::Fmt(result.relative_delay.mean(), 3),
                  core::Fmt(result.max_relative_jitter),
                  core::Fmt(PlaneImbalance(sw.dispatches_per_plane()), 2),
                  core::Fmt(result.resequencing_stalls)});
  }
  for (const auto& name : demux::BufferedAlgorithms()) {
    pps::InputBufferedPps sw(ConfigFor(name, true),
                             demux::MakeBufferedFactory(name));
    traffic::BernoulliSource src(kPorts, load, traffic::Pattern::kUniform,
                                 sim::Rng(777));
    const auto result = core::RunRelative(sw, src, options);
    table.AddRow({name, "input-buffered",
                  core::Fmt(result.max_relative_delay),
                  core::Fmt(result.relative_delay.mean(), 3),
                  core::Fmt(result.max_relative_jitter), "-",
                  core::Fmt(result.resequencing_stalls)});
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: CPA variants pin RQD at 0 (centralized) or "
               "u (Theorem 12); fully-distributed algorithms pay the "
               "information price even on friendly traffic.\n";
  return 0;
}
