// Quickstart: build the 5x5 PPS with 2 planes of the paper's Figure 1,
// run admissible random traffic through it next to its shadow
// output-queued switch, and print the relative queuing delay.
//
//   $ ./quickstart [algorithm] [load]
//
// Algorithms: rr | rr-per-output | hash | static-partition-d2 | ftd-h1 |
//             cpa | stale-jsq-u4 ...   (see demux/registry.h)

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/harness.h"
#include "demux/registry.h"
#include "sim/rng.h"
#include "switch/pps.h"
#include "traffic/random_sources.h"

int main(int argc, char** argv) {
  const std::string algorithm = argc > 1 ? argv[1] : "rr-per-output";
  const double load = argc > 2 ? std::atof(argv[2]) : 0.8;

  // Figure 1 of the paper: N = 5 ports, K = 2 planes.  The internal lines
  // run at half the external rate (r' = 2), so the speedup is S = K/r' = 1.
  pps::SwitchConfig config;
  config.num_ports = 5;
  config.num_planes = 2;
  config.rate_ratio = 2;

  const demux::AlgorithmNeeds needs = demux::NeedsOf(algorithm);
  if (needs.booked_planes) {
    // CPA-style algorithms book exact delivery slots and need more planes:
    // upgrade the center stage to K = 4 (S = 2), as [14] requires.
    config.num_planes = 4;
    config.plane_scheduling = pps::PlaneScheduling::kBooked;
  }
  config.snapshot_history = std::max(1, needs.snapshot_history);

  std::cout << "PPS (" << config.ToString() << "), demux=" << algorithm
            << ", offered load=" << load << "\n";

  pps::BufferlessPps sw(config, demux::MakeFactory(algorithm));
  traffic::BernoulliSource source(config.num_ports, load,
                                  traffic::Pattern::kUniform, sim::Rng(2024));

  core::RunOptions options;
  options.max_slots = 20'000;
  options.drain_grace = 2'000;
  const core::RunResult result = core::RunRelative(sw, source, options);

  std::cout << "cells switched          : " << result.cells << "\n"
            << "slots simulated         : " << result.duration << "\n"
            << "traffic burstiness B    : " << result.traffic_burstiness << "\n"
            << "PPS mean delay          : " << result.pps_delay.mean()
            << " slots (max " << result.pps_delay.max() << ")\n"
            << "shadow OQ mean delay    : " << result.shadow_delay.mean()
            << " slots (max " << result.shadow_delay.max() << ")\n"
            << "relative queuing delay  : max " << result.max_relative_delay
            << ", mean " << result.relative_delay.mean() << "\n"
            << "relative delay jitter   : max " << result.max_relative_jitter
            << "\n"
            << "flow order preserved    : "
            << (result.order_preserved ? "yes" : "NO — bug!") << "\n";
  return 0;
}
