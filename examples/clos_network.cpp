// Clos network study: compose per-switch relative queuing delay over a
// 3-stage Clos of registered fabrics and attribute the end-to-end delay
// hop by hop.
//
//   $ ./clos_network [leaves] [spines] [externals] [fabric] [load]
//   $ ./clos_network 4 2 2 cioq/islip-s2 0.8
//
// Every node is one fabric::Make registry name (pps/..., cioq/..., oq);
// the reference is a single ideal output-queued switch spanning the
// network's external ports, so the printed relative delay is the cost of
// distributing the switching — per-hop queuing plus wire latency — not
// of queuing per se.

#include <cstdlib>
#include <iostream>
#include <string>

#include "topo/clos.h"
#include "topo/network_engine.h"
#include "topo/topology.h"

int main(int argc, char** argv) {
  const int leaves = argc > 1 ? std::atoi(argv[1]) : 4;
  const int spines = argc > 2 ? std::atoi(argv[2]) : 2;
  const int externals = argc > 3 ? std::atoi(argv[3]) : 2;
  const std::string fabric = argc > 4 ? argv[4] : "cioq/islip-s2";
  const double load = argc > 5 ? std::atof(argv[5]) : 0.8;

  pps::SwitchConfig base;
  base.num_ports = 1;  // MakeClos3 sets each stage's geometry
  base.num_planes = 2;
  base.rate_ratio = 2;

  topo::Scenario scenario =
      topo::MakeClos3(leaves, spines, externals, fabric, base);
  scenario.traffic.load = load;
  scenario.traffic.cutoff = 10'000;
  const topo::Topology topology = topo::Topology::Build(scenario);

  std::cout << scenario.name << ": " << topology.num_ingress()
            << " external ports over " << topology.num_nodes()
            << " nodes, offered load " << load << "\n\n";

  const topo::NetworkRunResult result = topo::RunScenario(topology);

  std::cout << "per-hop attribution (mean local queuing delay):\n";
  for (const topo::NodeStats& ns : result.node_stats) {
    std::cout << "  " << ns.name << ": forwarded=" << ns.forwarded
              << " mean=" << ns.hop_delay.mean() << " max=" << ns.max_hop_delay
              << (ns.losses.total() ? " LOST" : "") << "\n";
  }
  std::cout << "\nend-to-end vs network-wide shadow OQ:\n  "
            << topo::Summarize(result) << "\n";
  return result.drained && result.dropped == 0 ? 0 : 1;
}
