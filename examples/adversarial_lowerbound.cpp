// Adversarial lower-bound demo: constructs the Theorem-6 / Figure-2
// state-alignment traffic for a chosen fully-distributed algorithm,
// narrates its phases, replays it against the PPS and its shadow switch,
// and prints the concentration blow-up.
//
//   $ ./adversarial_lowerbound [algorithm] [N] [K] [r']
//
// Try:  ./adversarial_lowerbound rr-per-output 8 4 2
//       ./adversarial_lowerbound hash 16 8 4
//       ./adversarial_lowerbound static-partition-d2 16 8 2

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/adversary_alignment.h"
#include "core/bounds.h"
#include "core/harness.h"
#include "demux/registry.h"
#include "switch/pps.h"
#include "traffic/leaky_bucket.h"
#include "traffic/trace.h"

int main(int argc, char** argv) {
  const std::string algorithm = argc > 1 ? argv[1] : "rr-per-output";
  pps::SwitchConfig config;
  config.num_ports = argc > 2 ? std::atoi(argv[2]) : 8;
  config.num_planes = argc > 3 ? std::atoi(argv[3]) : 4;
  config.rate_ratio = argc > 4 ? std::atoi(argv[4]) : 2;
  config.Validate();

  std::cout << "=== Theorem 6 adversary vs " << algorithm << " on a PPS ("
            << config.ToString() << ") ===\n\n";

  const auto factory = demux::MakeFactory(algorithm);
  const core::AlignmentPlan plan =
      core::BuildAlignmentTraffic(config, factory);

  std::cout << "Phase 1 (alignment, the A_i of Figure 2): " << plan.probes_used
            << " cells drive " << plan.d()
            << " demultiplexors into states from which their next cell for "
               "output "
            << plan.target_output << " goes to plane " << plan.target_plane
            << ".\n";
  std::cout << "Phase 2 (quiet): no arrivals until every plane buffer "
               "drains; fully-distributed demultiplexors cannot change "
               "state without arrivals.\n";
  std::cout << "Phase 3 (burst): slots [" << plan.burst_start << ", "
            << plan.burst_end << ") — " << plan.d()
            << " cells for output " << plan.target_output
            << ", one per slot, all forced through plane "
            << plan.target_plane << ".\n";
  std::cout << "Phase 4 (jitter probe): one trailing cell through the empty "
               "switch pins the flow's minimum delay at 0.\n\n";

  traffic::BurstinessMeter meter(config.num_ports);
  for (const auto& e : plan.trace.entries()) {
    meter.Record(e.slot, e.input, e.output);
  }
  std::cout << "Traffic audit: " << plan.trace.size()
            << " cells, measured leaky-bucket burstiness B = "
            << meter.OutputBurstiness() << " (Theorem 6 requires B = 0).\n\n";

  pps::BufferlessPps sw(config, factory);
  traffic::TraceTraffic source(plan.trace);
  core::RunOptions options;
  options.max_slots = 4'000'000;
  const core::RunResult result = core::RunRelative(sw, source, options);

  const double bound =
      core::bounds::Theorem6(config.rate_ratio, plan.d());
  std::cout << "Replay: " << core::Summarize(result) << "\n\n";
  std::cout << "Paper bound  (R/r - 1) * d = " << bound << " slots\n"
            << "Measured     relative queuing delay = "
            << result.max_relative_delay << " slots, relative jitter = "
            << result.max_relative_jitter << " slots\n"
            << "(the measured worst case is exactly (d-1)(r'-1); the "
               "difference from the formula is the r'-1 transmission-tail "
               "convention, see DESIGN.md)\n";
  return 0;
}
