#!/usr/bin/env bash
# Run the concurrency-sensitive tests under ThreadSanitizer.
#
# The sweep runner executes experiment points on a thread pool
# (core::ParallelMap), the SlotEngine shards single runs over
# core::ShardPool, and several statistics types advertise guarded const
# reads (sim::QuantileSketch's lazy sort).  This script builds a
# dedicated -fsanitize=thread tree (build-tsan/, see the "tsan" CMake
# preset) and runs exactly the tests that exercise those parallel paths:
#
#   test_sweep               ParallelMap races, sweep determinism
#   test_stats               QuantileSketch concurrent const reads
#   test_transforms_parallel pre-existing ParallelMap users
#   test_fault               fault-schedule harness runs (the chaos bench
#                            runs this machinery on the sweep thread pool)
#   test_shard_engine        ShardPool barriers, ThreadBudget nesting,
#                            threaded-engine bitwise determinism
#   test_fabric (ShardedDifferential.*)
#                            threads=T vs threads=1 differential across
#                            shardable fabrics, incl. a lossy fault
#                            schedule (filtered: the serial golden
#                            differential has no threads to race)
#   test_serve               supervisor retry loop with checkpoints cut by
#                            the sharded engine (stop-flag polling races)
#   test_topo (NetworkEngine.Threads*)
#                            sharded NetworkEngine: one ShardPool lane per
#                            node advancing fabrics concurrently, spliced
#                            serially (filtered: the config validation and
#                            JSON tests have no threads to race)
#
#   ./scripts/tsan_tests.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-tsan}"

TESTS=(test_sweep test_stats test_transforms_parallel test_fault
       test_shard_engine test_fabric test_serve test_topo)

cmake -B "$BUILD" -G Ninja -S "$ROOT" -DPPS_TSAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" --target "${TESTS[@]}"

# halt_on_error: a single race is a failure, not a warning stream.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

status=0
for t in "${TESTS[@]}"; do
  echo "== tsan: $t =="
  if [ "$t" = test_fabric ]; then
    "$BUILD/tests/$t" --gtest_filter='ShardedDifferential.*' || status=$?
  elif [ "$t" = test_topo ]; then
    "$BUILD/tests/$t" --gtest_filter='NetworkEngine.Threads*' || status=$?
  else
    "$BUILD/tests/$t" || status=$?
  fi
done
exit "$status"
