#!/usr/bin/env bash
# Audited smoke sweep: build the PPS_AUDIT=ON tree (build-audit/, see the
# "audit" CMake preset) and drive a congested-output workload through the
# harness with the model-invariant audit layer armed.
#
# Under PPS_AUDIT every core::RunRelative call constructs an
# InvariantAuditor pair (measured switch + shadow OQ) checking cell
# conservation, per-flow order, line rates, and shadow work conservation
# per slot, and throws sim::SimError if anything fired — so this script
# exiting 0 is a machine-checked statement that the congested-output
# scenario ran with zero invariant violations.
#
#   ./scripts/audit_sweep.sh [build-dir]     # default build-audit/
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-audit}"

cmake -B "$BUILD" -S "$ROOT" -DPPS_AUDIT=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j --target congestion_study quickstart >/dev/null

echo "== audited congested-output sweep (PPS_AUDIT=ON) =="
"$BUILD/examples/congestion_study" 2 8 256 >/dev/null
echo "ok   : congestion_study ran fully audited, zero invariant violations"

echo "== audited uniform-load run (PPS_AUDIT=ON) =="
"$BUILD/examples/quickstart" rr-per-output 0.9 >/dev/null
echo "ok   : quickstart ran fully audited, zero invariant violations"
