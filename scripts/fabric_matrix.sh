#!/usr/bin/env bash
# Fabric-matrix smoke: drive every registered fabric (fabric/registry.h —
# all PPS demux algorithms, the CIOQ scheduler family, the OQ reference,
# the rate-limited OQ) through a short harness run in the PPS_AUDIT=ON
# tree, where every core::RunRelative call arms the InvariantAuditor pair
# and throws on any detector hit.
#
# The matrix itself lives in tests/test_fabric.cc: the registry round-trip
# enumerates RegisteredFabrics() so a newly registered fabric is covered
# automatically, and the golden differential pins the SlotEngine against
# the frozen pre-refactor harness loop byte-for-byte.
#
#   ./scripts/fabric_matrix.sh [build-dir]     # default build-audit/
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-audit}"

cmake -B "$BUILD" -S "$ROOT" -DPPS_AUDIT=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j --target test_fabric >/dev/null

echo "== fabric matrix (every registered fabric, PPS_AUDIT=ON) =="
"$BUILD/tests/test_fabric" \
  --gtest_filter='FabricRegistry.*:FabricCapabilities.*:SlotEngine.*' \
  --gtest_brief=1
echo "ok   : every registered fabric ran audited, zero invariant violations"

echo "== golden differential (SlotEngine vs frozen legacy loop) =="
"$BUILD/tests/test_fabric" --gtest_filter='GoldenDifferential.*' \
  --gtest_brief=1
echo "ok   : RunResults byte-identical to the pre-refactor harness"
