#!/usr/bin/env bash
# Run the memory-safety-sensitive tests under Address + UB sanitizers.
#
# The hot switching paths manage their own storage lifetimes by hand: the
# output mux keeps a vector-backed FIFO with a live head index and a
# binary heap of flow heads, the booked plane calendar is an
# open-addressed ring of recycled buckets, the snapshot ring recycles
# evicted snapshots, and Advance() hands out references into reused
# scratch vectors.  This script builds a dedicated
# -fsanitize=address,undefined tree (build-asan/, see the "asan" CMake
# preset) and runs the tests that exercise those paths hardest:
#
#   test_mux_differential  randomized mux traffic vs. the reference scan
#   test_switch_parts      plane calendar growth, reservation edge slots
#   test_pps_fabric        fabric Advance/snapshot scratch reuse
#   test_fault             plane failure + Reset reuse, harness sweeps
#   test_input_buffered    buffered fabric scratch reuse
#   test_ckpt              checkpoint restore differential: serialize and
#                          rebuild every container mid-flight, then run on
#   test_corruption        adversarial checkpoint bytes: truncations, bit
#                          flips, and CRC-passing payload corruption must
#                          throw SimError, never read out of bounds
#   test_serve             supervisor recovery loop: rotation, fault
#                          injection, corrupt-generation fallback
#   test_topo              network engine: per-link in-flight deques,
#                          per-node scratch reuse across the splice, and
#                          whole-topology checkpoint rebuild mid-flight
#
#   ./scripts/asan_tests.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"

TESTS=(test_mux_differential test_switch_parts test_pps_fabric test_fault
       test_input_buffered test_ckpt test_corruption test_serve test_topo)

cmake -B "$BUILD" -G Ninja -S "$ROOT" -DPPS_ASAN=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" --target "${TESTS[@]}"

# halt_on_error: a single report is a failure, not a warning stream.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

status=0
for t in "${TESTS[@]}"; do
  echo "== asan: $t =="
  "$BUILD/tests/$t" || status=$?
done
exit "$status"
