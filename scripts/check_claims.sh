#!/usr/bin/env bash
# Reproduction gate: greps bench_output.txt for the paper-level claims the
# tables must show.  Run after scripts/run_all.sh (or the manual tee).
#
#   ./scripts/check_claims.sh [bench_output.txt]
set -uo pipefail

OUT="${1:-$(dirname "$0")/../bench_output.txt}"
fail=0

check() {  # description, pattern
  if grep -qE "$2" "$OUT"; then
    echo "ok   : $1"
  else
    echo "FAIL : $1  (pattern: $2)"
    fail=1
  fi
}

[ -f "$OUT" ] || { echo "no bench output at $OUT"; exit 2; }

# Corollary 7: the N = 64, r' = 4 row reaches 189 = (N-1)(r'-1).
check "Corollary 7 worst case at N=64, r'=4" \
      "rr +64 +4 +2\.0 +192 +256 +189 +189"
# CPA: every workload row shows zero RQD and RDJ.
check "CPA zero relative delay (hotspot row)" \
      "hotspot-0\.6 +[0-9]+ +[0-9]+ +0 +0"
# Theorem 12: u = 64 row measured exactly 64.
check "Theorem 12 emulation RQD = u = 64" " 64 +0\.85 +uniform +64 +64 +64"
# Theorem 13: buffer sweep rows all show RQD 31 at N = 32.
check "Theorem 13 buffer-independence (buffer=512)" \
      "buffered-rr +32 +2 +2\.0 +512 +8\.0 +31 +31"
# Theorem 14: the hot output never idles during congestion.
check "Theorem 14 output busy 100%" "ftd-h2 .* 100\.0 +15 +0"
# Scaling headline: N = 1024 fully-distributed worst case (long format).
check "Scaling N=1024 worst case 1023" "rr-per-output +fully-distributed +1024 +1023"
# CCF exact mimicking at speedup 2 (the bench names rows by their
# fabric-registry name, fabric/registry.h).
check "CCF exact OQ mimicking" "cioq/ccf-s2 .* 0 +0\.000 +0"
# Chaos sweep: the zero-lag points lose no cells to stale dispatches,
# while nonzero notification lag makes stale losses appear (bench_fault
# table columns: K flap lag events dropped stranded stale link ...).
check "Chaos: lag=0 point has zero stale dispatches" \
      "^4 +400 +0 +[0-9]+ +[0-9]+ +[0-9]+ +0 +"
# Information vs buffering: emulation row u=16 exactly 16, flat rr at 7.
check "Info-vs-buffering identity line" "^16 +16 +16\.00 .* 7 +0\.27"

# Throughput smoke run: the simulator-throughput sweep must produce a
# cells_per_sec headline in its JSON results (the committed baseline in
# bench_results/bench_sim_throughput.json tracks the mux/plane hot-path
# perf).  The filter matches no google-benchmark, so only the sweep table
# runs — a few seconds, not a full benchmark session.
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH_BIN=""
for d in "$ROOT/build" "$ROOT/build-release"; do
  [ -x "$d/bench/bench_sim_throughput" ] && BENCH_BIN="$d/bench/bench_sim_throughput" && break
done
if [ -n "$BENCH_BIN" ]; then
  SMOKE_DIR="$(mktemp -d)"
  trap 'rm -rf "$SMOKE_DIR"' EXIT
  if PPS_BENCH_RESULTS_DIR="$SMOKE_DIR" \
      "$BENCH_BIN" --benchmark_filter='^$' >/dev/null \
      && grep -q "cells_per_sec" "$SMOKE_DIR/bench_sim_throughput.json"; then
    echo "ok   : bench_sim_throughput smoke run reports cells_per_sec"
  else
    echo "FAIL : bench_sim_throughput smoke run (no cells_per_sec in JSON)"
    fail=1
  fi
else
  echo "skip : bench_sim_throughput not built (build/ or build-release/)"
fi

# House-contract linter: pps_lint must prove its checkers fire on the
# seeded fixtures and then find nothing across the tree.  A missing binary
# is a SKIP, never a silent pass — only -DPPS_LINT_TOOL=OFF builds lack it.
PPS_LINT=""
for d in "$ROOT/build" "$ROOT/build-lint" "$ROOT/build-release"; do
  [ -x "$d/tools/pps_lint/pps_lint" ] \
    && PPS_LINT="$d/tools/pps_lint/pps_lint" && break
done
if [ -n "$PPS_LINT" ]; then
  if "$PPS_LINT" --self-test "$ROOT/tests/lint_fixtures" >/dev/null 2>&1 \
      && "$PPS_LINT" --root "$ROOT" src bench tests tools >/dev/null 2>&1; then
    echo "ok   : pps_lint self-test + clean tree (determinism, ckpt, slots)"
  else
    echo "FAIL : pps_lint (run it with --root . src bench tests tools)"
    fail=1
  fi
else
  echo "skip : pps_lint not built (PPS_LINT_TOOL=OFF?)"
fi

# Static-analysis gate: the committed .clang-tidy + -Werror extended
# warnings plus the pps_lint and clang-format stages must stay clean
# (scripts/lint.sh reuses build-lint/ so repeat runs are incremental;
# stages whose binaries are missing on this machine are skipped there).
if "$ROOT/scripts/lint.sh" >/dev/null 2>&1; then
  echo "ok   : lint gate (scripts/lint.sh) clean"
else
  echo "FAIL : lint gate (run scripts/lint.sh for the findings)"
  fail=1
fi

# Throughput regression gate: the bench_sim_throughput sweep's geomean
# cells_per_sec must stay within 5% of the committed baseline in
# bench_results/bench_sim_throughput.json (best of three runs; non-timing
# fields must match the baseline exactly on every run).
if "$ROOT/scripts/perf_gate.sh" >/dev/null 2>&1; then
  echo "ok   : throughput gate, cells_per_sec within 5% of baseline"
else
  echo "FAIL : throughput gate (run scripts/perf_gate.sh for the numbers)"
  fail=1
fi

# Fabric matrix: every registered fabric (fabric/registry.h) must survive
# a short audited harness run, and the slot engine must stay byte-identical
# to the frozen pre-refactor harness loop (the golden differential).
if "$ROOT/scripts/fabric_matrix.sh" >/dev/null 2>&1; then
  echo "ok   : audited fabric matrix + golden differential"
else
  echo "FAIL : fabric matrix (run scripts/fabric_matrix.sh for details)"
  fail=1
fi

# Topology matrix: multi-hop networks of registered fabrics must drain
# audited (edge conservation, flow order, shadow-OQ work conservation)
# across a Clos scenario x node-fabric grid, with the sharded
# NetworkEngine byte-identical to the serial one.
if "$ROOT/scripts/topo_matrix.sh" >/dev/null 2>&1; then
  echo "ok   : audited topology matrix + sharded network differential"
else
  echo "FAIL : topology matrix (run scripts/topo_matrix.sh for details)"
  fail=1
fi

# Model-invariant audit: a congested-output sweep through the PPS_AUDIT=ON
# tree must finish with zero invariant violations (the audited harness
# throws on any detector hit).
if "$ROOT/scripts/audit_sweep.sh" >/dev/null 2>&1; then
  echo "ok   : audited congested-output sweep, zero invariant violations"
else
  echo "FAIL : audited sweep (run scripts/audit_sweep.sh for details)"
  fail=1
fi

# Checkpoint round-trip: a pps_serve run snapshotted mid-stream and
# resumed must be byte-identical to the uninterrupted run's post-snapshot
# output, two identical runs must write identical checkpoint bytes, and
# the binary trace framing must serve identically to the text format.
if "$ROOT/scripts/ckpt_roundtrip.sh" >/dev/null 2>&1; then
  echo "ok   : checkpoint round-trip, resume byte-identical"
else
  echo "FAIL : checkpoint round-trip (run scripts/ckpt_roundtrip.sh)"
  fail=1
fi

# Serve supervisor: a supervised run killed with SIGKILL mid-stream must
# resume from the surviving checkpoint generations and reproduce the
# uninterrupted run byte-for-byte; with every generation corrupted it
# must refuse to restart from slot 0 and exit with the documented code.
if "$ROOT/scripts/crash_recovery.sh" >/dev/null 2>&1; then
  echo "ok   : kill -9 crash recovery, resume byte-identical"
else
  echo "FAIL : crash recovery (run scripts/crash_recovery.sh)"
  fail=1
fi

# Fault subsystem: the chaos grid (flap storms x notification lag) must
# run under PPS_AUDIT with zero invariant violations and an exactly
# reconciled loss taxonomy on every drained point.
if "$ROOT/scripts/chaos_sweep.sh" >/dev/null 2>&1; then
  echo "ok   : audited chaos sweep, loss taxonomy reconciled exactly"
else
  echo "FAIL : audited chaos sweep (run scripts/chaos_sweep.sh for details)"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "some claims failed — inspect $OUT"
  exit 1
fi
echo "all claims reproduced"
