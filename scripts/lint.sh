#!/usr/bin/env bash
# Static-analysis gate, four stages:
#
#   1. -Werror build with the extended warning set (PPS_EXTRA_WARNINGS;
#      always runs, gcc or clang).  Also builds tools/pps_lint.
#   2. pps_lint — the house-contract checker (checkpoint field coverage,
#      determinism bans, checked slot arithmetic).  Dependency-free, so it
#      always runs: fixture self-test first, then the whole tree.
#   3. clang-tidy over src/ bench/ tests/ tools/ (when a clang-tidy binary
#      is available; fixtures under tests/lint_fixtures are excluded — they
#      are linted by pps_lint, not compiled).
#   4. clang-format --dry-run -Werror over every .h/.cc (when a
#      clang-format binary is available).
#
# The gate passes only if every stage that can run on this machine exits
# clean.  clang-tidy reads the committed .clang-tidy and the
# compile_commands.json exported by any CMake configure of this project;
# containers without the clang tools still get stages 1 and 2, and CI
# runs everything.
#
#   ./scripts/lint.sh [build-dir]        # default build-lint/
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-lint}"
fail=0

echo "== lint: -Werror build with extended warnings =="
if ! cmake -B "$BUILD" -S "$ROOT" -DPPS_WERROR=ON -DPPS_EXTRA_WARNINGS=ON \
     -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null; then
  echo "lint: configure failed" >&2
  exit 2
fi
if ! cmake --build "$BUILD" -j; then
  echo "lint: FAIL (warnings-as-errors build)" >&2
  fail=1
else
  echo "lint: -Werror build clean"
fi

PPS_LINT="$BUILD/tools/pps_lint/pps_lint"
if [ -x "$PPS_LINT" ]; then
  echo "== lint: pps_lint house contracts =="
  if ! "$PPS_LINT" --self-test "$ROOT/tests/lint_fixtures"; then
    echo "lint: FAIL (pps_lint fixture self-test)" >&2
    fail=1
  fi
  if ! "$PPS_LINT" --root "$ROOT" src bench tests tools; then
    echo "lint: FAIL (pps_lint findings above)" >&2
    fail=1
  fi
else
  # Only reachable with -DPPS_LINT_TOOL=OFF; the default build always has
  # the binary, so a missing tool is worth a loud line, not a silent pass.
  echo "== lint: pps_lint not built (PPS_LINT_TOOL=OFF); skipping =="
fi

# Prefer an unversioned clang-tidy, else the newest versioned one.
TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-$v" >/dev/null 2>&1; then
      TIDY="clang-tidy-$v"
      break
    fi
  done
fi

if [ -n "$TIDY" ]; then
  echo "== lint: $TIDY over src/ bench/ tests/ tools/ =="
  mapfile -t SOURCES < <(find "$ROOT/src" "$ROOT/bench" "$ROOT/tests" \
                              "$ROOT/tools" -name '*.cc' \
                              -not -path '*/lint_fixtures/*' | sort)
  # WarningsAsErrors is set in .clang-tidy, so any finding is a failure.
  if ! printf '%s\n' "${SOURCES[@]}" \
       | xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD" --quiet; then
    echo "lint: FAIL (clang-tidy findings above)" >&2
    fail=1
  else
    echo "lint: clang-tidy clean (${#SOURCES[@]} files)"
  fi
else
  echo "== lint: clang-tidy not installed; skipping tidy stage =="
fi

# Prefer an unversioned clang-format, else the newest versioned one.
FORMAT="$(command -v clang-format || true)"
if [ -z "$FORMAT" ]; then
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang-format-$v" >/dev/null 2>&1; then
      FORMAT="clang-format-$v"
      break
    fi
  done
fi

if [ -n "$FORMAT" ]; then
  echo "== lint: $FORMAT --dry-run -Werror =="
  mapfile -t FMT_FILES < <(find "$ROOT/src" "$ROOT/bench" "$ROOT/tests" \
                                "$ROOT/tools" "$ROOT/examples" \
                                \( -name '*.cc' -o -name '*.cpp' \
                                   -o -name '*.h' \) | sort)
  if ! printf '%s\n' "${FMT_FILES[@]}" \
       | xargs -P "$(nproc)" -n 8 "$FORMAT" --dry-run -Werror; then
    echo "lint: FAIL (clang-format drift above)" >&2
    fail=1
  else
    echo "lint: clang-format clean (${#FMT_FILES[@]} files)"
  fi
else
  echo "== lint: clang-format not installed; skipping format stage =="
fi

if [ "$fail" -ne 0 ]; then
  echo "lint gate FAILED"
  exit 1
fi
echo "lint gate passed"
