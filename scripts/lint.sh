#!/usr/bin/env bash
# Static-analysis gate: clang-tidy over src/ bench/ tests/ (when a
# clang-tidy binary is available) plus a -Werror build with the extended
# warning set (PPS_EXTRA_WARNINGS; always runs, gcc or clang).
#
# The gate passes only if every stage that can run on this machine exits
# clean.  clang-tidy reads the committed .clang-tidy and the
# compile_commands.json exported by any CMake configure of this project;
# containers without clang-tidy still get the full -Werror wall, and CI
# runs both.
#
#   ./scripts/lint.sh [build-dir]        # default build-lint/
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-lint}"
fail=0

echo "== lint: -Werror build with extended warnings =="
if ! cmake -B "$BUILD" -S "$ROOT" -DPPS_WERROR=ON -DPPS_EXTRA_WARNINGS=ON \
     -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null; then
  echo "lint: configure failed" >&2
  exit 2
fi
if ! cmake --build "$BUILD" -j; then
  echo "lint: FAIL (warnings-as-errors build)" >&2
  fail=1
else
  echo "lint: -Werror build clean"
fi

# Prefer an unversioned clang-tidy, else the newest versioned one.
TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  for v in 21 20 19 18 17 16 15 14; do
    if command -v "clang-tidy-$v" >/dev/null 2>&1; then
      TIDY="clang-tidy-$v"
      break
    fi
  done
fi

if [ -n "$TIDY" ]; then
  echo "== lint: $TIDY over src/ bench/ tests/ =="
  mapfile -t SOURCES < <(find "$ROOT/src" "$ROOT/bench" "$ROOT/tests" \
                              -name '*.cc' | sort)
  # WarningsAsErrors is set in .clang-tidy, so any finding is a failure.
  if ! printf '%s\n' "${SOURCES[@]}" \
       | xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD" --quiet; then
    echo "lint: FAIL (clang-tidy findings above)" >&2
    fail=1
  else
    echo "lint: clang-tidy clean (${#SOURCES[@]} files)"
  fi
else
  echo "== lint: clang-tidy not installed; skipping tidy stage =="
fi

if [ "$fail" -ne 0 ]; then
  echo "lint gate FAILED"
  exit 1
fi
echo "lint gate passed"
