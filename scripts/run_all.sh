#!/usr/bin/env bash
# Full reproduction run: build, test, and regenerate every experiment
# table.  Outputs land in test_output.txt and bench_output.txt at the repo
# root; every bench also writes structured per-point results to
# bench_results/<bench>.json (see EXPERIMENTS.md for the schema; override
# the directory with PPS_BENCH_RESULTS_DIR).  Set PPS_CSV_DIR to also
# collect machine-readable CSVs of the tables, PPS_SWEEP_WORKERS to pin
# the sweep parallelism.
#
#   ./scripts/run_all.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

cmake -B "$BUILD" -G Ninja -S "$ROOT"
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

export PPS_BENCH_RESULTS_DIR="${PPS_BENCH_RESULTS_DIR:-$ROOT/bench_results}"

: > "$ROOT/bench_output.txt"
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "########## $(basename "$b")" | tee -a "$ROOT/bench_output.txt"
  "$b" --benchmark_min_time=0.01 2>&1 | tee -a "$ROOT/bench_output.txt"
done

echo "done: test_output.txt, bench_output.txt, $PPS_BENCH_RESULTS_DIR/*.json"
