#!/usr/bin/env bash
# Full reproduction run: build, test, and regenerate every experiment
# table.  Outputs land in test_output.txt and bench_output.txt at the repo
# root; set PPS_CSV_DIR to also collect machine-readable CSVs.
#
#   ./scripts/run_all.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

cmake -B "$BUILD" -G Ninja -S "$ROOT"
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "########## $(basename "$b")" | tee -a "$ROOT/bench_output.txt"
  "$b" --benchmark_min_time=0.01 2>&1 | tee -a "$ROOT/bench_output.txt"
done

echo "done: test_output.txt, bench_output.txt"
