#!/usr/bin/env bash
# Topology matrix: multi-hop networks of registered fabrics must survive
# an audited end-to-end run.  Builds the PPS_AUDIT=ON tree (build-audit/,
# shared with fabric_matrix.sh), where topo::NetworkEngine arms its
# edge/shadow InvariantAuditor pair on every run and throws on any
# detector hit, then:
#
#   1. runs the topology contract suite (tests/test_topo: config error
#      paths, JSON round-trip, conservation, checkpoint/resume and
#      threads differentials, forked resume) in the audited tree;
#   2. drives a scenario x node-fabric matrix through tools/pps_topo —
#      3-stage Clos geometries emitted on the fly for each registered
#      fabric family plus the committed examples/topologies/clos3.json —
#      requiring every point to drain with zero drops;
#   3. pins the sharded NetworkEngine: --threads=4 JSON output must be
#      byte-identical to --threads=1 on the committed scenario.
#
#   ./scripts/topo_matrix.sh [build-dir]     # default build-audit/
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-audit}"

cmake -B "$BUILD" -S "$ROOT" -DPPS_AUDIT=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j --target test_topo pps_topo >/dev/null

echo "== topology contracts (audited tree) =="
"$BUILD/tests/test_topo" --gtest_brief=1
echo "ok   : topology contract suite green under PPS_AUDIT"

PPS_TOPO="$BUILD/tools/pps_topo"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== scenario x fabric matrix (audited end-to-end runs) =="
run_point() {  # scenario-file, label
  local out
  out="$("$PPS_TOPO" --scenario="$1" --source-cutoff=2000 --json=1)"
  if echo "$out" | grep -q '"drained":true' \
      && echo "$out" | grep -q '"dropped":0,'; then
    echo "ok   : $2 drained with zero drops"
  else
    echo "FAIL : $2"
    echo "$out"
    return 1
  fi
}

for fabric in cioq/islip-s2 cioq/oldest-s2 cioq/qps-r-s2 \
              pps/rr-per-output pps/stale-jsq-u4; do
  for geom in 2x2x2 4x2x2; do
    file="$TMP/$(echo "$fabric-$geom" | tr '/' '_').json"
    "$PPS_TOPO" --emit-clos="$geom" --fabric="$fabric" > "$file"
    run_point "$file" "clos3 $geom $fabric"
  done
done
run_point "$ROOT/examples/topologies/clos3.json" "committed clos3.json"

echo "== sharded NetworkEngine differential (threads=4 vs 1) =="
"$PPS_TOPO" --scenario="$ROOT/examples/topologies/clos3.json" \
  --source-cutoff=2000 --threads=1 --json=1 > "$TMP/t1.json"
"$PPS_TOPO" --scenario="$ROOT/examples/topologies/clos3.json" \
  --source-cutoff=2000 --threads=4 --json=1 > "$TMP/t4.json"
cmp "$TMP/t1.json" "$TMP/t4.json"
echo "ok   : threads=4 byte-identical to threads=1"
