#!/usr/bin/env bash
# Checkpoint round-trip gate: the engine's hard guarantee, end to end
# through the tools.
#
# A windowed pps_serve run snapshotted at slot S and then resumed must
# reproduce the uninterrupted run's post-snapshot window rows and summary
# byte-for-byte, and two identical saving runs must write byte-identical
# checkpoint files (the canonical-bytes rule from ckpt/serializer.h).
# Also exercises the binary trace framing: serving the --pack-trace'd
# trace must produce output identical to serving the text trace.
#
#   ./scripts/ckpt_roundtrip.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

BUILD="${1:-}"
if [ -z "$BUILD" ]; then
  for d in "$ROOT/build" "$ROOT/build-release"; do
    [ -x "$d/tools/pps_serve" ] && BUILD="$d" && break
  done
fi
SERVE="$BUILD/tools/pps_serve"
TRACE_TOOLS="$BUILD/examples/trace_tools"
[ -x "$SERVE" ] || { echo "pps_serve not built at $SERVE"; exit 2; }
[ -x "$TRACE_TOOLS" ] || { echo "trace_tools not built at $TRACE_TOOLS"; exit 2; }

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# A lightly loaded random trace long enough to straddle the snapshot.
"$TRACE_TOOLS" gen-random 8 0.7 400 11 "$DIR/cells.trace" >/dev/null

# Window = 32 divides the snapshot slot S = 128, so the interrupted run
# ends exactly on a window boundary (no partial row to reconcile).
COMMON=(--fabric=pps/rr-per-output --trace="$DIR/cells.trace" \
        --ports=8 --planes=4 --rate-ratio=2 --window=32 --drain-grace=200)

# Golden: uninterrupted.
"$SERVE" "${COMMON[@]}" >"$DIR/golden.jsonl"

# Interrupted at S = 128 (twice: checkpoint bytes must be canonical).
"$SERVE" "${COMMON[@]}" --max-slots=128 --checkpoint-every=128 \
         --checkpoint="$DIR/run_a.ckpt" >"$DIR/save.jsonl"
"$SERVE" "${COMMON[@]}" --max-slots=128 --checkpoint-every=128 \
         --checkpoint="$DIR/run_b.ckpt" >/dev/null
cmp -s "$DIR/run_a.ckpt" "$DIR/run_b.ckpt" || {
  echo "FAIL: two identical runs wrote different checkpoint bytes"
  exit 1
}

# Resumed: must emit exactly the golden rows after the snapshot, then the
# golden summary — byte-identical lines.
"$SERVE" "${COMMON[@]}" --resume="$DIR/run_a.ckpt" >"$DIR/resumed.jsonl"
ROWS_BEFORE="$(grep -c '"kind":"window"' "$DIR/save.jsonl")"
tail -n +"$((ROWS_BEFORE + 1))" "$DIR/golden.jsonl" >"$DIR/golden_tail.jsonl"
cmp -s "$DIR/golden_tail.jsonl" "$DIR/resumed.jsonl" || {
  echo "FAIL: resumed run diverged from the uninterrupted run"
  diff "$DIR/golden_tail.jsonl" "$DIR/resumed.jsonl" | head -20
  exit 1
}

# Binary framing: a packed trace serves identically to the text trace.
"$SERVE" --pack-trace="$DIR/cells.trace" --out="$DIR/cells.btrace" \
         2>/dev/null
"$SERVE" --fabric=pps/rr-per-output --trace="$DIR/cells.btrace" \
         --ports=8 --planes=4 --rate-ratio=2 --window=32 \
         --drain-grace=200 >"$DIR/binary.jsonl"
cmp -s "$DIR/golden.jsonl" "$DIR/binary.jsonl" || {
  echo "FAIL: binary-framed trace produced different service output"
  exit 1
}

echo "checkpoint round-trip gate: resume byte-identical, bytes canonical"
