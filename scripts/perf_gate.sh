#!/usr/bin/env bash
# Throughput regression gate, two rows:
#
#   1. bench_sim_throughput — run the sweep (table only — the
#      google-benchmark filter matches nothing) and compare the
#      geometric-mean cells_per_sec against the committed baseline in
#      bench_results/bench_sim_throughput.json.  Fails when the geomean
#      drops more than the threshold below baseline.
#   2. bench_scaling_cores — run the engine-shard scaling sweep.  The
#      binary itself hard-fails unless forced-shard runs reproduce the
#      serial RunResult bit-for-bit; the gate then checks that every
#      non-timing field matches the committed baseline AND is identical
#      across thread counts, and — on machines with >= 8 cores — that
#      threads=8 reaches the scaling floor (default 4x) over threads=1.
#      Small machines skip the speedup check (the thread budget clamps
#      the pool there, so ~1x is the correct answer, not a regression).
#
# Timing on shared runners is noisy, so both gates take the best of
# ATTEMPTS runs before declaring a regression; non-timing fields must
# match the baseline byte-for-byte on every attempt (the sweep
# determinism contract — a behavior change is never retried away).
#
#   ./scripts/perf_gate.sh [build-dir]     # default build/
#   PERF_GATE_THRESHOLD=0.95 PERF_GATE_ATTEMPTS=3 ./scripts/perf_gate.sh
#   PERF_GATE_SCALING=4.0                  # threads=8 speedup floor
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
BASELINE="$ROOT/bench_results/bench_sim_throughput.json"
SCALING_BASELINE="$ROOT/bench_results/bench_scaling_cores.json"
THRESHOLD="${PERF_GATE_THRESHOLD:-0.95}"
ATTEMPTS="${PERF_GATE_ATTEMPTS:-3}"
SCALING_MIN="${PERF_GATE_SCALING:-4.0}"

BIN="$BUILD/bench/bench_sim_throughput"
SCALING_BIN="$BUILD/bench/bench_scaling_cores"
if [ ! -x "$BIN" ] || [ ! -x "$SCALING_BIN" ]; then
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$BUILD" -j --target bench_sim_throughput \
    bench_scaling_cores >/dev/null
fi
[ -f "$BASELINE" ] || { echo "no baseline at $BASELINE"; exit 2; }
[ -f "$SCALING_BASELINE" ] || {
  echo "no baseline at $SCALING_BASELINE"; exit 2; }

# ---- row 1: serial hot-path throughput vs committed baseline ----------

throughput_ok=0
best_ratio="0"
for attempt in $(seq 1 "$ATTEMPTS"); do
  RUN_DIR="$(mktemp -d)"
  trap 'rm -rf "$RUN_DIR"' EXIT
  PPS_BENCH_RESULTS_DIR="$RUN_DIR" "$BIN" --benchmark_filter='^$' >/dev/null

  ratio="$(python3 - "$BASELINE" "$RUN_DIR/bench_sim_throughput.json" <<'EOF'
import json
import math
import sys

base = json.load(open(sys.argv[1]))["points"]
run = json.load(open(sys.argv[2]))["points"]
if len(base) != len(run):
    sys.exit(f"point count changed: baseline {len(base)} vs run {len(run)}"
             " — refresh the committed baseline")
for b, r in zip(base, run):
    for key in ("params", "bound", "measured", "jitter", "cells", "slots"):
        if b[key] != r[key]:
            sys.exit(f"non-timing field {key!r} diverged at {b['params']}: "
                     f"baseline {b[key]} vs run {r[key]} — the sweep is no "
                     "longer behavior-identical; refresh the baseline "
                     "deliberately")


def geomean(points):
    rates = [p["cells_per_sec"] for p in points]
    return math.exp(sum(math.log(r) for r in rates) / len(rates))


print(f"{geomean(run) / geomean(base):.4f}")
EOF
)" || { echo "FAIL : $ratio"; exit 1; }

  echo "attempt $attempt/$ATTEMPTS: cells_per_sec geomean ratio $ratio (vs baseline)"
  best_ratio="$(python3 -c "print(max($best_ratio, $ratio))")"
  if python3 -c "import sys; sys.exit(0 if $best_ratio >= $THRESHOLD else 1)"; then
    echo "ok   : throughput within gate (best ratio $best_ratio >= $THRESHOLD)"
    throughput_ok=1
    break
  fi
done

if [ "$throughput_ok" != 1 ]; then
  echo "FAIL : cells_per_sec geomean regressed (best ratio $best_ratio < $THRESHOLD)"
  exit 1
fi

# ---- row 2: engine shard scaling -------------------------------------

CORES="$(nproc 2>/dev/null || echo 1)"
scaling_ok=0
best_speedup="0"
for attempt in $(seq 1 "$ATTEMPTS"); do
  RUN_DIR="$(mktemp -d)"
  trap 'rm -rf "$RUN_DIR"' EXIT
  # The binary exits nonzero if the forced-shard determinism probe fails.
  PPS_BENCH_RESULTS_DIR="$RUN_DIR" "$SCALING_BIN" \
    --benchmark_filter='^$' >/dev/null

  speedup="$(python3 - "$SCALING_BASELINE" \
    "$RUN_DIR/bench_scaling_cores.json" <<'EOF'
import json
import sys

base = json.load(open(sys.argv[1]))["points"]
run = json.load(open(sys.argv[2]))["points"]
if len(base) != len(run):
    sys.exit(f"point count changed: baseline {len(base)} vs run {len(run)}"
             " — refresh the committed baseline")
first = run[0]
for b, r in zip(base, run):
    for key in ("params", "bound", "measured", "jitter", "cells", "slots"):
        if b[key] != r[key]:
            sys.exit(f"non-timing field {key!r} diverged at {b['params']}: "
                     f"baseline {b[key]} vs run {r[key]} — refresh the "
                     "baseline deliberately")
    # Every thread count must simulate the identical run.
    for key in ("bound", "measured", "jitter", "cells", "slots"):
        if first[key] != r[key]:
            sys.exit(f"thread counts disagree on {key!r}: "
                     f"threads={first['params']['threads']} -> {first[key]} "
                     f"vs threads={r['params']['threads']} -> {r[key]} — "
                     "the shard pipeline is not deterministic")
eight = [p for p in run if p["params"]["threads"] == 8]
if not eight:
    sys.exit("no threads=8 point in the scaling sweep")
print(f"{eight[0]['speedup']:.4f}")
EOF
)" || { echo "FAIL : $speedup"; exit 1; }

  if [ "$CORES" -lt 8 ]; then
    echo "ok   : shard determinism + baseline fields verified; skipping the"
    echo "       ${SCALING_MIN}x speedup floor ($CORES cores < 8 — the thread"
    echo "       budget clamps the pool, so speedup is not meaningful here)"
    scaling_ok=1
    break
  fi

  echo "attempt $attempt/$ATTEMPTS: threads=8 speedup ${speedup}x (floor ${SCALING_MIN}x)"
  best_speedup="$(python3 -c "print(max($best_speedup, $speedup))")"
  if python3 -c "import sys; sys.exit(0 if $best_speedup >= $SCALING_MIN else 1)"; then
    echo "ok   : shard scaling within gate (best ${best_speedup}x >= ${SCALING_MIN}x)"
    scaling_ok=1
    break
  fi
done

if [ "$scaling_ok" != 1 ]; then
  echo "FAIL : threads=8 shard speedup below floor (best ${best_speedup}x < ${SCALING_MIN}x on $CORES cores)"
  exit 1
fi
