#!/usr/bin/env bash
# Throughput regression gate: run the bench_sim_throughput sweep (table
# only — the google-benchmark filter matches nothing) and compare the
# geometric-mean cells_per_sec against the committed baseline in
# bench_results/bench_sim_throughput.json.  Fails when the geomean drops
# more than the threshold below baseline.
#
# Timing on shared runners is noisy, so the gate takes the best of
# ATTEMPTS runs before declaring a regression; non-timing fields must
# match the baseline byte-for-byte on every attempt (the sweep
# determinism contract — a behavior change is never retried away).
#
#   ./scripts/perf_gate.sh [build-dir]     # default build/
#   PERF_GATE_THRESHOLD=0.95 PERF_GATE_ATTEMPTS=3 ./scripts/perf_gate.sh
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"
BASELINE="$ROOT/bench_results/bench_sim_throughput.json"
THRESHOLD="${PERF_GATE_THRESHOLD:-0.95}"
ATTEMPTS="${PERF_GATE_ATTEMPTS:-3}"

BIN="$BUILD/bench/bench_sim_throughput"
if [ ! -x "$BIN" ]; then
  cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$BUILD" -j --target bench_sim_throughput >/dev/null
fi
[ -f "$BASELINE" ] || { echo "no baseline at $BASELINE"; exit 2; }

best_ratio="0"
for attempt in $(seq 1 "$ATTEMPTS"); do
  RUN_DIR="$(mktemp -d)"
  trap 'rm -rf "$RUN_DIR"' EXIT
  PPS_BENCH_RESULTS_DIR="$RUN_DIR" "$BIN" --benchmark_filter='^$' >/dev/null

  ratio="$(python3 - "$BASELINE" "$RUN_DIR/bench_sim_throughput.json" <<'EOF'
import json
import math
import sys

base = json.load(open(sys.argv[1]))["points"]
run = json.load(open(sys.argv[2]))["points"]
if len(base) != len(run):
    sys.exit(f"point count changed: baseline {len(base)} vs run {len(run)}"
             " — refresh the committed baseline")
for b, r in zip(base, run):
    for key in ("params", "bound", "measured", "jitter", "cells", "slots"):
        if b[key] != r[key]:
            sys.exit(f"non-timing field {key!r} diverged at {b['params']}: "
                     f"baseline {b[key]} vs run {r[key]} — the sweep is no "
                     "longer behavior-identical; refresh the baseline "
                     "deliberately")


def geomean(points):
    rates = [p["cells_per_sec"] for p in points]
    return math.exp(sum(math.log(r) for r in rates) / len(rates))


print(f"{geomean(run) / geomean(base):.4f}")
EOF
)" || { echo "FAIL : $ratio"; exit 1; }

  echo "attempt $attempt/$ATTEMPTS: cells_per_sec geomean ratio $ratio (vs baseline)"
  best_ratio="$(python3 -c "print(max($best_ratio, $ratio))")"
  if python3 -c "import sys; sys.exit(0 if $best_ratio >= $THRESHOLD else 1)"; then
    echo "ok   : throughput within gate (best ratio $best_ratio >= $THRESHOLD)"
    exit 0
  fi
done

echo "FAIL : cells_per_sec geomean regressed (best ratio $best_ratio < $THRESHOLD)"
exit 1
