#!/usr/bin/env bash
# Audited chaos sweep: build the PPS_AUDIT=ON tree (build-audit/, see the
# "audit" CMake preset) and run the bench_fault chaos grid — plane flap
# storms x failure-notification lag x plane count, with a flaky-link
# window — through the fully audited harness.
#
# Under PPS_AUDIT every core::RunRelative call arms an InvariantAuditor
# pair (measured switch + shadow OQ) and additionally reconciles the loss
# taxonomy: on a drained run the per-category fabric counters (stranded
# cells, stale dispatches, link drops, input drops, overflows) must sum
# exactly to the harness's reconciled drop count, or the run throws
# sim::SimError.  This script exiting 0 is therefore a machine-checked
# statement that a nontrivial FaultSchedule ran with zero invariant
# violations and an exactly-reconciled loss ledger.
#
#   ./scripts/chaos_sweep.sh [build-dir]     # default build-audit/
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-audit}"

cmake -B "$BUILD" -S "$ROOT" -DPPS_AUDIT=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j --target bench_fault >/dev/null

echo "== audited chaos sweep (PPS_AUDIT=ON, bench_fault grid) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
# Filter matches no google-benchmark: only the sweep grid runs.
PPS_BENCH_RESULTS_DIR="$SMOKE_DIR" \
  "$BUILD/bench/bench_fault" --benchmark_filter='^$'

JSON="$SMOKE_DIR/bench_fault.json"
for key in stale_dispatches stranded_cells link_drops cells_per_sec; do
  grep -q "\"$key\"" "$JSON" || {
    echo "FAIL : chaos sweep JSON is missing \"$key\""
    exit 1
  }
done
echo "ok   : chaos grid ran fully audited — zero invariant violations,"
echo "       loss taxonomy reconciled exactly on every drained point"
