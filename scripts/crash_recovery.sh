#!/usr/bin/env bash
# Crash-recovery gate: the self-healing serve loop, end to end through a
# real SIGKILL.
#
# A supervised pps_serve run is killed with -9 mid-stream (no signal
# handler runs, no final checkpoint goes out — exactly a host crash).
# Restarting the same command must rescan the surviving checkpoint
# generations, resume from the newest valid one, and finish the run; the
# crashed run's rows up to the resume point plus the resumed run's output
# must be byte-identical to an uninterrupted golden run.  Finally,
# corrupting every surviving generation must make the restart fail loudly
# with the documented exit code 5 (generations exist, none validates) —
# never resume from bad bytes.
#
#   ./scripts/crash_recovery.sh [build-dir]
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

BUILD="${1:-}"
if [ -z "$BUILD" ]; then
  for d in "$ROOT/build" "$ROOT/build-release"; do
    [ -x "$d/tools/pps_serve" ] && BUILD="$d" && break
  done
fi
SERVE="$BUILD/tools/pps_serve"
[ -x "$SERVE" ] || { echo "pps_serve not built at $SERVE"; exit 2; }

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

# A deterministic heavy-tailed workload long enough that the kill lands
# mid-run (seeded MMPP: the golden and the crashed+resumed runs see the
# same arrival stream without a multi-megabyte trace file).
COMMON=(--fabric=pps/rr-per-output --source=mmpp --load=0.6 --seed=42
        --ports=8 --planes=4 --rate-ratio=2 --window=16384
        --max-slots=3000000 --source-cutoff=2900000 --drain-grace=50000)
SUPERVISED=("${COMMON[@]}" --supervise=1 --checkpoint-every=32768
            --checkpoint="$DIR/run.ckpt" --keep-checkpoints=3
            --max-retries=2)

# Golden: the same workload, uninterrupted and unsupervised.
"$SERVE" "${COMMON[@]}" >"$DIR/golden.jsonl" 2>/dev/null || {
  echo "FAIL: golden run failed"; exit 1
}

# Crash leg: kill -9 once the run has emitted a window row and rotated at
# least one checkpoint generation to disk.
"$SERVE" "${SUPERVISED[@]}" >"$DIR/crash.jsonl" 2>"$DIR/crash.log" &
PID=$!
for _ in $(seq 1 500); do
  if grep -q '"kind":"window"' "$DIR/crash.jsonl" 2>/dev/null \
      && ls "$DIR"/run.ckpt.g???????? >/dev/null 2>&1; then
    break
  fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.02
done
if ! kill -0 "$PID" 2>/dev/null; then
  echo "FAIL: supervised run finished before the kill landed (tune the"
  echo "      workload length up)"; wait "$PID"; exit 1
fi
kill -9 "$PID"
wait "$PID" 2>/dev/null
ls "$DIR"/run.ckpt.g???????? >/dev/null 2>&1 || {
  echo "FAIL: no checkpoint generation survived the crash"; exit 1
}

# Recovery leg: the same command again.  The supervisor must rescan the
# generation files, resume, and complete with exit code 0.
"$SERVE" "${SUPERVISED[@]}" >"$DIR/resume.jsonl" 2>"$DIR/resume.log"
code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL: restarted run exited $code (want 0)"
  tail -5 "$DIR/resume.log"; exit 1
fi
# Merge: the resumed run replays from its checkpoint, so it re-emits every
# window row from the resume point on.  The crashed run's rows BEFORE that
# point, plus the resumed output, must reproduce the golden run exactly.
R0="$(grep -m1 '"kind":"window"' "$DIR/resume.jsonl" \
      | sed 's/.*"index":\([0-9]*\).*/\1/')"
[ -n "$R0" ] || { echo "FAIL: resumed run emitted no window rows"; exit 1; }
if [ "$R0" -eq 0 ]; then
  echo "FAIL: restarted run began at window 0 — it restarted from scratch"
  echo "      instead of resuming from a checkpoint generation"
  exit 1
fi
awk -v r0="$R0" '/"kind":"window"/ {
  line = $0
  sub(/.*"index":/, "", line); sub(/[^0-9].*/, "", line)
  if (line + 0 < r0 + 0) print
}' "$DIR/crash.jsonl" >"$DIR/merged.jsonl"
cat "$DIR/resume.jsonl" >>"$DIR/merged.jsonl"
cmp -s "$DIR/golden.jsonl" "$DIR/merged.jsonl" || {
  echo "FAIL: crashed+resumed output diverged from the golden run"
  diff "$DIR/golden.jsonl" "$DIR/merged.jsonl" | head -20
  exit 1
}

# Poisoned-generations leg: flip a byte inside every surviving generation.
# The restart must refuse to resume from any of them and exit with the
# documented code 5 — silent resumption from corrupt state is the one
# unforgivable outcome.
for g in "$DIR"/run.ckpt.g????????; do
  printf '\xff' | dd of="$g" bs=1 seek=100 count=1 conv=notrunc 2>/dev/null
done
"$SERVE" "${SUPERVISED[@]}" >/dev/null 2>"$DIR/corrupt.log"
code=$?
if [ "$code" -ne 5 ]; then
  echo "FAIL: all-generations-corrupt restart exited $code (want 5)"
  tail -5 "$DIR/corrupt.log"; exit 1
fi

echo "crash_recovery: kill -9 resume byte-identical; corrupt gens exit 5"
