// Bounded trace of simulator events, for debugging and for the examples
// that print the proof scenarios (e.g. the Theorem-6 alignment phases of
// Figure 2) in a human-readable form.
#pragma once

#include <deque>
#include <ostream>
#include <string>

#include "sim/cell.h"
#include "sim/types.h"

namespace sim {

enum class EventKind {
  kArrival,     // cell entered the switch at an input port
  kDispatch,    // demultiplexor launched the cell to a plane
  kBuffered,    // cell held in an input buffer (input-buffered PPS)
  kPlaneSend,   // plane started transmitting the cell to its output port
  kDeparture,   // cell left the switch
  kDrop,        // cell dropped (never expected; audited by tests)
  kNote,        // free-form annotation from an adversary/experiment
};

const char* ToString(EventKind kind);

struct Event {
  Slot slot = kNoSlot;
  EventKind kind = EventKind::kNote;
  CellId cell = 0;
  PortId input = kNoPort;
  PortId output = kNoPort;
  PlaneId plane = kNoPlane;
  std::string note;
};

std::ostream& operator<<(std::ostream& os, const Event& e);

// Ring buffer of the most recent `capacity` events.  Disabled (capacity 0)
// by default so the hot path pays only a branch.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 0) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  void set_capacity(std::size_t capacity);

  void Push(Event e);
  void Note(Slot slot, std::string text);

  const std::deque<Event>& events() const { return events_; }
  void Clear() { events_.clear(); }

  // Renders all retained events, one per line.
  std::string Dump() const;

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
};

}  // namespace sim
