#include "sim/rng.h"

#include <cmath>

#include "sim/error.h"

namespace sim {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  SIM_CHECK(bound > 0, "UniformInt bound must be positive");
  // Lemire's method: multiply-shift with rejection of the biased window.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::uint64_t Rng::Geometric(double p) {
  SIM_CHECK(p > 0.0 && p <= 1.0, "Geometric requires p in (0,1]");
  if (p == 1.0) return 0;
  const double u = UniformDouble();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

Rng Rng::Fork(std::uint64_t salt) {
  std::uint64_t s = state_[0] ^ Rotl(state_[3], 13) ^ (salt * 0xd1342543de82ef95ull);
  Rng child(0);
  for (auto& word : child.state_) word = SplitMix64(s);
  // Advance self so successive forks with equal salts still differ.
  (void)Next();
  return child;
}

}  // namespace sim
