#include "sim/timeseries.h"

#include <algorithm>

#include "sim/error.h"

namespace sim {

void TimeSeries::Record(Slot t, std::int64_t value) {
  SIM_CHECK(points_.empty() || t > points_.back().slot,
            "time series slots must be strictly increasing");
  points_.push_back({t, value});
}

Slot TimeSeries::first_slot() const {
  SIM_CHECK(!points_.empty(), "empty time series");
  return points_.front().slot;
}

Slot TimeSeries::last_slot() const {
  SIM_CHECK(!points_.empty(), "empty time series");
  return points_.back().slot;
}

std::int64_t TimeSeries::Max() const {
  SIM_CHECK(!points_.empty(), "empty time series");
  std::int64_t best = points_.front().value;
  for (const Point& p : points_) best = std::max(best, p.value);
  return best;
}

std::int64_t TimeSeries::Min() const {
  SIM_CHECK(!points_.empty(), "empty time series");
  std::int64_t best = points_.front().value;
  for (const Point& p : points_) best = std::min(best, p.value);
  return best;
}

double TimeSeries::Mean() const {
  SIM_CHECK(!points_.empty(), "empty time series");
  double sum = 0;
  for (const Point& p : points_) sum += static_cast<double>(p.value);
  return sum / static_cast<double>(points_.size());
}

std::int64_t TimeSeries::ValueAt(Slot t) const {
  SIM_CHECK(!points_.empty() && points_.front().slot <= t,
            "no sample at or before slot " << t);
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](Slot slot, const Point& p) {
                               return slot < p.slot;
                             });
  return std::prev(it)->value;
}

std::vector<TimeSeries::Bucket> TimeSeries::Buckets(int count) const {
  SIM_CHECK(count >= 1, "need at least one bucket");
  std::vector<Bucket> buckets;
  if (points_.empty()) return buckets;
  const Slot lo = first_slot();
  const Slot hi = last_slot() + 1;
  const Slot width =
      std::max<Slot>(1, (SlotDifference(hi, lo) + count - 1) / count);
  buckets.reserve(static_cast<std::size_t>(count));
  std::size_t cursor = 0;
  for (Slot from = lo; from < hi; from += width) {
    Bucket b;
    b.from = from;
    b.to = std::min(hi, SlotPlus(from, width));
    double sum = 0;
    while (cursor < points_.size() && points_[cursor].slot < b.to) {
      const std::int64_t v = points_[cursor].value;
      if (b.samples == 0) {
        b.min = b.max = v;
      } else {
        b.min = std::min(b.min, v);
        b.max = std::max(b.max, v);
      }
      sum += static_cast<double>(v);
      ++b.samples;
      ++cursor;
    }
    if (b.samples > 0) b.mean = sum / static_cast<double>(b.samples);
    buckets.push_back(b);
  }
  return buckets;
}

}  // namespace sim
