#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace sim {

void OnlineStats::Add(std::int64_t x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double dx = static_cast<double>(x) - mean_;
  mean_ += dx / static_cast<double>(count_);
  m2_ += dx * (static_cast<double>(x) - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::Reset() { *this = OnlineStats{}; }

void OnlineStats::SaveState(ckpt::Writer& w) const {
  w.Marker("STAT");
  w.Size(count_);
  w.Double(mean_);
  w.Double(m2_);
  w.I64(min_);
  w.I64(max_);
  w.I64(sum_);
}

void OnlineStats::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("STAT");
  count_ = r.Size();
  mean_ = r.Double();
  m2_ = r.Double();
  min_ = r.I64();
  max_ = r.I64();
  sum_ = r.I64();
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

std::string OnlineStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min_ << " max=" << max_;
  return os.str();
}

QuantileSketch::QuantileSketch(const QuantileSketch& other) {
  std::lock_guard<std::mutex> lock(other.sort_mutex_);
  samples_ = other.samples_;
  sorted_ = other.sorted_;
}

QuantileSketch& QuantileSketch::operator=(const QuantileSketch& other) {
  if (this == &other) return *this;
  std::vector<std::int64_t> samples;
  bool sorted;
  {
    std::lock_guard<std::mutex> lock(other.sort_mutex_);
    samples = other.samples_;
    sorted = other.sorted_;
  }
  std::lock_guard<std::mutex> lock(sort_mutex_);
  samples_ = std::move(samples);
  sorted_ = sorted;
  return *this;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  if (&other == this) {
    // Self-merge doubles the sample set; copy first so the append cannot
    // invalidate its own source range.
    std::vector<std::int64_t> copy = samples_;
    samples_.insert(samples_.end(), copy.begin(), copy.end());
  } else {
    std::lock_guard<std::mutex> lock(other.sort_mutex_);
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }
  sorted_ = samples_.size() < 2;
}

std::int64_t QuantileSketch::Quantile(double q) const {
  SIM_CHECK(!samples_.empty(), "Quantile of empty sketch");
  SIM_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range: " << q);
  {
    std::lock_guard<std::mutex> lock(sort_mutex_);
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  const auto n = samples_.size();
  auto rank = static_cast<std::size_t>(q * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  return samples_[rank];
}

}  // namespace sim
