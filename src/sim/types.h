// Fundamental scalar types shared by every module of the PPS reproduction.
//
// The formal model of Attiya & Hay (SPAA 2004), Section 2, is slot
// synchronous: "cells arrive to the switch and leave it in discrete
// time-slots", where a time slot is the time to transmit one cell at the
// external rate R.  Everything in this library is expressed in those units.
#pragma once

#include <cstdint>
#include <limits>

namespace sim {

// Discrete time, in units of one external-line cell time (a "time slot").
// Signed so that "slot - delay" arithmetic and sentinel values are safe.
using Slot = std::int64_t;

// Sentinel for "no slot" / "never".
inline constexpr Slot kNoSlot = std::numeric_limits<Slot>::min();

// Port and plane indices.  An N x N PPS has inputs/outputs in [0, N) and
// planes (middle-stage switches) in [0, K).
using PortId = std::int32_t;
using PlaneId = std::int32_t;

// Sentinel plane id meaning "keep the cell in the input buffer" (the
// bottom element in Definition 2 of the paper).
inline constexpr PlaneId kNoPlane = -1;

// Sentinel port id.
inline constexpr PortId kNoPort = -1;

// Globally unique cell identifier (assigned in injection order).
using CellId = std::uint64_t;

// A flow is the stream of cells from one input port to one output port
// ("cells arrive to the switch as a collection of flows from one input port
// to the same output-port").  Encoded as input * N + output by FlowKey.
using FlowId = std::uint64_t;

// Builds the canonical flow id for a (input, output) pair in an N-port
// switch.
constexpr FlowId MakeFlowId(PortId input, PortId output, PortId num_ports) {
  return static_cast<FlowId>(input) * static_cast<FlowId>(num_ports) +
         static_cast<FlowId>(output);
}

}  // namespace sim
