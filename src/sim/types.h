// Fundamental scalar types shared by every module of the PPS reproduction.
//
// The formal model of Attiya & Hay (SPAA 2004), Section 2, is slot
// synchronous: "cells arrive to the switch and leave it in discrete
// time-slots", where a time slot is the time to transmit one cell at the
// external rate R.  Everything in this library is expressed in those units.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>

namespace sim {

// Discrete time, in units of one external-line cell time (a "time slot").
// Signed so that "slot - delay" arithmetic and sentinel values are safe.
using Slot = std::int64_t;

// Sentinel for "no slot" / "never".
inline constexpr Slot kNoSlot = std::numeric_limits<Slot>::min();

// Port and plane indices.  An N x N PPS has inputs/outputs in [0, N) and
// planes (middle-stage switches) in [0, K).
using PortId = std::int32_t;
using PlaneId = std::int32_t;

// Sentinel plane id meaning "keep the cell in the input buffer" (the
// bottom element in Definition 2 of the paper).
inline constexpr PlaneId kNoPlane = -1;

// Sentinel port id.
inline constexpr PortId kNoPort = -1;

// Globally unique cell identifier (assigned in injection order).
using CellId = std::uint64_t;

// A flow is the stream of cells from one input port to one output port
// ("cells arrive to the switch as a collection of flows from one input port
// to the same output-port").  Encoded as input * N + output by FlowKey.
using FlowId = std::uint64_t;

// Builds the canonical flow id for a (input, output) pair in an N-port
// switch.  Sentinels (kNoPort) and out-of-range ports have no flow id:
// casting a negative PortId to the unsigned FlowId would silently wrap to
// a garbage id that collides with real flows, so debug builds assert.
constexpr FlowId MakeFlowId(PortId input, PortId output, PortId num_ports) {
  assert(num_ports > 0 && input >= 0 && input < num_ports && output >= 0 &&
         output < num_ports);
  return static_cast<FlowId>(input) * static_cast<FlowId>(num_ports) +
         static_cast<FlowId>(output);
}

// True iff `s` is a real slot (not the kNoSlot sentinel).
constexpr bool IsSlot(Slot s) { return s != kNoSlot; }

// Checked slot arithmetic.  kNoSlot is int64 min, so expressions like
// `slot - delay` or `kNoSlot - 1` on a sentinel are signed overflow —
// undefined behaviour that UBSan traps and optimizers may exploit.  These
// helpers assert (debug builds) that no operand is a sentinel before doing
// plain arithmetic; use them anywhere an operand *could* be unset.
constexpr Slot SlotDifference(Slot a, Slot b) {
  assert(IsSlot(a) && IsSlot(b));
  return a - b;
}

constexpr Slot SlotPlus(Slot s, std::int64_t delta) {
  assert(IsSlot(s));
  return s + delta;
}

// Overflow-checked variant of SlotPlus for untrusted or long-horizon
// inputs (e.g. traffic::Trace::Append shifting a trace by a caller-chosen
// offset): returns false — instead of wrapping, which is UB — when the sum
// overflows Slot or lands on the kNoSlot sentinel.  On success stores the
// sum in *out.
constexpr bool CheckedSlotPlus(Slot s, std::int64_t delta, Slot* out) {
  if (!IsSlot(s)) return false;
  Slot sum = 0;
  if (__builtin_add_overflow(s, delta, &sum)) return false;
  if (!IsSlot(sum)) return false;
  *out = sum;
  return true;
}

}  // namespace sim
