// Per-switch delay accounting: per-cell queuing delay and per-flow jitter.
//
// The paper's figures of merit (Section 1.1):
//   * queuing delay of a cell  = departure slot − arrival slot;
//   * per-flow delay jitter    = max difference in queuing delay between two
//     cells of the same flow   = max delay − min delay over the flow.
// RelativeDelayHarness (core/) feeds two recorders — one for the PPS, one
// for the shadow switch — and derives the *relative* quantities.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cell.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace sim {

class LatencyRecorder {
 public:
  // Records a departed cell.  The cell must have valid arrival and
  // departure slots with departure >= arrival.
  void Record(const Cell& cell);

  // Also remember each cell's delay by CellId so a harness can align the
  // same cell across two switches.  Off by default to save memory.
  void set_keep_per_cell(bool keep) { keep_per_cell_ = keep; }

  std::size_t cells() const { return delay_stats_.count(); }
  const OnlineStats& delay_stats() const { return delay_stats_; }

  // Per-flow jitter: max − min delay among the flow's recorded cells.
  // Flows with fewer than two cells have jitter 0 (and are included).
  Slot FlowJitter(FlowId flow) const;
  // Maximum jitter across all flows seen; 0 when nothing recorded.
  Slot MaxJitter() const;
  // Number of distinct flows observed.
  std::size_t flow_count() const { return flows_.size(); }

  // Delay of a specific cell (requires keep_per_cell); kNoSlot if unseen.
  Slot DelayOf(CellId id) const;

  // Order-preservation audit: true iff within every flow, departures
  // happened in sequence-number order (the switch "should preserve the
  // order of cells within a flow").
  bool order_preserved() const { return order_preserved_; }

  void Reset();

  // Exact-state checkpointing (ckpt/): flow and per-cell maps serialize
  // in sorted key order so equal states produce identical bytes.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  struct FlowRecord {
    Slot min_delay = 0;
    Slot max_delay = 0;
    std::uint64_t cells = 0;
    std::uint64_t last_seq = 0;
    Slot last_departure = kNoSlot;
  };

  OnlineStats delay_stats_;
  std::unordered_map<FlowId, FlowRecord> flows_;
  std::unordered_map<CellId, Slot> per_cell_;
  bool keep_per_cell_ = false;
  bool order_preserved_ = true;
  PortId num_ports_hint_ = 0;  // for FlowId computation
 public:
  // The recorder needs N to form flow ids; set once before use.
  void set_num_ports(PortId n) { num_ports_hint_ = n; }
};

}  // namespace sim
