#include "sim/latency_recorder.h"

#include <algorithm>

#include "sim/error.h"

namespace sim {

void LatencyRecorder::Record(const Cell& cell) {
  SIM_CHECK(cell.arrival != kNoSlot && cell.departure != kNoSlot,
            "cell lacks timestamps: " << cell);
  SIM_CHECK(cell.departure >= cell.arrival,
            "departure precedes arrival: " << cell);
  SIM_CHECK(num_ports_hint_ > 0, "set_num_ports before Record");
  SIM_CHECK(cell.input >= 0 && cell.input < num_ports_hint_ &&
                cell.output >= 0 && cell.output < num_ports_hint_,
            "cell with out-of-range ports: " << cell);
  const Slot d = cell.delay();
  delay_stats_.Add(d);

  const FlowId flow = MakeFlowId(cell.input, cell.output, num_ports_hint_);
  auto [it, inserted] = flows_.try_emplace(flow);
  FlowRecord& fr = it->second;
  if (inserted) {
    fr.min_delay = fr.max_delay = d;
  } else {
    fr.min_delay = std::min(fr.min_delay, d);
    fr.max_delay = std::max(fr.max_delay, d);
    if (cell.seq < fr.last_seq || cell.departure < fr.last_departure) {
      order_preserved_ = false;
    }
  }
  fr.last_seq = cell.seq;
  fr.last_departure = cell.departure;
  ++fr.cells;

  if (keep_per_cell_) per_cell_[cell.id] = d;
}

Slot LatencyRecorder::FlowJitter(FlowId flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return 0;
  return it->second.max_delay - it->second.min_delay;
}

Slot LatencyRecorder::MaxJitter() const {
  Slot best = 0;
  for (const auto& [flow, fr] : flows_) {
    best = std::max(best, fr.max_delay - fr.min_delay);
  }
  return best;
}

Slot LatencyRecorder::DelayOf(CellId id) const {
  auto it = per_cell_.find(id);
  return it == per_cell_.end() ? kNoSlot : it->second;
}

void LatencyRecorder::Reset() {
  delay_stats_.Reset();
  flows_.clear();
  per_cell_.clear();
  order_preserved_ = true;
}

}  // namespace sim
