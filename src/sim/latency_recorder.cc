#include "sim/latency_recorder.h"

#include <algorithm>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace sim {

void LatencyRecorder::Record(const Cell& cell) {
  SIM_CHECK(cell.arrival != kNoSlot && cell.departure != kNoSlot,
            "cell lacks timestamps: " << cell);
  SIM_CHECK(cell.departure >= cell.arrival,
            "departure precedes arrival: " << cell);
  SIM_CHECK(num_ports_hint_ > 0, "set_num_ports before Record");
  SIM_CHECK(cell.input >= 0 && cell.input < num_ports_hint_ &&
                cell.output >= 0 && cell.output < num_ports_hint_,
            "cell with out-of-range ports: " << cell);
  const Slot d = cell.delay();
  delay_stats_.Add(d);

  const FlowId flow = MakeFlowId(cell.input, cell.output, num_ports_hint_);
  auto [it, inserted] = flows_.try_emplace(flow);
  FlowRecord& fr = it->second;
  if (inserted) {
    fr.min_delay = fr.max_delay = d;
  } else {
    fr.min_delay = std::min(fr.min_delay, d);
    fr.max_delay = std::max(fr.max_delay, d);
    if (cell.seq < fr.last_seq || cell.departure < fr.last_departure) {
      order_preserved_ = false;
    }
  }
  fr.last_seq = cell.seq;
  fr.last_departure = cell.departure;
  ++fr.cells;

  if (keep_per_cell_) per_cell_[cell.id] = d;
}

Slot LatencyRecorder::FlowJitter(FlowId flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return 0;
  return sim::SlotDifference(it->second.max_delay, it->second.min_delay);
}

Slot LatencyRecorder::MaxJitter() const {
  Slot best = 0;
  for (const auto& [flow, fr] : flows_) {
    best = std::max(best, sim::SlotDifference(fr.max_delay, fr.min_delay));
  }
  return best;
}

Slot LatencyRecorder::DelayOf(CellId id) const {
  auto it = per_cell_.find(id);
  return it == per_cell_.end() ? kNoSlot : it->second;
}

void LatencyRecorder::Reset() {
  delay_stats_.Reset();
  flows_.clear();
  per_cell_.clear();
  order_preserved_ = true;
}

void LatencyRecorder::SaveState(ckpt::Writer& w) const {
  w.Marker("LREC");
  delay_stats_.SaveState(w);
  const std::vector<FlowId> flow_keys = ckpt::SortedKeys(flows_);
  w.Size(flow_keys.size());
  for (FlowId flow : flow_keys) {
    const FlowRecord& fr = flows_.at(flow);
    w.U64(flow);
    w.I64(fr.min_delay);
    w.I64(fr.max_delay);
    w.U64(fr.cells);
    w.U64(fr.last_seq);
    w.I64(fr.last_departure);
  }
  const std::vector<CellId> cell_keys = ckpt::SortedKeys(per_cell_);
  w.Size(cell_keys.size());
  for (CellId id : cell_keys) {
    w.U64(id);
    w.I64(per_cell_.at(id));
  }
  w.Bool(keep_per_cell_);
  w.Bool(order_preserved_);
  w.I32(num_ports_hint_);
}

void LatencyRecorder::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("LREC");
  delay_stats_.LoadState(r);
  flows_.clear();
  const std::size_t num_flows = r.Count();
  flows_.reserve(num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    const FlowId flow = r.U64();
    FlowRecord fr;
    fr.min_delay = r.I64();
    fr.max_delay = r.I64();
    fr.cells = r.U64();
    fr.last_seq = r.U64();
    fr.last_departure = r.I64();
    // FlowJitter subtracts the extremes: a record only exists after a
    // Record() call, so delays are non-negative and ordered.
    SIM_CHECK(fr.min_delay >= 0 && fr.min_delay <= fr.max_delay &&
                  fr.last_departure >= 0,
              "latency recorder checkpoint flow " << flow
                                                  << " is out of range");
    flows_.emplace(flow, fr);
  }
  per_cell_.clear();
  const std::size_t num_cells = r.Count();
  per_cell_.reserve(num_cells);
  for (std::size_t i = 0; i < num_cells; ++i) {
    const CellId id = r.U64();
    per_cell_.emplace(id, r.I64());
  }
  keep_per_cell_ = r.Bool();
  order_preserved_ = r.Bool();
  num_ports_hint_ = r.I32();
}

}  // namespace sim
