// Error handling for the simulator: contract checks that throw SimError.
//
// Following the C++ Core Guidelines (I.6, E.12), preconditions on public
// interfaces are checked and violations reported as exceptions at the API
// boundary; hot inner loops use SIM_DCHECK which compiles away in release
// builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sim {

// Exception thrown on violated simulator invariants or misuse of the API
// (e.g. a demultiplexor selecting a busy internal link, traffic injecting
// two cells into one input in one slot).
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace internal {
[[noreturn]] inline void FailCheck(const char* expr, const char* file,
                                   int line, const std::string& msg) {
  std::ostringstream os;
  os << "SIM_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}
}  // namespace internal

}  // namespace sim

// Always-on contract check.  `msg` is any expression streamable into an
// ostream chain, e.g. SIM_CHECK(x > 0, "x=" << x).
#define SIM_CHECK(expr, ...)                                               \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream sim_check_os_;                                    \
      sim_check_os_ __VA_OPT__(<< __VA_ARGS__);                            \
      ::sim::internal::FailCheck(#expr, __FILE__, __LINE__,                \
                                 sim_check_os_.str());                     \
    }                                                                      \
  } while (false)

// Debug-only check for hot paths.
#ifndef NDEBUG
#define SIM_DCHECK(expr, ...) SIM_CHECK(expr, __VA_ARGS__)
#else
#define SIM_DCHECK(expr, ...) \
  do {                        \
  } while (false)
#endif
