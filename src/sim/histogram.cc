#include "sim/histogram.h"

#include <sstream>

#include "sim/error.h"

namespace sim {

Histogram::Histogram(std::int64_t max_value) {
  SIM_CHECK(max_value >= 0, "histogram max_value must be >= 0");
  buckets_.assign(static_cast<std::size_t>(max_value) + 1, 0);
}

void Histogram::Add(std::int64_t value) {
  SIM_CHECK(value >= 0, "histogram sample must be >= 0, got " << value);
  ++total_;
  if (static_cast<std::size_t>(value) < buckets_.size()) {
    ++buckets_[static_cast<std::size_t>(value)];
  } else {
    ++overflow_;
  }
}

void Histogram::Merge(const Histogram& other) {
  SIM_CHECK(other.buckets_.size() == buckets_.size(),
            "merging histograms with different ranges");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
  overflow_ += other.overflow_;
}

std::size_t Histogram::CountAt(std::int64_t value) const {
  if (value < 0 || static_cast<std::size_t>(value) >= buckets_.size()) return 0;
  return buckets_[static_cast<std::size_t>(value)];
}

double Histogram::Ccdf(std::int64_t value) const {
  if (total_ == 0) return 0.0;
  std::size_t le = 0;
  const auto limit =
      std::min<std::size_t>(buckets_.size(),
                            value < 0 ? 0 : static_cast<std::size_t>(value) + 1);
  for (std::size_t i = 0; i < limit; ++i) le += buckets_[i];
  return static_cast<double>(total_ - le) / static_cast<double>(total_);
}

std::int64_t Histogram::Quantile(double q) const {
  SIM_CHECK(total_ > 0, "quantile of empty histogram");
  SIM_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  auto target = static_cast<std::size_t>(q * static_cast<double>(total_));
  // Nearest-rank clamp: without it q = 1.0 walks past every tracked
  // bucket and reports the overflow sentinel even when no sample
  // overflowed.
  if (target >= total_) target = total_ - 1;
  std::size_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return static_cast<std::int64_t>(i);
  }
  return overflow_value();  // rank genuinely lands among overflow samples
}

bool Histogram::QuantileOverflows(double q) const {
  return Quantile(q) == overflow_value();
}

std::string Histogram::ToString(std::size_t max_rows) const {
  std::ostringstream os;
  std::size_t rows = 0;
  for (std::size_t i = 0; i < buckets_.size() && rows < max_rows; ++i) {
    if (buckets_[i] == 0) continue;
    os << i << "\t" << buckets_[i] << "\n";
    ++rows;
  }
  if (overflow_ > 0) os << ">" << buckets_.size() - 1 << "\t" << overflow_ << "\n";
  return os.str();
}

}  // namespace sim
