#include "sim/event_log.h"

#include <sstream>

namespace sim {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kArrival: return "arrival";
    case EventKind::kDispatch: return "dispatch";
    case EventKind::kBuffered: return "buffered";
    case EventKind::kPlaneSend: return "plane-send";
    case EventKind::kDeparture: return "departure";
    case EventKind::kDrop: return "drop";
    case EventKind::kNote: return "note";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Event& e) {
  os << "t=" << e.slot << " " << ToString(e.kind);
  if (e.kind == EventKind::kNote) return os << " " << e.note;
  os << " cell#" << e.cell;
  if (e.input != kNoPort) os << " in=" << e.input;
  if (e.output != kNoPort) os << " out=" << e.output;
  if (e.plane != kNoPlane) os << " plane=" << e.plane;
  if (!e.note.empty()) os << " (" << e.note << ")";
  return os;
}

void EventLog::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (events_.size() > capacity_) events_.pop_front();
}

void EventLog::Push(Event e) {
  if (capacity_ == 0) return;
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(std::move(e));
}

void EventLog::Note(Slot slot, std::string text) {
  Event e;
  e.slot = slot;
  e.kind = EventKind::kNote;
  e.note = std::move(text);
  Push(std::move(e));
}

std::string EventLog::Dump() const {
  std::ostringstream os;
  for (const auto& e : events_) os << e << "\n";
  return os.str();
}

}  // namespace sim
