// Fixed-width integer histogram for delay distributions.
//
// Delays are small non-negative integers (slots), so a dense bucket array
// with an overflow bucket is both exact and fast.  Used by the experiment
// reporters to print delay CCDFs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sim {

class Histogram {
 public:
  // Buckets [0, max_value]; larger samples land in the overflow bucket.
  explicit Histogram(std::int64_t max_value = 1 << 14);

  void Add(std::int64_t value);
  // Integer bucket addition — order-insensitive, but per-shard partials
  // are still merged serially in fixed shard-index order, matching the
  // repo-wide reduction discipline (sim/stats.h).
  void Merge(const Histogram& other);

  std::size_t total() const { return total_; }
  std::size_t overflow() const { return overflow_; }
  // Count of samples equal to value (0 if out of tracked range).
  std::size_t CountAt(std::int64_t value) const;
  // Fraction of samples strictly greater than value (CCDF point).
  double Ccdf(std::int64_t value) const;
  // Smallest tracked value v with CDF(v) >= q (nearest-rank, so q = 1.0
  // returns the largest tracked sample).  When the target rank lands among
  // overflow samples the result is overflow_value(); callers that need to
  // distinguish that sentinel from a real sample use QuantileOverflows.
  std::int64_t Quantile(double q) const;
  // Sentinel returned by Quantile for ranks in the overflow region:
  // max_value + 1, one past every trackable sample.
  std::int64_t overflow_value() const {
    return static_cast<std::int64_t>(buckets_.size());
  }
  // True iff Quantile(q) would report the overflow sentinel.
  bool QuantileOverflows(double q) const;

  // Multi-line textual rendering: "value count" rows for nonzero buckets.
  std::string ToString(std::size_t max_rows = 32) const;

 private:
  std::vector<std::size_t> buckets_;
  std::size_t total_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace sim
