// Deterministic pseudo-random number generation for the simulator.
//
// All stochastic traffic sources draw from a seeded Rng so every experiment
// is exactly reproducible from its (seed, parameters) pair.  The generator
// is xoshiro256** (Blackman & Vigna), seeded through SplitMix64; it is much
// faster than std::mt19937_64 and has no observable bias at simulator
// scales.
#pragma once

#include <array>
#include <cstdint>

namespace sim {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return Next(); }

  // Next raw 64-bit value.
  std::uint64_t Next();

  // Uniform integer in [0, bound).  bound must be > 0.  Uses Lemire's
  // nearly-divisionless method.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Geometric number of failures before first success, success prob p>0.
  std::uint64_t Geometric(double p);

  // Forks an independent stream (jump-free: reseeds via SplitMix of the
  // current state plus a salt).  Used to give each input port its own
  // stream so adding ports does not perturb existing ones.
  Rng Fork(std::uint64_t salt);

  // Raw generator state, for exact-state checkpointing (ckpt/): restoring
  // the four words resumes the stream at precisely the next draw.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace sim
