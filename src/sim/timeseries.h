// Slot-indexed time series with windowed aggregation, for reporting how a
// quantity (backlog, busy state, queue depth) evolves over a run.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace sim {

class TimeSeries {
 public:
  // Appends the value observed at slot t; slots must be strictly
  // increasing.
  void Record(Slot t, std::int64_t value);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  Slot first_slot() const;
  Slot last_slot() const;

  std::int64_t Max() const;
  std::int64_t Min() const;
  double Mean() const;

  // Latest value recorded at or before t (requires a point at or before t).
  std::int64_t ValueAt(Slot t) const;

  // Aggregates the series into `count` equal-width windows.
  struct Bucket {
    Slot from = 0;
    Slot to = 0;  // exclusive
    std::int64_t min = 0;
    std::int64_t max = 0;
    double mean = 0.0;
    std::size_t samples = 0;
  };
  std::vector<Bucket> Buckets(int count) const;

 private:
  struct Point {
    Slot slot;
    std::int64_t value;
  };
  std::vector<Point> points_;
};

}  // namespace sim
