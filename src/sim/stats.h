// Streaming summary statistics (Welford) and exact small-sample quantiles.
//
// Delay and jitter measurements are integers (slots); OnlineStats keeps a
// numerically stable running mean/variance plus min/max, and QuantileSketch
// stores samples exactly (experiments here are small enough that exact
// quantiles are affordable and preferable to an approximate sketch).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace sim {

// Welford online mean/variance with min/max, for 64-bit integer samples.
class OnlineStats {
 public:
  void Add(std::int64_t x);
  // Chan's parallel Welford combine.  The result depends on operand order
  // in the last floating-point bit: callers merging per-shard partials
  // MUST do so serially in a fixed shard-index order (shard 0 first) —
  // the repo-wide reduction-order rule that makes threaded runs bitwise
  // equal to serial ones.
  void Merge(const OnlineStats& other);
  void Reset();

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const { return count_ ? mean_ : 0.0; }
  // Population variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  std::int64_t min() const { return min_; }
  std::int64_t max() const { return max_; }
  std::int64_t sum() const { return sum_; }

  std::string ToString() const;

  // Exact-state checkpointing: the accumulator doubles travel as raw bit
  // patterns, so a restored stream continues bit-identically.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
};

// Exact quantiles over stored samples.  Samples are sorted lazily on the
// first Quantile call; that sort mutates state behind a const interface,
// so it is guarded by a mutex — concurrent const reads (Quantile / Median
// / P99) from sweep workers sharing a sketch are safe.  Add is NOT safe
// against concurrent readers; finish ingesting before querying across
// threads.
class QuantileSketch {
 public:
  QuantileSketch() = default;
  QuantileSketch(const QuantileSketch& other);
  QuantileSketch& operator=(const QuantileSketch& other);

  void Add(std::int64_t x) { samples_.push_back(x); sorted_ = false; }
  // Appends the other sketch's samples in their ingestion order.  Exact
  // quantiles are permutation-invariant, but the stored sample sequence
  // is not: merge per-shard sketches serially in fixed shard-index order
  // so serialized state compares byte-equal across thread counts.
  void Merge(const QuantileSketch& other);
  void Reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Quantile q in [0,1] with nearest-rank semantics; requires nonempty.
  std::int64_t Quantile(double q) const;

  std::int64_t Median() const { return Quantile(0.5); }
  std::int64_t P99() const { return Quantile(0.99); }

 private:
  mutable std::mutex sort_mutex_;  // guards the lazy sort
  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

}  // namespace sim
