// The unit of switching: a fixed-size cell.
//
// "Packets are stored and transmitted in the switch as fixed-size cells;
// fragmentation and reassembly are done outside of the switch."  A cell
// carries only the metadata the simulator needs: its flow endpoints, a
// per-flow sequence number (the switch must preserve the order of cells
// within a flow), and timestamps filled in as it traverses a switch.
#pragma once

#include <compare>
#include <ostream>

#include "sim/types.h"

namespace sim {

struct Cell {
  CellId id = 0;           // unique, in injection order
  PortId input = kNoPort;  // arrival input port
  PortId output = kNoPort; // destination output port
  std::uint64_t seq = 0;   // sequence number within the (input,output) flow
  Slot arrival = kNoSlot;  // slot the cell arrived at the switch

  // --- multi-hop metadata (topo/) -----------------------------------------
  // In a topology run a cell traverses several fabrics; the identity fields
  // above are rewritten per hop (input/output/seq/arrival are *local* to the
  // current node), while these carry the network-level view.  Single-switch
  // runs leave them at their defaults.
  std::int32_t hop = 0;         // fabrics fully traversed before this one
  PortId net_ingress = kNoPort; // external ingress port index
  PortId net_egress = kNoPort;  // external egress port index
  std::uint64_t net_seq = 0;    // seq within the (net_ingress,net_egress) flow
  Slot net_arrival = kNoSlot;   // slot the cell entered the network edge

  // Trajectory through a PPS; kNoSlot / kNoPlane until the event happens.
  PlaneId plane = kNoPlane;       // middle-stage switch the cell traversed
  Slot dispatched = kNoSlot;      // slot the demultiplexor launched it
  Slot reached_output = kNoSlot;  // slot it arrived at the output port
  Slot departure = kNoSlot;       // slot it left the switch

  // Scheduler scratch: switch-internal annotation (e.g. the CIOQ CCF
  // scheduler stamps the cell's shadow FCFS departure slot here).  Never
  // read by the measurement harness.
  Slot tag = kNoSlot;

  // Queuing delay inside the switch this cell traversed.  Zero-delay
  // traversal is possible by the paper's convention (a cell may leave in
  // its arrival slot).  Asserts (debug) that both timestamps are set:
  // subtracting the kNoSlot sentinel is signed overflow.
  Slot delay() const { return SlotDifference(departure, arrival); }

  // End-to-end delay across a topology: departure at the final hop minus
  // the slot the cell entered the network edge.  Only meaningful once both
  // stamps are set (topology runs).
  Slot net_delay() const { return SlotDifference(departure, net_arrival); }

  friend bool operator==(const Cell& a, const Cell& b) { return a.id == b.id; }
};

inline std::ostream& operator<<(std::ostream& os, const Cell& c) {
  return os << "cell#" << c.id << "(" << c.input << "->" << c.output
            << " seq=" << c.seq << " t=" << c.arrival << ")";
}

// One arrival offered to a switch in a slot: at most one per input port per
// slot (the external line runs at rate R = 1 cell/slot).
struct Arrival {
  PortId input = kNoPort;
  PortId output = kNoPort;

  friend auto operator<=>(const Arrival&, const Arrival&) = default;
};

}  // namespace sim
