#include "qos/jitter_regulator.h"

#include <algorithm>
#include <vector>

#include "sim/error.h"

namespace qos {

JitterRegulator::JitterRegulator(int capacity, sim::Slot period,
                                 sim::Slot hold_back)
    : capacity_(capacity), period_(period), hold_back_(hold_back) {
  SIM_CHECK(capacity >= 1, "regulator needs at least one buffer slot");
  SIM_CHECK(period >= 1, "period must be >= 1 slot");
  SIM_CHECK(hold_back >= 0, "hold-back cannot be negative");
}

bool JitterRegulator::Push(sim::Slot arrival) {
  if (static_cast<int>(pending_.size()) >= capacity_) {
    ++drops_;
    return false;
  }
  if (!next_release_.has_value()) {
    // Anchor the release grid on the first cell.
    next_release_ = sim::SlotPlus(arrival, hold_back_);
  }
  pending_.push_back(arrival);
  return true;
}

std::vector<sim::Slot> JitterRegulator::ReleasesUpTo(sim::Slot t) {
  std::vector<sim::Slot> out;
  while (!pending_.empty() && next_release_.has_value()) {
    const sim::Slot arrival = pending_.front();
    // A cell cannot be released before it arrived; a late cell shifts its
    // release past the grid slot — a measurable grid violation.
    const sim::Slot due = std::max(*next_release_, arrival);
    if (due > t) break;
    pending_.pop_front();
    out.push_back(due);
    max_violation_ =
        std::max(max_violation_, sim::SlotDifference(due, *next_release_));
    max_added_delay_ =
        std::max(max_added_delay_, sim::SlotDifference(due, arrival));
    if (sim::IsSlot(last_release_)) {
      max_violation_ =
          std::max(max_violation_,
                   sim::SlotPlus(sim::SlotDifference(due, last_release_),
                                 -period_));
    }
    last_release_ = due;
    next_release_ = sim::SlotPlus(due, period_);
    ++released_;
  }
  return out;
}

int JitterRegulator::RequiredCapacity(sim::Slot jitter, sim::Slot period) {
  SIM_CHECK(jitter >= 0 && period >= 1, "bad jitter/period");
  // ceil(J / p) + 1: up to ceil(J/p) cells can bunch inside one release
  // window on top of the one being released.
  return static_cast<int>((sim::SlotPlus(jitter, period) - 1) / period) + 1;
}

}  // namespace qos
