// A bounded-buffer jitter regulator for a single periodic flow, after
// Mansour & Patt-Shamir, "Jitter control in QoS networks" (cited in the
// paper's discussion).
//
// The paper closes with: "Jitter regulators ... use an internal buffer to
// shape the traffic ... It might be possible to translate our lower bounds
// on the relative queuing delay to bounds on the size of this internal
// buffer."  This module makes the translation executable: a flow that a
// PPS has smeared with delay jitter J needs a downstream regulator buffer
// of ceil(J / period) + 1 cells to restore perfectly periodic release —
// so every RDJ lower bound in the paper is also a buffer-sizing lower
// bound for jitter-sensitive traffic (see bench_jitter and
// examples/jitter_study).
//
// Model: the flow nominally emits one cell every `period` slots.  The
// regulator holds arriving cells in a FIFO buffer of `capacity` cells and
// releases them on a fixed grid: release_i = max(arrival_i, release_{i-1}
// + period, anchor + i*period), where the anchor is fixed by the first
// cell plus a configurable hold-back.  A larger hold-back trades added
// constant delay for tolerance to late cells; releases stay perfectly
// periodic as long as no cell arrives later than its grid slot and the
// buffer never overflows.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "sim/types.h"

namespace qos {

class JitterRegulator {
 public:
  // capacity >= 1 cells; period >= 1 slots; hold_back >= 0 slots of
  // deliberate delay added to the first cell to absorb later jitter.
  JitterRegulator(int capacity, sim::Slot period, sim::Slot hold_back);

  // Offers a cell that arrived at slot `arrival` (non-decreasing).
  // Returns false (and counts a drop) if the buffer is full.
  bool Push(sim::Slot arrival);

  // Advances to slot t and returns the release slots of all cells due by
  // t, in order.  Call with non-decreasing t.
  std::vector<sim::Slot> ReleasesUpTo(sim::Slot t);

  std::int64_t buffered() const {
    return static_cast<std::int64_t>(pending_.size());
  }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t released() const { return released_; }

  // Worst release-grid violation seen: 0 means the output was perfectly
  // periodic (every cell released exactly period slots after the previous
  // one, once started).
  sim::Slot max_grid_violation() const { return max_violation_; }

  // Maximum queuing delay the regulator itself added (release - arrival).
  sim::Slot max_added_delay() const { return max_added_delay_; }

  // The buffer capacity sufficient to absorb input delay-jitter J at this
  // period: every burst of early cells fits, so releases stay periodic.
  static int RequiredCapacity(sim::Slot jitter, sim::Slot period);

 private:
  int capacity_;
  sim::Slot period_;
  sim::Slot hold_back_;
  std::deque<sim::Slot> pending_;  // arrival slots, FIFO
  std::optional<sim::Slot> next_release_;
  sim::Slot last_release_ = sim::kNoSlot;
  std::uint64_t drops_ = 0;
  std::uint64_t released_ = 0;
  sim::Slot max_violation_ = 0;
  sim::Slot max_added_delay_ = 0;
};

}  // namespace qos
