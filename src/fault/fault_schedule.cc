#include "fault/fault_schedule.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <vector>

#include "sim/error.h"
#include "sim/rng.h"

namespace fault {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPlaneFail: return "plane-fail";
    case FaultKind::kPlaneRecover: return "plane-recover";
    case FaultKind::kLinkDrop: return "link-drop";
  }
  return "?";
}

FaultSchedule& FaultSchedule::Add(FaultEvent event) {
  SIM_CHECK(sim::IsSlot(event.at), "fault event needs a real slot");
  SIM_CHECK(event.plane >= 0, "fault event needs a nonnegative plane id");
  if (event.kind == FaultKind::kLinkDrop) {
    SIM_CHECK(event.window >= 1, "link-drop window must be >= 1 slot");
    SIM_CHECK(event.probability >= 0.0 && event.probability <= 1.0,
              "link-drop probability must be in [0, 1]");
  }
  // Insert before the first later event: sorted by `at`, stable for ties.
  auto it = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(it, event);
  return *this;
}

FaultSchedule& FaultSchedule::Fail(sim::PlaneId plane, sim::Slot at) {
  return Add({.kind = FaultKind::kPlaneFail, .at = at, .plane = plane});
}

FaultSchedule& FaultSchedule::Recover(sim::PlaneId plane, sim::Slot at) {
  return Add({.kind = FaultKind::kPlaneRecover, .at = at, .plane = plane});
}

FaultSchedule& FaultSchedule::DropLink(sim::PortId input, sim::PlaneId plane,
                                       double probability, sim::Slot from,
                                       sim::Slot window) {
  return Add({.kind = FaultKind::kLinkDrop,
              .at = from,
              .plane = plane,
              .input = input,
              .probability = probability,
              .window = window});
}

FaultSchedule FaultSchedule::RandomFlaps(int num_planes, sim::Slot horizon,
                                         double mean_up, double mean_down,
                                         std::uint64_t seed, int max_down) {
  SIM_CHECK(num_planes > 0 && horizon > 0, "bad flap-storm shape");
  SIM_CHECK(mean_up >= 1.0 && mean_down >= 1.0,
            "mean up/down times must be >= 1 slot");
  FaultSchedule schedule;
  schedule.set_seed(seed);
  sim::Rng rng(seed);
  // Geometric dwell times (mean m => success probability 1/m), one stream
  // shared in chronological order so the storm is deterministic in seed.
  const auto dwell = [&rng](double mean) -> sim::Slot {
    return 1 + static_cast<sim::Slot>(rng.Geometric(1.0 / mean));
  };
  struct PlaneState {
    bool down = false;
    sim::Slot next = 0;
  };
  std::vector<PlaneState> planes(static_cast<std::size_t>(num_planes));
  for (auto& p : planes) p.next = dwell(mean_up);
  int down_count = 0;
  for (;;) {
    // Chronologically next transition (ties: lowest plane id).
    int best = -1;
    for (int k = 0; k < num_planes; ++k) {
      const auto idx = static_cast<std::size_t>(k);
      if (planes[idx].next >= horizon) continue;
      if (best < 0 ||
          planes[idx].next < planes[static_cast<std::size_t>(best)].next) {
        best = k;
      }
    }
    if (best < 0) break;
    auto& p = planes[static_cast<std::size_t>(best)];
    if (p.down) {
      schedule.Recover(best, p.next);
      p.down = false;
      --down_count;
      p.next += dwell(mean_up);
    } else if (max_down >= 0 && down_count >= max_down) {
      // The cap is reached: this plane stays up and retries one mean
      // down-time later (keeps the draw count deterministic).
      p.next += dwell(mean_down);
    } else {
      schedule.Fail(best, p.next);
      p.down = true;
      ++down_count;
      p.next += dwell(mean_down);
    }
  }
  return schedule;
}

std::vector<FaultSchedule::Epoch> FaultSchedule::FailureEpochs() const {
  std::vector<Epoch> epochs{{0, 0}};
  std::vector<sim::PlaneId> down;
  for (const FaultEvent& ev : events_) {
    const auto it = std::find(down.begin(), down.end(), ev.plane);
    bool changed = false;
    if (ev.kind == FaultKind::kPlaneFail && it == down.end()) {
      down.push_back(ev.plane);
      changed = true;
    } else if (ev.kind == FaultKind::kPlaneRecover && it != down.end()) {
      down.erase(it);
      changed = true;
    }
    if (!changed) continue;
    const int count = static_cast<int>(down.size());
    if (epochs.back().from == ev.at) {
      epochs.back().planes_down = count;  // same-slot events merge
    } else {
      epochs.push_back({ev.at, count});
    }
  }
  return epochs;
}

// --- JSON ------------------------------------------------------------------
//
// The schedule serializer is self-contained: core::json (metrics_json) is
// a writer living above the switch layer, while this library sits below
// it, so the few lines of emit/parse here keep the dependency graph
// acyclic.  The format is the fixed shape documented on ToJson.

namespace {

void AppendNumber(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);  // shortest round-trip form, byte-stable
}

// Minimal recursive-descent JSON reader for the schedule shape.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void ParseSchedule(FaultSchedule& schedule) {
    ExpectObject([&](std::string_view key) {
      if (key == "seed") {
        schedule.set_seed(ParseUint());
      } else if (key == "events") {
        Expect('[');
        SkipSpace();
        if (!Consume(']')) {
          do {
            schedule.Add(ParseEvent());
          } while (Consume(','));
          Expect(']');
        }
      } else {
        Fail("unknown schedule key '" + std::string(key) + "'");
      }
    });
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
  }

 private:
  FaultEvent ParseEvent() {
    FaultEvent ev;
    bool saw_kind = false;
    ExpectObject([&](std::string_view key) {
      if (key == "kind") {
        const std::string kind(ParseString());
        if (kind == "plane-fail") {
          ev.kind = FaultKind::kPlaneFail;
        } else if (kind == "plane-recover") {
          ev.kind = FaultKind::kPlaneRecover;
        } else if (kind == "link-drop") {
          ev.kind = FaultKind::kLinkDrop;
        } else {
          Fail("unknown event kind '" + kind + "'");
        }
        saw_kind = true;
      } else if (key == "at") {
        ev.at = ParseInt();
      } else if (key == "plane") {
        ev.plane = static_cast<sim::PlaneId>(ParseInt());
      } else if (key == "input") {
        ev.input = static_cast<sim::PortId>(ParseInt());
      } else if (key == "probability") {
        ev.probability = ParseDouble();
      } else if (key == "window") {
        ev.window = ParseInt();
      } else {
        Fail("unknown event key '" + std::string(key) + "'");
      }
    });
    if (!saw_kind) Fail("event without a 'kind'");
    return ev;
  }

  template <typename KeyFn>
  void ExpectObject(KeyFn&& on_key) {
    Expect('{');
    SkipSpace();
    if (Consume('}')) return;
    do {
      const std::string_view key = ParseString();
      Expect(':');
      on_key(key);
    } while (Consume(','));
    Expect('}');
  }

  std::string_view ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') Fail("expected string");
    const std::size_t start = ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') Fail("escapes are not used in schedules");
      ++pos_;
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    return text_.substr(start, pos_++ - start);
  }

  std::int64_t ParseInt() {
    const std::string_view tok = NumberToken();
    std::int64_t v = 0;
    const auto res = std::from_chars(tok.begin(), tok.end(), v);
    if (res.ec != std::errc{} || res.ptr != tok.end()) {
      Fail("expected integer, got '" + std::string(tok) + "'");
    }
    return v;
  }

  // The seed is a full 64-bit value (the default is above INT64_MAX), so
  // it gets its own unsigned parse.
  std::uint64_t ParseUint() {
    const std::string_view tok = NumberToken();
    std::uint64_t v = 0;
    const auto res = std::from_chars(tok.begin(), tok.end(), v);
    if (res.ec != std::errc{} || res.ptr != tok.end()) {
      Fail("expected unsigned integer, got '" + std::string(tok) + "'");
    }
    return v;
  }

  double ParseDouble() {
    const std::string_view tok = NumberToken();
    double v = 0;
    const auto res = std::from_chars(tok.begin(), tok.end(), v);
    if (res.ec != std::errc{} || res.ptr != tok.end()) {
      Fail("expected number, got '" + std::string(tok) + "'");
    }
    return v;
  }

  std::string_view NumberToken() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected number");
    return text_.substr(start, pos_ - start);
  }

  void Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[noreturn]] void Fail(const std::string& what) const {
    std::ostringstream os;
    os << "FaultSchedule JSON: " << what << " at offset " << pos_;
    throw sim::SimError(os.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string FaultSchedule::ToJson(int indent) const {
  const std::string nl = indent >= 0 ? "\n" : "";
  const std::string pad1 = indent >= 0 ? std::string(indent, ' ') : "";
  const std::string pad2 = pad1 + pad1;
  std::string out = "{" + nl;
  out += pad1 + "\"seed\": " + std::to_string(seed_) + "," + nl;
  out += pad1 + "\"events\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& ev = events_[i];
    out += (i == 0 ? nl : "," + nl) + pad2;
    out += "{\"kind\": \"";
    out += ToString(ev.kind);
    out += "\", \"at\": " + std::to_string(ev.at);
    out += ", \"plane\": " + std::to_string(ev.plane);
    if (ev.kind == FaultKind::kLinkDrop) {
      out += ", \"input\": " + std::to_string(ev.input);
      out += ", \"probability\": ";
      AppendNumber(out, ev.probability);
      out += ", \"window\": " + std::to_string(ev.window);
    }
    out += "}";
  }
  if (!events_.empty()) out += nl + pad1;
  out += "]" + nl + "}" + nl;
  return out;
}

FaultSchedule FaultSchedule::FromJson(std::string_view json) {
  FaultSchedule schedule;
  JsonReader reader(json);
  reader.ParseSchedule(schedule);
  return schedule;
}

}  // namespace fault
