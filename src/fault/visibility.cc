#include "fault/visibility.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace fault {

PlaneVisibility::PlaneVisibility(int num_planes, sim::Slot lag)
    : planes_(static_cast<std::size_t>(num_planes)) {
  SetLag(lag);
}

void PlaneVisibility::SetLag(sim::Slot lag) {
  SIM_CHECK(lag >= 0, "visibility lag must be >= 0 slots");
  lag_ = lag;
}

PlaneVisibility::PlaneState& PlaneVisibility::StateOf(sim::PlaneId plane) {
  SIM_CHECK(plane >= 0, "bad plane id");
  if (static_cast<std::size_t>(plane) >= planes_.size()) {
    planes_.resize(static_cast<std::size_t>(plane) + 1);
  }
  return planes_[static_cast<std::size_t>(plane)];
}

void PlaneVisibility::Record(sim::PlaneId plane, sim::Slot at, bool down) {
  PlaneState& state = StateOf(plane);
  if (!sim::IsSlot(at) || lag_ == 0) {
    // Immediately visible: fold into the base state and drop history that
    // can no longer change any answer.
    state.base_down = down;
    state.transitions.clear();
    return;
  }
  if (!state.transitions.empty()) {
    const Transition& last = state.transitions.back();
    SIM_CHECK(at >= last.at, "visibility transitions must be in slot order");
    if (last.at == at) {
      state.transitions.back().down = down;  // same slot: last state wins
      return;
    }
    if (last.down == down) return;  // no state change, nothing to record
  } else if (state.base_down == down) {
    return;
  }
  state.transitions.push_back({at, down});
}

void PlaneVisibility::SetDown(sim::PlaneId plane, sim::Slot at) {
  Record(plane, at, true);
}

void PlaneVisibility::SetUp(sim::PlaneId plane, sim::Slot at) {
  Record(plane, at, false);
}

bool PlaneVisibility::Down(sim::PlaneId plane) const {
  if (plane < 0 || static_cast<std::size_t>(plane) >= planes_.size()) {
    return false;
  }
  const PlaneState& state = planes_[static_cast<std::size_t>(plane)];
  return state.transitions.empty() ? state.base_down
                                   : state.transitions.back().down;
}

bool PlaneVisibility::VisiblyDown(sim::PlaneId plane, sim::Slot now) const {
  if (plane < 0 || static_cast<std::size_t>(plane) >= planes_.size()) {
    return false;
  }
  const PlaneState& state = planes_[static_cast<std::size_t>(plane)];
  const sim::Slot horizon = sim::SlotDifference(now, lag_);
  bool down = state.base_down;
  for (const Transition& tr : state.transitions) {
    if (tr.at > horizon) break;  // not yet visible at `now`
    down = tr.down;
  }
  return down;
}

void PlaneVisibility::Reset() {
  for (PlaneState& state : planes_) {
    state.base_down = false;
    state.transitions.clear();
  }
}

void PlaneVisibility::SaveState(ckpt::Writer& w) const {
  w.Marker("PVIS");
  w.Size(planes_.size());
  for (const PlaneState& state : planes_) {
    w.Bool(state.base_down);
    w.Size(state.transitions.size());
    for (const Transition& tr : state.transitions) {
      w.I64(tr.at);
      w.Bool(tr.down);
    }
  }
  w.I64(lag_);
}

void PlaneVisibility::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("PVIS");
  planes_.assign(r.Count(), PlaneState{});
  for (PlaneState& state : planes_) {
    state.base_down = r.Bool();
    const std::size_t n = r.Count();
    state.transitions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Transition tr;
      tr.at = r.I64();
      tr.down = r.Bool();
      state.transitions.push_back(tr);
    }
  }
  lag_ = r.I64();
}

}  // namespace fault
