// Deterministic fault-injection timelines, shared by both PPS fabrics.
//
// The paper motivates the PPS by fault tolerance: "statically partitioning
// the planes among the different demultiplexors is failure-prone", so a
// real evaluation needs more than a single permanent failure.  A
// FaultSchedule is an ordered timeline of events the harness applies at
// the start of each slot:
//
//   PlaneFail(k, t)            plane k leaves service at slot t; cells
//                              queued inside it are lost (counted as
//                              stranded_cells);
//   PlaneRecover(k, t)         plane k rejoins at slot t with a cleared
//                              calendar, links and booking reservations;
//   LinkDrop(i, k, p, t, w)    during [t, t+w) each dispatch from input i
//                              (kNoPort = every input) to plane k loses
//                              the cell with probability p.
//
// Schedules are value types: seedable/randomizable (RandomFlaps builds a
// flap storm), serializable to/from JSON for reproducible chaos runs, and
// an empty schedule is exactly a no-fault run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.h"

namespace fault {

enum class FaultKind {
  kPlaneFail,
  kPlaneRecover,
  kLinkDrop,
};

const char* ToString(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kPlaneFail;
  sim::Slot at = 0;             // slot the event takes effect
  sim::PlaneId plane = 0;       // the plane failing/recovering/flaking
  // kLinkDrop only:
  sim::PortId input = sim::kNoPort;  // kNoPort = every input line to `plane`
  double probability = 1.0;          // per-dispatch loss probability
  sim::Slot window = 1;              // active for [at, at + window)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Builder-style event insertion; events are kept sorted by `at` (stable
  // for ties, so same-slot events apply in insertion order).
  FaultSchedule& Fail(sim::PlaneId plane, sim::Slot at);
  FaultSchedule& Recover(sim::PlaneId plane, sim::Slot at);
  FaultSchedule& DropLink(sim::PortId input, sim::PlaneId plane,
                          double probability, sim::Slot from,
                          sim::Slot window);
  FaultSchedule& Add(FaultEvent event);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Seed for the stochastic parts of the model (LinkDrop Bernoulli trials);
  // two runs of the same schedule with the same seed lose the same cells.
  std::uint64_t seed() const { return seed_; }
  FaultSchedule& set_seed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }

  // Flap storm: every plane independently alternates up/down over
  // [0, horizon), with geometric up-times of mean `mean_up` slots and
  // down-times of mean `mean_down` slots.  At most `max_down` planes are
  // down at once (a plane whose failure would exceed the cap stays up and
  // retries later), so chaos runs can keep K' >= r' if desired;
  // max_down < 0 means no cap.  Deterministic in (parameters, seed).
  static FaultSchedule RandomFlaps(int num_planes, sim::Slot horizon,
                                   double mean_up, double mean_down,
                                   std::uint64_t seed, int max_down = -1);

  // JSON round-trip for reproducible chaos runs:
  //   {"seed": 42, "events": [
  //     {"kind": "plane-fail", "at": 100, "plane": 2}, ...]}
  // ToJson output parses back to an equal schedule; FromJson throws
  // sim::SimError on malformed input or unknown keys.
  std::string ToJson(int indent = 2) const;
  static FaultSchedule FromJson(std::string_view json);

  // Failure epochs: the maximal intervals with a constant set of failed
  // planes, derived from the plane fail/recover events.  Epoch 0 always
  // starts at slot 0 with zero planes down; link-drop windows do not open
  // epochs.  Used for degraded-mode bound recomputation (core/bounds) and
  // the auditor's per-epoch RQD checks.
  struct Epoch {
    sim::Slot from = 0;   // first slot of the epoch
    int planes_down = 0;  // failed planes throughout the epoch
  };
  std::vector<Epoch> FailureEpochs() const;

  friend bool operator==(const FaultSchedule& a, const FaultSchedule& b) {
    return a.seed_ == b.seed_ && a.events_ == b.events_;
  }

 private:
  std::vector<FaultEvent> events_;  // sorted by `at`, stable
  std::uint64_t seed_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace fault
