// Flaky input->plane links: probabilistic cell loss inside LinkDrop
// windows of a FaultSchedule.
//
// The injector is armed once per run (the harness copies the schedule's
// LinkDrop events and seed in before the first slot) and then queried on
// every dispatch.  Loss draws consume a dedicated Rng stream seeded from
// the schedule, so link faults never perturb traffic randomness and two
// runs of the same schedule lose the same cells.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fault {

class LinkFaultInjector {
 public:
  LinkFaultInjector() = default;

  void Seed(std::uint64_t seed) { rng_ = sim::Rng(seed); }

  // Arms loss probability `probability` on dispatches from `input`
  // (kNoPort = every input) to `plane` during [from, from + window).
  void AddWindow(sim::PortId input, sim::PlaneId plane, double probability,
                 sim::Slot from, sim::Slot window);

  // True iff the dispatch (input -> plane at slot t) loses its cell.
  // Draws from the fault stream only when a window matches with a
  // probability strictly inside (0, 1), so inert windows cost no
  // randomness.  With several matching windows the cell survives only if
  // it survives each independently.
  bool Dropped(sim::PortId input, sim::PlaneId plane, sim::Slot t);

  bool empty() const { return windows_.empty(); }

  // True iff some window covers slot t (cheap pre-check for hot paths).
  bool Active(sim::Slot t) const;

  void Clear() { windows_.clear(); }

  // Exact-state checkpointing.  LoadState REPLACES the armed windows and
  // the fault RNG wholesale, so a resume harness that re-armed windows
  // from the schedule before restoring ends up with exactly the
  // checkpointed state (no duplicates).
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  struct Window {
    sim::PortId input = sim::kNoPort;
    sim::PlaneId plane = 0;
    double probability = 1.0;
    sim::Slot from = 0;
    sim::Slot until = 0;  // exclusive
  };

  std::vector<Window> windows_;
  sim::Rng rng_;
};

}  // namespace fault
