// Loss taxonomy: every way a PPS can lose a cell under the fault model,
// as one reconcilable ledger.
//
// The paper's opening pitch for the PPS is fault tolerance — many slow
// planes so the switch survives component loss — which only means
// something if losses under faults are *accounted*, not crashed on.  Each
// category below is a distinct mechanism with its own counter in the
// fabric; the harness reports the per-run delta in
// core::RunResult::losses and the InvariantAuditor checks that the
// categories sum exactly to the cells the harness reconciled as dropped.
#pragma once

#include <cstdint>

namespace fault {

struct LossBreakdown {
  // Cell refused at the input: no usable plane (every plane the algorithm
  // may use is failed or busy, e.g. an exhausted static partition).
  std::uint64_t input_drops = 0;
  // Cells queued inside a plane at the moment it failed.
  std::uint64_t stranded_cells = 0;
  // Cells dispatched to a plane that was down but not yet visibly down to
  // the demultiplexor (the stale-visibility model): the transmission goes
  // into the dead plane and the cell is lost.
  std::uint64_t stale_dispatches = 0;
  // Cells lost to a flaky input->plane link during a LinkDrop window.
  std::uint64_t link_drops = 0;
  // Cells that reached the output mux after the resequencer had already
  // timed out their sequence number (the cell was merely delayed in a
  // congested plane, not lost upstream): the reassembly window expired,
  // the flow moved on, and a late cell cannot be delivered in order.
  std::uint64_t late_arrivals = 0;
  // Input-buffered variant only: arriving cell kept by the algorithm while
  // its buffer was full.
  std::uint64_t buffer_overflows = 0;

  std::uint64_t total() const {
    return input_drops + stranded_cells + stale_dispatches + link_drops +
           late_arrivals + buffer_overflows;
  }

  // Summing across nodes (topo::NetworkRunResult aggregates the per-node
  // taxonomies into one network ledger).
  friend LossBreakdown operator+(const LossBreakdown& a,
                                 const LossBreakdown& b) {
    return {a.input_drops + b.input_drops,
            a.stranded_cells + b.stranded_cells,
            a.stale_dispatches + b.stale_dispatches,
            a.link_drops + b.link_drops,
            a.late_arrivals + b.late_arrivals,
            a.buffer_overflows + b.buffer_overflows};
  }

  friend LossBreakdown operator-(const LossBreakdown& a,
                                 const LossBreakdown& b) {
    return {a.input_drops - b.input_drops,
            a.stranded_cells - b.stranded_cells,
            a.stale_dispatches - b.stale_dispatches,
            a.link_drops - b.link_drops,
            a.late_arrivals - b.late_arrivals,
            a.buffer_overflows - b.buffer_overflows};
  }

  friend bool operator==(const LossBreakdown&,
                         const LossBreakdown&) = default;
};

}  // namespace fault
