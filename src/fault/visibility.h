// Stale failure visibility: what the demultiplexors believe about plane
// health, as opposed to ground truth.
//
// The paper's u-RT information model has demultiplexors acting on queue
// lengths that are u slots old; PlaneVisibility applies the same idea to
// failure knowledge.  The fabric records ground-truth up/down transitions
// as they happen; `VisiblyDown(k, now)` answers with the state as of
// `now - lag`, so for `lag` slots after a failure the demultiplexors keep
// dispatching into the dead plane (each such cell is a counted
// stale-dispatch loss, not a crash).  Lag 0 — the default — reproduces
// the legacy instant-knowledge model exactly.
#pragma once

#include <vector>

#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace fault {

class PlaneVisibility {
 public:
  PlaneVisibility() = default;
  explicit PlaneVisibility(int num_planes, sim::Slot lag = 0);

  // Notification lag in slots (>= 0).  Changing the lag does not rewrite
  // history; it only moves the observation point of later queries.
  sim::Slot lag() const { return lag_; }
  void SetLag(sim::Slot lag);

  // Ground-truth transitions.  `at == kNoSlot` means "since forever": the
  // transition is folded into the base state and is immediately visible
  // regardless of lag (used by the legacy FailPlane(k) entry point and by
  // Reset-time healing).  Transitions must otherwise arrive in
  // nondecreasing slot order per plane; same-slot re-transitions keep the
  // last state.
  void SetDown(sim::PlaneId plane, sim::Slot at = sim::kNoSlot);
  void SetUp(sim::PlaneId plane, sim::Slot at = sim::kNoSlot);

  // Ground truth right now (the most recent transition, no lag).
  bool Down(sim::PlaneId plane) const;

  // What a demultiplexor believes at slot `now`: the ground-truth state as
  // of `now - lag`.  Transitions not yet `lag` slots old are invisible.
  bool VisiblyDown(sim::PlaneId plane, sim::Slot now) const;

  // Forget all transitions and mark every plane up (keeps the lag).
  void Reset();

  // Exact-state checkpointing: replaces the transition history and lag.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  struct Transition {
    sim::Slot at = 0;
    bool down = false;
  };
  struct PlaneState {
    bool base_down = false;                // state before any transition
    std::vector<Transition> transitions;   // nondecreasing `at`
  };

  void Record(sim::PlaneId plane, sim::Slot at, bool down);
  PlaneState& StateOf(sim::PlaneId plane);

  std::vector<PlaneState> planes_;
  sim::Slot lag_ = 0;
};

}  // namespace fault
