#include "fault/link_faults.h"

#include "sim/error.h"

namespace fault {

void LinkFaultInjector::AddWindow(sim::PortId input, sim::PlaneId plane,
                                  double probability, sim::Slot from,
                                  sim::Slot window) {
  SIM_CHECK(plane >= 0, "link fault needs a real plane");
  SIM_CHECK(window >= 1, "link fault window must be >= 1 slot");
  SIM_CHECK(probability >= 0.0 && probability <= 1.0,
            "link fault probability must be in [0, 1]");
  windows_.push_back(
      {input, plane, probability, from, sim::SlotPlus(from, window)});
}

bool LinkFaultInjector::Active(sim::Slot t) const {
  for (const Window& w : windows_) {
    if (t >= w.from && t < w.until) return true;
  }
  return false;
}

bool LinkFaultInjector::Dropped(sim::PortId input, sim::PlaneId plane,
                                sim::Slot t) {
  bool dropped = false;
  for (const Window& w : windows_) {
    if (t < w.from || t >= w.until) continue;
    if (w.plane != plane) continue;
    if (w.input != sim::kNoPort && w.input != input) continue;
    if (w.probability >= 1.0) {
      dropped = true;  // certain loss: no draw, stream stays aligned
    } else if (w.probability > 0.0 && !dropped && rng_.Bernoulli(w.probability)) {
      dropped = true;
    }
  }
  return dropped;
}

}  // namespace fault
