#include "fault/link_faults.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace fault {

void LinkFaultInjector::AddWindow(sim::PortId input, sim::PlaneId plane,
                                  double probability, sim::Slot from,
                                  sim::Slot window) {
  SIM_CHECK(plane >= 0, "link fault needs a real plane");
  SIM_CHECK(window >= 1, "link fault window must be >= 1 slot");
  SIM_CHECK(probability >= 0.0 && probability <= 1.0,
            "link fault probability must be in [0, 1]");
  windows_.push_back(
      {input, plane, probability, from, sim::SlotPlus(from, window)});
}

bool LinkFaultInjector::Active(sim::Slot t) const {
  for (const Window& w : windows_) {
    if (t >= w.from && t < w.until) return true;
  }
  return false;
}

bool LinkFaultInjector::Dropped(sim::PortId input, sim::PlaneId plane,
                                sim::Slot t) {
  bool dropped = false;
  for (const Window& w : windows_) {
    if (t < w.from || t >= w.until) continue;
    if (w.plane != plane) continue;
    if (w.input != sim::kNoPort && w.input != input) continue;
    if (w.probability >= 1.0) {
      dropped = true;  // certain loss: no draw, stream stays aligned
    } else if (w.probability > 0.0 && !dropped && rng_.Bernoulli(w.probability)) {
      dropped = true;
    }
  }
  return dropped;
}

void LinkFaultInjector::SaveState(ckpt::Writer& w) const {
  w.Marker("LFLT");
  w.Size(windows_.size());
  for (const Window& win : windows_) {
    w.I32(win.input);
    w.I32(win.plane);
    w.Double(win.probability);
    w.I64(win.from);
    w.I64(win.until);
  }
  ckpt::SaveRng(w, rng_);
}

void LinkFaultInjector::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("LFLT");
  windows_.clear();
  const std::size_t n = r.Count();
  windows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Window win;
    win.input = r.I32();
    win.plane = r.I32();
    win.probability = r.Double();
    win.from = r.I64();
    win.until = r.I64();
    windows_.push_back(win);
  }
  ckpt::LoadRng(r, rng_);
}

}  // namespace fault
