#include "fabric/registry.h"

#include <algorithm>
#include <charconv>
#include <utility>

#include "cioq/ccf.h"
#include "cioq/islip.h"
#include "cioq/oldest_first.h"
#include "cioq/qps.h"
#include "demux/registry.h"
#include "fabric/adapters.h"
#include "sim/error.h"

namespace fabric {

void Fabric::SaveState(ckpt::Writer&) const {
  SIM_CHECK(false, "fabric '" << name()
                              << "' does not implement checkpointing");
}

void Fabric::LoadState(ckpt::Reader&) {
  SIM_CHECK(false, "fabric '" << name()
                              << "' does not implement checkpointing");
}

namespace {

// Default per-input buffer for "buffered-pps/..." when the caller's
// config leaves input_buffer_size at 0 (a zero-cell buffer would overflow
// on every kept cell, which is never what a by-name selection means).
constexpr int kDefaultInputBuffer = 64;

// Parses "<prefix><int>" tails like "ccf-s2"; returns false if `name`
// does not start with `prefix`.
bool ParseSuffix(const std::string& name, const std::string& prefix,
                 int* value) {
  if (name.rfind(prefix, 0) != 0) return false;
  const char* begin = name.data() + prefix.size();
  const char* end = name.data() + name.size();
  auto [ptr, ec] = std::from_chars(begin, end, *value);
  SIM_CHECK(ec == std::errc() && ptr == end,
            "malformed parameter in fabric name: " << name);
  return true;
}

// Folds a demux algorithm's switch-level needs (booked planes, snapshot
// history) into the shared geometry, exactly as the benches' MakeConfig
// has always done.
pps::SwitchConfig ConfigFor(const std::string& algorithm,
                            const pps::SwitchConfig& base) {
  pps::SwitchConfig config = base;
  const demux::AlgorithmNeeds needs = demux::NeedsOf(algorithm);
  if (needs.booked_planes) {
    config.plane_scheduling = pps::PlaneScheduling::kBooked;
  }
  config.snapshot_history =
      std::max(config.snapshot_history, needs.snapshot_history);
  return config;
}

std::unique_ptr<Fabric> MakeCioq(const std::string& name,
                                 const pps::SwitchConfig& config) {
  const std::string tail = name.substr(std::string("cioq/").size());
  int speedup = 0;
  std::unique_ptr<cioq::Scheduler> scheduler;
  if (ParseSuffix(tail, "islip-s", &speedup)) {
    scheduler = std::make_unique<cioq::IslipScheduler>(2);
  } else if (ParseSuffix(tail, "oldest-s", &speedup)) {
    scheduler = std::make_unique<cioq::OldestFirstScheduler>();
  } else if (ParseSuffix(tail, "ccf-s", &speedup)) {
    scheduler = std::make_unique<cioq::CcfScheduler>();
  } else if (ParseSuffix(tail, "qps-r-s", &speedup)) {
    scheduler = std::make_unique<cioq::QpsScheduler>(2);
  } else {
    SIM_CHECK(false, "unknown cioq scheduler in fabric name: " << name);
  }
  return std::make_unique<CioqFabric>(std::make_unique<cioq::CioqSwitch>(
      config.num_ports, speedup, std::move(scheduler)));
}

}  // namespace

std::unique_ptr<Fabric> Make(const std::string& name,
                             const pps::SwitchConfig& config) {
  std::unique_ptr<Fabric> made;
  int param = 0;
  if (name.rfind("pps/", 0) == 0) {
    const std::string algorithm = name.substr(4);
    made = std::make_unique<BufferlessPpsFabric>(
        std::make_unique<pps::BufferlessPps>(ConfigFor(algorithm, config),
                                             demux::MakeFactory(algorithm)));
  } else if (name.rfind("buffered-pps/", 0) == 0) {
    const std::string algorithm = name.substr(13);
    pps::SwitchConfig buffered = ConfigFor(algorithm, config);
    if (buffered.input_buffer_size == 0) {
      buffered.input_buffer_size = kDefaultInputBuffer;
    }
    made = std::make_unique<InputBufferedPpsFabric>(
        std::make_unique<pps::InputBufferedPps>(
            buffered, demux::MakeBufferedFactory(algorithm)));
  } else if (name.rfind("cioq/", 0) == 0) {
    made = MakeCioq(name, config);
  } else if (name == "oq") {
    made = std::make_unique<OutputQueuedFabric>(
        std::make_unique<pps::OutputQueuedSwitch>(config.num_ports));
  } else if (name == "rate-limited-oq") {
    made = std::make_unique<RateLimitedOqFabric>(
        std::make_unique<pps::RateLimitedOqSwitch>(config.num_ports,
                                                   config.rate_ratio));
  } else if (ParseSuffix(name, "rate-limited-oq-r", &param)) {
    made = std::make_unique<RateLimitedOqFabric>(
        std::make_unique<pps::RateLimitedOqSwitch>(config.num_ports, param));
  } else {
    SIM_CHECK(false, "unknown fabric: " << name);
  }
  made->set_name(name);
  return made;
}

std::vector<std::string> RegisteredFabrics() {
  std::vector<std::string> names;
  for (const std::string& algorithm : demux::BufferlessAlgorithms()) {
    names.push_back("pps/" + algorithm);
  }
  for (const std::string& algorithm : demux::BufferedAlgorithms()) {
    names.push_back("buffered-pps/" + algorithm);
  }
  names.insert(names.end(), {"cioq/islip-s1", "cioq/islip-s2",
                             "cioq/oldest-s2", "cioq/ccf-s2",
                             "cioq/qps-r-s2", "oq", "rate-limited-oq"});
  return names;
}

}  // namespace fabric
