// First-class switch-fabric abstraction: the one surface every
// architecture in this repo exposes to the measurement engine.
//
// The paper's methodology (Section 1.1) is architecture comparison under
// identical traffic — a measured switch against a shadow OQ reference.
// Historically each architecture was a duck-typed template parameter of
// the harness loop; the Fabric interface makes the slot protocol explicit
// so one non-templated core::SlotEngine::Run drives every architecture:
//
//   for each slot t:
//     FailPlane/RecoverPlane(..., t)   fault-schedule events due at t
//     Inject(cell, t)                  per arriving cell, in input order
//     Advance(t)                       deliveries + at most one departure
//                                      per output; returns the departures
//
// Advance follows the PPS fabrics' reusable-scratch contract: the
// returned reference points at internal per-slot scratch, valid until the
// next Advance call, so a steady-state run allocates nothing per slot.
//
// Capability queries let cross-cutting surfaces (fault schedules, audit
// taps, snapshot-driven demultiplexors) degrade gracefully instead of
// being template-special-cased: a fabric without planes accepts fault
// events as no-ops and reports an identically empty loss ledger.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/link_faults.h"
#include "fault/loss.h"
#include "sim/cell.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace core {
class ShardPool;
}  // namespace core

namespace fabric {

// What a fabric offers beyond the core slot protocol.  Purely
// informational: the engine never branches on these (the virtual surface
// already degrades to no-ops); registries, docs, and the fabric-matrix
// tests use them to know what a given architecture can exercise.
struct Capabilities {
  // The architecture has middle-stage planes: FailPlane/RecoverPlane
  // change real state and PlaneBacklog-style queries are meaningful.
  bool has_planes = false;
  // fault::FaultSchedule events (plane fail/recover, link-drop windows)
  // have observable effect; false means the fault surface is a no-op.
  bool has_fault_surface = false;
  // The fabric records an end-of-slot global snapshot ring (u-RT
  // demultiplexors' stale global knowledge).
  bool has_global_snapshot = false;
  // Losses() is identically zero: every injected cell eventually departs.
  bool lossless = true;
  // The discipline promises per-output work conservation (the shadow OQ
  // reference does; a PPS legitimately idles during resequencing holds).
  bool work_conserving = false;

  friend bool operator==(const Capabilities&,
                         const Capabilities&) = default;
};

class Fabric {
 public:
  virtual ~Fabric() = default;

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // --- the slot protocol ---

  // Offers a cell arriving in slot t; call in increasing input-port order
  // within a slot (the external line runs at one cell per slot per port).
  virtual void Inject(const sim::Cell& cell, sim::Slot t) = 0;

  // Ends slot t; returns all cells departing in this slot.  The reference
  // points at internal scratch reused (not reallocated) every slot — it
  // stays valid until the next Advance call; copy it if you need the
  // cells longer.
  virtual const std::vector<sim::Cell>& Advance(sim::Slot t) = 0;

  virtual bool Drained() const = 0;
  virtual std::int64_t TotalBacklog() const = 0;
  virtual sim::PortId num_ports() const = 0;

  // --- the sharded slot protocol ---

  // True iff this fabric (in its current configuration) supports the
  // sharded entry points below with results byte-identical to the serial
  // protocol.  Dynamic, not a static capability: a PPS is shardable only
  // while its per-input demultiplexors are independent state machines
  // (CPA's shared centralized core is not) and its event log is off.
  // CIOQ (global iterative matching per slot) and the OQ references
  // (already O(N) per slot and used as the engine's serial shadow) always
  // report false and run the serial path.
  virtual bool shardable() const { return false; }

  // Batch form of Inject for one slot: `cells` must be sorted by input
  // port, one cell per input, exactly as the serial protocol requires.
  // Returns per-cell synchronous-drop flags (flag[i] != 0 iff cells[i]
  // was lost at inject time and will never depart), pointing at internal
  // scratch valid until the next call.  Must be byte-identical in effect
  // to injecting serially and attributing each losses() delta to the
  // in-flight cell.  The default runs exactly that serial loop.
  virtual const std::vector<std::uint8_t>& InjectBatch(
      std::span<const sim::Cell> cells, sim::Slot t, core::ShardPool& pool);

  // Sharded form of Advance: same contract and identical returned cells
  // (values and order), with the per-plane / per-output stages fanned out
  // over `pool`.  The default falls back to the serial Advance.
  virtual const std::vector<sim::Cell>& AdvanceSharded(
      sim::Slot t, core::ShardPool& pool) {
    (void)pool;
    return Advance(t);
  }

  // --- capability queries ---

  virtual Capabilities capabilities() const = 0;

  // --- loss ledger ---

  // The cumulative per-category loss counters; identically empty for
  // lossless fabrics.  The engine reads this to attribute inject drops
  // and to reconcile id-less losses (stranded cells, overflows).
  virtual fault::LossBreakdown losses() const { return {}; }

  // --- fault surface ---

  // Plane fail/recover events, applied by the engine at the start of
  // their scheduled slot.  No-ops unless capabilities().has_fault_surface.
  virtual void FailPlane(sim::PlaneId /*k*/, sim::Slot /*at*/) {}
  virtual void RecoverPlane(sim::PlaneId /*k*/, sim::Slot /*at*/) {}

  // Flaky-link injector to arm LinkDrop windows on before the first slot;
  // nullptr for fabrics without input->plane links.
  virtual fault::LinkFaultInjector* link_faults() { return nullptr; }

  // --- audit hints ---

  // True iff the discipline promises per-flow departure order, so the
  // auditor's flow-order detector may be armed.  (A first-delivered-
  // first-out PPS mux legitimately reorders flows that straddle planes.)
  virtual bool flow_order_promised() const { return true; }

  // Cells currently held back by an output resequencer waiting for an
  // earlier sequence number; 0 for fabrics that never resequence.
  virtual std::uint64_t resequencing_stalls() const { return 0; }

  // --- exact-state checkpointing (ckpt/) ---

  // True iff this fabric implements SaveState/LoadState.  Every adapter in
  // adapters.h does; the default is the conservative answer for
  // out-of-tree fabrics, and the defaults below throw sim::SimError so a
  // stale override set is caught loudly, not by silent state loss.
  virtual bool checkpointable() const { return false; }
  virtual void SaveState(ckpt::Writer& w) const;
  virtual void LoadState(ckpt::Reader& r);

  // --- identification ---

  // The registry name this fabric was constructed under (or the adapter's
  // architecture family when constructed directly).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 protected:
  explicit Fabric(std::string name) : name_(std::move(name)) {}

  // Scratch for the default InjectBatch and shardable overriders that
  // produce their flags serially.
  std::vector<std::uint8_t>& inject_dropped_scratch() {
    return inject_dropped_scratch_;
  }

 private:
  // ckpt-skip: fixed identity string set at construction, never mutated
  std::string name_;
  // ckpt-skip: per-slot scratch, rewritten by every InjectBatch call
  std::vector<std::uint8_t> inject_dropped_scratch_;
};

inline const std::vector<std::uint8_t>& Fabric::InjectBatch(
    std::span<const sim::Cell> cells, sim::Slot t, core::ShardPool& pool) {
  (void)pool;
  inject_dropped_scratch_.assign(cells.size(), 0);
  std::uint64_t known_lost = losses().total();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    Inject(cells[i], t);
    const std::uint64_t lost = losses().total();
    if (lost != known_lost) {
      known_lost = lost;
      inject_dropped_scratch_[i] = 1;
    }
  }
  return inject_dropped_scratch_;
}

}  // namespace fabric
