// Name-based construction of whole switch architectures (mirroring
// demux/registry.cc one layer up): sweeps, benches and scripts select the
// measured fabric declaratively instead of hard-coding a type.
//
//   "pps/<demux>"           bufferless PPS running demux algorithm
//                           <demux> (any demux/registry.cc name); the
//                           algorithm's plane-scheduling and snapshot
//                           needs are folded into the config
//   "buffered-pps/<demux>"  input-buffered PPS with a buffered demux
//                           algorithm; config.input_buffer_size of 0
//                           defaults to 64 cells
//   "cioq/islip-s<S>"       CIOQ crossbar at integer speedup S with
//   "cioq/oldest-s<S>"      iSLIP (2 iterations), oldest-cell-first or
//   "cioq/ccf-s<S>"         CCF stable-matching scheduling
//   "cioq/qps-r-s<S>"       queue-proportional sampling (QPS-r, 2 rounds
//                           of propose/accept per phase)
//   "oq"                    the ideal work-conserving OQ switch itself
//   "rate-limited-oq"       non-work-conserving OQ serving each output
//                           once every config.rate_ratio slots
//   "rate-limited-oq-r<I>"  same with an explicit service interval I
//
// The SwitchConfig provides the shared geometry (N, K, r', buffers,
// timeouts); parameters specific to an architecture ride in the name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "switch/config.h"

namespace fabric {

// Constructs the named fabric from the shared geometry; the returned
// fabric owns its switch and reports `name` from Fabric::name().  Throws
// sim::SimError on an unknown name.
std::unique_ptr<Fabric> Make(const std::string& name,
                             const pps::SwitchConfig& config);

// All registered fabric names, with representative parameters filled in
// for the parameterised families — the fabric matrix the smoke stages and
// capability tests iterate.
std::vector<std::string> RegisteredFabrics();

}  // namespace fabric
