// Fabric adapters: wrap each concrete switch architecture behind the
// fabric::Fabric interface so the slot engine, registries, benches and
// sweeps drive them uniformly.
//
// Every adapter comes in two flavours sharing one class: non-owning
// (wraps a switch the caller keeps alive — the thin core::RunRelative
// compatibility overloads use this) and owning (holds the switch by
// unique_ptr — what fabric::Make returns).
#pragma once

#include <memory>

#include "cioq/cioq_switch.h"
#include "fabric/fabric.h"
#include "switch/input_buffered_pps.h"
#include "switch/output_queued.h"
#include "switch/pps.h"
#include "switch/rate_limited_oq.h"

namespace fabric {

// The bufferless PPS (Figure 1 of the paper): planes, faults, snapshots,
// the full loss taxonomy.
class BufferlessPpsFabric final : public Fabric {
 public:
  explicit BufferlessPpsFabric(pps::BufferlessPps& sw)
      : Fabric("pps"), sw_(&sw) {}
  explicit BufferlessPpsFabric(std::unique_ptr<pps::BufferlessPps> sw)
      : Fabric("pps"), owned_(std::move(sw)), sw_(owned_.get()) {}

  void Inject(const sim::Cell& cell, sim::Slot t) override {
    sw_->Inject(cell, t);
  }
  const std::vector<sim::Cell>& Advance(sim::Slot t) override {
    return sw_->Advance(t);
  }
  bool shardable() const override { return sw_->Shardable(); }
  const std::vector<std::uint8_t>& InjectBatch(
      std::span<const sim::Cell> cells, sim::Slot t,
      core::ShardPool& pool) override {
    return sw_->InjectBatch(cells, t, pool);
  }
  const std::vector<sim::Cell>& AdvanceSharded(
      sim::Slot t, core::ShardPool& pool) override {
    return sw_->AdvanceSharded(t, pool);
  }
  bool Drained() const override { return sw_->Drained(); }
  std::int64_t TotalBacklog() const override { return sw_->TotalBacklog(); }
  sim::PortId num_ports() const override { return sw_->config().num_ports; }
  Capabilities capabilities() const override {
    return {.has_planes = true,
            .has_fault_surface = true,
            .has_global_snapshot = sw_->config().snapshot_history > 0,
            .lossless = false,
            .work_conserving = false};
  }
  fault::LossBreakdown losses() const override { return sw_->Losses(); }
  void FailPlane(sim::PlaneId k, sim::Slot at) override {
    sw_->FailPlane(k, at);
  }
  void RecoverPlane(sim::PlaneId k, sim::Slot at) override {
    sw_->RecoverPlane(k, at);
  }
  fault::LinkFaultInjector* link_faults() override {
    return &sw_->link_faults();
  }
  bool flow_order_promised() const override {
    return sw_->config().mux_policy == pps::MuxPolicy::kOldestCellReseq;
  }
  std::uint64_t resequencing_stalls() const override {
    return sw_->resequencing_stalls();
  }

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override { sw_->SaveState(w); }
  void LoadState(ckpt::Reader& r) override { sw_->LoadState(r); }

  pps::BufferlessPps& underlying() { return *sw_; }
  const pps::BufferlessPps& underlying() const { return *sw_; }

 private:
  // ckpt-skip: ownership handle only; sw_ aliases it and the
  // pointee serializes through SaveState/LoadState above
  std::unique_ptr<pps::BufferlessPps> owned_;
  pps::BufferlessPps* sw_;
};

// The input-buffered PPS variant (Iyer & McKeown; Section 4).
class InputBufferedPpsFabric final : public Fabric {
 public:
  explicit InputBufferedPpsFabric(pps::InputBufferedPps& sw)
      : Fabric("buffered-pps"), sw_(&sw) {}
  explicit InputBufferedPpsFabric(std::unique_ptr<pps::InputBufferedPps> sw)
      : Fabric("buffered-pps"), owned_(std::move(sw)), sw_(owned_.get()) {}

  void Inject(const sim::Cell& cell, sim::Slot t) override {
    sw_->Inject(cell, t);
  }
  const std::vector<sim::Cell>& Advance(sim::Slot t) override {
    return sw_->Advance(t);
  }
  bool shardable() const override { return sw_->Shardable(); }
  // Inject only parks the cell in its input's incoming slot and can never
  // lose it (losses happen at Advance), so the batch form is the serial
  // loop minus the per-cell loss query.
  const std::vector<std::uint8_t>& InjectBatch(
      std::span<const sim::Cell> cells, sim::Slot t,
      core::ShardPool& /*pool*/) override {
    std::vector<std::uint8_t>& flags = inject_dropped_scratch();
    flags.assign(cells.size(), 0);
    for (const sim::Cell& cell : cells) sw_->Inject(cell, t);
    return flags;
  }
  const std::vector<sim::Cell>& AdvanceSharded(
      sim::Slot t, core::ShardPool& pool) override {
    return sw_->AdvanceSharded(t, pool);
  }
  bool Drained() const override { return sw_->Drained(); }
  std::int64_t TotalBacklog() const override { return sw_->TotalBacklog(); }
  sim::PortId num_ports() const override { return sw_->config().num_ports; }
  Capabilities capabilities() const override {
    return {.has_planes = true,
            .has_fault_surface = true,
            .has_global_snapshot = sw_->config().snapshot_history > 0,
            .lossless = false,
            .work_conserving = false};
  }
  fault::LossBreakdown losses() const override { return sw_->Losses(); }
  void FailPlane(sim::PlaneId k, sim::Slot at) override {
    sw_->FailPlane(k, at);
  }
  void RecoverPlane(sim::PlaneId k, sim::Slot at) override {
    sw_->RecoverPlane(k, at);
  }
  fault::LinkFaultInjector* link_faults() override {
    return &sw_->link_faults();
  }
  bool flow_order_promised() const override {
    return sw_->config().mux_policy == pps::MuxPolicy::kOldestCellReseq;
  }
  std::uint64_t resequencing_stalls() const override {
    return sw_->resequencing_stalls();
  }

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override { sw_->SaveState(w); }
  void LoadState(ckpt::Reader& r) override { sw_->LoadState(r); }

  pps::InputBufferedPps& underlying() { return *sw_; }
  const pps::InputBufferedPps& underlying() const { return *sw_; }

 private:
  // ckpt-skip: ownership handle only; sw_ aliases it and the
  // pointee serializes through SaveState/LoadState above
  std::unique_ptr<pps::InputBufferedPps> owned_;
  pps::InputBufferedPps* sw_;
};

// The CIOQ crossbar with integer speedup (related work: Chuang et al.).
// Lossless, no planes; the fault surface is the switch's explicit no-op.
class CioqFabric final : public Fabric {
 public:
  explicit CioqFabric(cioq::CioqSwitch& sw) : Fabric("cioq"), sw_(&sw) {}
  explicit CioqFabric(std::unique_ptr<cioq::CioqSwitch> sw)
      : Fabric("cioq"), owned_(std::move(sw)), sw_(owned_.get()) {}

  void Inject(const sim::Cell& cell, sim::Slot t) override {
    sw_->Inject(cell, t);
  }
  const std::vector<sim::Cell>& Advance(sim::Slot t) override {
    return sw_->Advance(t);
  }
  bool Drained() const override { return sw_->Drained(); }
  std::int64_t TotalBacklog() const override { return sw_->TotalBacklog(); }
  sim::PortId num_ports() const override { return sw_->config().num_ports; }
  Capabilities capabilities() const override {
    return {.has_planes = false,
            .has_fault_surface = false,
            .has_global_snapshot = false,
            .lossless = true,
            .work_conserving = false};
  }
  void FailPlane(sim::PlaneId k, sim::Slot at) override {
    sw_->FailPlane(k, at);
  }
  void RecoverPlane(sim::PlaneId k, sim::Slot at) override {
    sw_->RecoverPlane(k, at);
  }

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override { sw_->SaveState(w); }
  void LoadState(ckpt::Reader& r) override { sw_->LoadState(r); }

  cioq::CioqSwitch& underlying() { return *sw_; }
  const cioq::CioqSwitch& underlying() const { return *sw_; }

 private:
  // ckpt-skip: ownership handle only; sw_ aliases it and the
  // pointee serializes through SaveState/LoadState above
  std::unique_ptr<cioq::CioqSwitch> owned_;
  cioq::CioqSwitch* sw_;
};

// The ideal work-conserving OQ switch — the shadow reference itself, now
// harness-runnable (measured against a second shadow it matches exactly,
// so its relative delay is identically zero: a registry smoke invariant).
class OutputQueuedFabric final : public Fabric {
 public:
  explicit OutputQueuedFabric(pps::OutputQueuedSwitch& sw)
      : Fabric("oq"), sw_(&sw) {}
  explicit OutputQueuedFabric(std::unique_ptr<pps::OutputQueuedSwitch> sw)
      : Fabric("oq"), owned_(std::move(sw)), sw_(owned_.get()) {}

  void Inject(const sim::Cell& cell, sim::Slot t) override {
    sw_->Inject(cell, t);
  }
  const std::vector<sim::Cell>& Advance(sim::Slot t) override {
    return sw_->Advance(t);
  }
  bool Drained() const override { return sw_->Drained(); }
  std::int64_t TotalBacklog() const override { return sw_->TotalBacklog(); }
  sim::PortId num_ports() const override { return sw_->num_ports(); }
  Capabilities capabilities() const override {
    return {.has_planes = false,
            .has_fault_surface = false,
            .has_global_snapshot = false,
            .lossless = true,
            .work_conserving = true};
  }

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override { sw_->SaveState(w); }
  void LoadState(ckpt::Reader& r) override { sw_->LoadState(r); }

  pps::OutputQueuedSwitch& underlying() { return *sw_; }
  const pps::OutputQueuedSwitch& underlying() const { return *sw_; }

 private:
  // ckpt-skip: ownership handle only; sw_ aliases it and the
  // pointee serializes through SaveState/LoadState above
  std::unique_ptr<pps::OutputQueuedSwitch> owned_;
  pps::OutputQueuedSwitch* sw_;
};

// The non-work-conserving rate-limited OQ switch (Discussion section):
// serves each output once every r' slots regardless of backlog.
class RateLimitedOqFabric final : public Fabric {
 public:
  explicit RateLimitedOqFabric(pps::RateLimitedOqSwitch& sw)
      : Fabric("rate-limited-oq"), sw_(&sw) {}
  explicit RateLimitedOqFabric(std::unique_ptr<pps::RateLimitedOqSwitch> sw)
      : Fabric("rate-limited-oq"), owned_(std::move(sw)), sw_(owned_.get()) {}

  void Inject(const sim::Cell& cell, sim::Slot t) override {
    sw_->Inject(cell, t);
  }
  const std::vector<sim::Cell>& Advance(sim::Slot t) override {
    return sw_->Advance(t);
  }
  bool Drained() const override { return sw_->Drained(); }
  std::int64_t TotalBacklog() const override { return sw_->TotalBacklog(); }
  sim::PortId num_ports() const override { return sw_->config().num_ports; }
  Capabilities capabilities() const override {
    return {.has_planes = false,
            .has_fault_surface = false,
            .has_global_snapshot = false,
            .lossless = true,
            .work_conserving = false};
  }

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override { sw_->SaveState(w); }
  void LoadState(ckpt::Reader& r) override { sw_->LoadState(r); }

  pps::RateLimitedOqSwitch& underlying() { return *sw_; }
  const pps::RateLimitedOqSwitch& underlying() const { return *sw_; }

 private:
  // ckpt-skip: ownership handle only; sw_ aliases it and the
  // pointee serializes through SaveState/LoadState above
  std::unique_ptr<pps::RateLimitedOqSwitch> owned_;
  pps::RateLimitedOqSwitch* sw_;
};

}  // namespace fabric
