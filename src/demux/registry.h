// Name-based construction of demultiplexing algorithms, for the examples
// and benchmark binaries.
//
// Bufferless:  "rr", "rr-per-output", "hash", "static-partition-d<D>",
//              "ftd-h<H>", "cpa", "stale-jsq-u<U>", "random",
//              "random-s<SEED>"
// Buffered:    "buffered-rr", "cpa-emulation-u<U>", "request-grant-u<U>"
#pragma once

#include <string>
#include <vector>

#include "switch/demux_iface.h"

namespace demux {

// Factory for a bufferless algorithm by name; throws sim::SimError on an
// unknown name.
pps::DemuxFactory MakeFactory(const std::string& name);

// Factory for an input-buffered algorithm by name.
pps::BufferedDemuxFactory MakeBufferedFactory(const std::string& name);

// All registered bufferless algorithm names, with representative
// parameters filled in for the parameterised families.
std::vector<std::string> BufferlessAlgorithms();
std::vector<std::string> BufferedAlgorithms();

// The switch-level requirements of an algorithm: whether planes must run
// booked scheduling and how much snapshot history the fabric must retain.
struct AlgorithmNeeds {
  bool booked_planes = false;
  int snapshot_history = 0;  // 0 = none needed
};
AlgorithmNeeds NeedsOf(const std::string& name);

}  // namespace demux
