// u-RT demultiplexor: join-shortest-queue on u-slot-stale global state
// (Definition 9).
//
// Every input sees the same global snapshot from slot t-u (plane backlogs
// per output) and augments it with what it knows locally: its own
// dispatches in the stale window (which the snapshot cannot include).  It
// then sends the cell to the plane with the smallest estimated backlog for
// the cell's output among planes whose input line is free, breaking ties
// by lowest plane id.
//
// With u = 0 (fed the live end-of-previous-slot snapshot) this is a decent
// centralized heuristic; as u grows every input chases the same stale
// minimum and the Theorem-10 burst adversary concentrates them on one
// plane: the information delay, not the heuristic, is what costs
// (1 - u'r/R) * u'N/S slots of relative delay.
#pragma once

#include <unordered_map>
#include <vector>

#include "switch/demux_iface.h"

namespace demux {

class StaleJsqDemux final : public pps::Demultiplexor {
 public:
  explicit StaleJsqDemux(int u) : u_(u) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  void OnSlotEnd(sim::Slot now) override;
  pps::InfoModel info_model() const override {
    return u_ == 0 ? pps::InfoModel::kCentralized
                   : pps::InfoModel::kRealTimeDistributed;
  }
  int info_delay() const override { return u_; }
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<StaleJsqDemux>(*this);
  }
  std::string name() const override {
    return "stale-jsq-u" + std::to_string(u_);
  }

  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  struct Recent {
    sim::Slot slot;
    sim::PlaneId plane;
    sim::PortId output;
  };

  // ckpt-skip: construction-time constant, identical on resume
  int u_;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  sim::PortId num_ports_ = 0;
  std::vector<Recent> recent_;  // own dispatches newer than the snapshot
};

}  // namespace demux
