#include "demux/round_robin.h"

#include "sim/error.h"

namespace demux {

sim::PlaneId FirstFreePlane(const pps::DispatchContext& ctx, int start) {
  const int k_count = static_cast<int>(ctx.input_link_free.size());
  for (int step = 0; step < k_count; ++step) {
    const int k = (start + step) % k_count;
    if (ctx.input_link_free[static_cast<std::size_t>(k)]) {
      return static_cast<sim::PlaneId>(k);
    }
  }
  // No usable line: only possible with K < r' (misconfiguration, rejected
  // elsewhere) or after plane failures — the cell is dropped at the input.
  return sim::kNoPlane;
}

void RoundRobinDemux::Reset(const pps::SwitchConfig& config,
                            sim::PortId input) {
  (void)input;
  num_planes_ = config.num_planes;
  pointer_ = 0;
}

pps::DispatchDecision RoundRobinDemux::Dispatch(
    const sim::Cell& cell, const pps::DispatchContext& ctx) {
  (void)cell;
  const sim::PlaneId k = FirstFreePlane(ctx, pointer_);
  if (k == sim::kNoPlane) return {sim::kNoPlane, sim::kNoSlot};
  pointer_ = (static_cast<int>(k) + 1) % num_planes_;
  return {k, sim::kNoSlot};
}

void PerOutputRoundRobinDemux::Reset(const pps::SwitchConfig& config,
                                     sim::PortId input) {
  (void)input;
  num_planes_ = config.num_planes;
  pointer_.assign(static_cast<std::size_t>(config.num_ports), 0);
}

pps::DispatchDecision PerOutputRoundRobinDemux::Dispatch(
    const sim::Cell& cell, const pps::DispatchContext& ctx) {
  int& p = pointer_[static_cast<std::size_t>(cell.output)];
  const sim::PlaneId k = FirstFreePlane(ctx, p);
  if (k == sim::kNoPlane) return {sim::kNoPlane, sim::kNoSlot};
  p = (static_cast<int>(k) + 1) % num_planes_;
  return {k, sim::kNoSlot};
}

}  // namespace demux
