#include "demux/round_robin.h"

#include "ckpt/serializer.h"

#include "sim/error.h"

namespace demux {

sim::PlaneId FirstFreePlane(const pps::DispatchContext& ctx, int start) {
  const int k_count = static_cast<int>(ctx.input_link_free.size());
  for (int step = 0; step < k_count; ++step) {
    const int k = (start + step) % k_count;
    if (ctx.input_link_free[static_cast<std::size_t>(k)]) {
      return static_cast<sim::PlaneId>(k);
    }
  }
  // No usable line: only possible with K < r' (misconfiguration, rejected
  // elsewhere) or after plane failures — the cell is dropped at the input.
  return sim::kNoPlane;
}

void RoundRobinDemux::Reset(const pps::SwitchConfig& config,
                            sim::PortId input) {
  (void)input;
  num_planes_ = config.num_planes;
  pointer_ = 0;
}

pps::DispatchDecision RoundRobinDemux::Dispatch(
    const sim::Cell& cell, const pps::DispatchContext& ctx) {
  (void)cell;
  const sim::PlaneId k = FirstFreePlane(ctx, pointer_);
  if (k == sim::kNoPlane) return {sim::kNoPlane, sim::kNoSlot};
  pointer_ = (static_cast<int>(k) + 1) % num_planes_;
  return {k, sim::kNoSlot};
}

void PerOutputRoundRobinDemux::Reset(const pps::SwitchConfig& config,
                                     sim::PortId input) {
  (void)input;
  num_planes_ = config.num_planes;
  pointer_.assign(static_cast<std::size_t>(config.num_ports), 0);
}

pps::DispatchDecision PerOutputRoundRobinDemux::Dispatch(
    const sim::Cell& cell, const pps::DispatchContext& ctx) {
  int& p = pointer_[static_cast<std::size_t>(cell.output)];
  const sim::PlaneId k = FirstFreePlane(ctx, p);
  if (k == sim::kNoPlane) return {sim::kNoPlane, sim::kNoSlot};
  p = (static_cast<int>(k) + 1) % num_planes_;
  return {k, sim::kNoSlot};
}


void RoundRobinDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXRR");
  w.I32(pointer_);
}

void RoundRobinDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXRR");
  pointer_ = r.I32();
  // FirstFreePlane does (start + step) % K: a negative pointer from corrupt
  // bytes would index input_link_free out of bounds.
  SIM_CHECK(pointer_ >= 0 && pointer_ < num_planes_,
            "round-robin checkpoint pointer " << pointer_ << " outside [0, "
                                              << num_planes_ << ")");
}

void PerOutputRoundRobinDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXRO");
  w.Size(pointer_.size());
  for (int p : pointer_) w.I32(p);
}

void PerOutputRoundRobinDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXRO");
  SIM_CHECK(r.Size() == pointer_.size(),
            "round-robin checkpoint has a different port count");
  for (int& p : pointer_) {
    p = r.I32();
    SIM_CHECK(p >= 0 && p < num_planes_,
              "round-robin checkpoint pointer " << p << " outside [0, "
                                                << num_planes_ << ")");
  }
}

}  // namespace demux
