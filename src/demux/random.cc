#include "demux/random.h"

#include "ckpt/serializer.h"

#include "sim/error.h"

namespace demux {

void RandomDemux::Reset(const pps::SwitchConfig& config, sim::PortId input) {
  num_planes_ = config.num_planes;
  // Independent stream per input, reproducible from the base seed.
  rng_ = sim::Rng(seed_).Fork(static_cast<std::uint64_t>(input));
}

pps::DispatchDecision RandomDemux::Dispatch(const sim::Cell& cell,
                                            const pps::DispatchContext& ctx) {
  (void)cell;
  int free_count = 0;
  for (int k = 0; k < num_planes_; ++k) {
    if (ctx.input_link_free[static_cast<std::size_t>(k)]) ++free_count;
  }
  if (free_count == 0) return {sim::kNoPlane, sim::kNoSlot};
  auto pick = static_cast<int>(
      rng_.UniformInt(static_cast<std::uint64_t>(free_count)));
  for (int k = 0; k < num_planes_; ++k) {
    if (!ctx.input_link_free[static_cast<std::size_t>(k)]) continue;
    if (pick-- == 0) return {static_cast<sim::PlaneId>(k), sim::kNoSlot};
  }
  SIM_CHECK(false, "unreachable");
  return {};
}


void RandomDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXRD");
  ckpt::SaveRng(w, rng_);
}

void RandomDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXRD");
  ckpt::LoadRng(r, rng_);
}

}  // namespace demux
