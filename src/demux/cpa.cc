#include "demux/cpa.h"

#include "ckpt/serializer.h"

#include <algorithm>
#include <limits>

#include "sim/error.h"

namespace demux {

void CpaCore::Reset(const pps::SwitchConfig& config) {
  config_ = config;
  SIM_CHECK(config.num_planes >= 2 * config.rate_ratio - 1,
            "CPA requires K >= 2r'-1 (speedup >= 2 - r/R); got K="
                << config.num_planes << " r'=" << config.rate_ratio);
  SIM_CHECK(config.plane_scheduling == pps::PlaneScheduling::kBooked,
            "CPA requires booked plane scheduling");
  next_dep_.assign(static_cast<std::size_t>(config.num_ports), 0);
  bookings_ = std::make_unique<pps::ReservationBank>(
      config.num_planes, config.num_ports, config.rate_ratio);
  rotate_ = 0;
}

sim::Slot CpaCore::PeekDeparture(sim::PortId output, sim::Slot now) const {
  return std::max(now, next_dep_[static_cast<std::size_t>(output)]);
}

pps::DispatchDecision CpaCore::Assign(
    sim::PortId output, sim::Slot now,
    std::span<const bool> input_link_free) {
  const sim::Slot dep = PeekDeparture(output, now);
  for (int step = 0; step < config_.num_planes; ++step) {
    const int k = (rotate_ + step) % config_.num_planes;
    if (!input_link_free[static_cast<std::size_t>(k)]) continue;
    if (bookings_->Conflicts(k, output, dep)) continue;
    bookings_->Reserve(k, output, dep);
    next_dep_[static_cast<std::size_t>(output)] = sim::SlotPlus(dep, 1);
    rotate_ = (k + 1) % config_.num_planes;
    return {static_cast<sim::PlaneId>(k), dep};
  }
  SIM_CHECK(false, "CPA found no plane — speedup below 2 - r/R?");
  return {};
}

void CpaCore::EndOfSlot(sim::Slot now) {
  // A booking at slot s conflicts with future bookings only while
  // s > dep - r'; future deps are >= now + 1... wait, deps can equal now+1
  // onward, so bookings with s <= now - r' + 1 can never conflict again.
  bookings_->ExpireBefore(sim::SlotPlus(now, 2 - config_.rate_ratio));
}

void CpaDemux::Reset(const pps::SwitchConfig& config, sim::PortId input) {
  input_ = input;
  if (input == 0) core_->Reset(config);  // fabric resets port 0 first
}

pps::DispatchDecision CpaDemux::Dispatch(const sim::Cell& cell,
                                         const pps::DispatchContext& ctx) {
  return core_->Assign(cell.output, ctx.now, ctx.input_link_free);
}

void CpaDemux::OnSlotEnd(sim::Slot now) {
  if (input_ == 0) core_->EndOfSlot(now);
}

pps::DemuxFactory MakeCpaFactory() {
  auto core = std::make_shared<CpaCore>();
  return [core](sim::PortId) -> std::unique_ptr<pps::Demultiplexor> {
    return std::make_unique<CpaDemux>(core);
  };
}

void CpaCore::SaveState(ckpt::Writer& w) const {
  w.Marker("CPAC");
  w.Size(next_dep_.size());
  for (sim::Slot d : next_dep_) w.I64(d);
  bookings_->SaveState(w);
  w.I32(rotate_);
}

void CpaCore::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("CPAC");
  SIM_CHECK(r.Size() == next_dep_.size(),
            "CPA checkpoint has a different port count");
  for (sim::Slot& d : next_dep_) {
    d = r.I64();
    // Departure horizons feed SlotPlus: they must be genuine non-negative
    // slots with headroom, not a sentinel or corrupt extreme.
    SIM_CHECK(d >= 0 && d < std::numeric_limits<sim::Slot>::max(),
              "CPA checkpoint departure horizon " << d << " is not a slot");
  }
  bookings_->LoadState(r);
  rotate_ = r.I32();
  SIM_CHECK(rotate_ >= 0 && rotate_ < config_.num_planes,
            "CPA checkpoint rotation pointer " << rotate_ << " outside [0, "
                                               << config_.num_planes << ")");
}

void CpaDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXCP");
  if (input_ == 0) core_->SaveState(w);
}

void CpaDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXCP");
  if (input_ == 0) core_->LoadState(r);
}

}  // namespace demux
