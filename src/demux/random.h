// Randomized fully-distributed demultiplexor: each cell goes to a plane
// chosen uniformly at random among those with a free input line.
//
// The paper's discussion notes that "our lower bounds present worst-case
// traffics also for randomized demultiplexing algorithms, but it would be
// interesting to study the distribution of the relative queuing delay when
// randomization is employed".  This class makes that study runnable
// (bench_randomized):
//   * against a *white-box* adversary that knows the seed, randomization
//     buys nothing — the demultiplexor is still a deterministic state
//     machine (Clone() copies the RNG state), so the Theorem-6 alignment
//     machinery applies unchanged;
//   * against an *oblivious* adversary (traffic fixed before seeds are
//     drawn), the burst spreads Binomial(d, 1/K) per plane and the
//     expected concentration drops from d to ~d/K + O(sqrt(d log K)).
#pragma once

#include "sim/rng.h"
#include "switch/demux_iface.h"

namespace demux {

class RandomDemux final : public pps::Demultiplexor {
 public:
  explicit RandomDemux(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kFullyDistributed;
  }
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<RandomDemux>(*this);
  }
  std::string name() const override { return "random"; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  // ckpt-skip: construction-time constant; the live rng_ stream is saved
  std::uint64_t seed_;
  sim::Rng rng_;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
};

}  // namespace demux
