// The centralized demultiplexing algorithm (CPA) of Iyer, Awadallah &
// McKeown [14]: with speedup S >= 2 a bufferless PPS exactly mimics a
// global-FCFS output-queued switch — zero relative queuing delay.
//
// Mechanism: the (conceptually single) centralized scheduler tracks the
// shadow FCFS OQ switch's departure time for every arriving cell —
// dep = max(now, one slot after the previous departure for that output) —
// and books, at dispatch time, the exact slot at which some plane will
// deliver the cell to its output port.  A plane is usable if
//   (a) the input line (i, k) is free now            [input constraint]
//   (b) no earlier booking on line (k, j) lies within r'-1 slots of dep
//                                                    [output constraint]
// Since departures per output are assigned in increasing order, at most
// r'-1 planes are excluded by (b) and at most r'-1 by (a); with
// K >= 2r'-1 (S >= 2 - r/R) a plane always exists.  The planes run in
// kBooked scheduling mode and deliver each cell exactly at its booked
// slot, so every cell leaves the PPS in the same slot it would leave the
// reference switch.
//
// The paper (and [14]) stress CPA is impractical — it "gathers information
// from all the input-ports in every scheduling decision" — which is
// precisely why the lower bounds for distributed algorithms matter.  Here
// it serves as the zero-RQD upper-bound baseline (experiment E8).
#pragma once

#include <memory>
#include <vector>

#include "switch/demux_iface.h"
#include "switch/link.h"

namespace demux {

// Shared centralized state; one instance serves all N per-input demux
// facades.  Dispatch order (input order within a slot) equals the shadow
// switch's FCFS tie-break, so the virtual departure times match exactly.
class CpaCore {
 public:
  void Reset(const pps::SwitchConfig& config);

  pps::DispatchDecision Assign(sim::PortId output, sim::Slot now,
                               std::span<const bool> input_link_free);

  // The shadow FCFS departure the core would assign next for `output` at
  // `now` (exposed for tests).
  sim::Slot PeekDeparture(sim::PortId output, sim::Slot now) const;

  void EndOfSlot(sim::Slot now);

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  pps::SwitchConfig config_;
  std::vector<sim::Slot> next_dep_;                 // per output
  std::unique_ptr<pps::ReservationBank> bookings_;  // K x N output lines
  int rotate_ = 0;  // spreads choices over planes for load balance
};

class CpaDemux final : public pps::Demultiplexor {
 public:
  explicit CpaDemux(std::shared_ptr<CpaCore> core) : core_(std::move(core)) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  void OnSlotEnd(sim::Slot now) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kCentralized;
  }
  // All N facades mutate one CpaCore, and its within-slot decisions are
  // order-dependent (FCFS departure assignment): never shard CPA inputs.
  bool shard_independent() const override { return false; }
  // Clones share the centralized core: CPA is one algorithm, not N state
  // machines, so white-box adversary probing (which targets distributed
  // algorithms) does not apply.
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<CpaDemux>(core_);
  }
  std::string name() const override { return "cpa"; }

  // The shared core serializes once, through the input-0 facade; the
  // other facades contribute only a marker.
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  std::shared_ptr<CpaCore> core_;
  sim::PortId input_ = 0;
};

// Factory wiring one shared core into all N ports.  The returned factory
// owns the core.
pps::DemuxFactory MakeCpaFactory();

}  // namespace demux
