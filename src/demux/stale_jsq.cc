#include "demux/stale_jsq.h"

#include "ckpt/serializer.h"

#include <algorithm>

#include "sim/error.h"

namespace demux {

void StaleJsqDemux::Reset(const pps::SwitchConfig& config, sim::PortId input) {
  (void)input;
  SIM_CHECK(u_ >= 0, "information delay must be >= 0");
  SIM_CHECK(config.snapshot_history > u_,
            "snapshot_history must exceed the information delay u");
  num_planes_ = config.num_planes;
  num_ports_ = config.num_ports;
  recent_.clear();
}

pps::DispatchDecision StaleJsqDemux::Dispatch(const sim::Cell& cell,
                                              const pps::DispatchContext& ctx) {
  sim::PlaneId best = sim::kNoPlane;
  std::int64_t best_backlog = 0;
  for (int k = 0; k < num_planes_; ++k) {
    if (!ctx.input_link_free[static_cast<std::size_t>(k)]) continue;
    std::int64_t backlog = 0;
    if (ctx.global != nullptr) {
      backlog = ctx.global->PlaneBacklog(k, cell.output, num_ports_);
      // Local correction: count our own dispatches to (k, output) that are
      // newer than the snapshot — local information is always current.
      for (const Recent& r : recent_) {
        if (r.plane == k && r.output == cell.output &&
            r.slot > ctx.global->slot) {
          ++backlog;
        }
      }
    }
    if (best == sim::kNoPlane || backlog < best_backlog) {
      best = static_cast<sim::PlaneId>(k);
      best_backlog = backlog;
    }
  }
  if (best == sim::kNoPlane) return {sim::kNoPlane, sim::kNoSlot};
  recent_.push_back({ctx.now, best, cell.output});
  return {best, sim::kNoSlot};
}

void StaleJsqDemux::OnSlotEnd(sim::Slot now) {
  // Drop records old enough to be covered by any snapshot we will see.
  const sim::Slot horizon = sim::SlotDifference(now, u_ + 1);
  recent_.erase(std::remove_if(recent_.begin(), recent_.end(),
                               [horizon](const Recent& r) {
                                 return r.slot <= horizon;
                               }),
                recent_.end());
}


void StaleJsqDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXSJ");
  w.Size(recent_.size());
  for (const Recent& rec : recent_) {
    w.I64(rec.slot);
    w.I32(rec.plane);
    w.I32(rec.output);
  }
}

void StaleJsqDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXSJ");
  recent_.clear();
  const std::size_t n = r.Count();
  recent_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Recent rec;
    rec.slot = r.I64();
    rec.plane = r.I32();
    rec.output = r.I32();
    recent_.push_back(rec);
  }
}

}  // namespace demux
