// Demultiplexors for the input-buffered PPS (Section 4 of the paper).
//
//   * BufferedRoundRobinDemux — fully-distributed baseline: greedy,
//     work-conserving at the input (launches the oldest buffered cells
//     onto whatever lines are free, plane chosen per-output round-robin).
//     Theorem 13's subject: no buffer size saves a fully-distributed
//     algorithm from (1 - r/R) N/S relative queuing delay.
//
//   * CpaEmulationDemux — the Theorem-12 construction: a u-RT algorithm
//     that holds every arriving cell for exactly u slots and then replays
//     the centralized CPA decision, shifted u slots into the future.  The
//     global information needed for the shifted decision (the FCFS
//     departure order of cells that arrived at t) is u slots old by launch
//     time, so the algorithm is u-RT; buffers of size u suffice (at most
//     one cell arrives per slot), and every cell leaves exactly u slots
//     after its shadow departure: relative queuing delay <= u.
//
//   * RequestGrantDemux — an arbitrated-crossbar-style u-RT algorithm
//     (Tamir & Chi [22]): the input posts a request on arrival; a central
//     arbiter answers after a round-trip of u slots with a plane grant
//     (per-output round-robin over planes); the cell waits in the input
//     buffer for its grant, then launches when its line frees up.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "switch/demux_iface.h"
#include "switch/link.h"

namespace demux {

class BufferedRoundRobinDemux final : public pps::BufferedDemultiplexor {
 public:
  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::BufferedDecision Decide(const pps::BufferedContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kFullyDistributed;
  }
  std::unique_ptr<pps::BufferedDemultiplexor> Clone() const override {
    return std::make_unique<BufferedRoundRobinDemux>(*this);
  }
  std::string name() const override { return "buffered-rr"; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
  std::vector<int> pointer_;  // per output
};

// --- Theorem 12: CPA emulation with u-delayed information ------------------

// Shared state of the emulated centralized scheduler.
class CpaEmulationCore {
 public:
  void Reset(const pps::SwitchConfig& config, int u);

  struct Plan {
    sim::Slot launch;  // arrival + u
    sim::Slot booked;  // shadow departure + u
  };

  // Called on arrival (order of calls = FCFS order of the shadow switch).
  Plan PlanFor(sim::PortId output, sim::Slot now);

  // Called at launch time: picks a plane for the planned booking.  The
  // caller passes its current view of free input lines (already excluding
  // lines it used earlier in the same slot).
  pps::DispatchDecision Assign(sim::PortId output, const Plan& plan,
                               const std::vector<bool>& input_link_free);

  void EndOfSlot(sim::Slot now);
  int u() const { return u_; }

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  pps::SwitchConfig config_;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int u_ = 0;
  std::vector<sim::Slot> next_dep_;
  std::unique_ptr<pps::ReservationBank> bookings_;
};

class CpaEmulationDemux final : public pps::BufferedDemultiplexor {
 public:
  explicit CpaEmulationDemux(std::shared_ptr<CpaEmulationCore> core, int u)
      : core_(std::move(core)), u_(u) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::BufferedDecision Decide(const pps::BufferedContext& ctx) override;
  pps::InfoModel info_model() const override {
    return u_ == 0 ? pps::InfoModel::kCentralized
                   : pps::InfoModel::kRealTimeDistributed;
  }
  int info_delay() const override { return u_; }
  // Shares the emulated centralized scheduler across inputs; decisions
  // are order-dependent within a slot (FCFS plan assignment).
  bool shard_independent() const override { return false; }
  std::unique_ptr<pps::BufferedDemultiplexor> Clone() const override {
    return std::make_unique<CpaEmulationDemux>(*this);
  }
  std::string name() const override {
    return "cpa-emulation-u" + std::to_string(u_);
  }

  // Shared core serializes once, through the input-0 facade; every facade
  // serializes its own pending-plan map.
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  std::shared_ptr<CpaEmulationCore> core_;
  // ckpt-skip: construction-time constant, identical on resume
  int u_;
  sim::PortId input_ = 0;
  std::unordered_map<sim::CellId, CpaEmulationCore::Plan> plans_;
};

// Factory for a PPS-wide CPA emulation (one shared core).  Use with
// SwitchConfig{input_buffer_size >= u, plane_scheduling = kBooked,
// snapshot_history > u}.
pps::BufferedDemuxFactory MakeCpaEmulationFactory(int u);

// --- Arbitrated crossbar (request-grant) -----------------------------------

class ArbiterCore {
 public:
  void Reset(const pps::SwitchConfig& config, int u);

  // Input posts a request for `output` at slot `now`; the grant (a plane)
  // becomes visible to the input at slot now + u.
  void Request(sim::CellId cell, sim::PortId output, sim::Slot now);

  // Plane granted to `cell`, or kNoPlane if the grant has not arrived yet.
  sim::PlaneId GrantFor(sim::CellId cell, sim::Slot now) const;

  void Forget(sim::CellId cell);

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  struct Grant {
    sim::Slot visible_at;
    sim::PlaneId plane;
  };
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int u_ = 0;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
  std::vector<int> rr_;  // per output
  std::unordered_map<sim::CellId, Grant> grants_;
};

class RequestGrantDemux final : public pps::BufferedDemultiplexor {
 public:
  RequestGrantDemux(std::shared_ptr<ArbiterCore> core, int u)
      : core_(std::move(core)), u_(u) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::BufferedDecision Decide(const pps::BufferedContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kRealTimeDistributed;
  }
  int info_delay() const override { return u_; }
  // Shares the central arbiter across inputs (request order feeds the
  // per-output round-robin grants).
  bool shard_independent() const override { return false; }
  std::unique_ptr<pps::BufferedDemultiplexor> Clone() const override {
    return std::make_unique<RequestGrantDemux>(*this);
  }
  std::string name() const override {
    return "request-grant-u" + std::to_string(u_);
  }

  // Shared arbiter serializes once, through the input-0 facade.
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  std::shared_ptr<ArbiterCore> core_;
  // ckpt-skip: construction-time constant, identical on resume
  int u_;
  sim::PortId input_ = 0;
};

pps::BufferedDemuxFactory MakeRequestGrantFactory(int u);

}  // namespace demux
