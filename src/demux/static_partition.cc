#include "demux/static_partition.h"

#include "ckpt/serializer.h"

#include "sim/error.h"

namespace demux {

std::vector<sim::PlaneId> StaticPartitionDemux::PlanesFor(sim::PortId input,
                                                          int d,
                                                          int num_planes) {
  std::vector<sim::PlaneId> planes;
  planes.reserve(static_cast<std::size_t>(d));
  // Staggered window: input i uses planes {i, i+1, ..., i+d-1} mod K, so
  // plane k is shared by min(d, ...) ~ N*d/K inputs when N >= K.
  for (int m = 0; m < d; ++m) {
    planes.push_back(static_cast<sim::PlaneId>((input + m) % num_planes));
  }
  return planes;
}

void StaticPartitionDemux::Reset(const pps::SwitchConfig& config,
                                 sim::PortId input) {
  SIM_CHECK(d_ >= config.rate_ratio,
            "static partition with d=" << d_ << " < r'=" << config.rate_ratio
                                       << " cannot sustain the line rate");
  SIM_CHECK(d_ <= config.num_planes, "d exceeds K");
  planes_ = PlanesFor(input, d_, config.num_planes);
  pointer_ = 0;
}

pps::DispatchDecision StaticPartitionDemux::Dispatch(
    const sim::Cell& cell, const pps::DispatchContext& ctx) {
  (void)cell;
  for (std::size_t step = 0; step < planes_.size(); ++step) {
    const std::size_t slot = (pointer_ + step) % planes_.size();
    const sim::PlaneId k = planes_[slot];
    if (ctx.input_link_free[static_cast<std::size_t>(k)]) {
      pointer_ = (slot + 1) % planes_.size();
      return {k, sim::kNoSlot};
    }
  }
  // Every plane of the static subset is busy or failed: the partitioned
  // design drops the cell — exactly the fragility the paper's
  // fault-tolerance argument (Section 3) points at.
  return {sim::kNoPlane, sim::kNoSlot};
}


void StaticPartitionDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXSP");
  w.Size(pointer_);
}

void StaticPartitionDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXSP");
  pointer_ = r.Size();
  SIM_CHECK(planes_.empty() || pointer_ < planes_.size(),
            "static-partition checkpoint pointer out of range");
}

}  // namespace demux
