// Hash-based fully-distributed demultiplexor: plane chosen by hashing the
// destination, offset by a per-input cell counter to satisfy the input
// constraint.  Stateless across flows (the hash is fixed), so flows to the
// same output from different inputs collide on the same plane orbit — a
// common commercial shortcut, and another concrete target for the
// Theorem-6 adversary.
#pragma once

#include <cstdint>

#include "switch/demux_iface.h"

namespace demux {

class HashDemux final : public pps::Demultiplexor {
 public:
  explicit HashDemux(std::uint64_t salt = 0) : salt_(salt) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kFullyDistributed;
  }
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<HashDemux>(*this);
  }
  std::string name() const override { return "hash"; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  // ckpt-skip: construction-time constant, identical on resume
  std::uint64_t salt_;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
  std::uint64_t counter_ = 0;  // advances once per arriving cell
};

}  // namespace demux
