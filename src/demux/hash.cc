#include "demux/hash.h"

#include "ckpt/serializer.h"

#include "demux/round_robin.h"

namespace demux {
namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

void HashDemux::Reset(const pps::SwitchConfig& config, sim::PortId input) {
  (void)input;
  num_planes_ = config.num_planes;
  counter_ = 0;
}

pps::DispatchDecision HashDemux::Dispatch(const sim::Cell& cell,
                                          const pps::DispatchContext& ctx) {
  const std::uint64_t h =
      Mix(static_cast<std::uint64_t>(cell.output) * 0x9e3779b97f4a7c15ull +
          salt_);
  const int start = static_cast<int>(
      (h + counter_) % static_cast<std::uint64_t>(num_planes_));
  ++counter_;
  return {FirstFreePlane(ctx, start), sim::kNoSlot};
}


void HashDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXHA");
  w.U64(counter_);
}

void HashDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXHA");
  counter_ = r.U64();
}

}  // namespace demux
