// Static plane partitioning: the d-partitioned fully-distributed
// demultiplexor of Theorem 6 / Theorem 8.
//
// Each input i is statically assigned a subset P_i of d planes (d >= r',
// otherwise the input constraint cannot be met at full line rate: "each
// demultiplexor must send incoming cells through at least r' planes") and
// round-robins inside its subset.  The default assignment staggers subsets
// so every plane is used by roughly N*d/K inputs — the pigeonhole count in
// Theorem 8's proof ("there is a plane k that is used by at least r'N/K
// demultiplexors").
//
// The paper also notes static partitioning is failure-prone: losing a
// plane strands 1/d of each assigned input's capacity, versus 1/K when
// unpartitioned (Corollary 7's fault-tolerance motivation).
#pragma once

#include <vector>

#include "switch/demux_iface.h"

namespace demux {

class StaticPartitionDemux final : public pps::Demultiplexor {
 public:
  // d = planes per input.  d must satisfy r' <= d <= K.
  explicit StaticPartitionDemux(int d) : d_(d) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kFullyDistributed;
  }
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<StaticPartitionDemux>(*this);
  }
  std::string name() const override {
    return "static-partition-d" + std::to_string(d_);
  }

  // The subset of planes input i uses under the default staggered
  // assignment; exposed so adversaries and tests can compute the plane
  // with maximal sharing without probing.
  static std::vector<sim::PlaneId> PlanesFor(sim::PortId input, int d,
                                             int num_planes);

  const std::vector<sim::PlaneId>& planes() const { return planes_; }

  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  // ckpt-skip: construction-time constant, identical on resume
  int d_;
  // ckpt-skip: recomputed by Reset from d_ and the switch config;
  // LoadState only cross-checks it
  std::vector<sim::PlaneId> planes_;
  std::size_t pointer_ = 0;
};

}  // namespace demux
