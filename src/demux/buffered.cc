#include "demux/buffered.h"

#include "ckpt/serializer.h"

#include <algorithm>
#include <limits>

#include "sim/error.h"

namespace demux {
namespace {

// Local mutable copy of the free-line view, so one Decide call can launch
// several cells without reusing a line.
std::vector<bool> CopyFree(std::span<const bool> free) {
  return std::vector<bool>(free.begin(), free.end());
}

}  // namespace

void BufferedRoundRobinDemux::Reset(const pps::SwitchConfig& config,
                                    sim::PortId input) {
  (void)input;
  num_planes_ = config.num_planes;
  pointer_.assign(static_cast<std::size_t>(config.num_ports), 0);
}

pps::BufferedDecision BufferedRoundRobinDemux::Decide(
    const pps::BufferedContext& ctx) {
  pps::BufferedDecision decision;
  decision.buffered.assign(ctx.buffer.size(), pps::DispatchDecision{});
  std::vector<bool> avail = CopyFree(ctx.input_link_free);

  auto try_launch = [&](sim::PortId output) -> sim::PlaneId {
    int& p = pointer_[static_cast<std::size_t>(output)];
    for (int step = 0; step < num_planes_; ++step) {
      const int k = (p + step) % num_planes_;
      if (!avail[static_cast<std::size_t>(k)]) continue;
      avail[static_cast<std::size_t>(k)] = false;
      p = (k + 1) % num_planes_;
      return static_cast<sim::PlaneId>(k);
    }
    return sim::kNoPlane;
  };

  // Oldest first (buffer front), then the incoming cell.
  for (std::size_t b = 0; b < ctx.buffer.size(); ++b) {
    decision.buffered[b].plane = try_launch(ctx.buffer[b].output);
  }
  if (ctx.incoming != nullptr) {
    decision.incoming.plane = try_launch(ctx.incoming->output);
  }
  return decision;
}

// --- CPA emulation ----------------------------------------------------------

void CpaEmulationCore::Reset(const pps::SwitchConfig& config, int u) {
  config_ = config;
  u_ = u;
  SIM_CHECK(u >= 0, "u must be >= 0");
  SIM_CHECK(config.num_planes >= 2 * config.rate_ratio - 1,
            "CPA emulation requires K >= 2r'-1 (speedup >= 2 - r/R)");
  SIM_CHECK(config.plane_scheduling == pps::PlaneScheduling::kBooked,
            "CPA emulation requires booked plane scheduling");
  SIM_CHECK(config.input_buffer_size >= std::max(u, 1),
            "Theorem 12 needs input buffers of at least u cells");
  next_dep_.assign(static_cast<std::size_t>(config.num_ports), 0);
  bookings_ = std::make_unique<pps::ReservationBank>(
      config.num_planes, config.num_ports, config.rate_ratio);
}

CpaEmulationCore::Plan CpaEmulationCore::PlanFor(sim::PortId output,
                                                 sim::Slot now) {
  // The shadow FCFS departure, exactly as the bufferless CPA computes it.
  sim::Slot& next = next_dep_[static_cast<std::size_t>(output)];
  const sim::Slot dep = std::max(now, next);
  next = sim::SlotPlus(dep, 1);
  return {sim::SlotPlus(now, u_), sim::SlotPlus(dep, u_)};
}

pps::DispatchDecision CpaEmulationCore::Assign(
    sim::PortId output, const Plan& plan,
    const std::vector<bool>& input_link_free) {
  for (int k = 0; k < config_.num_planes; ++k) {
    if (!input_link_free[static_cast<std::size_t>(k)]) continue;
    if (bookings_->Conflicts(k, output, plan.booked)) continue;
    bookings_->Reserve(k, output, plan.booked);
    return {static_cast<sim::PlaneId>(k), plan.booked};
  }
  SIM_CHECK(false, "CPA emulation found no plane — speedup below 2 - r/R?");
  return {};
}

void CpaEmulationCore::EndOfSlot(sim::Slot now) {
  bookings_->ExpireBefore(sim::SlotPlus(now, 2 - config_.rate_ratio));
}

void CpaEmulationDemux::Reset(const pps::SwitchConfig& config,
                              sim::PortId input) {
  input_ = input;
  if (input == 0) core_->Reset(config, u_);
  plans_.clear();
}

pps::BufferedDecision CpaEmulationDemux::Decide(
    const pps::BufferedContext& ctx) {
  pps::BufferedDecision decision;
  decision.buffered.assign(ctx.buffer.size(), pps::DispatchDecision{});
  std::vector<bool> avail = CopyFree(ctx.input_link_free);

  // Launch buffered cells whose u-slot hold expired.  Launch order within
  // the slot equals arrival order, so bookings per output are reserved in
  // increasing order and the 2r'-1 counting argument applies unchanged.
  for (std::size_t b = 0; b < ctx.buffer.size(); ++b) {
    const sim::Cell& cell = ctx.buffer[b];
    auto it = plans_.find(cell.id);
    SIM_CHECK(it != plans_.end(), "buffered cell without a plan: " << cell);
    if (it->second.launch > ctx.now) continue;
    decision.buffered[b] = core_->Assign(cell.output, it->second, avail);
    avail[static_cast<std::size_t>(decision.buffered[b].plane)] = false;
    plans_.erase(it);
  }

  if (ctx.incoming != nullptr) {
    const CpaEmulationCore::Plan plan =
        core_->PlanFor(ctx.incoming->output, ctx.now);
    if (plan.launch <= ctx.now) {
      decision.incoming = core_->Assign(ctx.incoming->output, plan, avail);
    } else {
      plans_.emplace(ctx.incoming->id, plan);
    }
  }

  // End-of-slot housekeeping, once per slot (done by the last input).
  if (input_ == 0) core_->EndOfSlot(ctx.now);
  return decision;
}

pps::BufferedDemuxFactory MakeCpaEmulationFactory(int u) {
  auto core = std::make_shared<CpaEmulationCore>();
  return [core, u](sim::PortId) -> std::unique_ptr<pps::BufferedDemultiplexor> {
    return std::make_unique<CpaEmulationDemux>(core, u);
  };
}

// --- Request-grant arbiter --------------------------------------------------

void ArbiterCore::Reset(const pps::SwitchConfig& config, int u) {
  u_ = u;
  num_planes_ = config.num_planes;
  rr_.assign(static_cast<std::size_t>(config.num_ports), 0);
  grants_.clear();
}

void ArbiterCore::Request(sim::CellId cell, sim::PortId output,
                          sim::Slot now) {
  int& p = rr_[static_cast<std::size_t>(output)];
  grants_[cell] = {sim::SlotPlus(now, u_), static_cast<sim::PlaneId>(p)};
  p = (p + 1) % num_planes_;
}

sim::PlaneId ArbiterCore::GrantFor(sim::CellId cell, sim::Slot now) const {
  auto it = grants_.find(cell);
  if (it == grants_.end() || it->second.visible_at > now) return sim::kNoPlane;
  return it->second.plane;
}

void ArbiterCore::Forget(sim::CellId cell) { grants_.erase(cell); }

void RequestGrantDemux::Reset(const pps::SwitchConfig& config,
                              sim::PortId input) {
  input_ = input;
  SIM_CHECK(u_ >= 0, "u must be >= 0");
  if (input == 0) core_->Reset(config, u_);
}

pps::BufferedDecision RequestGrantDemux::Decide(
    const pps::BufferedContext& ctx) {
  pps::BufferedDecision decision;
  decision.buffered.assign(ctx.buffer.size(), pps::DispatchDecision{});
  std::vector<bool> avail = CopyFree(ctx.input_link_free);

  auto try_launch = [&](const sim::Cell& cell) -> sim::PlaneId {
    const sim::PlaneId k = core_->GrantFor(cell.id, ctx.now);
    if (k == sim::kNoPlane) return sim::kNoPlane;  // grant still in flight
    if (!avail[static_cast<std::size_t>(k)]) return sim::kNoPlane;
    avail[static_cast<std::size_t>(k)] = false;
    core_->Forget(cell.id);
    return k;
  };

  for (std::size_t b = 0; b < ctx.buffer.size(); ++b) {
    decision.buffered[b].plane = try_launch(ctx.buffer[b]);
  }
  if (ctx.incoming != nullptr) {
    core_->Request(ctx.incoming->id, ctx.incoming->output, ctx.now);
    decision.incoming.plane = try_launch(*ctx.incoming);
  }
  return decision;
}

pps::BufferedDemuxFactory MakeRequestGrantFactory(int u) {
  auto core = std::make_shared<ArbiterCore>();
  return [core, u](sim::PortId) -> std::unique_ptr<pps::BufferedDemultiplexor> {
    return std::make_unique<RequestGrantDemux>(core, u);
  };
}

void BufferedRoundRobinDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXBR");
  w.Size(pointer_.size());
  for (int p : pointer_) w.I32(p);
}

void BufferedRoundRobinDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXBR");
  SIM_CHECK(r.Size() == pointer_.size(),
            "buffered-rr checkpoint has a different port count");
  for (int& p : pointer_) {
    p = r.I32();
    // try_launch does (p + step) % K: a negative restored pointer would
    // index the availability vector out of bounds.
    SIM_CHECK(p >= 0 && p < num_planes_,
              "buffered-rr checkpoint pointer " << p << " outside [0, "
                                                << num_planes_ << ")");
  }
}

void CpaEmulationCore::SaveState(ckpt::Writer& w) const {
  w.Marker("CPEC");
  w.Size(next_dep_.size());
  for (sim::Slot d : next_dep_) w.I64(d);
  bookings_->SaveState(w);
}

void CpaEmulationCore::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("CPEC");
  SIM_CHECK(r.Size() == next_dep_.size(),
            "CPA-emulation checkpoint has a different port count");
  for (sim::Slot& d : next_dep_) {
    d = r.I64();
    // PlanFor feeds these into SlotPlus: require genuine non-negative
    // slots with headroom, not sentinels or corrupt extremes.
    SIM_CHECK(d >= 0 && d < std::numeric_limits<sim::Slot>::max(),
              "CPA-emulation checkpoint departure horizon "
                  << d << " is not a slot");
  }
  bookings_->LoadState(r);
}

void CpaEmulationDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXCE");
  if (input_ == 0) core_->SaveState(w);
  const std::vector<sim::CellId> keys = ckpt::SortedKeys(plans_);
  w.Size(keys.size());
  for (sim::CellId id : keys) {
    const CpaEmulationCore::Plan& plan = plans_.at(id);
    w.U64(id);
    w.I64(plan.launch);
    w.I64(plan.booked);
  }
}

void CpaEmulationDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXCE");
  if (input_ == 0) core_->LoadState(r);
  plans_.clear();
  const std::size_t n = r.Count();
  plans_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sim::CellId id = r.U64();
    CpaEmulationCore::Plan plan;
    plan.launch = r.I64();
    plan.booked = r.I64();
    plans_.emplace(id, plan);
  }
}

void ArbiterCore::SaveState(ckpt::Writer& w) const {
  w.Marker("ARBC");
  w.Size(rr_.size());
  for (int p : rr_) w.I32(p);
  const std::vector<sim::CellId> keys = ckpt::SortedKeys(grants_);
  w.Size(keys.size());
  for (sim::CellId id : keys) {
    const Grant& g = grants_.at(id);
    w.U64(id);
    w.I64(g.visible_at);
    w.I32(g.plane);
  }
}

void ArbiterCore::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("ARBC");
  SIM_CHECK(r.Size() == rr_.size(),
            "arbiter checkpoint has a different port count");
  for (int& p : rr_) {
    p = r.I32();
    // Request() hands the pointer out verbatim as the granted plane.
    SIM_CHECK(p >= 0 && p < num_planes_,
              "arbiter checkpoint pointer " << p << " outside [0, "
                                            << num_planes_ << ")");
  }
  grants_.clear();
  const std::size_t n = r.Count();
  grants_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sim::CellId id = r.U64();
    Grant g;
    g.visible_at = r.I64();
    g.plane = r.I32();
    // The grant becomes decision.plane, which indexes planes_/failed_.
    SIM_CHECK(g.plane >= 0 && g.plane < num_planes_,
              "arbiter checkpoint grants plane " << g.plane << " outside [0, "
                                                 << num_planes_ << ")");
    grants_.emplace(id, g);
  }
}

void RequestGrantDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXRG");
  if (input_ == 0) core_->SaveState(w);
}

void RequestGrantDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXRG");
  if (input_ == 0) core_->LoadState(r);
}

}  // namespace demux
