// Fractional Traffic Dispatch (FTD, Khotimsky & Krishnan [17]) and the
// paper's Section-5 extension.
//
// Each flow (i, j) is segmented into blocks of `block size` cells; two
// cells of the same block are never sent through the same plane.  The
// Section-5 parameterised extension uses blocks of h * R/r cells (h > 1 a
// parameter, requiring speedup S >= h); spreading each flow across many
// planes keeps all plane queues for a congested output backlogged, which
// is what gives Theorem 14's zero relative queuing delay in congested
// periods.  Larger h shortens the warm-up period at the price of a larger
// speedup requirement.
//
// Fully distributed: the block bookkeeping is per-input local state that
// changes only when a cell arrives.
#pragma once

#include <unordered_map>
#include <vector>

#include "switch/demux_iface.h"

namespace demux {

class FtdDemux final : public pps::Demultiplexor {
 public:
  // h = 1 reproduces basic FTD (blocks of r' cells); h >= 2 is the
  // Section-5 extension (blocks of h*r' cells, speedup >= h required).
  explicit FtdDemux(int h = 1) : h_(h) {}

  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kFullyDistributed;
  }
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<FtdDemux>(*this);
  }
  std::string name() const override { return "ftd-h" + std::to_string(h_); }

  int block_size() const { return block_size_; }

  // Cells that had to break the two-cells-per-block-per-plane rule because
  // the only block-fresh plane's input line was busy (distinct flows of
  // one input interleaving).  0 when the speedup assumption of [17] holds
  // for the offered traffic.
  std::uint64_t block_violations() const { return block_violations_; }

  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  struct FlowState {
    std::vector<bool> used;  // planes used in the current block
    int cells_in_block = 0;
    int next = 0;  // rotating start so blocks cycle through all planes
  };

  // ckpt-skip: construction-time constant, identical on resume
  int h_;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int block_size_ = 0;
  std::uint64_t block_violations_ = 0;
  std::unordered_map<sim::PortId, FlowState> flows_;  // keyed by output
};

}  // namespace demux
