#include "demux/registry.h"

#include <charconv>

#include "demux/buffered.h"
#include "demux/cpa.h"
#include "demux/ftd.h"
#include "demux/hash.h"
#include "demux/random.h"
#include "demux/round_robin.h"
#include "demux/stale_jsq.h"
#include "demux/static_partition.h"
#include "sim/error.h"

namespace demux {
namespace {

// Parses "<prefix><int>" names like "stale-jsq-u4"; returns false if
// `name` does not start with `prefix`.
bool ParseSuffix(const std::string& name, const std::string& prefix,
                 int* value) {
  if (name.rfind(prefix, 0) != 0) return false;
  const char* begin = name.data() + prefix.size();
  const char* end = name.data() + name.size();
  auto [ptr, ec] = std::from_chars(begin, end, *value);
  SIM_CHECK(ec == std::errc() && ptr == end,
            "malformed parameter in algorithm name: " << name);
  return true;
}

}  // namespace

pps::DemuxFactory MakeFactory(const std::string& name) {
  int param = 0;
  if (name == "rr") {
    return [](sim::PortId) { return std::make_unique<RoundRobinDemux>(); };
  }
  if (name == "rr-per-output") {
    return [](sim::PortId) {
      return std::make_unique<PerOutputRoundRobinDemux>();
    };
  }
  if (name == "hash") {
    return [](sim::PortId) { return std::make_unique<HashDemux>(); };
  }
  if (ParseSuffix(name, "static-partition-d", &param)) {
    return [param](sim::PortId) {
      return std::make_unique<StaticPartitionDemux>(param);
    };
  }
  if (ParseSuffix(name, "ftd-h", &param)) {
    return [param](sim::PortId) { return std::make_unique<FtdDemux>(param); };
  }
  if (name == "cpa") {
    return MakeCpaFactory();
  }
  if (name == "random") {
    return [](sim::PortId) { return std::make_unique<RandomDemux>(); };
  }
  if (ParseSuffix(name, "random-s", &param)) {
    return [param](sim::PortId) {
      return std::make_unique<RandomDemux>(
          static_cast<std::uint64_t>(param));
    };
  }
  if (ParseSuffix(name, "stale-jsq-u", &param)) {
    return [param](sim::PortId) {
      return std::make_unique<StaleJsqDemux>(param);
    };
  }
  SIM_CHECK(false, "unknown bufferless demux algorithm: " << name);
  return {};
}

pps::BufferedDemuxFactory MakeBufferedFactory(const std::string& name) {
  int param = 0;
  if (name == "buffered-rr") {
    return [](sim::PortId) {
      return std::make_unique<BufferedRoundRobinDemux>();
    };
  }
  if (ParseSuffix(name, "cpa-emulation-u", &param)) {
    return MakeCpaEmulationFactory(param);
  }
  if (ParseSuffix(name, "request-grant-u", &param)) {
    return MakeRequestGrantFactory(param);
  }
  SIM_CHECK(false, "unknown buffered demux algorithm: " << name);
  return {};
}

std::vector<std::string> BufferlessAlgorithms() {
  return {"rr",     "rr-per-output", "hash",         "static-partition-d2",
          "ftd-h1", "ftd-h2",        "cpa",          "stale-jsq-u0",
          "stale-jsq-u8", "random"};
}

std::vector<std::string> BufferedAlgorithms() {
  return {"buffered-rr", "cpa-emulation-u4", "request-grant-u2"};
}

AlgorithmNeeds NeedsOf(const std::string& name) {
  int param = 0;
  if (name == "cpa") return {true, 1};
  if (ParseSuffix(name, "cpa-emulation-u", &param)) {
    return {true, param + 1};
  }
  if (ParseSuffix(name, "stale-jsq-u", &param)) {
    return {false, param + 1};
  }
  if (ParseSuffix(name, "request-grant-u", &param)) {
    return {false, param + 1};
  }
  return {false, 0};
}

}  // namespace demux
