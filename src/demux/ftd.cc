#include "demux/ftd.h"

#include "ckpt/serializer.h"

#include <algorithm>

#include "sim/error.h"

namespace demux {

void FtdDemux::Reset(const pps::SwitchConfig& config, sim::PortId input) {
  (void)input;
  SIM_CHECK(h_ >= 1, "FTD parameter h must be >= 1");
  num_planes_ = config.num_planes;
  block_size_ = std::min(h_ * config.rate_ratio, config.num_planes);
  SIM_CHECK(block_size_ >= config.rate_ratio,
            "FTD block smaller than r' cannot meet the input constraint");
  flows_.clear();
}

pps::DispatchDecision FtdDemux::Dispatch(const sim::Cell& cell,
                                         const pps::DispatchContext& ctx) {
  FlowState& fs = flows_[cell.output];
  if (fs.used.empty()) {
    fs.used.assign(static_cast<std::size_t>(num_planes_), false);
  }
  // Pick the first plane, starting from the block's rotating pointer, that
  // is unused in this block and whose input line is free.  When distinct
  // flows of one input interleave, the only block-fresh plane can have a
  // busy line; FTD's analysis [17] assumes per-flow spacing that the
  // shared input line does not always provide, so fall back to any free
  // line and count the block violation rather than wedge the switch.
  int fallback = -1;
  for (int step = 0; step < num_planes_; ++step) {
    const int k = (fs.next + step) % num_planes_;
    if (!ctx.input_link_free[static_cast<std::size_t>(k)]) continue;
    if (fallback < 0) fallback = k;
    if (fs.used[static_cast<std::size_t>(k)]) continue;
    fs.used[static_cast<std::size_t>(k)] = true;
    fs.next = (k + 1) % num_planes_;
    if (++fs.cells_in_block == block_size_) {
      // Block complete: start a new one (pointer keeps rotating so
      // successive blocks cycle through all K planes).
      std::fill(fs.used.begin(), fs.used.end(), false);
      fs.cells_in_block = 0;
    }
    return {static_cast<sim::PlaneId>(k), sim::kNoSlot};
  }
  if (fallback < 0) return {sim::kNoPlane, sim::kNoSlot};
  ++block_violations_;
  fs.used[static_cast<std::size_t>(fallback)] = true;
  fs.next = (fallback + 1) % num_planes_;
  if (++fs.cells_in_block >= block_size_) {
    std::fill(fs.used.begin(), fs.used.end(), false);
    fs.cells_in_block = 0;
  }
  return {static_cast<sim::PlaneId>(fallback), sim::kNoSlot};
}


void FtdDemux::SaveState(ckpt::Writer& w) const {
  w.Marker("DXFT");
  w.U64(block_violations_);
  const std::vector<sim::PortId> keys = ckpt::SortedKeys(flows_);
  w.Size(keys.size());
  for (sim::PortId output : keys) {
    const FlowState& fs = flows_.at(output);
    w.I32(output);
    w.Size(fs.used.size());
    for (bool u : fs.used) w.Bool(u);
    w.I32(fs.cells_in_block);
    w.I32(fs.next);
  }
}

void FtdDemux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DXFT");
  block_violations_ = r.U64();
  flows_.clear();
  const std::size_t n = r.Count();
  flows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sim::PortId output = r.I32();
    FlowState& fs = flows_[output];
    fs.used.assign(r.Count(), false);
    // Dispatch indexes fs.used with planes [0, K) and rotates fs.next
    // modulo K: a corrupt size or negative pointer reads out of bounds.
    SIM_CHECK(fs.used.empty() ||
                  fs.used.size() == static_cast<std::size_t>(num_planes_),
              "FTD checkpoint block bitmap covers " << fs.used.size()
                                                    << " of " << num_planes_
                                                    << " planes");
    for (std::size_t k = 0; k < fs.used.size(); ++k) fs.used[k] = r.Bool();
    fs.cells_in_block = r.I32();
    fs.next = r.I32();
    SIM_CHECK(fs.next >= 0 && fs.next < num_planes_ &&
                  fs.cells_in_block >= 0 && fs.cells_in_block < block_size_,
              "FTD checkpoint flow state for output " << output
                                                      << " is out of range");
  }
}

}  // namespace demux
