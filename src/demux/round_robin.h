// Fully-distributed round-robin demultiplexors.
//
// These are the canonical "unpartitioned fully-distributed" algorithms of
// Corollary 7: every demultiplexor may send a cell destined for any output
// through any plane, using only its local state (Definition 5).  State
// changes only when a cell arrives.
//
//   * RoundRobinDemux      — one pointer per input, advanced on every cell
//                            regardless of destination.
//   * PerOutputRoundRobin  — one pointer per (input, output) pair, the
//                            shape of the fully-distributed algorithm of
//                            Iyer & McKeown [15]; spreads each flow evenly
//                            over the planes, achieving relative queuing
//                            delay O(N * R/r) — and, being deterministic
//                            and oblivious, exactly the alignment the
//                            Theorem-6 adversary exploits.
//
// Both skip planes whose input line is busy (the input constraint), which
// is the only way local information enters the decision.
#pragma once

#include <vector>

#include "switch/demux_iface.h"

namespace demux {

class RoundRobinDemux final : public pps::Demultiplexor {
 public:
  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kFullyDistributed;
  }
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<RoundRobinDemux>(*this);
  }
  std::string name() const override { return "rr"; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
  int pointer_ = 0;
};

class PerOutputRoundRobinDemux final : public pps::Demultiplexor {
 public:
  void Reset(const pps::SwitchConfig& config, sim::PortId input) override;
  pps::DispatchDecision Dispatch(const sim::Cell& cell,
                                 const pps::DispatchContext& ctx) override;
  pps::InfoModel info_model() const override {
    return pps::InfoModel::kFullyDistributed;
  }
  std::unique_ptr<pps::Demultiplexor> Clone() const override {
    return std::make_unique<PerOutputRoundRobinDemux>(*this);
  }
  std::string name() const override { return "rr-per-output"; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  int num_planes_ = 0;
  std::vector<int> pointer_;  // per output
};

// Shared helper: first free plane at or after `start` (cyclic), or
// kNoPlane when every line is busy/failed (only possible after plane
// failures on a healthy K >= r' switch).
sim::PlaneId FirstFreePlane(const pps::DispatchContext& ctx, int start);

}  // namespace demux
