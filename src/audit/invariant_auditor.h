// Model-invariant audit layer: machine-checks that a running switch obeys
// the formal model of Section 2 of the paper.
//
// The lower bounds (Thm 6-14) are statements about switches that implement
// the slot-synchronous model exactly: arrivals respect the external line
// rate (at most one cell per input per slot), offered traffic conforms to
// its declared (R, B) leaky-bucket envelope (Definition 3), cells within a
// flow depart in order ("the switch should preserve the order of cells
// within a flow"), no cell is created or destroyed unaccounted, and the
// shadow reference switch is work-conserving (Section 1.1).  The
// InvariantAuditor observes the inject/depart/slot-end event stream of any
// switch exposing the common Inject/Advance surface and verifies each of
// these properties per slot, online and exactly.
//
// The auditor is a passive observer: it never mutates the switch.  It can
// be attached two ways:
//   * explicitly, by passing a pointer in core::RunOptions::auditor (works
//     in every build; the only cost when unattached is a null check); or
//   * globally, by configuring with -DPPS_AUDIT=ON (the "audit" preset),
//     which makes core::RunRelative construct auditors for both the
//     measured switch and the shadow OQ switch on every run and throw
//     sim::SimError if any detector fired by run end — so the full test
//     suite and any sweep run fully audited.
//
// Detectors (see DESIGN.md "Model-invariant audit layer" for the mapping
// to the paper's definitions):
//   kConservation      injected == departed + in-flight + lost, per slot
//   kFlowOrder         per-flow departures strictly increase in seq and
//                      never step back in time
//   kLineRate          at most one arrival per input port per slot, slots
//                      non-decreasing (Section 2's external rate R)
//   kConformance       measured burstiness of offered traffic stays within
//                      the declared (1, B) envelope (Definition 3)
//   kOutputRate        at most one departure per output port per slot
//   kWorkConservation  a backlogged output never idles (reference-switch
//                      discipline; enable for shadow/OQ switches only)
//   kBoundSanity       finalized relative delays respect a proven upper
//                      bound, and the run's max reaches a claimed lower
//                      bound (core/bounds values, wired by the caller)
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/loss.h"
#include "sim/cell.h"
#include "sim/types.h"
#include "traffic/leaky_bucket.h"

namespace audit {

// One failure epoch's claimed RQD ceiling for the degraded-mode bound
// check: cells *arriving* in [from, next epoch's from) must finish within
// `upper_bound` relative delay.  upper_bound == sim::kNoSlot leaves the
// epoch unchecked (used when the surviving planes no longer sustain line
// rate, so no finite bound is claimed).
struct RqdEpoch {
  sim::Slot from = 0;
  sim::Slot upper_bound = sim::kNoSlot;
};

enum class Invariant : int {
  kConservation = 0,
  kFlowOrder,
  kLineRate,
  kConformance,
  kOutputRate,
  kWorkConservation,
  kBoundSanity,
};
inline constexpr int kInvariantCount = 7;

// Human-readable detector name ("conservation", "flow-order", ...).
const char* InvariantName(Invariant inv);

// One detected violation.  Only the first few per run keep their detail
// string (see Report::samples); all are counted.
struct Violation {
  Invariant invariant;
  sim::Slot slot;
  std::string detail;
};

struct Report {
  std::array<std::uint64_t, kInvariantCount> counts{};
  std::vector<Violation> samples;  // first kMaxSamples violations, in order

  std::uint64_t total() const;
  std::uint64_t count(Invariant inv) const {
    return counts[static_cast<std::size_t>(inv)];
  }
  bool clean() const { return total() == 0; }
  // One-line per-detector summary, e.g.
  // "audit: 2 violations (conservation=1 flow-order=1); first: ...".
  std::string Summary() const;

  static constexpr std::size_t kMaxSamples = 16;
};

class InvariantAuditor {
 public:
  struct Options {
    // Declared (1, B) leaky-bucket envelope of the offered traffic
    // (Definition 3).  kUnchecked disables the conformance detector.
    std::int64_t declared_burst = kUnchecked;
    // Proven ceiling on per-cell relative queuing delay (e.g. Theorem 12's
    // u, or Iyer-McKeown's N*r' for fully-distributed dispatch).
    // sim::kNoSlot disables.
    sim::Slot rqd_upper_bound = sim::kNoSlot;
    // Claimed floor on the run's *maximum* relative queuing delay (an
    // adversarial run that realises a theorem bound must reach it; checked
    // in OnRunEnd).  sim::kNoSlot disables.
    sim::Slot rqd_lower_bound = sim::kNoSlot;
    // Per-failure-epoch RQD ceilings (degraded-mode bounds recomputed for
    // the planes surviving each epoch).  Must be sorted by `from`; a cell's
    // epoch is the last one starting at or before its arrival slot.  Empty
    // disables; applies on top of rqd_upper_bound.
    std::vector<RqdEpoch> rqd_epochs;
    bool check_conservation = true;
    bool check_flow_order = true;
    // Only meaningful for switches that promise per-output work
    // conservation (the shadow OQ reference); a PPS legitimately idles
    // during resequencing holds, so this defaults off.
    bool check_work_conservation = false;
    // Throw sim::SimError at the first violation instead of accumulating.
    bool fail_fast = false;

    static constexpr std::int64_t kUnchecked = -1;
  };

  InvariantAuditor(sim::PortId num_ports, Options options);
  explicit InvariantAuditor(sim::PortId num_ports)
      : InvariantAuditor(num_ports, Options{}) {}

  // A cell offered to the audited switch in slot t (before Inject).
  void OnInject(const sim::Cell& cell, sim::Slot t);

  // A cell departing the audited switch in slot t (from Advance output).
  void OnDepart(const sim::Cell& cell, sim::Slot t);

  // End of slot t.  `backlog` is the switch's total in-flight cell count
  // after Advance; `lost` is the cumulative sum of the switch's loss
  // counters (inject drops, stranded cells, buffer overflows).
  void OnSlotEnd(sim::Slot t, std::int64_t backlog, std::uint64_t lost = 0);

  // Network-level cell conservation across hops (topo::NetworkEngine):
  // with this auditor observing the network *edge* (OnInject at external
  // ingress, OnDepart at external egress), every injected cell must at the
  // end of each slot be departed, queued inside some node's fabric, in
  // flight on an inter-node link, or accounted lost by a node.  Fires the
  // kConservation detector with the in-network backlog decomposed, so a
  // violation names which component leaks cells.  Runs the same per-slot
  // bookkeeping as OnSlotEnd otherwise; call exactly one of the two per
  // slot.
  void OnNetworkSlotEnd(sim::Slot t, std::int64_t node_backlog,
                        std::int64_t link_cells, std::uint64_t lost);

  // A finalized relative queuing delay (measured minus shadow delay) for a
  // cell of flow (input, output) that arrived in slot t.
  void OnRelativeDelay(sim::PortId input, sim::PortId output, sim::Slot t,
                       sim::Slot relative_delay);

  // The harness's reconciled loss taxonomy for a fully drained run: the
  // per-category fabric counters must sum exactly to the cells the harness
  // counted as dropped — a mismatch means a loss path went uncounted (or
  // was counted twice) and fires kConservation.  Call only when both
  // switches drained; an undrained run legitimately has pending cells that
  // are neither departed nor in any loss category.
  void OnLossTaxonomy(const fault::LossBreakdown& losses,
                      std::uint64_t reconciled_dropped, sim::Slot t);

  // End of run: final conservation reconciliation and lower-bound check.
  void OnRunEnd(sim::Slot t, std::int64_t backlog, std::uint64_t lost = 0);

  const Report& report() const { return report_; }
  bool clean() const { return report_.clean(); }
  const Options& options() const { return options_; }

  // Exact minimal burstiness of the traffic observed so far (per-output
  // maximum), regardless of declared_burst.
  std::int64_t ObservedBurstiness() const {
    return meter_.OutputBurstiness();
  }

  void Reset();

 private:
  struct FlowState {
    std::uint64_t last_seq = 0;
    sim::Slot last_departure = sim::kNoSlot;
    bool seen = false;
  };

  void Fail(Invariant inv, sim::Slot slot, std::string detail);
  void CheckConservation(Invariant as, sim::Slot t, std::int64_t backlog,
                         std::uint64_t lost);
  void CheckWorkConservation(sim::Slot t, std::uint64_t lost);

  sim::PortId num_ports_;
  Options options_;
  Report report_;

  std::uint64_t injected_ = 0;
  std::uint64_t departed_ = 0;

  // Line-rate state: last arrival slot per input (kNoSlot = none yet).
  std::vector<sim::Slot> last_arrival_;
  // Work-conservation / output-rate state, per output.
  std::vector<std::int64_t> output_pending_;
  std::vector<std::uint8_t> output_departed_;  // this slot
  sim::Slot current_slot_ = sim::kNoSlot;

  std::vector<FlowState> flows_;  // indexed by FlowId (N*N dense)
  traffic::BurstinessMeter meter_;
  std::int64_t worst_reported_burst_ = 0;
  sim::Slot max_relative_delay_ = 0;
  bool saw_relative_delay_ = false;
};

}  // namespace audit
