#include "audit/invariant_auditor.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "sim/error.h"

namespace audit {

const char* InvariantName(Invariant inv) {
  switch (inv) {
    case Invariant::kConservation:
      return "conservation";
    case Invariant::kFlowOrder:
      return "flow-order";
    case Invariant::kLineRate:
      return "line-rate";
    case Invariant::kConformance:
      return "conformance";
    case Invariant::kOutputRate:
      return "output-rate";
    case Invariant::kWorkConservation:
      return "work-conservation";
    case Invariant::kBoundSanity:
      return "bound-sanity";
  }
  return "unknown";
}

std::uint64_t Report::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts) sum += c;
  return sum;
}

std::string Report::Summary() const {
  std::ostringstream os;
  os << "audit: " << total() << " violation(s)";
  if (clean()) return os.str();
  os << " (";
  bool first = true;
  for (int i = 0; i < kInvariantCount; ++i) {
    if (counts[static_cast<std::size_t>(i)] == 0) continue;
    if (!first) os << " ";
    first = false;
    os << InvariantName(static_cast<Invariant>(i)) << "="
       << counts[static_cast<std::size_t>(i)];
  }
  os << ")";
  if (!samples.empty()) {
    os << "; first: [slot " << samples.front().slot << "] "
       << samples.front().detail;
  }
  return os.str();
}

InvariantAuditor::InvariantAuditor(sim::PortId num_ports, Options options)
    : num_ports_(num_ports),
      options_(options),
      last_arrival_(static_cast<std::size_t>(num_ports), sim::kNoSlot),
      output_pending_(static_cast<std::size_t>(num_ports), 0),
      output_departed_(static_cast<std::size_t>(num_ports), 0),
      flows_(static_cast<std::size_t>(num_ports) *
             static_cast<std::size_t>(num_ports)),
      meter_(num_ports) {
  SIM_CHECK(num_ports > 0, "auditor needs a positive port count");
}

void InvariantAuditor::Fail(Invariant inv, sim::Slot slot,
                            std::string detail) {
  ++report_.counts[static_cast<std::size_t>(inv)];
  if (report_.samples.size() < Report::kMaxSamples) {
    report_.samples.push_back({inv, slot, detail});
  }
  if (options_.fail_fast) {
    std::ostringstream os;
    os << "invariant '" << InvariantName(inv) << "' violated at slot "
       << slot << ": " << detail;
    throw sim::SimError(os.str());
  }
}

void InvariantAuditor::OnInject(const sim::Cell& cell, sim::Slot t) {
  ++injected_;

  // Line rate (Section 2): the external line carries at most one cell per
  // input per slot, and time only moves forward.
  const auto in = static_cast<std::size_t>(cell.input);
  if (cell.input < 0 || cell.input >= num_ports_ || cell.output < 0 ||
      cell.output >= num_ports_) {
    std::ostringstream os;
    os << "cell with out-of-range ports: " << cell;
    Fail(Invariant::kLineRate, t, os.str());
    return;
  }
  if (last_arrival_[in] != sim::kNoSlot) {
    if (last_arrival_[in] == t) {
      std::ostringstream os;
      os << "two arrivals on input " << cell.input << " in slot " << t;
      Fail(Invariant::kLineRate, t, os.str());
    } else if (last_arrival_[in] > t) {
      std::ostringstream os;
      os << "arrival slot moved backwards on input " << cell.input << " ("
         << last_arrival_[in] << " -> " << t << ")";
      Fail(Invariant::kLineRate, t, os.str());
    }
  }
  last_arrival_[in] = t;

  // (R, B) conformance (Definition 3): the exact minimal burstiness of the
  // observed traffic must stay within the declared envelope.  Report each
  // time the measured minimum B grows past the declaration, not every cell.
  meter_.Record(t, cell.input, cell.output);
  if (options_.declared_burst != Options::kUnchecked) {
    const std::int64_t observed =
        std::max(meter_.OutputBurstiness(), meter_.InputBurstiness());
    if (observed > options_.declared_burst &&
        observed > worst_reported_burst_) {
      worst_reported_burst_ = observed;
      std::ostringstream os;
      os << "traffic burstiness " << observed << " exceeds declared B="
         << options_.declared_burst << " (cell " << cell << ")";
      Fail(Invariant::kConformance, t, os.str());
    }
  }

  ++output_pending_[static_cast<std::size_t>(cell.output)];
}

void InvariantAuditor::OnDepart(const sim::Cell& cell, sim::Slot t) {
  ++departed_;
  if (cell.output < 0 || cell.output >= num_ports_) {
    std::ostringstream os;
    os << "departure with out-of-range output: " << cell;
    Fail(Invariant::kOutputRate, t, os.str());
    return;
  }
  const auto out = static_cast<std::size_t>(cell.output);

  // External output line rate: one departure per output per slot.
  if (current_slot_ != t) {
    // First event of a new slot: clear the per-slot departure marks.
    std::fill(output_departed_.begin(), output_departed_.end(),
              static_cast<std::uint8_t>(0));
    current_slot_ = t;
  }
  if (output_departed_[out] != 0) {
    std::ostringstream os;
    os << "two departures from output " << cell.output << " in slot " << t;
    Fail(Invariant::kOutputRate, t, os.str());
  }
  output_departed_[out] = 1;

  if (output_pending_[out] <= 0 && options_.check_conservation) {
    std::ostringstream os;
    os << "departure of unaccounted cell " << cell << " (output "
       << cell.output << " had no pending cells)";
    Fail(Invariant::kConservation, t, os.str());
  } else {
    --output_pending_[out];
  }

  // Per-flow order: sequence numbers strictly increase (gaps are legal —
  // cells can be lost and timed out — but a step back is a reorder), and
  // departure slots never move backwards within a flow.
  if (options_.check_flow_order && cell.input >= 0 &&
      cell.input < num_ports_) {
    FlowState& fs = flows_[static_cast<std::size_t>(
        sim::MakeFlowId(cell.input, cell.output, num_ports_))];
    if (fs.seen) {
      if (cell.seq <= fs.last_seq) {
        std::ostringstream os;
        os << "flow " << cell.input << "->" << cell.output
           << " departed seq " << cell.seq << " after seq " << fs.last_seq;
        Fail(Invariant::kFlowOrder, t, os.str());
      }
      if (fs.last_departure != sim::kNoSlot && t < fs.last_departure) {
        std::ostringstream os;
        os << "flow " << cell.input << "->" << cell.output
           << " departure slot moved backwards (" << fs.last_departure
           << " -> " << t << ")";
        Fail(Invariant::kFlowOrder, t, os.str());
      }
    }
    fs.seen = true;
    fs.last_seq = cell.seq;
    fs.last_departure = t;
  }
}

void InvariantAuditor::CheckConservation(Invariant as, sim::Slot t,
                                         std::int64_t backlog,
                                         std::uint64_t lost) {
  if (!options_.check_conservation) return;
  if (backlog < 0) {
    std::ostringstream os;
    os << "switch reported negative backlog " << backlog;
    Fail(as, t, os.str());
    return;
  }
  const std::uint64_t accounted =
      departed_ + static_cast<std::uint64_t>(backlog) + lost;
  if (accounted != injected_) {
    std::ostringstream os;
    os << "injected " << injected_ << " != departed " << departed_
       << " + in-flight " << backlog << " + lost " << lost << " (= "
       << accounted << ")";
    Fail(as, t, os.str());
  }
}

// Work conservation (Section 1.1's reference discipline): an output with
// pending cells must emit one this slot.  `lost` cells may include cells
// that were silently removed from an output's pending count, so the
// check is only exact for lossless switches; skip once losses appear.
void InvariantAuditor::CheckWorkConservation(sim::Slot t,
                                             std::uint64_t lost) {
  if (!options_.check_work_conservation || lost != 0) return;
  const bool fresh_slot = (current_slot_ != t);
  for (sim::PortId j = 0; j < num_ports_; ++j) {
    const auto out = static_cast<std::size_t>(j);
    const bool departed_now = !fresh_slot && output_departed_[out] != 0;
    if (output_pending_[out] > 0 && !departed_now) {
      std::ostringstream os;
      os << "output " << j << " idled with " << output_pending_[out]
         << " pending cell(s)";
      Fail(Invariant::kWorkConservation, t, os.str());
    }
  }
}

void InvariantAuditor::OnSlotEnd(sim::Slot t, std::int64_t backlog,
                                 std::uint64_t lost) {
  // Cell conservation, reconciled against the switch's own loss counters:
  // every injected cell is either in flight, departed, or accounted lost.
  CheckConservation(Invariant::kConservation, t, backlog, lost);
  CheckWorkConservation(t, lost);
}

void InvariantAuditor::OnNetworkSlotEnd(sim::Slot t, std::int64_t node_backlog,
                                        std::int64_t link_cells,
                                        std::uint64_t lost) {
  if (options_.check_conservation) {
    if (node_backlog < 0 || link_cells < 0) {
      std::ostringstream os;
      os << "network reported negative backlog (nodes " << node_backlog
         << ", links " << link_cells << ")";
      Fail(Invariant::kConservation, t, os.str());
    } else {
      const std::uint64_t accounted =
          departed_ + static_cast<std::uint64_t>(node_backlog) +
          static_cast<std::uint64_t>(link_cells) + lost;
      if (accounted != injected_) {
        std::ostringstream os;
        os << "network: injected " << injected_ << " != departed "
           << departed_ << " + queued in nodes " << node_backlog
           << " + in flight on links " << link_cells << " + lost " << lost
           << " (= " << accounted << ")";
        Fail(Invariant::kConservation, t, os.str());
      }
    }
  }
  CheckWorkConservation(t, lost);
}

void InvariantAuditor::OnRelativeDelay(sim::PortId input, sim::PortId output,
                                       sim::Slot t,
                                       sim::Slot relative_delay) {
  saw_relative_delay_ = true;
  if (relative_delay > max_relative_delay_) {
    max_relative_delay_ = relative_delay;
  }
  if (options_.rqd_upper_bound != sim::kNoSlot &&
      relative_delay > options_.rqd_upper_bound) {
    std::ostringstream os;
    os << "cell of flow " << input << "->" << output << " (arrived slot "
       << t << ") has relative delay " << relative_delay
       << " above the proven bound " << options_.rqd_upper_bound;
    Fail(Invariant::kBoundSanity, t, os.str());
  }
  // Degraded-mode bound: the epoch owning the cell's *arrival* slot is
  // the last one starting at or before it (epochs are sorted by `from`).
  if (!options_.rqd_epochs.empty()) {
    const RqdEpoch* epoch = nullptr;
    for (const RqdEpoch& e : options_.rqd_epochs) {
      if (e.from > t) break;
      epoch = &e;
    }
    if (epoch != nullptr && epoch->upper_bound != sim::kNoSlot &&
        relative_delay > epoch->upper_bound) {
      std::ostringstream os;
      os << "cell of flow " << input << "->" << output << " (arrived slot "
         << t << ") has relative delay " << relative_delay
         << " above the degraded-mode epoch bound " << epoch->upper_bound
         << " (epoch from slot " << epoch->from << ")";
      Fail(Invariant::kBoundSanity, t, os.str());
    }
  }
}

void InvariantAuditor::OnLossTaxonomy(const fault::LossBreakdown& losses,
                                      std::uint64_t reconciled_dropped,
                                      sim::Slot t) {
  if (losses.total() == reconciled_dropped) return;
  std::ostringstream os;
  os << "loss taxonomy (input-drops " << losses.input_drops << " + stranded "
     << losses.stranded_cells << " + stale " << losses.stale_dispatches
     << " + link " << losses.link_drops << " + late " << losses.late_arrivals
     << " + overflows " << losses.buffer_overflows << " = " << losses.total()
     << ") does not reconcile with dropped " << reconciled_dropped;
  Fail(Invariant::kConservation, t, os.str());
}

void InvariantAuditor::OnRunEnd(sim::Slot t, std::int64_t backlog,
                                std::uint64_t lost) {
  CheckConservation(Invariant::kConservation, t, backlog, lost);
  if (options_.rqd_lower_bound != sim::kNoSlot && saw_relative_delay_ &&
      max_relative_delay_ < options_.rqd_lower_bound) {
    std::ostringstream os;
    os << "run's max relative delay " << max_relative_delay_
       << " never reached the claimed lower bound "
       << options_.rqd_lower_bound;
    Fail(Invariant::kBoundSanity, t, os.str());
  }
}

void InvariantAuditor::Reset() {
  report_ = Report{};
  injected_ = 0;
  departed_ = 0;
  std::fill(last_arrival_.begin(), last_arrival_.end(), sim::kNoSlot);
  std::fill(output_pending_.begin(), output_pending_.end(), 0);
  std::fill(output_departed_.begin(), output_departed_.end(),
            static_cast<std::uint8_t>(0));
  current_slot_ = sim::kNoSlot;
  flows_.assign(flows_.size(), FlowState{});
  meter_ = traffic::BurstinessMeter(num_ports_);
  worst_reported_burst_ = 0;
  max_relative_delay_ = 0;
  saw_relative_delay_ = false;
}

}  // namespace audit
