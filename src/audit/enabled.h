// Compile-time switch for the model-invariant audit layer.
//
// Configuring with -DPPS_AUDIT=ON (the "audit" CMake preset) defines
// PPS_AUDIT globally; PPS_AUDIT_ENABLED is then 1 and the measurement
// harness constructs an InvariantAuditor for every run (see
// core/harness.cc).  When OFF, the auto-audit code is compiled out
// entirely — the only remaining hook is the explicitly attached
// RunOptions::auditor pointer, whose cost when null is a branch.
#pragma once

#ifdef PPS_AUDIT
#define PPS_AUDIT_ENABLED 1
#else
#define PPS_AUDIT_ENABLED 0
#endif
