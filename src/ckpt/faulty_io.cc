#include "ckpt/faulty_io.h"

#include <cstddef>
#include <utility>

#include "sim/error.h"

namespace ckpt {

namespace {

// SplitMix64 (same mixer sim::Rng seeds with), used to place injected
// damage deterministically without pulling pps_sim's Rng into this layer.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool IsWriteFault(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kShortWrite:
    case IoFaultKind::kEnospc:
    case IoFaultKind::kFsyncFail:
      return true;
    case IoFaultKind::kBitFlip:
    case IoFaultKind::kReadError:
      return false;
  }
  return false;
}

std::string_view IoFaultKindName(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kShortWrite:
      return "short-write";
    case IoFaultKind::kEnospc:
      return "enospc";
    case IoFaultKind::kFsyncFail:
      return "fsync-fail";
    case IoFaultKind::kBitFlip:
      return "bit-flip";
    case IoFaultKind::kReadError:
      return "read-error";
  }
  return "?";
}

IoFaultPlan& IoFaultPlan::Add(IoFaultKind kind, std::int64_t op) {
  SIM_CHECK(op >= 0, "io-fault: operation index must be >= 0, got " << op);
  events_.push_back({kind, op});
  return *this;
}

IoFaultPlan IoFaultPlan::Parse(std::string_view spec, std::uint64_t seed) {
  IoFaultPlan plan(seed);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    const std::size_t at = item.find('@');
    SIM_CHECK(at != std::string_view::npos,
              "io-fault: expected kind@op, got '" << item << "'");
    const std::string_view name = item.substr(0, at);
    const std::string_view num = item.substr(at + 1);

    IoFaultKind kind;
    if (name == "short-write") {
      kind = IoFaultKind::kShortWrite;
    } else if (name == "enospc") {
      kind = IoFaultKind::kEnospc;
    } else if (name == "fsync-fail") {
      kind = IoFaultKind::kFsyncFail;
    } else if (name == "bit-flip") {
      kind = IoFaultKind::kBitFlip;
    } else if (name == "read-error") {
      kind = IoFaultKind::kReadError;
    } else {
      SIM_CHECK(false, "io-fault: unknown fault kind '" << name << "'");
    }

    SIM_CHECK(!num.empty(), "io-fault: missing operation index in '" << item
                                                                     << "'");
    std::int64_t op = 0;
    for (char c : num) {
      SIM_CHECK(c >= '0' && c <= '9',
                "io-fault: bad operation index '" << num << "'");
      op = op * 10 + (c - '0');
      SIM_CHECK(op <= (std::int64_t{1} << 40),
                "io-fault: implausible operation index '" << num << "'");
    }
    plan.Add(kind, op);
  }
  return plan;
}

std::string IoFaultPlan::ToString() const {
  std::string out;
  for (const IoFaultEvent& e : events_) {
    if (!out.empty()) out += ',';
    out += IoFaultKindName(e.kind);
    out += '@';
    out += std::to_string(e.op);
  }
  return out;
}

FaultyIo::FaultyIo(Io& backend, IoFaultPlan plan)
    : backend_(backend),
      plan_(std::move(plan)),
      fired_(plan_.events().size(), false),
      injected_(5, 0) {}

std::int64_t FaultyIo::injected(IoFaultKind kind) const {
  return injected_[static_cast<std::size_t>(kind)];
}

int FaultyIo::TakeEvent(bool write_category, std::int64_t op) {
  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (fired_[i]) continue;
    if (IsWriteFault(events[i].kind) != write_category) continue;
    if (events[i].op != op) continue;
    fired_[i] = true;
    injected_[static_cast<std::size_t>(events[i].kind)]++;
    return static_cast<int>(i);
  }
  return -1;
}

void FaultyIo::WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::int64_t op = write_ops_++;
  const int idx = TakeEvent(/*write_category=*/true, op);
  if (idx < 0) {
    backend_.WriteFileAtomic(path, data);
    return;
  }
  switch (plan_.events()[idx].kind) {
    case IoFaultKind::kShortWrite: {
      // Model post-rename corruption: a truncated prefix lands at the final
      // path and the caller is told nothing.  The truncation point derives
      // from the plan seed and the event index so it is reproducible, and
      // always cuts at least one byte.
      const std::size_t keep =
          data.empty()
              ? 0
              : static_cast<std::size_t>(
                    Mix64(plan_.seed() ^ (0x51ull << 32) ^
                          static_cast<std::uint64_t>(idx)) %
                    data.size());
      backend_.WriteFileAtomic(path, data.substr(0, keep));
      return;
    }
    case IoFaultKind::kEnospc:
      throw IoError("io-fault: injected ENOSPC writing " + path);
    case IoFaultKind::kFsyncFail:
      backend_.WriteFileAtomic(path, data);
      throw IoError("io-fault: injected fsync failure on " + path);
    case IoFaultKind::kBitFlip:
    case IoFaultKind::kReadError:
      break;  // unreachable: write category only
  }
}

std::string FaultyIo::ReadWholeFile(const std::string& path) {
  const std::int64_t op = read_ops_++;
  const int idx = TakeEvent(/*write_category=*/false, op);
  if (idx < 0) return backend_.ReadWholeFile(path);
  switch (plan_.events()[idx].kind) {
    case IoFaultKind::kReadError:
      throw IoError("io-fault: injected read error on " + path);
    case IoFaultKind::kBitFlip: {
      std::string bytes = backend_.ReadWholeFile(path);
      if (!bytes.empty()) {
        const std::size_t bit = static_cast<std::size_t>(
            Mix64(plan_.seed() ^ (0xb1ull << 32) ^
                  static_cast<std::uint64_t>(idx)) %
            (static_cast<std::uint64_t>(bytes.size()) * 8));
        bytes[bit / 8] = static_cast<char>(
            static_cast<std::uint8_t>(bytes[bit / 8]) ^ (1u << (bit % 8)));
      }
      return bytes;
    }
    case IoFaultKind::kShortWrite:
    case IoFaultKind::kEnospc:
    case IoFaultKind::kFsyncFail:
      break;  // unreachable: read category only
  }
  return backend_.ReadWholeFile(path);
}

bool FaultyIo::Exists(const std::string& path) { return backend_.Exists(path); }

void FaultyIo::Remove(const std::string& path) { backend_.Remove(path); }

std::vector<std::string> FaultyIo::ListDir(const std::string& dir) {
  return backend_.ListDir(dir);
}

}  // namespace ckpt
