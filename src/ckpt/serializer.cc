#include "ckpt/serializer.h"

#include <array>
#include <cstdio>
#include <fstream>

#include "sim/error.h"

namespace ckpt {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'S', 'C', 'K', 'P', 'T', '1'};

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void WriteFile(const std::string& path, const Writer& writer) {
  const std::string& payload = writer.bytes();

  Writer header;
  header.U32(kFormatVersion);
  header.U64(payload.size());
  header.U32(Crc32(payload));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    SIM_CHECK(os.good(), "checkpoint: cannot open " << tmp << " for writing");
    os.write(kMagic, sizeof(kMagic));
    os.write(header.bytes().data(),
             static_cast<std::streamsize>(header.bytes().size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    SIM_CHECK(os.good(), "checkpoint: short write to " << tmp);
  }
  SIM_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "checkpoint: cannot rename " << tmp << " to " << path);
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SIM_CHECK(is.good(), "checkpoint: cannot open " << path);
  std::string contents((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());

  SIM_CHECK(contents.size() >= sizeof(kMagic) + 4 + 8 + 4,
            "checkpoint: " << path << " is truncated ("
                           << contents.size() << " bytes)");
  SIM_CHECK(std::string_view(contents.data(), sizeof(kMagic)) ==
                std::string_view(kMagic, sizeof(kMagic)),
            "checkpoint: " << path << " has wrong magic");

  Reader header(std::string_view(contents).substr(sizeof(kMagic), 16));
  const std::uint32_t version = header.U32();
  SIM_CHECK(version == kFormatVersion,
            "checkpoint: " << path << " has format version " << version
                           << ", this build reads " << kFormatVersion);
  const std::uint64_t payload_size = header.U64();
  const std::uint32_t crc = header.U32();

  const std::size_t header_bytes = sizeof(kMagic) + 16;
  SIM_CHECK(contents.size() - header_bytes == payload_size,
            "checkpoint: " << path << " payload is "
                           << contents.size() - header_bytes
                           << " bytes, header claims " << payload_size);
  std::string payload = contents.substr(header_bytes);
  SIM_CHECK(Crc32(payload) == crc,
            "checkpoint: " << path << " fails its checksum (corrupted)");
  return payload;
}

}  // namespace ckpt
