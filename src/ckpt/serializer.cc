#include "ckpt/serializer.h"

#include <array>
#include <sstream>

#include "ckpt/io.h"
#include "sim/error.h"

namespace ckpt {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'S', 'C', 'K', 'P', 'T', '1'};

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void WriteFile(const std::string& path, const Writer& writer, Io& io) {
  const std::string& payload = writer.bytes();

  Writer file;
  file.Marker("PPSC");
  file.Marker("KPT1");
  file.U32(kFormatVersion);
  file.U64(payload.size());
  file.U32(Crc32(payload));
  std::string bytes = file.bytes();
  bytes.append(payload);
  io.WriteFileAtomic(path, bytes);
}

namespace {

// Container-level validation failures mean "this file is bad, not the
// model" — throw CorruptError so the serve supervisor knows to fall back
// to an older checkpoint generation instead of aborting the run.
#define CKPT_CONTAINER_CHECK(cond, msg)            \
  do {                                             \
    if (!(cond)) {                                 \
      std::ostringstream oss__;                    \
      oss__ << msg; /* NOLINT */                   \
      throw ::ckpt::CorruptError(oss__.str());     \
    }                                              \
  } while (false)

}  // namespace

std::string ReadFile(const std::string& path, Io& io) {
  const std::string contents = io.ReadWholeFile(path);

  CKPT_CONTAINER_CHECK(contents.size() >= sizeof(kMagic) + 4 + 8 + 4,
                       "checkpoint: " << path << " is truncated ("
                                      << contents.size() << " bytes)");
  CKPT_CONTAINER_CHECK(std::string_view(contents.data(), sizeof(kMagic)) ==
                           std::string_view(kMagic, sizeof(kMagic)),
                       "checkpoint: " << path << " has wrong magic");

  Reader header(std::string_view(contents).substr(sizeof(kMagic), 16));
  const std::uint32_t version = header.U32();
  CKPT_CONTAINER_CHECK(version == kFormatVersion,
                       "checkpoint: " << path << " has format version "
                                      << version << ", this build reads "
                                      << kFormatVersion);
  const std::uint64_t payload_size = header.U64();
  const std::uint32_t crc = header.U32();

  const std::size_t header_bytes = sizeof(kMagic) + 16;
  CKPT_CONTAINER_CHECK(contents.size() - header_bytes == payload_size,
                       "checkpoint: " << path << " payload is "
                                      << contents.size() - header_bytes
                                      << " bytes, header claims "
                                      << payload_size);
  std::string payload = contents.substr(header_bytes);
  CKPT_CONTAINER_CHECK(Crc32(payload) == crc,
                       "checkpoint: " << path
                                      << " fails its checksum (corrupted)");
  return payload;
}

}  // namespace ckpt
