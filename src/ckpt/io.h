// The checkpoint subsystem's filesystem seam.
//
// Everything ckpt:: (and the serve:: supervisor above it) does to disk goes
// through this five-call interface instead of raw <fstream>, for one
// reason: every recovery path in the tree must be *provable in-tree*.  A
// torn write, ENOSPC, a failed fsync, or a bit flip on the read side is a
// once-a-quarter production event but a deterministic, schedulable one
// through ckpt::FaultyIo (faulty_io.h) — the same philosophy src/fault/
// applies to planes and links, moved up to the process/filesystem boundary.
//
// Error taxonomy (the serve:: supervisor keys its retry policy off these
// types — see DESIGN.md "Recovery model"):
//
//   IoError       the operation itself failed (open/write/rename/space/
//                 fsync).  Transient by classification: the bytes that were
//                 supposed to move may move on retry.
//   CorruptError  the operation succeeded but the bytes are wrong (bad
//                 magic, truncated container, CRC mismatch).  Also
//                 recoverable — not by retrying the read, but by falling
//                 back to an older checkpoint generation.
//
// Both derive from sim::SimError so existing catch sites keep working;
// anything that is *neither* is a genuine model/config error and fatal.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/error.h"

namespace ckpt {

// The operation failed at the filesystem level (transient class).
class IoError : public sim::SimError {
 public:
  explicit IoError(const std::string& what) : sim::SimError(what) {}
};

// The file was read but its contents fail validation (recover by falling
// back to an older generation, never by trusting the payload).
class CorruptError : public sim::SimError {
 public:
  explicit CorruptError(const std::string& what) : sim::SimError(what) {}
};

// Minimal filesystem interface: exactly the operations checkpointing
// needs, each with loud failure semantics.
class Io {
 public:
  virtual ~Io() = default;

  // Atomically replaces `path` with `data`: writes "<path>.tmp", flushes,
  // renames over `path`.  Throws IoError on any failure; a crash mid-call
  // leaves either the old file or a stray .tmp, never a half-new `path`.
  virtual void WriteFileAtomic(const std::string& path,
                               std::string_view data) = 0;

  // The whole file's bytes.  Throws IoError when the file cannot be
  // opened or read.
  virtual std::string ReadWholeFile(const std::string& path) = 0;

  virtual bool Exists(const std::string& path) = 0;

  // Removes `path`; missing files are fine (idempotent prune).  Throws
  // IoError only on a real failure (e.g. permission).
  virtual void Remove(const std::string& path) = 0;

  // The plain-file names (no directory prefix) in `dir`, sorted.  A
  // missing directory is an empty listing, not an error — rotation scans
  // before the first generation is ever written.
  virtual std::vector<std::string> ListDir(const std::string& dir) = 0;
};

// The real filesystem.
Io& DefaultIo();

}  // namespace ckpt
