// Deterministic, seeded I/O fault injection — src/fault/'s philosophy
// (scheduled, reproducible failures, never random surprises) applied to the
// filesystem boundary instead of the switching fabric.
//
// An IoFaultPlan is an ordered list of events, each naming a fault kind and
// the *operation index* it fires on.  Write-class faults (short-write,
// enospc, fsync-fail) count atomic-write calls; read-class faults (bit-flip,
// read-error) count whole-file reads.  Indices are per category, zero-based,
// and each event fires exactly once.  Where a fault needs a position (which
// byte to truncate at, which bit to flip) the position is a SplitMix64 hash
// of the plan seed and the event's index, so a given (plan, run) is exactly
// reproducible while different events perturb different bytes.
//
// Fault semantics, chosen to model what real filesystems actually do:
//
//   short-write  the atomic-write protocol is bypassed and a truncated
//                prefix lands at the *final* path, silently.  The caller
//                sees success; the damage is discovered at the next read
//                (container validation → CorruptError).  This models
//                fs-level corruption/teardown after rename — the case
//                checkpoint rotation exists for.
//   enospc       the write throws IoError and the target is untouched
//                (classic no-space failure, old generation survives).
//   fsync-fail   the bytes land completely and *then* IoError is thrown —
//                the ambiguous "fsync reported failure" case; the caller
//                must treat the write as failed even though the file is
//                actually fine.
//   bit-flip     the read completes but one seeded bit of the returned
//                buffer is flipped (media/DMA corruption on the read side).
//   read-error   the read throws IoError outright.
//
// FaultyIo wraps any Io and injects the plan; pps_serve builds one from
// --io-faults=short-write@2,bit-flip@0 (see IoFaultPlan::Parse).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/io.h"

namespace ckpt {

enum class IoFaultKind : std::uint8_t {
  kShortWrite,
  kEnospc,
  kFsyncFail,
  kBitFlip,
  kReadError,
};

// True for kinds that count write operations; false for read-side kinds.
bool IsWriteFault(IoFaultKind kind);

// "short-write" / "enospc" / "fsync-fail" / "bit-flip" / "read-error".
std::string_view IoFaultKindName(IoFaultKind kind);

struct IoFaultEvent {
  IoFaultKind kind = IoFaultKind::kShortWrite;
  // Zero-based index within the kind's category (write ops or read ops).
  std::int64_t op = 0;
};

class IoFaultPlan {
 public:
  explicit IoFaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  // Builder-style scheduling, mirroring fault::FaultSchedule.
  IoFaultPlan& ShortWrite(std::int64_t write_op) {
    return Add(IoFaultKind::kShortWrite, write_op);
  }
  IoFaultPlan& Enospc(std::int64_t write_op) {
    return Add(IoFaultKind::kEnospc, write_op);
  }
  IoFaultPlan& FsyncFail(std::int64_t write_op) {
    return Add(IoFaultKind::kFsyncFail, write_op);
  }
  IoFaultPlan& BitFlip(std::int64_t read_op) {
    return Add(IoFaultKind::kBitFlip, read_op);
  }
  IoFaultPlan& ReadError(std::int64_t read_op) {
    return Add(IoFaultKind::kReadError, read_op);
  }
  IoFaultPlan& Add(IoFaultKind kind, std::int64_t op);

  // Parses "kind@op[,kind@op...]" (e.g. "short-write@2,bit-flip@0"); the
  // empty string is an empty plan.  Throws sim::SimError on a malformed
  // spec — pps_serve maps that to a usage error.
  static IoFaultPlan Parse(std::string_view spec, std::uint64_t seed);

  // The canonical spec string (inverse of Parse, events in schedule order).
  std::string ToString() const;

  const std::vector<IoFaultEvent>& events() const { return events_; }
  std::uint64_t seed() const { return seed_; }
  bool empty() const { return events_.empty(); }

 private:
  std::uint64_t seed_ = 0;
  std::vector<IoFaultEvent> events_;
};

// An Io decorator that injects the plan's faults into a wrapped backend.
// Deterministic: same plan + same call sequence = same faults, same bytes.
class FaultyIo final : public Io {
 public:
  FaultyIo(Io& backend, IoFaultPlan plan);

  void WriteFileAtomic(const std::string& path, std::string_view data) override;
  std::string ReadWholeFile(const std::string& path) override;
  bool Exists(const std::string& path) override;
  void Remove(const std::string& path) override;
  std::vector<std::string> ListDir(const std::string& dir) override;

  // Operation counters (all calls, faulted or not) and per-kind injection
  // counts, for tests asserting that a plan actually fired.
  std::int64_t write_ops() const { return write_ops_; }
  std::int64_t read_ops() const { return read_ops_; }
  std::int64_t injected(IoFaultKind kind) const;

 private:
  // Returns the index into plan_.events() of the unfired event matching
  // (kind category, op), or -1.  Marks it fired.
  int TakeEvent(bool write_category, std::int64_t op);

  Io& backend_;
  IoFaultPlan plan_;
  std::vector<bool> fired_;
  std::int64_t write_ops_ = 0;
  std::int64_t read_ops_ = 0;
  std::vector<std::int64_t> injected_;
};

}  // namespace ckpt
