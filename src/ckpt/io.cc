#include "ckpt/io.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "sim/error.h"

namespace ckpt {

namespace {

class RealIo final : public Io {
 public:
  void WriteFileAtomic(const std::string& path,
                       std::string_view data) override {
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      if (!os.good()) {
        throw IoError("io: cannot open " + tmp + " for writing");
      }
      os.write(data.data(), static_cast<std::streamsize>(data.size()));
      os.flush();
      if (!os.good()) {
        throw IoError("io: short write to " + tmp);
      }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("io: cannot rename " + tmp + " to " + path);
    }
  }

  std::string ReadWholeFile(const std::string& path) override {
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
      throw IoError("io: cannot open " + path);
    }
    std::string contents((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
    if (is.bad()) {
      throw IoError("io: read failure on " + path);
    }
    return contents;
  }

  bool Exists(const std::string& path) override {
    std::error_code ec;
    return std::filesystem::exists(path, ec);
  }

  void Remove(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    if (ec && ec != std::errc::no_such_file_or_directory) {
      throw IoError("io: cannot remove " + path + ": " + ec.message());
    }
  }

  std::vector<std::string> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) return names;  // missing/unreadable dir: nothing to list
    for (const auto& entry : it) {
      std::error_code type_ec;
      if (entry.is_regular_file(type_ec)) {
        names.push_back(entry.path().filename().string());
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  }
};

}  // namespace

Io& DefaultIo() {
  static RealIo io;
  return io;
}

}  // namespace ckpt
