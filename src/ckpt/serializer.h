// Exact-state checkpoint serialization: the binary Writer/Reader every
// checkpointable class in the tree speaks, plus the versioned, checksummed
// file container the engine stores whole-run snapshots in.
//
// The format is deliberately dumb: fixed-width little-endian primitives,
// doubles as raw IEEE-754 bit patterns (bit_cast, never decimal text), and
// four-byte section markers in front of every class payload so a corrupted
// or misaligned stream fails loudly at the first wrong marker instead of
// silently misinterpreting bytes.  Dumbness is the point — the engine's
// hard guarantee is that checkpoint-at-S plus restore-and-continue is
// *byte-identical* to the uninterrupted run for every RunResult field,
// including Welford accumulator doubles, so serialization must be an exact
// bijection on state, not a pretty-printed approximation.
//
// Canonical bytes: classes holding unordered containers serialize them in
// sorted key order, so two equal states always produce equal files (the
// CI round-trip gate diffs checkpoint bytes, not just results).
//
// File container (WriteFile / ReadFile):
//   magic "PPSCKPT1" | u32 version | u64 payload size | u32 CRC-32 | payload
// ReadFile validates all four and throws ckpt::CorruptError (a SimError) on
// any mismatch — truncation, bit flips, or a version this build does not
// understand — so callers can distinguish "this file is bad, fall back to an
// older generation" from genuine model errors.  WriteFile writes to
// "<path>.tmp" and renames, so a crash mid-write never leaves a
// plausible-looking half checkpoint behind.  Both go through a ckpt::Io
// (io.h) so the serve supervisor can inject filesystem faults in tests.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "ckpt/io.h"
#include "sim/cell.h"
#include "sim/error.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace ckpt {

// Bumped whenever the payload layout changes; ReadFile rejects files with
// any other version (no silent cross-version reinterpretation).
inline constexpr std::uint32_t kFormatVersion = 2;

class Writer {
 public:
  void U8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(std::uint32_t v) { AppendLe(v); }
  void U64(std::uint64_t v) { AppendLe(v); }
  void I32(std::int32_t v) { AppendLe(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { AppendLe(static_cast<std::uint64_t>(v)); }
  void Size(std::size_t v) { U64(static_cast<std::uint64_t>(v)); }
  // Doubles travel as raw bit patterns: shortest-round-trip decimal would
  // survive a round trip too, but raw bits make equality auditable.
  void Double(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    Size(s.size());
    bytes_.append(s.data(), s.size());
  }
  // Four-character section marker; Reader::ExpectMarker checks it.
  void Marker(const char (&tag)[5]) { bytes_.append(tag, 4); }

  const std::string& bytes() const { return bytes_; }

 private:
  template <typename T>
  void AppendLe(T v) {
    char buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    bytes_.append(buf, sizeof(T));
  }

  std::string bytes_;
};

class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t U8() {
    Need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  bool Bool() {
    const std::uint8_t v = U8();
    SIM_CHECK(v <= 1, "checkpoint: bad bool byte " << int{v});
    return v != 0;
  }
  std::uint32_t U32() { return TakeLe<std::uint32_t>(); }
  std::uint64_t U64() { return TakeLe<std::uint64_t>(); }
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  std::size_t Size() {
    const std::uint64_t v = U64();
    SIM_CHECK(v <= bytes_.size() || v <= (std::uint64_t{1} << 48),
              "checkpoint: implausible size " << v);
    return static_cast<std::size_t>(v);
  }
  // An element count about to drive a container allocation.  Every element
  // consumes at least one byte of stream, so a count beyond the remaining
  // bytes is corruption — reject it *before* the assign/reserve instead of
  // attempting a fabricated multi-gigabyte allocation.  (Size() stays
  // unbounded for genuine scalar counts, e.g. Welford sample totals, which
  // legitimately exceed the stream length.)
  std::size_t Count() {
    const std::size_t v = Size();
    SIM_CHECK(v <= remaining(),
              "checkpoint: declared element count "
                  << v << " overruns the stream (" << remaining()
                  << " bytes left)");
    return v;
  }
  double Double() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const std::size_t n = Size();
    Need(n);
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  void ExpectMarker(const char (&tag)[5]) {
    Need(4);
    const std::string_view got = bytes_.substr(pos_, 4);
    SIM_CHECK(got == std::string_view(tag, 4),
              "checkpoint: expected section '" << tag << "', found '" << got
                                               << "' at offset " << pos_);
    pos_ += 4;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void Need(std::size_t n) {
    SIM_CHECK(bytes_.size() - pos_ >= n,
              "checkpoint: truncated stream (need " << n << " bytes at offset "
                                                    << pos_ << ")");
  }
  template <typename T>
  T TakeLe() {
    Need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(bytes_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

// CRC-32 (IEEE 802.3 polynomial, reflected) over `data`.
std::uint32_t Crc32(std::string_view data);

// Wraps the writer's payload in the validated container and writes it
// atomically (tmp + rename) through `io`.  Throws ckpt::IoError on I/O
// failure.
void WriteFile(const std::string& path, const Writer& writer,
               Io& io = DefaultIo());

// Reads and validates a checkpoint container through `io`; returns the
// payload.  Throws ckpt::IoError when the file cannot be read and
// ckpt::CorruptError on bad magic, unsupported version, truncation, or
// checksum mismatch (both are SimErrors).
std::string ReadFile(const std::string& path, Io& io = DefaultIo());

// --- canonical unordered-container traversal -------------------------------

namespace detail {
template <typename K, typename V>
const K& KeyOf(const std::pair<const K, V>& entry) {
  return entry.first;
}
template <typename K>
const K& KeyOf(const K& entry) {
  return entry;
}
}  // namespace detail

// The canonical deterministic view of an unordered container: its keys,
// sorted.  Serialization and merge paths that walk an unordered_map/set
// MUST iterate SortedKeys(c) — pps_lint's determinism checker enforces it —
// so equal states produce equal bytes regardless of hash-table insertion
// history.
template <typename Container>
auto SortedKeys(const Container& c) {
  using Key = std::decay_t<decltype(detail::KeyOf(*c.begin()))>;
  std::vector<Key> keys;
  keys.reserve(c.size());
  for (const auto& entry : c) keys.push_back(detail::KeyOf(entry));
  std::sort(keys.begin(), keys.end());
  return keys;
}

// --- shared small-object helpers -------------------------------------------

// An Rng stream is its four xoshiro words, exactly.
inline void SaveRng(Writer& w, const sim::Rng& rng) {
  for (std::uint64_t word : rng.state()) w.U64(word);
}
inline void LoadRng(Reader& r, sim::Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.U64();
  rng.set_state(state);
}

// Full cell metadata, every timestamp included: a checkpointed cell must
// resume its trajectory mid-switch with nothing re-derived.
inline void SaveCell(Writer& w, const sim::Cell& c) {
  w.U64(c.id);
  w.I32(c.input);
  w.I32(c.output);
  w.U64(c.seq);
  w.I64(c.arrival);
  w.I32(c.plane);
  w.I64(c.dispatched);
  w.I64(c.reached_output);
  w.I64(c.departure);
  w.I64(c.tag);
  w.I32(c.hop);
  w.I32(c.net_ingress);
  w.I32(c.net_egress);
  w.U64(c.net_seq);
  w.I64(c.net_arrival);
}
// `num_ports` bounds the restored endpoints: a cell's input/output index
// per-port arrays all over the switch (mux staging, backlog counters), so
// an out-of-range port from corrupt bytes must die here, not as an OOB
// access downstream.
inline sim::Cell LoadCell(Reader& r, sim::PortId num_ports) {
  sim::Cell c;
  c.id = r.U64();
  c.input = r.I32();
  c.output = r.I32();
  SIM_CHECK(c.input >= 0 && c.input < num_ports && c.output >= 0 &&
                c.output < num_ports,
            "checkpoint cell has ports " << c.input << "->" << c.output
                                         << " outside a " << num_ports
                                         << "-port switch");
  // Timestamps are kNoSlot or >= 0 for live cells.  Enforcing that here
  // keeps release-mode SlotDifference (plain subtraction) off signed
  // overflow when a corrupt byte lands in a timestamp.
  const auto valid_stamp = [](sim::Slot s) {
    return s == sim::kNoSlot || s >= 0;
  };
  c.seq = r.U64();
  c.arrival = r.I64();
  c.plane = r.I32();
  c.dispatched = r.I64();
  c.reached_output = r.I64();
  c.departure = r.I64();
  c.tag = r.I64();
  SIM_CHECK(valid_stamp(c.arrival) && valid_stamp(c.dispatched) &&
                valid_stamp(c.reached_output) && valid_stamp(c.departure) &&
                valid_stamp(c.tag),
            "checkpoint cell " << c << " has a negative timestamp");
  // Multi-hop metadata.  The network-edge port space is not bounded by this
  // node's num_ports, so the edge ports are only checked for the sentinel
  // shape (kNoPort or a real index), like the timestamps.
  c.hop = r.I32();
  c.net_ingress = r.I32();
  c.net_egress = r.I32();
  const auto valid_port = [](sim::PortId p) { return p == sim::kNoPort || p >= 0; };
  SIM_CHECK(c.hop >= 0 && valid_port(c.net_ingress) && valid_port(c.net_egress),
            "checkpoint cell " << c << " has corrupt hop metadata");
  c.net_seq = r.U64();
  c.net_arrival = r.I64();
  SIM_CHECK(valid_stamp(c.net_arrival),
            "checkpoint cell " << c << " has a negative net_arrival");
  return c;
}

}  // namespace ckpt
