#include "switch/snapshot.h"

#include <utility>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace pps {

void SnapshotRing::Push(GlobalSnapshot snap) {
  if (capacity_ == 0) return;
  SIM_CHECK(ring_.empty() || snap.slot == sim::SlotPlus(ring_.back().slot, 1),
            "snapshots must be recorded every slot");
  if (static_cast<int>(ring_.size()) == capacity_) ring_.pop_front();
  ring_.push_back(std::move(snap));
}

const GlobalSnapshot* SnapshotRing::Lookup(sim::Slot t) const {
  if (ring_.empty()) return nullptr;
  if (t <= ring_.front().slot) return &ring_.front();
  if (t >= ring_.back().slot) return &ring_.back();
  const auto offset =
      static_cast<std::size_t>(sim::SlotDifference(t, ring_.front().slot));
  return &ring_[offset];
}

GlobalSnapshot SnapshotRing::Recycle() {
  if (capacity_ > 0 && static_cast<int>(ring_.size()) == capacity_) {
    GlobalSnapshot snap = std::move(ring_.front());
    ring_.pop_front();
    return snap;
  }
  return {};
}

const GlobalSnapshot* SnapshotRing::Latest() const {
  return ring_.empty() ? nullptr : &ring_.back();
}

void GlobalSnapshot::SaveState(ckpt::Writer& w) const {
  w.Marker("SNAP");
  w.I64(slot);
  w.Size(plane_backlog.size());
  for (std::int32_t b : plane_backlog) w.I32(b);
  w.Size(input_link_next_free.size());
  for (sim::Slot s : input_link_next_free) w.I64(s);
  w.Size(output_link_next_free.size());
  for (sim::Slot s : output_link_next_free) w.I64(s);
  w.Size(output_backlog.size());
  for (std::int32_t b : output_backlog) w.I32(b);
}

void GlobalSnapshot::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("SNAP");
  slot = r.I64();
  plane_backlog.assign(r.Count(), 0);
  for (std::int32_t& b : plane_backlog) b = r.I32();
  input_link_next_free.assign(r.Count(), 0);
  for (sim::Slot& s : input_link_next_free) s = r.I64();
  output_link_next_free.assign(r.Count(), 0);
  for (sim::Slot& s : output_link_next_free) s = r.I64();
  output_backlog.assign(r.Count(), 0);
  for (std::int32_t& b : output_backlog) b = r.I32();
}

void SnapshotRing::SaveState(ckpt::Writer& w) const {
  w.Marker("SRNG");
  w.I32(capacity_);
  w.Size(ring_.size());
  for (const GlobalSnapshot& snap : ring_) snap.SaveState(w);
}

void SnapshotRing::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("SRNG");
  SIM_CHECK(r.I32() == capacity_,
            "snapshot ring checkpoint has a different capacity");
  ring_.clear();
  const std::size_t n = r.Count();
  for (std::size_t i = 0; i < n; ++i) {
    GlobalSnapshot snap;
    snap.LoadState(r);
    ring_.push_back(std::move(snap));
  }
}

}  // namespace pps
