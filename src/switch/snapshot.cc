#include "switch/snapshot.h"

#include <utility>

#include "sim/error.h"

namespace pps {

void SnapshotRing::Push(GlobalSnapshot snap) {
  if (capacity_ == 0) return;
  SIM_CHECK(ring_.empty() || snap.slot == ring_.back().slot + 1,
            "snapshots must be recorded every slot");
  if (static_cast<int>(ring_.size()) == capacity_) ring_.pop_front();
  ring_.push_back(std::move(snap));
}

const GlobalSnapshot* SnapshotRing::Lookup(sim::Slot t) const {
  if (ring_.empty()) return nullptr;
  if (t <= ring_.front().slot) return &ring_.front();
  if (t >= ring_.back().slot) return &ring_.back();
  const auto offset = static_cast<std::size_t>(t - ring_.front().slot);
  return &ring_[offset];
}

GlobalSnapshot SnapshotRing::Recycle() {
  if (capacity_ > 0 && static_cast<int>(ring_.size()) == capacity_) {
    GlobalSnapshot snap = std::move(ring_.front());
    ring_.pop_front();
    return snap;
  }
  return {};
}

const GlobalSnapshot* SnapshotRing::Latest() const {
  return ring_.empty() ? nullptr : &ring_.back();
}

}  // namespace pps
