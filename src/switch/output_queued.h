// The reference (shadow) switch: an ideal work-conserving output-queued
// switch running at the external rate R.
//
// Section 1.1: "The performance of a PPS is measured by comparison to an
// optimal work-conserving (greedy) switch operating at rate R ... A primary
// candidate for a reference switch is an output-queued switch operating at
// rate R."  Each output port has an unbounded FIFO drained at one cell per
// slot; a cell arriving to an idle output departs in its arrival slot
// (zero queuing delay), matching the paper's relative-delay accounting.
//
// Within a slot the discipline is global FCFS: cells are enqueued in
// arrival order, ties across inputs broken by input id — the same order in
// which the fabric (and the CPA demultiplexor's virtual shadow) processes
// arrivals, so the two references agree exactly.
#pragma once

#include <deque>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace pps {

class OutputQueuedSwitch {
 public:
  explicit OutputQueuedSwitch(sim::PortId num_ports);

  // Phase 1: offer a cell arriving in slot t (timestamps are stamped here).
  // Call in input-port order within the slot.
  void Inject(sim::Cell cell, sim::Slot t);

  // Phase 2: end of slot t — each output departs at most one cell.
  // Returns the departed cells with departure timestamps set.  The
  // reference points at internal scratch reused (not reallocated) every
  // slot — valid until the next Advance; copy if needed longer.
  const std::vector<sim::Cell>& Advance(sim::Slot t);

  // Current queue length of output j (cells pending, including any that
  // arrived this slot and have not departed).
  std::int64_t Backlog(sim::PortId j) const;
  std::int64_t TotalBacklog() const;
  bool Drained() const { return TotalBacklog() == 0; }

  // Work conservation audit: number of slots in which some output was idle
  // while its queue was nonempty (must be 0 by construction; tests verify).
  std::uint64_t idle_violations() const { return idle_violations_; }

  sim::PortId num_ports() const { return num_ports_; }

  void Reset();

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  sim::PortId num_ports_;
  std::vector<std::deque<sim::Cell>> queues_;
  // Per-slot scratch reused across Advance calls (cleared, never freed).
  // ckpt-skip: cleared at the top of every Advance; never live across slots
  std::vector<sim::Cell> departed_scratch_;
  std::uint64_t idle_violations_ = 0;
};

}  // namespace pps
