#include "switch/input_buffered_pps.h"

#include <algorithm>

#include "ckpt/serializer.h"
#include "core/shard_pool.h"
#include "sim/error.h"

namespace pps {

InputBufferedPps::InputBufferedPps(SwitchConfig config,
                                   const BufferedDemuxFactory& factory)
    : config_(config),
      in_links_(config.num_ports, config.num_planes, config.rate_ratio),
      ring_(config.snapshot_history) {
  config_.Validate();
  SIM_CHECK(config_.input_buffer_size > 0,
            "InputBufferedPps needs input_buffer_size > 0");
  demux_.reserve(static_cast<std::size_t>(config_.num_ports));
  for (sim::PortId i = 0; i < config_.num_ports; ++i) {
    demux_.push_back(factory(i));
    SIM_CHECK(demux_.back() != nullptr, "factory returned null demux");
    demux_.back()->Reset(config_, i);
    if (demux_.back()->info_model() != InfoModel::kFullyDistributed) {
      needs_global_ = true;
    }
  }
  SIM_CHECK(!needs_global_ || ring_.enabled(),
            "u-RT/centralized demultiplexors need snapshot_history > 0");
  planes_.reserve(static_cast<std::size_t>(config_.num_planes));
  for (sim::PlaneId k = 0; k < config_.num_planes; ++k) {
    planes_.emplace_back(k, config_.num_ports, config_.rate_ratio,
                         config_.plane_scheduling);
  }
  muxes_.reserve(static_cast<std::size_t>(config_.num_ports));
  for (sim::PortId j = 0; j < config_.num_ports; ++j) {
    muxes_.emplace_back(j, config_.num_ports, config_.mux_policy,
                        config_.reseq_timeout);
  }
  buffers_.resize(static_cast<std::size_t>(config_.num_ports));
  incoming_.resize(static_cast<std::size_t>(config_.num_ports));
  failed_.assign(static_cast<std::size_t>(config_.num_planes), false);
  visibility_ =
      fault::PlaneVisibility(config_.num_planes, config_.fault_visibility_lag);
}

void InputBufferedPps::FailPlane(sim::PlaneId k, sim::Slot at) {
  SIM_CHECK(k >= 0 && k < config_.num_planes, "bad plane id " << k);
  if (failed_[static_cast<std::size_t>(k)]) return;
  failed_[static_cast<std::size_t>(k)] = true;
  // Counted once at ground-truth failure time; after a RecoverPlane the
  // plane restarts empty, so repeated fail->recover->fail cycles never
  // double-count a stranded cell.
  failed_plane_losses_ += static_cast<std::uint64_t>(
      planes_[static_cast<std::size_t>(k)].TotalBacklog());
  planes_[static_cast<std::size_t>(k)].Reset();
  visibility_.SetDown(k, at);
}

void InputBufferedPps::RecoverPlane(sim::PlaneId k, sim::Slot at) {
  SIM_CHECK(k >= 0 && k < config_.num_planes, "bad plane id " << k);
  if (!failed_[static_cast<std::size_t>(k)]) return;
  failed_[static_cast<std::size_t>(k)] = false;
  planes_[static_cast<std::size_t>(k)].Reset();
  visibility_.SetUp(k, at);
}

void InputBufferedPps::Inject(sim::Cell cell, sim::Slot t) {
  SIM_CHECK(cell.input >= 0 && cell.input < config_.num_ports &&
                cell.output >= 0 && cell.output < config_.num_ports,
            "bad ports on " << cell);
  if (cell.arrival == sim::kNoSlot) cell.arrival = t;
  SIM_CHECK(cell.arrival == t, "arrival stamp mismatch on " << cell);
  auto& slot_cell = incoming_[static_cast<std::size_t>(cell.input)];
  SIM_CHECK(!slot_cell.has_value(),
            "two cells on input " << cell.input << " in slot " << t);
  slot_cell = cell;
}

const GlobalSnapshot* InputBufferedPps::GlobalViewFor(
    const BufferedDemultiplexor& d, sim::Slot t) const {
  switch (d.info_model()) {
    case InfoModel::kFullyDistributed:
      return nullptr;
    case InfoModel::kCentralized:
      return ring_.Latest();
    case InfoModel::kRealTimeDistributed:
      return ring_.Lookup(sim::SlotDifference(t, d.info_delay()));
  }
  return nullptr;
}

void InputBufferedPps::Launch(sim::PortId input, const sim::Cell& cell,
                              const DispatchDecision& decision, sim::Slot t) {
  SIM_CHECK(decision.plane >= 0 && decision.plane < config_.num_planes,
            "invalid plane " << decision.plane);
  SIM_CHECK(!visibility_.VisiblyDown(decision.plane, t),
            demux_[static_cast<std::size_t>(input)]->name()
                << " launched to visibly failed plane " << decision.plane);
  SIM_CHECK(in_links_.CanStart(input, decision.plane, t),
            demux_[static_cast<std::size_t>(input)]->name()
                << " violated the input constraint: line (" << input << ","
                << decision.plane << ") busy at slot " << t);
  in_links_.Start(input, decision.plane, t);
  if (failed_[static_cast<std::size_t>(decision.plane)]) {
    // Stale-visibility loss: the line transmits into a dead plane.
    ++stale_dispatch_losses_;
    return;
  }
  if (!link_faults_.empty() && link_faults_.Dropped(input, decision.plane, t)) {
    ++link_drop_losses_;
    return;
  }
  planes_[static_cast<std::size_t>(decision.plane)].Accept(
      cell, t, decision.booked_delivery);
}

const std::vector<sim::Cell>& InputBufferedPps::Advance(sim::Slot t) {
  if (!free_buf_) {
    free_buf_ = std::make_unique<bool[]>(
        static_cast<std::size_t>(config_.num_planes));
  }
  for (sim::PortId i = 0; i < config_.num_ports; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    BufferedDemultiplexor& d = *demux_[idx];
    std::vector<sim::Cell>& buffer = buffers_[idx];
    const std::optional<sim::Cell>& incoming = incoming_[idx];

    // Candidate planes are the ones this demultiplexor *believes* are up
    // (stale failure knowledge included), same as the bufferless fabric.
    for (int k = 0; k < config_.num_planes; ++k) {
      free_buf_[static_cast<std::size_t>(k)] =
          !visibility_.VisiblyDown(k, t) && in_links_.CanStart(i, k, t);
    }
    BufferedContext ctx;
    ctx.now = t;
    ctx.buffer = std::span<const sim::Cell>(buffer.data(), buffer.size());
    ctx.incoming = incoming.has_value() ? &*incoming : nullptr;
    ctx.input_link_free = std::span<const bool>(
        free_buf_.get(), static_cast<std::size_t>(config_.num_planes));
    ctx.global = GlobalViewFor(d, t);

    BufferedDecision decision = d.Decide(ctx);
    SIM_CHECK(decision.buffered.size() == buffer.size(),
              d.name() << " returned " << decision.buffered.size()
                       << " buffered decisions for a buffer of "
                       << buffer.size());

    // Launch selected cells; each launch occupies one (i,k) line, so the
    // per-slot validation is exactly "each chosen line can start now" —
    // LinkBank::Start marks the line busy, making duplicate choices fail.
    std::vector<sim::Cell> kept;
    kept.reserve(buffer.size() + 1);
    for (std::size_t b = 0; b < buffer.size(); ++b) {
      if (decision.buffered[b].plane == sim::kNoPlane) {
        kept.push_back(buffer[b]);
      } else {
        Launch(i, buffer[b], decision.buffered[b], t);
      }
    }
    if (incoming.has_value()) {
      if (decision.incoming.plane == sim::kNoPlane) {
        if (static_cast<int>(kept.size()) >= config_.input_buffer_size) {
          // The buffer is full and the algorithm kept the incoming cell:
          // in the paper's model this cannot happen to a correct
          // algorithm; we count (and drop) rather than abort so buggy
          // algorithms are measurable.
          ++buffer_overflows_;
        } else {
          kept.push_back(*incoming);
        }
      } else {
        Launch(i, *incoming, decision.incoming, t);
      }
    }
    buffer = std::move(kept);
    incoming_[idx].reset();
  }

  std::vector<sim::Cell>& delivered = delivered_scratch_;
  delivered.clear();
  for (Plane& plane : planes_) {
    if (failed_[static_cast<std::size_t>(plane.id())]) continue;
    plane.Deliver(t, delivered);
  }
  for (sim::Cell& cell : delivered) {
    muxes_[static_cast<std::size_t>(cell.output)].Stage(cell, t);
  }
  std::vector<sim::Cell>& departed = departed_scratch_;
  departed.clear();
  for (OutputMux& mux : muxes_) {
    sim::Cell cell;
    if (mux.Depart(t, &cell)) departed.push_back(cell);
  }
  if (ring_.enabled()) {
    GlobalSnapshot snap = ring_.Recycle();
    FillSnapshot(t, snap);
    ring_.Push(std::move(snap));
  }
  return departed;
}

bool InputBufferedPps::Shardable() const {
  for (const auto& d : demux_) {
    if (!d->shard_independent()) return false;
  }
  return true;
}

const std::vector<sim::Cell>& InputBufferedPps::AdvanceSharded(
    sim::Slot t, core::ShardPool& pool) {
  const auto n = static_cast<std::size_t>(config_.num_ports);
  const auto kk = static_cast<std::size_t>(config_.num_planes);
  shard_.EnsureShape(kk, n);
  shard_.EnsureLanes(pool.lanes(), kk);
  if (launches_scratch_.size() < n) {
    launches_scratch_.resize(n);
    kept_scratch_.resize(n);
    overflow_scratch_.assign(n, 0);
  }

  // Phase A (parallel over inputs): each task reads and writes only its
  // own input's demultiplexor, buffer, incoming slot and LinkBank row.
  // Launch validation and line starts happen here; the loss counters and
  // plane accepts are deferred so their order can be fixed serially.
  pool.Run(n, [&](std::size_t idx, unsigned lane) {
    const sim::PortId i = static_cast<sim::PortId>(idx);
    BufferedDemultiplexor& d = *demux_[idx];
    std::vector<sim::Cell>& buffer = buffers_[idx];
    const std::optional<sim::Cell>& incoming = incoming_[idx];
    std::vector<LaunchRec>& launches = launches_scratch_[idx];
    std::vector<sim::Cell>& kept = kept_scratch_[idx];
    launches.clear();
    kept.clear();

    bool* free_buf = shard_.FreeBufFor(lane);
    for (int k = 0; k < config_.num_planes; ++k) {
      free_buf[static_cast<std::size_t>(k)] =
          !visibility_.VisiblyDown(k, t) && in_links_.CanStart(i, k, t);
    }
    BufferedContext ctx;
    ctx.now = t;
    ctx.buffer = std::span<const sim::Cell>(buffer.data(), buffer.size());
    ctx.incoming = incoming.has_value() ? &*incoming : nullptr;
    ctx.input_link_free = std::span<const bool>(free_buf, kk);
    ctx.global = GlobalViewFor(d, t);

    BufferedDecision decision = d.Decide(ctx);
    SIM_CHECK(decision.buffered.size() == buffer.size(),
              d.name() << " returned " << decision.buffered.size()
                       << " buffered decisions for a buffer of "
                       << buffer.size());

    auto validate_and_start = [&](const DispatchDecision& dd) {
      SIM_CHECK(dd.plane >= 0 && dd.plane < config_.num_planes,
                "invalid plane " << dd.plane);
      SIM_CHECK(!visibility_.VisiblyDown(dd.plane, t),
                d.name() << " launched to visibly failed plane " << dd.plane);
      SIM_CHECK(in_links_.CanStart(i, dd.plane, t),
                d.name() << " violated the input constraint: line (" << i
                         << "," << dd.plane << ") busy at slot " << t);
      in_links_.Start(i, dd.plane, t);
    };
    for (std::size_t b = 0; b < buffer.size(); ++b) {
      if (decision.buffered[b].plane == sim::kNoPlane) {
        kept.push_back(buffer[b]);
      } else {
        validate_and_start(decision.buffered[b]);
        launches.push_back({buffer[b], decision.buffered[b]});
      }
    }
    if (incoming.has_value()) {
      if (decision.incoming.plane == sim::kNoPlane) {
        if (static_cast<int>(kept.size()) >= config_.input_buffer_size) {
          overflow_scratch_[idx] = 1;
        } else {
          kept.push_back(*incoming);
        }
      } else {
        validate_and_start(decision.incoming);
        launches.push_back({*incoming, decision.incoming});
      }
    }
    buffer.swap(kept);
    incoming_[idx].reset();
  });

  // Phase B (serial, input order): counter bumps and the link-fault
  // injector's sequential RNG draws happen exactly in the serial path's
  // launch order — input-major, buffered-then-incoming within an input.
  if (accept_buckets_.size() < kk) accept_buckets_.resize(kk);
  for (std::size_t k = 0; k < kk; ++k) accept_buckets_[k].clear();
  for (std::size_t idx = 0; idx < n; ++idx) {
    const std::vector<LaunchRec>& launches = launches_scratch_[idx];
    for (std::size_t l = 0; l < launches.size(); ++l) {
      const sim::PlaneId plane = launches[l].decision.plane;
      if (failed_[static_cast<std::size_t>(plane)]) {
        ++stale_dispatch_losses_;
      } else if (!link_faults_.empty() &&
                 link_faults_.Dropped(static_cast<sim::PortId>(idx), plane,
                                      t)) {
        ++link_drop_losses_;
      } else {
        accept_buckets_[static_cast<std::size_t>(plane)].push_back(
            {static_cast<std::uint32_t>(idx), static_cast<std::uint32_t>(l)});
      }
    }
    if (overflow_scratch_[idx] != 0) {
      ++buffer_overflows_;
      overflow_scratch_[idx] = 0;
    }
  }

  // Phase C (parallel over planes): accepts in the serial path's order.
  pool.Run(kk, [&](std::size_t k, unsigned /*lane*/) {
    for (const LaunchRef& ref : accept_buckets_[k]) {
      const LaunchRec& rec = launches_scratch_[ref.input][ref.idx];
      planes_[k].Accept(rec.cell, t, rec.decision.booked_delivery);
    }
  });

  // Common tail: per-plane delivery, per-output staging/departure,
  // snapshot — all reductions serial in fixed index order.
  shard_.DeliverPlanes(pool, planes_, failed_, t);
  shard_.BucketByOutput(kk);
  shard_.StageAndDepart(pool, muxes_, t);
  std::vector<sim::Cell>& departed = departed_scratch_;
  departed.clear();
  shard_.CollectDepartures(n, departed);
  if (ring_.enabled()) {
    GlobalSnapshot snap = ring_.Recycle();
    FillSnapshotSharded(t, snap, pool);
    ring_.Push(std::move(snap));
  }
  return departed;
}

void InputBufferedPps::FillSnapshotSharded(sim::Slot t, GlobalSnapshot& snap,
                                           core::ShardPool& pool) const {
  snap.slot = t;
  const auto n = static_cast<std::size_t>(config_.num_ports);
  const auto kk = static_cast<std::size_t>(config_.num_planes);
  snap.plane_backlog.resize(kk * n);
  snap.output_link_next_free.resize(kk * n);
  snap.input_link_next_free.resize(n * kk);
  snap.output_backlog.resize(n);
  pool.Run(kk + n, [&](std::size_t task, unsigned /*lane*/) {
    if (task < kk) {
      const std::size_t k = task;
      const Plane& plane = planes_[k];
      for (std::size_t j = 0; j < n; ++j) {
        snap.plane_backlog[k * n + j] = static_cast<std::int32_t>(
            plane.Backlog(static_cast<sim::PortId>(j)));
        snap.output_link_next_free[k * n + j] =
            plane.OutputLinkNextFree(static_cast<sim::PortId>(j));
      }
    } else {
      const std::size_t i = task - kk;
      for (std::size_t k = 0; k < kk; ++k) {
        snap.input_link_next_free[i * kk + k] =
            in_links_.NextFree(static_cast<int>(i), static_cast<int>(k));
      }
    }
  });
  for (std::size_t j = 0; j < n; ++j) {
    snap.output_backlog[j] = static_cast<std::int32_t>(muxes_[j].Backlog());
  }
}

void InputBufferedPps::FillSnapshot(sim::Slot t, GlobalSnapshot& snap) const {
  snap.slot = t;
  const auto n = static_cast<std::size_t>(config_.num_ports);
  const auto kk = static_cast<std::size_t>(config_.num_planes);
  snap.plane_backlog.resize(kk * n);
  snap.output_link_next_free.resize(kk * n);
  snap.input_link_next_free.resize(n * kk);
  snap.output_backlog.resize(n);
  for (std::size_t k = 0; k < kk; ++k) {
    const Plane& plane = planes_[k];
    for (std::size_t j = 0; j < n; ++j) {
      snap.plane_backlog[k * n + j] = static_cast<std::int32_t>(
          plane.Backlog(static_cast<sim::PortId>(j)));
      snap.output_link_next_free[k * n + j] =
          plane.OutputLinkNextFree(static_cast<sim::PortId>(j));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < kk; ++k) {
      snap.input_link_next_free[i * kk + k] =
          in_links_.NextFree(static_cast<int>(i), static_cast<int>(k));
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    snap.output_backlog[j] = static_cast<std::int32_t>(muxes_[j].Backlog());
  }
}

bool InputBufferedPps::Drained() const { return TotalBacklog() == 0; }

std::int64_t InputBufferedPps::TotalBacklog() const {
  std::int64_t total = 0;
  for (const Plane& plane : planes_) total += plane.TotalBacklog();
  for (const OutputMux& mux : muxes_) total += mux.Backlog();
  for (const auto& buffer : buffers_) {
    total += static_cast<std::int64_t>(buffer.size());
  }
  return total;
}

std::int64_t InputBufferedPps::BufferOccupancy(sim::PortId i) const {
  return static_cast<std::int64_t>(
      buffers_[static_cast<std::size_t>(i)].size());
}

std::uint64_t InputBufferedPps::resequencing_stalls() const {
  std::uint64_t total = 0;
  for (const OutputMux& mux : muxes_) total += mux.resequencing_stalls();
  return total;
}

std::uint64_t InputBufferedPps::reseq_late_losses() const {
  std::uint64_t total = 0;
  for (const OutputMux& mux : muxes_) total += mux.late_drops();
  return total;
}

void InputBufferedPps::SaveState(ckpt::Writer& w) const {
  w.Marker("IBPP");
  for (const auto& inc : incoming_) {
    SIM_CHECK(!inc.has_value(),
              "checkpoint mid-slot: an injected cell is still undecided");
  }
  for (const auto& d : demux_) d->SaveState(w);
  for (const Plane& plane : planes_) plane.SaveState(w);
  for (const OutputMux& mux : muxes_) mux.SaveState(w);
  in_links_.SaveState(w);
  ring_.SaveState(w);
  for (const auto& buffer : buffers_) {
    w.Size(buffer.size());
    for (const sim::Cell& cell : buffer) ckpt::SaveCell(w, cell);
  }
  w.Size(failed_.size());
  for (bool f : failed_) w.Bool(f);
  visibility_.SaveState(w);
  link_faults_.SaveState(w);
  w.U64(buffer_overflows_);
  w.U64(failed_plane_losses_);
  w.U64(stale_dispatch_losses_);
  w.U64(link_drop_losses_);
}

void InputBufferedPps::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("IBPP");
  for (auto& d : demux_) d->LoadState(r);
  for (Plane& plane : planes_) plane.LoadState(r);
  for (OutputMux& mux : muxes_) mux.LoadState(r);
  in_links_.LoadState(r);
  ring_.LoadState(r);
  for (auto& buffer : buffers_) {
    buffer.clear();
    const std::size_t n = r.Count();
    buffer.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      buffer.push_back(ckpt::LoadCell(r, config_.num_ports));
    }
  }
  for (auto& inc : incoming_) inc.reset();
  SIM_CHECK(r.Size() == failed_.size(),
            "fabric checkpoint has a different plane count");
  for (std::size_t k = 0; k < failed_.size(); ++k) failed_[k] = r.Bool();
  visibility_.LoadState(r);
  link_faults_.LoadState(r);
  buffer_overflows_ = r.U64();
  failed_plane_losses_ = r.U64();
  stale_dispatch_losses_ = r.U64();
  link_drop_losses_ = r.U64();
}

void InputBufferedPps::Reset() {
  for (sim::PortId i = 0; i < config_.num_ports; ++i) {
    demux_[static_cast<std::size_t>(i)]->Reset(config_, i);
  }
  for (Plane& plane : planes_) plane.Reset();
  for (OutputMux& mux : muxes_) mux.Reset();
  in_links_.Reset();
  ring_.Clear();
  for (auto& buffer : buffers_) buffer.clear();
  for (auto& inc : incoming_) inc.reset();
  std::fill(failed_.begin(), failed_.end(), false);
  visibility_.Reset();
  link_faults_.Clear();
  buffer_overflows_ = 0;
  failed_plane_losses_ = 0;
  stale_dispatch_losses_ = 0;
  link_drop_losses_ = 0;
}

}  // namespace pps
