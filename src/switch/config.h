// Static configuration of a parallel packet switch.
//
// An N x N PPS has K planes (middle-stage N x N switches) whose internal
// lines run at rate r < R.  We normalise R to one cell per slot and require
// R/r to be an integer r' >= 1 (the paper: "for simplicity, we assume that
// R/r = ceil(R/r)").  The speedup is S = K*r/R = K/r'.
#pragma once

#include <string>

#include "sim/error.h"
#include "sim/types.h"

namespace pps {

// How planes schedule deliveries to the output ports.
enum class PlaneScheduling {
  kEagerFifo,  // per-(plane,output) FIFO; send head whenever the link is free
  kBooked,     // cells carry an exact delivery slot booked at dispatch (CPA)
};

// How the output multiplexer orders cells that reached the output port.
enum class MuxPolicy {
  kFcfsArrival,       // first-delivered, first-out (ties by plane id)
  kOldestCellReseq,   // per-flow resequencing, then oldest switch-arrival first
};

struct SwitchConfig {
  sim::PortId num_ports = 0;  // N
  int num_planes = 0;         // K
  int rate_ratio = 1;         // r' = R/r

  PlaneScheduling plane_scheduling = PlaneScheduling::kEagerFifo;
  MuxPolicy mux_policy = MuxPolicy::kOldestCellReseq;

  // Input-buffered variant only: per-input buffer capacity in cells.
  int input_buffer_size = 0;

  // Keep a ring of global snapshots covering this many past slots, for
  // u-RT demultiplexors.  0 disables snapshotting.
  int snapshot_history = 0;

  // Resequencing timeout (kOldestCellReseq only): after this many
  // consecutive stalled slots at an output, the multiplexer gives up on
  // the missing sequence number and releases the oldest staged cell of
  // that flow — the reassembly-timer escape hatch needed once cells can
  // be lost (plane failures).  0 = wait forever (lossless operation).
  int reseq_timeout = 0;

  // Stale failure visibility (the u-RT idea applied to fault knowledge):
  // demultiplexors learn of a plane failing or recovering only this many
  // slots after the fact.  During the lag a dispatch can land on a
  // down-but-not-yet-known plane; the cell is lost and counted as a
  // stale_dispatch_loss.  0 = instant knowledge (the legacy model).
  int fault_visibility_lag = 0;

  double speedup() const {
    return static_cast<double>(num_planes) / rate_ratio;
  }

  void Validate() const {
    SIM_CHECK(num_ports > 0, "num_ports must be positive");
    SIM_CHECK(num_planes > 0, "num_planes must be positive");
    SIM_CHECK(rate_ratio >= 1, "rate_ratio must be >= 1");
    SIM_CHECK(input_buffer_size >= 0, "negative input buffer");
    SIM_CHECK(snapshot_history >= 0, "negative snapshot history");
    SIM_CHECK(fault_visibility_lag >= 0, "negative fault visibility lag");
  }

  std::string ToString() const {
    return "N=" + std::to_string(num_ports) + " K=" +
           std::to_string(num_planes) + " r'=" + std::to_string(rate_ratio) +
           " S=" + std::to_string(speedup());
  }
};

}  // namespace pps
