#include "switch/link.h"

#include <algorithm>
#include <limits>

#include "ckpt/serializer.h"

namespace pps {

LinkBank::LinkBank(int rows, int cols, int rate_ratio)
    : rows_(rows), cols_(cols), rate_ratio_(rate_ratio) {
  SIM_CHECK(rows > 0 && cols > 0 && rate_ratio >= 1, "bad LinkBank shape");
  next_free_.assign(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
      std::numeric_limits<sim::Slot>::min() / 2);
}

void LinkBank::Start(int row, int col, sim::Slot t) {
  const std::size_t idx = Index(row, col);
  if (next_free_[idx] > t) ++violations_;
  SIM_DCHECK(next_free_[idx] <= t,
             "link (" << row << "," << col << ") busy until "
                      << next_free_[idx] << ", start at " << t);
  next_free_[idx] = sim::SlotPlus(t, rate_ratio_);
}

int LinkBank::FreeCount(int row, sim::Slot t) const {
  int n = 0;
  for (int col = 0; col < cols_; ++col) {
    if (CanStart(row, col, t)) ++n;
  }
  return n;
}

void LinkBank::Reset() {
  std::fill(next_free_.begin(), next_free_.end(),
            std::numeric_limits<sim::Slot>::min() / 2);
  violations_ = 0;
}

void LinkBank::SaveState(ckpt::Writer& w) const {
  w.Marker("LBNK");
  w.I32(rows_);
  w.I32(cols_);
  w.I32(rate_ratio_);
  for (sim::Slot s : next_free_) w.I64(s);
  w.U64(violations_);
}

void LinkBank::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("LBNK");
  SIM_CHECK(r.I32() == rows_ && r.I32() == cols_ && r.I32() == rate_ratio_,
            "link bank checkpoint has a different shape");
  for (sim::Slot& s : next_free_) s = r.I64();
  violations_ = r.U64();
}

ReservationBank::ReservationBank(int rows, int cols, int rate_ratio)
    : rows_(rows), cols_(cols), rate_ratio_(rate_ratio) {
  SIM_CHECK(rows > 0 && cols > 0 && rate_ratio >= 1,
            "bad ReservationBank shape");
  reserved_.resize(static_cast<std::size_t>(rows) *
                   static_cast<std::size_t>(cols));
}

bool ReservationBank::Conflicts(int row, int col, sim::Slot t) const {
  const auto& slots = reserved_[Index(row, col)];
  // Any reservation s with |s - t| < rate_ratio conflicts.  The window
  // bounds saturate: a query or reservation near the numeric limits of
  // Slot (e.g. a sentinel booking at the maximum slot) must not overflow
  // into undefined behavior that silently disables the conflict check.
  constexpr sim::Slot kMin = std::numeric_limits<sim::Slot>::min();
  constexpr sim::Slot kMax = std::numeric_limits<sim::Slot>::max();
  const sim::Slot r = rate_ratio_ - 1;
  // pps-lint: allow(slot-arith): deliberate saturating bound; kMin aliases
  // the kNoSlot sentinel, so the checked helpers would reject it.
  const sim::Slot lo = t < kMin + r ? kMin : t - r;
  // pps-lint: allow(slot-arith): saturating bound, see above.
  const sim::Slot hi = t > kMax - r ? kMax : t + r;
  auto it = slots.lower_bound(lo);
  return it != slots.end() && it->first <= hi;
}

void ReservationBank::Reserve(int row, int col, sim::Slot t) {
  SIM_DCHECK(!Conflicts(row, col, t), "conflicting reservation");
  reserved_[Index(row, col)].emplace(t, true);
}

void ReservationBank::ExpireBefore(sim::Slot t) {
  for (auto& slots : reserved_) {
    slots.erase(slots.begin(), slots.lower_bound(t));
  }
}

void ReservationBank::Clear() {
  for (auto& slots : reserved_) slots.clear();
}

std::size_t ReservationBank::pending() const {
  std::size_t n = 0;
  for (const auto& slots : reserved_) n += slots.size();
  return n;
}

void ReservationBank::SaveState(ckpt::Writer& w) const {
  w.Marker("RBNK");
  w.I32(rows_);
  w.I32(cols_);
  w.I32(rate_ratio_);
  for (const auto& slots : reserved_) {
    w.Size(slots.size());
    for (const auto& [slot, flag] : slots) {
      w.I64(slot);
      w.Bool(flag);
    }
  }
}

void ReservationBank::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("RBNK");
  SIM_CHECK(r.I32() == rows_ && r.I32() == cols_ && r.I32() == rate_ratio_,
            "reservation bank checkpoint has a different shape");
  for (auto& slots : reserved_) {
    slots.clear();
    const std::size_t n = r.Count();
    for (std::size_t i = 0; i < n; ++i) {
      const sim::Slot slot = r.I64();
      slots.emplace(slot, r.Bool());
    }
  }
}

}  // namespace pps
