#include "switch/link.h"

#include <algorithm>
#include <limits>

namespace pps {

LinkBank::LinkBank(int rows, int cols, int rate_ratio)
    : rows_(rows), cols_(cols), rate_ratio_(rate_ratio) {
  SIM_CHECK(rows > 0 && cols > 0 && rate_ratio >= 1, "bad LinkBank shape");
  next_free_.assign(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
      std::numeric_limits<sim::Slot>::min() / 2);
}

void LinkBank::Start(int row, int col, sim::Slot t) {
  const std::size_t idx = Index(row, col);
  if (next_free_[idx] > t) ++violations_;
  SIM_DCHECK(next_free_[idx] <= t,
             "link (" << row << "," << col << ") busy until "
                      << next_free_[idx] << ", start at " << t);
  next_free_[idx] = t + rate_ratio_;
}

int LinkBank::FreeCount(int row, sim::Slot t) const {
  int n = 0;
  for (int col = 0; col < cols_; ++col) {
    if (CanStart(row, col, t)) ++n;
  }
  return n;
}

void LinkBank::Reset() {
  std::fill(next_free_.begin(), next_free_.end(),
            std::numeric_limits<sim::Slot>::min() / 2);
  violations_ = 0;
}

ReservationBank::ReservationBank(int rows, int cols, int rate_ratio)
    : rows_(rows), cols_(cols), rate_ratio_(rate_ratio) {
  SIM_CHECK(rows > 0 && cols > 0 && rate_ratio >= 1,
            "bad ReservationBank shape");
  reserved_.resize(static_cast<std::size_t>(rows) *
                   static_cast<std::size_t>(cols));
}

bool ReservationBank::Conflicts(int row, int col, sim::Slot t) const {
  const auto& slots = reserved_[Index(row, col)];
  // Any reservation s with |s - t| < rate_ratio conflicts.
  auto it = slots.lower_bound(t - rate_ratio_ + 1);
  return it != slots.end() && it->first <= t + rate_ratio_ - 1;
}

void ReservationBank::Reserve(int row, int col, sim::Slot t) {
  SIM_DCHECK(!Conflicts(row, col, t), "conflicting reservation");
  reserved_[Index(row, col)].emplace(t, true);
}

void ReservationBank::ExpireBefore(sim::Slot t) {
  for (auto& slots : reserved_) {
    slots.erase(slots.begin(), slots.lower_bound(t));
  }
}

std::size_t ReservationBank::pending() const {
  std::size_t n = 0;
  for (const auto& slots : reserved_) n += slots.size();
  return n;
}

}  // namespace pps
