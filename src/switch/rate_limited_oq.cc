#include "switch/rate_limited_oq.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace pps {

RateLimitedOqSwitch::RateLimitedOqSwitch(sim::PortId num_ports,
                                         int service_interval)
    : config_{num_ports}, service_interval_(service_interval) {
  SIM_CHECK(num_ports > 0, "need ports");
  SIM_CHECK(service_interval >= 1, "service interval must be >= 1");
  queues_.resize(static_cast<std::size_t>(num_ports));
  next_service_.assign(static_cast<std::size_t>(num_ports), 0);
}

void RateLimitedOqSwitch::Inject(sim::Cell cell, sim::Slot t) {
  if (cell.arrival == sim::kNoSlot) cell.arrival = t;
  SIM_CHECK(cell.arrival == t, "arrival stamp mismatch on " << cell);
  SIM_CHECK(cell.output >= 0 && cell.output < config_.num_ports,
            "bad output on " << cell);
  queues_[static_cast<std::size_t>(cell.output)].push_back(cell);
}

const std::vector<sim::Cell>& RateLimitedOqSwitch::Advance(sim::Slot t) {
  departed_scratch_.clear();
  for (sim::PortId j = 0; j < config_.num_ports; ++j) {
    auto& q = queues_[static_cast<std::size_t>(j)];
    auto& next = next_service_[static_cast<std::size_t>(j)];
    if (q.empty() || t < next) continue;
    sim::Cell cell = q.front();
    q.pop_front();
    cell.reached_output = t;
    cell.departure = t;
    next = sim::SlotPlus(t, service_interval_);
    departed_scratch_.push_back(cell);
  }
  return departed_scratch_;
}

bool RateLimitedOqSwitch::Drained() const { return TotalBacklog() == 0; }

std::int64_t RateLimitedOqSwitch::TotalBacklog() const {
  std::int64_t total = 0;
  for (const auto& q : queues_) total += static_cast<std::int64_t>(q.size());
  return total;
}

void RateLimitedOqSwitch::SaveState(ckpt::Writer& w) const {
  w.Marker("RLOQ");
  w.I32(config_.num_ports);
  w.I32(service_interval_);
  for (const auto& q : queues_) {
    w.Size(q.size());
    for (const sim::Cell& cell : q) ckpt::SaveCell(w, cell);
  }
  for (sim::Slot s : next_service_) w.I64(s);
}

void RateLimitedOqSwitch::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("RLOQ");
  SIM_CHECK(r.I32() == config_.num_ports && r.I32() == service_interval_,
            "rate-limited OQ checkpoint has a different shape");
  for (auto& q : queues_) {
    q.clear();
    const std::size_t n = r.Count();
    for (std::size_t i = 0; i < n; ++i) {
      q.push_back(ckpt::LoadCell(r, config_.num_ports));
    }
  }
  for (sim::Slot& s : next_service_) s = r.I64();
}

}  // namespace pps
