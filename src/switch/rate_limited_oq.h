// A non-work-conserving reference switch, for the Discussion-section
// claim: "Traffic shaping with low jitter may prefer non-work-conserving
// switches ... When cells are not dropped within the switch, a
// non-work-conserving reference switch can degrade to work at rate r,
// making the comparison meaningless."
//
// This switch serves each output at rate r = R/r' (one cell every r'
// slots) regardless of backlog — the most pessimistic legal
// non-work-conserving discipline.  Comparing a PPS against it makes every
// PPS look good (relative delays go hugely negative under load), which is
// exactly why the paper insists on a work-conserving reference; the test
// suite demonstrates the degradation quantitatively.
#pragma once

#include <deque>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace pps {

class RateLimitedOqSwitch {
 public:
  // Serves each output once every `service_interval` slots.
  RateLimitedOqSwitch(sim::PortId num_ports, int service_interval);

  void Inject(sim::Cell cell, sim::Slot t);
  // Returns this slot's departures; the reference points at internal
  // scratch reused every slot (valid until the next Advance call).
  const std::vector<sim::Cell>& Advance(sim::Slot t);

  bool Drained() const;
  std::int64_t TotalBacklog() const;
  std::uint64_t resequencing_stalls() const { return 0; }

  int service_interval() const { return service_interval_; }

  struct Config {
    sim::PortId num_ports;
  };
  const Config& config() const { return config_; }

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  Config config_;
  int service_interval_;
  std::vector<std::deque<sim::Cell>> queues_;
  std::vector<sim::Slot> next_service_;
  // Per-slot scratch reused across Advance calls (cleared, never freed).
  // ckpt-skip: cleared at the top of every Advance; never live across slots
  std::vector<sim::Cell> departed_scratch_;
};

}  // namespace pps
