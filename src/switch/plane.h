// A middle-stage switch ("plane"): an N x N output-queued switch whose
// lines to the PPS output ports run at rate r, i.e. one transmission start
// per r' slots per (plane, output) line.
//
// Two scheduling modes:
//   * kEagerFifo — per-output FIFO; whenever the line to output j is free
//     and the queue is nonempty, the head cell is delivered.  This is the
//     natural greedy plane; the concentration lower bound (Lemma 4) holds
//     for *any* plane scheduling, so eager is fine for the adversarial
//     experiments.
//   * kBooked — every cell carries the exact slot at which it must be
//     delivered (fixed by a CPA-style demultiplexor at dispatch time); the
//     plane is a time-indexed calendar and validates that bookings on one
//     output line are at least r' slots apart (the output constraint).
//
// The booked calendar is a power-of-two ring of slot buckets addressed by
// slot & mask (an open-addressed time wheel): Accept and Deliver are O(1)
// amortized with no per-slot map nodes, and delivered buckets are recycled
// (cleared, capacity kept) instead of freed.  The ring doubles whenever
// two outstanding booked slots collide on a bucket, so any booking horizon
// is supported.
#pragma once

#include <deque>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"
#include "switch/config.h"
#include "switch/link.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace pps {

class Plane {
 public:
  Plane(sim::PlaneId id, sim::PortId num_ports, int rate_ratio,
        PlaneScheduling scheduling);

  // Accepts a cell from an input port at slot t; the cell is available in
  // the plane in the same slot (the input-line bookkeeping lives in the
  // fabric).  In kBooked mode booked_delivery must be a valid slot >= t
  // whose line spacing does not conflict with earlier bookings; in
  // kEagerFifo mode it must be sim::kNoSlot.
  void Accept(sim::Cell cell, sim::Slot t,
              sim::Slot booked_delivery = sim::kNoSlot);

  // End-of-slot: delivers cells to the output staging area, respecting the
  // output constraint.  Appends delivered cells (with reached_output = t).
  void Deliver(sim::Slot t, std::vector<sim::Cell>& out);

  std::int64_t Backlog(sim::PortId j) const;
  std::int64_t TotalBacklog() const;

  // Earliest slot at which the line to output j may start a transmission
  // (eager-mode bookkeeping).
  sim::Slot OutputLinkNextFree(sim::PortId j) const {
    return out_links_.NextFree(0, j);
  }

  // kBooked mode: would a delivery booked at `slot` for output j conflict
  // with the line spacing of existing bookings?
  bool BookingConflicts(sim::PortId j, sim::Slot slot) const;

  sim::PlaneId id() const { return id_; }
  PlaneScheduling scheduling() const { return scheduling_; }

  void Reset();

  // Exact-state checkpointing.  The booked calendar serializes only its
  // non-vacant buckets (sorted by booked slot) plus the ring size, so the
  // restored ring is bucket-for-bucket identical.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // One calendar-ring bucket: the cells booked for delivery at `slot`
  // (kNoSlot = vacant; the cell vector keeps its capacity across reuse).
  struct CalendarBucket {
    sim::Slot slot = sim::kNoSlot;
    std::vector<sim::Cell> cells;
  };

  CalendarBucket& BucketFor(sim::Slot slot);
  void GrowCalendar();

  sim::PlaneId id_;
  sim::PortId num_ports_;
  int rate_ratio_;
  PlaneScheduling scheduling_;
  // The plane owns its 1 x N bank of output lines (row 0).
  LinkBank out_links_;
  std::vector<std::deque<sim::Cell>> queues_;  // eager mode
  std::vector<CalendarBucket> calendar_;       // booked mode (ring)
  // ckpt-skip: recomputed by LoadState from the restored calendar ring
  std::size_t calendar_mask_ = 0;              // calendar_.size() - 1
  // ckpt-skip: recomputed by LoadState from the restored calendar ring
  std::int64_t calendar_pending_ = 0;          // booked cells outstanding
  ReservationBank bookings_;                   // booked mode
  std::vector<std::int64_t> backlog_;          // per output
};

}  // namespace pps
