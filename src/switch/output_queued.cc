#include "switch/output_queued.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace pps {

OutputQueuedSwitch::OutputQueuedSwitch(sim::PortId num_ports)
    : num_ports_(num_ports) {
  SIM_CHECK(num_ports > 0, "need ports");
  queues_.resize(static_cast<std::size_t>(num_ports));
}

void OutputQueuedSwitch::Inject(sim::Cell cell, sim::Slot t) {
  SIM_CHECK(cell.output >= 0 && cell.output < num_ports_,
            "bad output port on " << cell);
  cell.arrival = t;
  queues_[static_cast<std::size_t>(cell.output)].push_back(cell);
}

const std::vector<sim::Cell>& OutputQueuedSwitch::Advance(sim::Slot t) {
  departed_scratch_.clear();
  for (auto& q : queues_) {
    if (q.empty()) continue;
    sim::Cell cell = q.front();
    q.pop_front();
    cell.departure = t;
    cell.reached_output = t;
    departed_scratch_.push_back(cell);
  }
  return departed_scratch_;
}

std::int64_t OutputQueuedSwitch::Backlog(sim::PortId j) const {
  return static_cast<std::int64_t>(
      queues_[static_cast<std::size_t>(j)].size());
}

std::int64_t OutputQueuedSwitch::TotalBacklog() const {
  std::int64_t total = 0;
  for (const auto& q : queues_) total += static_cast<std::int64_t>(q.size());
  return total;
}

void OutputQueuedSwitch::SaveState(ckpt::Writer& w) const {
  w.Marker("OQSW");
  w.I32(num_ports_);
  for (const auto& q : queues_) {
    w.Size(q.size());
    for (const sim::Cell& cell : q) ckpt::SaveCell(w, cell);
  }
  w.U64(idle_violations_);
}

void OutputQueuedSwitch::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("OQSW");
  SIM_CHECK(r.I32() == num_ports_,
            "shadow switch checkpoint has a different port count");
  for (auto& q : queues_) {
    q.clear();
    const std::size_t n = r.Count();
    for (std::size_t i = 0; i < n; ++i) {
      q.push_back(ckpt::LoadCell(r, num_ports_));
    }
  }
  idle_violations_ = r.U64();
}

void OutputQueuedSwitch::Reset() {
  for (auto& q : queues_) q.clear();
  idle_violations_ = 0;
}

}  // namespace pps
