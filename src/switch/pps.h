// The bufferless parallel packet switch fabric (Figure 1 of the paper):
// N demultiplexors -> K planes -> N output multiplexers, glued together by
// the internal-line rate constraints of Section 2.
//
// Slot protocol (driven by core::RelativeDelayHarness or directly):
//   for each slot t:
//     Inject(cell, t)   for every arriving cell, in input-port order;
//                       the demultiplexor picks a plane immediately
//                       (Definition 1) and the cell enters that plane in
//                       the same slot;
//     Advance(t)        planes deliver to output ports (output
//                       constraint), each output departs at most one cell,
//                       the end-of-slot global snapshot is recorded.
//
// A cell can traverse the whole switch in its arrival slot (zero queuing
// delay), matching the paper's propagation-free accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "fault/link_faults.h"
#include "fault/loss.h"
#include "fault/visibility.h"
#include "sim/cell.h"
#include "sim/event_log.h"
#include "sim/types.h"
#include "switch/config.h"
#include "switch/demux_iface.h"
#include "switch/link.h"
#include "switch/output_mux.h"
#include "switch/plane.h"
#include "switch/shard_stages.h"
#include "switch/snapshot.h"

namespace core {
class ShardPool;
}  // namespace core

namespace pps {

class BufferlessPps {
 public:
  BufferlessPps(SwitchConfig config, const DemuxFactory& factory);

  // Offers a cell arriving in slot t; call in increasing input order within
  // a slot.  The cell's id/seq/arrival must be pre-assigned (the harness
  // gives the PPS and the shadow switch identical cells); arrival may be
  // kNoSlot for standalone use, in which case it is stamped here.  seq must
  // increase by one per flow — the resequencing output multiplexer holds a
  // cell until all earlier sequence numbers of its flow have departed.
  void Inject(sim::Cell cell, sim::Slot t);

  // Ends slot t; returns all cells departing in this slot.  The returned
  // reference points at internal scratch that is reused (not reallocated)
  // every slot — it stays valid until the next Advance call; copy it if
  // you need the cells longer.
  const std::vector<sim::Cell>& Advance(sim::Slot t);

  // --- sharded slot protocol (see switch/shard_stages.h) ---

  // True iff the sharded entry points below produce results byte-identical
  // to the serial protocol: every demultiplexor is an independent state
  // machine (Dispatch touches only its own input's state) and the event
  // log is off (its single ordered stream cannot be split across lanes).
  bool Shardable() const;

  // Batch of one slot's arrivals, sorted by input port with arrival
  // pre-stamped.  Demux decisions fan out per input (phase A); counters,
  // sequential link-fault RNG draws and per-plane bucketing run serially
  // in input order (phase B); plane accepts fan out per plane (phase C).
  // Returns per-cell synchronous-drop flags, scratch valid until the next
  // call.
  const std::vector<std::uint8_t>& InjectBatch(std::span<const sim::Cell> cells,
                                               sim::Slot t,
                                               core::ShardPool& pool);

  // Sharded Advance: per-plane delivery and per-output staging/departure
  // fan out over `pool`; every reduction (departure order, backlog
  // high-water marks, snapshot) happens serially in fixed index order, so
  // the returned cells and all counters match Advance exactly.
  const std::vector<sim::Cell>& AdvanceSharded(sim::Slot t,
                                               core::ShardPool& pool);

  bool Drained() const;
  std::int64_t PlaneBacklog(sim::PlaneId k, sim::PortId j) const;
  std::int64_t TotalBacklog() const;

  // Fault injection (the paper's fault-tolerance motivation for
  // unpartitioned demultiplexing): takes plane k out of service.  Its
  // input lines appear permanently busy, so demultiplexors route around
  // it — or, if their static partition has no surviving plane free, drop
  // the cell (counted in input_drops).  Cells already queued inside the
  // failed plane are lost (counted in failed_plane_losses).
  //
  // The one-argument form is the legacy instant-knowledge entry point:
  // the failure/recovery is immediately visible to every demultiplexor.
  // With a real slot `at` and config.fault_visibility_lag > 0, the
  // demultiplexors keep believing the old state for `lag` slots; cells
  // dispatched into a dead-but-not-yet-known plane are lost and counted
  // in stale_dispatch_losses.
  void FailPlane(sim::PlaneId k) { FailPlane(k, sim::kNoSlot); }
  void FailPlane(sim::PlaneId k, sim::Slot at);
  // Returns plane k to service with a cleared calendar, FIFOs, links and
  // booking reservations; a no-op if the plane is not failed.
  void RecoverPlane(sim::PlaneId k) { RecoverPlane(k, sim::kNoSlot); }
  void RecoverPlane(sim::PlaneId k, sim::Slot at);
  bool PlaneFailed(sim::PlaneId k) const {
    return failed_[static_cast<std::size_t>(k)];
  }
  std::uint64_t input_drops() const { return input_drops_; }
  std::uint64_t failed_plane_losses() const { return failed_plane_losses_; }
  std::uint64_t stale_dispatch_losses() const {
    return stale_dispatch_losses_;
  }
  std::uint64_t link_drop_losses() const { return link_drop_losses_; }
  // Cells the output resequencers dropped for arriving after their
  // reassembly window (OutputMux::late_drops, summed over outputs).
  std::uint64_t reseq_late_losses() const;

  // The full loss ledger; always equals the sum of the per-category
  // counters above (buffer_overflows stays 0 on the bufferless fabric).
  fault::LossBreakdown Losses() const {
    return {input_drops_,      failed_plane_losses_, stale_dispatch_losses_,
            link_drop_losses_, reseq_late_losses(),  0};
  }

  // Flaky-link injector; the harness arms LinkDrop windows here before
  // the first slot.
  fault::LinkFaultInjector& link_faults() { return link_faults_; }
  const fault::PlaneVisibility& visibility() const { return visibility_; }

  const SwitchConfig& config() const { return config_; }
  const GlobalSnapshot* LatestSnapshot() const { return ring_.Latest(); }

  // Per-plane dispatch counters (load-balance reporting).
  const std::vector<std::uint64_t>& dispatches_per_plane() const {
    return dispatch_count_;
  }

  // High-water marks, sampled every Advance: the buffer the middle-stage
  // switches and the output ports would need.  The paper: "large relative
  // queuing delays usually imply that the buffer sizes at the middle-stage
  // switches or at the external ports should be large as well".
  std::int64_t max_plane_backlog() const { return max_plane_backlog_; }
  std::int64_t max_output_backlog() const { return max_output_backlog_; }
  std::uint64_t resequencing_stalls() const;
  std::uint64_t input_link_violations() const { return in_links_.violations(); }

  // White-box access for adversaries (const) and the demux oracle.
  const Demultiplexor& demux(sim::PortId i) const { return *demux_[i]; }
  Demultiplexor& mutable_demux(sim::PortId i) { return *demux_[i]; }
  const LinkBank& input_links() const { return in_links_; }

  sim::EventLog& event_log() { return log_; }

  void Reset();

  // Exact-state checkpointing (ckpt/): serializes every demultiplexor,
  // plane, output mux, link bank, the snapshot ring, fault state and all
  // loss counters.  The event log is diagnostic and not serialized;
  // SaveState refuses to run with a non-empty log armed.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  const GlobalSnapshot* GlobalViewFor(const Demultiplexor& d, sim::Slot t) const;
  // Fills `snap` in place (resize keeps capacity, so recycled snapshots
  // from SnapshotRing::Recycle are refilled without allocating).
  void FillSnapshot(sim::Slot t, GlobalSnapshot& snap) const;
  // Same result, with the per-plane and per-input rows fanned out.
  void FillSnapshotSharded(sim::Slot t, GlobalSnapshot& snap,
                           core::ShardPool& pool) const;

  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  SwitchConfig config_;
  std::vector<std::unique_ptr<Demultiplexor>> demux_;
  std::vector<Plane> planes_;
  std::vector<OutputMux> muxes_;
  LinkBank in_links_;  // N x K input lines
  SnapshotRing ring_;
  std::vector<std::uint64_t> dispatch_count_;
  sim::PortId last_inject_input_ = -1;
  sim::Slot last_inject_slot_ = sim::kNoSlot;
  // ckpt-skip: derived from the demux info models by Reset
  bool needs_global_ = false;
  // ckpt-skip: per-dispatch scratch, overwritten before every use
  std::unique_ptr<bool[]> free_buf_;  // reusable DispatchContext buffer
  std::vector<bool> failed_;          // per plane, ground truth
  fault::PlaneVisibility visibility_;  // what the demultiplexors believe
  fault::LinkFaultInjector link_faults_;
  // Per-slot scratch reused across Advance calls (cleared, never freed).
  // ckpt-skip: per-slot scratch, cleared at the top of every Advance
  std::vector<sim::Cell> delivered_scratch_;
  // ckpt-skip: per-slot scratch, cleared at the top of every Advance
  std::vector<sim::Cell> departed_scratch_;
  std::uint64_t input_drops_ = 0;
  std::uint64_t failed_plane_losses_ = 0;
  std::uint64_t stale_dispatch_losses_ = 0;
  std::uint64_t link_drop_losses_ = 0;
  std::int64_t max_plane_backlog_ = 0;
  std::int64_t max_output_backlog_ = 0;
  // ckpt-skip: SaveState enforces the log is disabled or empty, so
  // LoadState has nothing to restore
  sim::EventLog log_;
  // Sharded-path scratch (all reused, never freed between slots).
  // ckpt-skip: worker-pool scratch, rebuilt every sharded slot
  ShardSlotScratch shard_;
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<DispatchDecision> decisions_scratch_;  // per arriving cell
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<std::uint8_t> outcome_scratch_;        // per arriving cell
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<std::uint8_t> inject_dropped_scratch_;
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<std::vector<std::uint32_t>> accept_buckets_;  // per plane
};

}  // namespace pps
