// Shared stage drivers for the sharded PPS slot pipeline.
//
// One PPS slot decomposes into independent shards at each stage — demux
// decisions are per-input, calendar/FIFO advancement is per-plane, mux
// departures are per-output — with the stage boundary as the only
// synchronization point.  BufferlessPps and InputBufferedPps both end
// their slot with the same tail:
//
//   Deliver (per plane)  ->  Stage+Depart (per output)  ->  Snapshot
//
// ShardSlotScratch owns the per-slot scratch for that tail and runs it on
// a core::ShardPool so that the result is byte-identical to the serial
// Advance loop:
//
//   * each plane delivers into its own scratch vector; the serial loop's
//     staging order (plane-major, within-plane delivery order) is
//     reproduced by bucketing indices in that exact order;
//   * buckets hold (plane, cell) u32 index pairs, not cell copies — the
//     batching moves 8 bytes per delivered cell and the staging reads the
//     cells straight out of the per-plane scratch (structure-of-arrays
//     over the slot's delivered set);
//   * each output stages its bucket in order and departs at most one
//     cell into its own slot of the departure array; the caller collects
//     the departures serially in output order, matching the serial loop.
//
// All counters derived here (backlog high-water marks) are reduced by the
// caller after the barrier, in fixed index order.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/shard_pool.h"
#include "sim/cell.h"
#include "sim/types.h"
#include "switch/output_mux.h"
#include "switch/plane.h"

namespace pps {

class ShardSlotScratch {
 public:
  // Grows (never shrinks) the scratch to the fabric's geometry; cheap to
  // call per slot.
  void EnsureShape(std::size_t num_planes, std::size_t num_outputs) {
    if (per_plane_.size() < num_planes) per_plane_.resize(num_planes);
    if (buckets_.size() < num_outputs) buckets_.resize(num_outputs);
    if (depart_flag_.size() < num_outputs) {
      depart_flag_.assign(num_outputs, 0);
      depart_cell_.resize(num_outputs);
    }
  }

  // Pre-provisions the lane-private candidate-set buffers.  Must run
  // serially before a parallel stage uses FreeBufFor: the buffers hand
  // out raw pointers, so no resizing may happen concurrently.
  void EnsureLanes(unsigned lanes, std::size_t num_planes) {
    if (free_bufs_.size() < lanes) free_bufs_.resize(lanes);
    for (auto& buf : free_bufs_) {
      if (buf.size < num_planes) {
        buf.data = std::make_unique<bool[]>(num_planes);
        buf.size = num_planes;
      }
    }
  }

  // Lane-private bool array for DispatchContext::input_link_free; valid
  // after EnsureLanes(lane count, num_planes).
  bool* FreeBufFor(unsigned lane) { return free_bufs_[lane].data.get(); }

  // Stage 1: every live plane delivers into its own scratch (parallel
  // over planes).
  void DeliverPlanes(core::ShardPool& pool, std::vector<Plane>& planes,
                     const std::vector<bool>& failed, sim::Slot t) {
    EnsureShape(planes.size(), buckets_.size());
    pool.Run(planes.size(), [&](std::size_t k, unsigned /*lane*/) {
      per_plane_[k].clear();
      if (!failed[k]) planes[k].Deliver(t, per_plane_[k]);
    });
  }

  // Stage boundary: bucket delivered cells by output in the serial
  // staging order (plane-major).  Serial by design — it fixes the order
  // the parallel staging stage must observe.
  void BucketByOutput(std::size_t num_planes) {
    for (auto& bucket : buckets_) bucket.clear();
    for (std::size_t k = 0; k < num_planes; ++k) {
      const auto& cells = per_plane_[k];
      for (std::size_t c = 0; c < cells.size(); ++c) {
        buckets_[static_cast<std::size_t>(cells[c].output)].push_back(
            {static_cast<std::uint32_t>(k), static_cast<std::uint32_t>(c)});
      }
    }
  }

  // Stage 2: per-output staging + departure (parallel over outputs); the
  // departures land in output-indexed slots.  The caller must have run
  // DeliverPlanes and BucketByOutput for this slot first.
  void StageAndDepart(core::ShardPool& pool, std::vector<OutputMux>& muxes,
                      sim::Slot t) {
    pool.Run(muxes.size(), [&](std::size_t j, unsigned /*lane*/) {
      for (const CellRef& ref : buckets_[j]) {
        muxes[j].Stage(per_plane_[ref.plane][ref.cell], t);
      }
      depart_flag_[j] =
          muxes[j].Depart(t, &depart_cell_[j]) ? std::uint8_t{1}
                                               : std::uint8_t{0};
    });
  }

  // Serial collection in output order — identical to the serial loop's
  // departure order.
  void CollectDepartures(std::size_t num_outputs,
                         std::vector<sim::Cell>& departed) const {
    for (std::size_t j = 0; j < num_outputs; ++j) {
      if (depart_flag_[j] != 0) departed.push_back(depart_cell_[j]);
    }
  }

  const std::vector<sim::Cell>& delivered_by_plane(std::size_t k) const {
    return per_plane_[k];
  }

 private:
  struct CellRef {
    std::uint32_t plane;
    std::uint32_t cell;
  };
  struct LaneBools {
    std::unique_ptr<bool[]> data;
    std::size_t size = 0;
  };

  std::vector<std::vector<sim::Cell>> per_plane_;
  std::vector<std::vector<CellRef>> buckets_;
  std::vector<std::uint8_t> depart_flag_;
  std::vector<sim::Cell> depart_cell_;
  std::vector<LaneBools> free_bufs_;
};

}  // namespace pps
