#include "switch/output_mux.h"

#include <algorithm>

#include "sim/error.h"

namespace pps {
namespace {

// Min-heap order on (arrival, id): std::push_heap/pop_heap build a
// max-heap w.r.t. the comparator, so "greater" yields the minimum on top.
constexpr auto kLaterHead = [](const auto& a, const auto& b) {
  return a.arrival > b.arrival || (a.arrival == b.arrival && a.id > b.id);
};

}  // namespace

OutputMux::OutputMux(sim::PortId output, sim::PortId num_ports,
                     MuxPolicy policy, int reseq_timeout)
    : output_(output),
      num_ports_(num_ports),
      policy_(policy),
      reseq_timeout_(reseq_timeout) {}

void OutputMux::PushEligible(const sim::Cell& cell, sim::FlowId flow) {
  eligible_.push_back({cell.arrival, cell.id, flow});
  std::push_heap(eligible_.begin(), eligible_.end(), kLaterHead);
}

OutputMux::EligibleHead OutputMux::PopEligible() {
  std::pop_heap(eligible_.begin(), eligible_.end(), kLaterHead);
  EligibleHead head = eligible_.back();
  eligible_.pop_back();
  return head;
}

void OutputMux::Stage(sim::Cell cell, sim::Slot t) {
  SIM_CHECK(cell.output == output_,
            "cell for output " << cell.output << " staged at " << output_);
  cell.reached_output = t;
  if (policy_ == MuxPolicy::kFcfsArrival) {
    ++total_staged_;
    fifo_.push_back(cell);
    return;
  }
  const sim::FlowId flow =
      sim::MakeFlowId(cell.input, cell.output, num_ports_);
  FlowState& fs = flows_[flow];
  if (cell.seq < fs.next_seq) {
    // The reassembly timer already gave up on this sequence number (the
    // cell was delayed in a congested plane past reseq_timeout, and the
    // gap-close presumed it lost).  It cannot be delivered in order any
    // more, and staging it below next_seq would park it forever — the
    // mux drops it as a counted late arrival instead.
    ++late_drops_;
    return;
  }
  ++total_staged_;
  auto [it, inserted] = fs.staged.emplace(cell.seq, cell);
  SIM_CHECK(inserted, "duplicate staged seq " << cell.seq << " on " << cell);
  if (cell.seq == fs.next_seq) PushEligible(it->second, flow);
}

void OutputMux::CloseSequenceGaps() {
  // Reassembly timeout: the missing sequence numbers will never come
  // (cells were lost).  Close every flow's gap up to its *minimum* staged
  // seq, like an expiring reassembly timer; raising to anything above the
  // minimum would make lower-seq staged cells permanently ineligible and
  // deadlock the flow.  next_seq only ever moves forward (max with the
  // minimum staged seq), and every skipped sequence number is counted in
  // seq_gaps_closed_.
  //
  // The timeout fires only when no staged cell is eligible, so no flow has
  // its expected seq staged here; exactly the flows whose minimum staged
  // seq lies above their expected seq gain an eligible head.
  for (auto& [flow, fs] : flows_) {
    if (fs.staged.empty()) continue;
    const auto head = fs.staged.begin();
    if (head->first > fs.next_seq) {
      seq_gaps_closed_ += head->first - fs.next_seq;
      fs.next_seq = head->first;
      PushEligible(head->second, flow);
    }
  }
}

bool OutputMux::Depart(sim::Slot t, sim::Cell* out) {
  if (total_staged_ == 0) return false;

  if (policy_ == MuxPolicy::kFcfsArrival) {
    sim::Cell cell = fifo_[fifo_head_++];
    if (fifo_head_ == fifo_.size()) {
      fifo_.clear();  // keeps capacity: no steady-state allocation
      fifo_head_ = 0;
    } else if (fifo_head_ >= 1024 && fifo_head_ * 2 >= fifo_.size()) {
      // Amortized O(1) compaction keeps memory proportional to the live
      // backlog instead of the cells ever staged.
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
      fifo_head_ = 0;
    }
    --total_staged_;
    cell.departure = t;
    *out = cell;
    return true;
  }

  if (eligible_.empty()) {
    ++stalls_;  // nonempty buffer, nothing eligible (flow head missing)
    if (reseq_timeout_ > 0 && ++stall_streak_ >= reseq_timeout_) {
      ++timeouts_;
      stall_streak_ = 0;
      CloseSequenceGaps();
    }
    return false;
  }
  stall_streak_ = 0;

  const EligibleHead head = PopEligible();
  auto flow_it = flows_.find(head.flow);
  SIM_DCHECK(flow_it != flows_.end(), "eligible head for unknown flow");
  FlowState& fs = flow_it->second;
  auto cell_it = fs.staged.find(fs.next_seq);
  SIM_DCHECK(cell_it != fs.staged.end() && cell_it->second.id == head.id,
             "eligibility heap out of sync with flow " << head.flow);
  sim::Cell cell = cell_it->second;
  fs.staged.erase(cell_it);
  --total_staged_;
  fs.next_seq = cell.seq + 1;
  auto next_it = fs.staged.find(fs.next_seq);
  if (next_it != fs.staged.end()) PushEligible(next_it->second, head.flow);
  cell.departure = t;
  *out = cell;
  return true;
}

void OutputMux::Reset() {
  fifo_.clear();
  fifo_head_ = 0;
  flows_.clear();
  eligible_.clear();
  total_staged_ = 0;
  stalls_ = 0;
  timeouts_ = 0;
  seq_gaps_closed_ = 0;
  late_drops_ = 0;
  stall_streak_ = 0;
}

}  // namespace pps
