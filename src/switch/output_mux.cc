#include "switch/output_mux.h"

#include <algorithm>

#include "sim/error.h"

namespace pps {

OutputMux::OutputMux(sim::PortId output, sim::PortId num_ports,
                     MuxPolicy policy, int reseq_timeout)
    : output_(output),
      num_ports_(num_ports),
      policy_(policy),
      reseq_timeout_(reseq_timeout) {}

void OutputMux::Stage(sim::Cell cell, sim::Slot t) {
  SIM_CHECK(cell.output == output_,
            "cell for output " << cell.output << " staged at " << output_);
  cell.reached_output = t;
  staged_.push_back(cell);
  delivery_order_.push_back(arrival_counter_++);
}

bool OutputMux::Eligible(const sim::Cell& cell) const {
  if (policy_ == MuxPolicy::kFcfsArrival) return true;
  const sim::FlowId flow = sim::MakeFlowId(cell.input, cell.output,
                                           num_ports_);
  auto it = next_seq_.find(flow);
  const std::uint64_t expected = it == next_seq_.end() ? 0 : it->second;
  return cell.seq == expected;
}

bool OutputMux::Depart(sim::Slot t, sim::Cell* out) {
  if (staged_.empty()) return false;

  std::size_t best = staged_.size();
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    if (!Eligible(staged_[i])) continue;
    if (best == staged_.size()) {
      best = i;
      continue;
    }
    const sim::Cell& a = staged_[i];
    const sim::Cell& b = staged_[best];
    bool better;
    if (policy_ == MuxPolicy::kFcfsArrival) {
      better = delivery_order_[i] < delivery_order_[best];
    } else {
      better = a.arrival < b.arrival ||
               (a.arrival == b.arrival && a.id < b.id);
    }
    if (better) best = i;
  }
  if (best == staged_.size()) {
    ++stalls_;  // nonempty buffer, nothing eligible (flow head missing)
    if (reseq_timeout_ > 0 && ++stall_streak_ >= reseq_timeout_) {
      // Reassembly timeout: the missing sequence numbers will never come
      // (cells were lost).  Close every flow's gap up to its oldest
      // staged cell, like an expiring reassembly timer.
      ++timeouts_;
      stall_streak_ = 0;
      // Raise each flow's expected seq to its *minimum* staged seq.
      // Seeding from the first-encountered staged cell instead would make
      // any lower-seq cell of the same flow staged behind it permanently
      // ineligible — the mux would deadlock that flow.
      std::unordered_map<sim::FlowId, std::uint64_t> min_staged;
      for (const sim::Cell& cell : staged_) {
        const sim::FlowId flow =
            sim::MakeFlowId(cell.input, cell.output, num_ports_);
        auto [it, fresh] = min_staged.try_emplace(flow, cell.seq);
        if (!fresh) it->second = std::min(it->second, cell.seq);
      }
      for (const auto& [flow, min_seq] : min_staged) {
        auto [it, fresh] = next_seq_.try_emplace(flow, min_seq);
        if (!fresh) it->second = std::max(it->second, min_seq);
      }
    }
    return false;
  }
  stall_streak_ = 0;

  sim::Cell cell = staged_[best];
  staged_.erase(staged_.begin() + static_cast<std::ptrdiff_t>(best));
  delivery_order_.erase(delivery_order_.begin() +
                        static_cast<std::ptrdiff_t>(best));
  cell.departure = t;
  if (policy_ == MuxPolicy::kOldestCellReseq) {
    next_seq_[sim::MakeFlowId(cell.input, cell.output, num_ports_)] =
        cell.seq + 1;
  }
  *out = cell;
  return true;
}

void OutputMux::Reset() {
  staged_.clear();
  delivery_order_.clear();
  next_seq_.clear();
  arrival_counter_ = 0;
  stalls_ = 0;
  timeouts_ = 0;
  stall_streak_ = 0;
}

}  // namespace pps
