#include "switch/output_mux.h"

#include <algorithm>
#include <vector>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace pps {
namespace {

// Min-heap order on (arrival, id): std::push_heap/pop_heap build a
// max-heap w.r.t. the comparator, so "greater" yields the minimum on top.
constexpr auto kLaterHead = [](const auto& a, const auto& b) {
  return a.arrival > b.arrival || (a.arrival == b.arrival && a.id > b.id);
};

}  // namespace

OutputMux::OutputMux(sim::PortId output, sim::PortId num_ports,
                     MuxPolicy policy, int reseq_timeout)
    : output_(output),
      num_ports_(num_ports),
      policy_(policy),
      reseq_timeout_(reseq_timeout) {}

void OutputMux::PushEligible(const sim::Cell& cell, sim::FlowId flow) {
  eligible_.push_back({cell.arrival, cell.id, flow});
  std::push_heap(eligible_.begin(), eligible_.end(), kLaterHead);
}

OutputMux::EligibleHead OutputMux::PopEligible() {
  std::pop_heap(eligible_.begin(), eligible_.end(), kLaterHead);
  EligibleHead head = eligible_.back();
  eligible_.pop_back();
  return head;
}

void OutputMux::Stage(sim::Cell cell, sim::Slot t) {
  SIM_CHECK(cell.output == output_,
            "cell for output " << cell.output << " staged at " << output_);
  cell.reached_output = t;
  if (policy_ == MuxPolicy::kFcfsArrival) {
    ++total_staged_;
    fifo_.push_back(cell);
    return;
  }
  const sim::FlowId flow =
      sim::MakeFlowId(cell.input, cell.output, num_ports_);
  FlowState& fs = flows_[flow];
  if (cell.seq < fs.next_seq) {
    // The reassembly timer already gave up on this sequence number (the
    // cell was delayed in a congested plane past reseq_timeout, and the
    // gap-close presumed it lost).  It cannot be delivered in order any
    // more, and staging it below next_seq would park it forever — the
    // mux drops it as a counted late arrival instead.
    ++late_drops_;
    return;
  }
  ++total_staged_;
  auto [it, inserted] = fs.staged.emplace(cell.seq, cell);
  SIM_CHECK(inserted, "duplicate staged seq " << cell.seq << " on " << cell);
  if (cell.seq == fs.next_seq) PushEligible(it->second, flow);
}

void OutputMux::CloseSequenceGaps() {
  // Reassembly timeout: the missing sequence numbers will never come
  // (cells were lost).  Close every flow's gap up to its *minimum* staged
  // seq, like an expiring reassembly timer; raising to anything above the
  // minimum would make lower-seq staged cells permanently ineligible and
  // deadlock the flow.  next_seq only ever moves forward (max with the
  // minimum staged seq), and every skipped sequence number is counted in
  // seq_gaps_closed_.
  //
  // The timeout fires only when no staged cell is eligible, so no flow has
  // its expected seq staged here; exactly the flows whose minimum staged
  // seq lies above their expected seq gain an eligible head.
  for (auto& [flow, fs] : flows_) {
    if (fs.staged.empty()) continue;
    const auto head = fs.staged.begin();
    if (head->first > fs.next_seq) {
      seq_gaps_closed_ += head->first - fs.next_seq;
      fs.next_seq = head->first;
      PushEligible(head->second, flow);
    }
  }
}

bool OutputMux::Depart(sim::Slot t, sim::Cell* out) {
  if (total_staged_ == 0) return false;

  if (policy_ == MuxPolicy::kFcfsArrival) {
    sim::Cell cell = fifo_[fifo_head_++];
    if (fifo_head_ == fifo_.size()) {
      fifo_.clear();  // keeps capacity: no steady-state allocation
      fifo_head_ = 0;
    } else if (fifo_head_ >= 1024 && fifo_head_ * 2 >= fifo_.size()) {
      // Amortized O(1) compaction keeps memory proportional to the live
      // backlog instead of the cells ever staged.
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
      fifo_head_ = 0;
    }
    --total_staged_;
    cell.departure = t;
    *out = cell;
    return true;
  }

  if (eligible_.empty()) {
    ++stalls_;  // nonempty buffer, nothing eligible (flow head missing)
    if (reseq_timeout_ > 0 && ++stall_streak_ >= reseq_timeout_) {
      ++timeouts_;
      stall_streak_ = 0;
      CloseSequenceGaps();
    }
    return false;
  }
  stall_streak_ = 0;

  const EligibleHead head = PopEligible();
  auto flow_it = flows_.find(head.flow);
  SIM_DCHECK(flow_it != flows_.end(), "eligible head for unknown flow");
  FlowState& fs = flow_it->second;
  auto cell_it = fs.staged.find(fs.next_seq);
  SIM_DCHECK(cell_it != fs.staged.end() && cell_it->second.id == head.id,
             "eligibility heap out of sync with flow " << head.flow);
  sim::Cell cell = cell_it->second;
  fs.staged.erase(cell_it);
  --total_staged_;
  fs.next_seq = cell.seq + 1;
  auto next_it = fs.staged.find(fs.next_seq);
  if (next_it != fs.staged.end()) PushEligible(next_it->second, head.flow);
  cell.departure = t;
  *out = cell;
  return true;
}

void OutputMux::Reset() {
  fifo_.clear();
  fifo_head_ = 0;
  flows_.clear();
  eligible_.clear();
  total_staged_ = 0;
  stalls_ = 0;
  timeouts_ = 0;
  seq_gaps_closed_ = 0;
  late_drops_ = 0;
  stall_streak_ = 0;
}

void OutputMux::SaveState(ckpt::Writer& w) const {
  w.Marker("OMUX");
  w.I32(output_);
  w.I32(num_ports_);
  w.U8(static_cast<std::uint8_t>(policy_));
  w.I32(reseq_timeout_);
  w.I64(total_staged_);
  // FIFO live region only; the head index re-zeroes on load.
  w.Size(fifo_.size() - fifo_head_);
  for (std::size_t i = fifo_head_; i < fifo_.size(); ++i) {
    ckpt::SaveCell(w, fifo_[i]);
  }
  const std::vector<sim::FlowId> flow_keys = ckpt::SortedKeys(flows_);
  w.Size(flow_keys.size());
  for (sim::FlowId flow : flow_keys) {
    const FlowState& fs = flows_.at(flow);
    w.U64(flow);
    w.U64(fs.next_seq);
    w.Size(fs.staged.size());
    for (const auto& [seq, cell] : fs.staged) {
      w.U64(seq);
      ckpt::SaveCell(w, cell);
    }
  }
  // The heap's array layout depends on insertion history, so serialize the
  // entries sorted and rebuild; the heap order itself is total on
  // (arrival, id), so departure order is unaffected.
  std::vector<EligibleHead> heads = eligible_;
  std::sort(heads.begin(), heads.end(),
            [](const EligibleHead& a, const EligibleHead& b) {
              return a.id < b.id;
            });
  w.Size(heads.size());
  for (const EligibleHead& h : heads) {
    w.I64(h.arrival);
    w.U64(h.id);
    w.U64(h.flow);
  }
  w.U64(stalls_);
  w.U64(timeouts_);
  w.U64(seq_gaps_closed_);
  w.U64(late_drops_);
  w.I32(stall_streak_);
}

void OutputMux::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("OMUX");
  SIM_CHECK(r.I32() == output_ && r.I32() == num_ports_,
            "output mux checkpoint has a different shape");
  SIM_CHECK(r.U8() == static_cast<std::uint8_t>(policy_) &&
                r.I32() == reseq_timeout_,
            "output mux checkpoint has a different policy");
  total_staged_ = r.I64();
  fifo_.clear();
  fifo_head_ = 0;
  const std::size_t staged = r.Count();
  fifo_.reserve(staged);
  for (std::size_t i = 0; i < staged; ++i) {
    fifo_.push_back(ckpt::LoadCell(r, num_ports_));
  }
  flows_.clear();
  const std::size_t num_flows = r.Count();
  flows_.reserve(num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    const sim::FlowId flow = r.U64();
    FlowState& fs = flows_[flow];
    fs.next_seq = r.U64();
    const std::size_t cells = r.Count();
    for (std::size_t c = 0; c < cells; ++c) {
      const std::uint64_t seq = r.U64();
      sim::Cell cell = ckpt::LoadCell(r, num_ports_);
      SIM_CHECK(cell.seq == seq, "output mux checkpoint stages "
                                     << cell << " under sequence key " << seq);
      fs.staged.emplace(seq, cell);
    }
  }
  eligible_.clear();
  const std::size_t heads = r.Count();
  eligible_.reserve(heads);
  for (std::size_t i = 0; i < heads; ++i) {
    EligibleHead h;
    h.arrival = r.I64();
    h.id = r.U64();
    h.flow = r.U64();
    eligible_.push_back(h);
    std::push_heap(eligible_.begin(), eligible_.end(), kLaterHead);
  }
  stalls_ = r.U64();
  timeouts_ = r.U64();
  seq_gaps_closed_ = r.U64();
  late_drops_ = r.U64();
  stall_streak_ = r.I32();

  // Depart() trusts the cross-structure invariants below with debug-only
  // checks; corrupt bytes that decode field-by-field can still break them,
  // so a restore re-validates what a live mux maintains by construction.
  std::int64_t staged_in_flows = 0;
  for (const auto& [flow, fs] : flows_) {
    staged_in_flows += static_cast<std::int64_t>(fs.staged.size());
  }
  const auto fifo_live = static_cast<std::int64_t>(fifo_.size());
  SIM_CHECK(total_staged_ == fifo_live + staged_in_flows,
            "output mux checkpoint claims " << total_staged_
                                            << " staged cells but restores "
                                            << fifo_live + staged_in_flows);
  SIM_CHECK(policy_ != MuxPolicy::kFcfsArrival || staged_in_flows == 0,
            "FCFS output mux checkpoint has resequencer-staged cells");
  std::vector<sim::FlowId> head_flows;
  head_flows.reserve(eligible_.size());
  for (const EligibleHead& h : eligible_) {
    const auto it = flows_.find(h.flow);
    SIM_CHECK(it != flows_.end(),
              "output mux checkpoint eligible head references unknown flow "
                  << h.flow);
    const auto cell_it = it->second.staged.find(it->second.next_seq);
    SIM_CHECK(cell_it != it->second.staged.end() &&
                  cell_it->second.id == h.id &&
                  cell_it->second.arrival == h.arrival,
              "output mux checkpoint eligible head is out of sync with flow "
                  << h.flow);
    head_flows.push_back(h.flow);
  }
  std::sort(head_flows.begin(), head_flows.end());
  SIM_CHECK(std::adjacent_find(head_flows.begin(), head_flows.end()) ==
                head_flows.end(),
            "output mux checkpoint has duplicate eligible heads for a flow");
}

}  // namespace pps
