// Demultiplexing-algorithm interfaces (Definitions 1, 2, 5, 9 of the
// paper).
//
// One Demultiplexor instance resides at each input port; it is a
// *deterministic state machine*.  The classes differ only in what a
// decision may depend on:
//   * fully distributed  — local history only (Definition 5);
//   * u-RT               — local history plus global state up to t - u
//                          (Definition 9);
//   * centralized        — u = 0, full immediate knowledge.
// The fabric supplies exactly the information the declared class permits
// and nothing more, so an algorithm cannot accidentally cheat.
//
// Clone() exposes the state machine to the lower-bound adversaries, which
// need white-box access to drive a demultiplexor into a chosen applicable
// state (the proofs assume the set of applicable configurations is
// strongly connected; the adversaries realise the connecting traffic by
// probing clones).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"
#include "switch/config.h"
#include "switch/snapshot.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace pps {

enum class InfoModel {
  kFullyDistributed,
  kRealTimeDistributed,  // u-RT with u = info_delay()
  kCentralized,
};

const char* ToString(InfoModel m);

// A dispatch decision for one cell.  In booked (CPA-style) scheduling the
// demultiplexor also fixes the exact slot at which the plane will deliver
// the cell to its output port.
struct DispatchDecision {
  sim::PlaneId plane = sim::kNoPlane;
  sim::Slot booked_delivery = sim::kNoSlot;  // kNoSlot => eager plane FIFO
};

// Read-only view handed to a bufferless demultiplexor when a cell arrives.
struct DispatchContext {
  sim::Slot now = 0;
  // input_link_free[k]: may a transmission from this input to plane k start
  // now?  (The input constraint.)
  std::span<const bool> input_link_free;
  // Global snapshot from slot now - u (u-RT), or the live end-of-previous-
  // slot state (centralized), or nullptr (fully distributed).
  const GlobalSnapshot* global = nullptr;
};

// Bufferless demultiplexor (Definition 1): an arriving cell must be sent to
// some plane immediately.
class Demultiplexor {
 public:
  virtual ~Demultiplexor() = default;

  // Binds the instance to its port and switch geometry; called once before
  // use and again on reuse.
  virtual void Reset(const SwitchConfig& config, sim::PortId input) = 0;

  // Chooses a plane for `cell` arriving now.  Must return a plane whose
  // input link is free (ctx.input_link_free[plane]); the fabric enforces
  // this.  Called exactly once per arriving cell, in input-port order
  // within a slot.  Returning kNoPlane drops the cell at the input — only
  // legitimate when every plane the algorithm may use is unavailable
  // (e.g. after plane failures; see BufferlessPps::FailPlane), and the
  // fabric counts it.
  virtual DispatchDecision Dispatch(const sim::Cell& cell,
                                    const DispatchContext& ctx) = 0;

  // Slot boundary hook (after all arrivals of slot `now` were dispatched).
  // Fully-distributed demultiplexors must not change state here unless a
  // cell arrived ("if no cell arrives ... its demultiplexor does not
  // change its state") — the fabric only invokes it for classes that are
  // allowed time-driven transitions (u-RT, centralized).
  virtual void OnSlotEnd(sim::Slot now) { (void)now; }

  virtual InfoModel info_model() const = 0;
  // Information delay u for u-RT algorithms (ignored otherwise).
  virtual int info_delay() const { return 0; }

  // True iff this instance's Dispatch touches only its own state (plus
  // the read-only context), so the fabric may evaluate different inputs'
  // dispatches of one slot concurrently.  Algorithms that share mutable
  // state across inputs — CPA's centralized core, whose decisions are
  // order-dependent within a slot — must return false; the fabric then
  // reports itself non-shardable and runs the serial path.
  virtual bool shard_independent() const { return true; }

  virtual std::unique_ptr<Demultiplexor> Clone() const = 0;
  virtual std::string name() const = 0;

  // Exact-state checkpointing (ckpt/).  The default writes/expects a bare
  // marker — correct only for algorithms whose whole state is config-
  // derived; every stateful demultiplexor must override both.
  virtual void SaveState(ckpt::Writer& w) const;
  virtual void LoadState(ckpt::Reader& r);
};

// Factory producing the demultiplexor for input port i.
using DemuxFactory =
    std::function<std::unique_ptr<Demultiplexor>(sim::PortId)>;

// --- Input-buffered variant (Definition 2) ---------------------------------

// View for a buffered decision: the port's buffer (front = oldest) and the
// incoming cell if any.
struct BufferedContext {
  sim::Slot now = 0;
  std::span<const sim::Cell> buffer;
  const sim::Cell* incoming = nullptr;  // nullptr if no arrival this slot
  std::span<const bool> input_link_free;
  const GlobalSnapshot* global = nullptr;
};

// The decision mirrors the paper's vector of size |b_i| + 1: one entry per
// buffered cell plus one for the incoming cell; kNoPlane keeps the cell in
// the buffer.  Launched cells must use distinct planes with free input
// links (each line fits one start per r' slots).
struct BufferedDecision {
  std::vector<DispatchDecision> buffered;  // size == ctx.buffer.size()
  DispatchDecision incoming;               // ignored if no incoming cell
};

class BufferedDemultiplexor {
 public:
  virtual ~BufferedDemultiplexor() = default;

  virtual void Reset(const SwitchConfig& config, sim::PortId input) = 0;

  // Called once per slot (even with no arrival) so buffered cells can be
  // launched as links free up.
  virtual BufferedDecision Decide(const BufferedContext& ctx) = 0;

  virtual InfoModel info_model() const = 0;
  virtual int info_delay() const { return 0; }

  // Same contract as Demultiplexor::shard_independent, for Decide.
  virtual bool shard_independent() const { return true; }

  virtual std::unique_ptr<BufferedDemultiplexor> Clone() const = 0;
  virtual std::string name() const = 0;

  // Same contract as Demultiplexor::SaveState/LoadState.
  virtual void SaveState(ckpt::Writer& w) const;
  virtual void LoadState(ckpt::Reader& r);
};

using BufferedDemuxFactory =
    std::function<std::unique_ptr<BufferedDemultiplexor>(sim::PortId)>;

}  // namespace pps
