// Global switch state snapshots, and the delayed-information ring that
// implements the paper's u-RT information model.
//
// Definition 9: a u real-time distributed demultiplexing algorithm bases
// its decision on local information in [0, t] and *global* information in
// [0, t - u].  The fabric records a GlobalSnapshot at the end of every slot
// and hands u-RT demultiplexors the snapshot from slot t - u; u = 0 models
// a centralized algorithm with full immediate knowledge.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/types.h"
#include "switch/config.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace pps {

struct GlobalSnapshot {
  sim::Slot slot = sim::kNoSlot;

  // Backlog of plane k toward output j, in cells (includes cells accepted
  // this slot and not yet delivered).
  std::vector<std::int32_t> plane_backlog;  // K * N, index k*N + j

  // Earliest slot at which each internal line can next start a
  // transmission.
  std::vector<sim::Slot> input_link_next_free;   // N * K, index i*K + k
  std::vector<sim::Slot> output_link_next_free;  // K * N, index k*N + j

  // Backlog at the PPS output ports (cells staged, not yet departed).
  std::vector<std::int32_t> output_backlog;  // N

  std::int32_t PlaneBacklog(int k, int j, sim::PortId n) const {
    return plane_backlog[static_cast<std::size_t>(k) *
                             static_cast<std::size_t>(n) +
                         static_cast<std::size_t>(j)];
  }
  sim::Slot OutputLinkNextFree(int k, int j, sim::PortId n) const {
    return output_link_next_free[static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(n) +
                                 static_cast<std::size_t>(j)];
  }

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);
};

// Bounded ring of snapshots; Lookup(t) returns the snapshot taken at the
// end of slot t, or the oldest retained one if t predates the ring, or
// nullptr if nothing was recorded yet.
class SnapshotRing {
 public:
  explicit SnapshotRing(int capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }
  void Push(GlobalSnapshot snap);
  const GlobalSnapshot* Lookup(sim::Slot t) const;
  const GlobalSnapshot* Latest() const;
  void Clear() { ring_.clear(); }

  // Storage recycling for the per-slot snapshot: returns the entry the
  // next Push would evict (moved out, vectors keeping their capacity), or
  // a fresh snapshot while the ring is still filling.  Fill the returned
  // snapshot in place and Push it back — the steady state then performs
  // zero allocations per slot.
  GlobalSnapshot Recycle();

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  int capacity_;
  std::deque<GlobalSnapshot> ring_;
};

}  // namespace pps
