// The input-buffered PPS variant (Iyer & McKeown; Section 4 of the paper):
// each input port has a finite buffer of `input_buffer_size` cells in
// addition to the plane and output buffers.  An arriving cell is either
// launched to a plane or kept in the buffer; "in every time-slot, the
// demultiplexor sends any number of buffered cells to the planes, provided
// that the rate constraints on the lines between the input-port and any
// plane are preserved" (at most one start per line per r' slots, so at most
// K launches per slot, one per plane).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "fault/link_faults.h"
#include "fault/loss.h"
#include "fault/visibility.h"
#include "sim/cell.h"
#include "sim/types.h"
#include "switch/config.h"
#include "switch/demux_iface.h"
#include "switch/link.h"
#include "switch/output_mux.h"
#include "switch/plane.h"
#include "switch/shard_stages.h"
#include "switch/snapshot.h"

namespace core {
class ShardPool;
}  // namespace core

namespace pps {

class InputBufferedPps {
 public:
  InputBufferedPps(SwitchConfig config, const BufferedDemuxFactory& factory);

  // Offers the (at most one) cell arriving at its input in slot t.  The
  // launch/keep decision happens in Advance, giving the demultiplexor one
  // coherent view of the slot.
  void Inject(sim::Cell cell, sim::Slot t);

  // Runs slot t: per-input buffered decisions, plane deliveries, output
  // departures, snapshot.  Returns the departing cells; the reference
  // points at per-slot scratch reused across calls (valid until the next
  // Advance).
  const std::vector<sim::Cell>& Advance(sim::Slot t);

  // --- sharded slot protocol (see switch/shard_stages.h) ---

  // True iff AdvanceSharded is byte-identical to Advance: every buffered
  // demultiplexor decides from its own state only (CPA-emulation and
  // request-grant share a central core and must run serially).
  bool Shardable() const;

  // Sharded Advance: per-input Decide/launch fans out (phase A), loss
  // counters and the sequential link-fault RNG draws run serially in the
  // serial path's launch order (phase B), plane accepts fan out per plane
  // (phase C), then the common per-plane/per-output tail.
  const std::vector<sim::Cell>& AdvanceSharded(sim::Slot t,
                                               core::ShardPool& pool);

  bool Drained() const;
  std::int64_t TotalBacklog() const;
  std::int64_t BufferOccupancy(sim::PortId i) const;

  // Fault injection, mirroring BufferlessPps: the one-argument forms are
  // instantly visible; with a real slot `at` and fault_visibility_lag > 0
  // the demultiplexors act on stale health knowledge and launches into a
  // dead-but-not-yet-known plane become counted stale-dispatch losses.
  void FailPlane(sim::PlaneId k) { FailPlane(k, sim::kNoSlot); }
  void FailPlane(sim::PlaneId k, sim::Slot at);
  void RecoverPlane(sim::PlaneId k) { RecoverPlane(k, sim::kNoSlot); }
  void RecoverPlane(sim::PlaneId k, sim::Slot at);
  bool PlaneFailed(sim::PlaneId k) const {
    return failed_[static_cast<std::size_t>(k)];
  }
  std::uint64_t failed_plane_losses() const { return failed_plane_losses_; }
  std::uint64_t stale_dispatch_losses() const {
    return stale_dispatch_losses_;
  }
  std::uint64_t link_drop_losses() const { return link_drop_losses_; }
  // Cells the output resequencers dropped for arriving after their
  // reassembly window (OutputMux::late_drops, summed over outputs).
  std::uint64_t reseq_late_losses() const;

  // The full loss ledger (input_drops stays 0 here: with a buffer, "no
  // usable plane" keeps the cell instead of dropping it; the overflow
  // counter covers the buffer-full case).
  fault::LossBreakdown Losses() const {
    return {0,
            failed_plane_losses_,
            stale_dispatch_losses_,
            link_drop_losses_,
            reseq_late_losses(),
            buffer_overflows_};
  }

  fault::LinkFaultInjector& link_faults() { return link_faults_; }
  const fault::PlaneVisibility& visibility() const { return visibility_; }

  const SwitchConfig& config() const { return config_; }
  std::uint64_t buffer_overflows() const { return buffer_overflows_; }
  std::uint64_t resequencing_stalls() const;
  const BufferedDemultiplexor& demux(sim::PortId i) const {
    return *demux_[static_cast<std::size_t>(i)];
  }

  void Reset();

  // Exact-state checkpointing (ckpt/).  Must be called at a slot boundary:
  // SaveState refuses to run with an undecided incoming cell pending.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  const GlobalSnapshot* GlobalViewFor(const BufferedDemultiplexor& d,
                                      sim::Slot t) const;
  void FillSnapshot(sim::Slot t, GlobalSnapshot& snap) const;
  void FillSnapshotSharded(sim::Slot t, GlobalSnapshot& snap,
                           core::ShardPool& pool) const;
  void Launch(sim::PortId input, const sim::Cell& cell,
              const DispatchDecision& decision, sim::Slot t);

  // ckpt-skip: configuration re-pinned by Reset before any LoadState
  SwitchConfig config_;
  std::vector<std::unique_ptr<BufferedDemultiplexor>> demux_;
  std::vector<Plane> planes_;
  std::vector<OutputMux> muxes_;
  LinkBank in_links_;
  SnapshotRing ring_;
  std::vector<std::vector<sim::Cell>> buffers_;        // per input, oldest first
  std::vector<std::optional<sim::Cell>> incoming_;     // per input, this slot
  std::vector<bool> failed_;                           // per plane, ground truth
  fault::PlaneVisibility visibility_;  // what the demultiplexors believe
  fault::LinkFaultInjector link_faults_;
  std::uint64_t buffer_overflows_ = 0;
  std::uint64_t failed_plane_losses_ = 0;
  std::uint64_t stale_dispatch_losses_ = 0;
  std::uint64_t link_drop_losses_ = 0;
  // ckpt-skip: derived from the demux info models by Reset
  bool needs_global_ = false;
  // ckpt-skip: per-dispatch scratch, overwritten before every use
  std::unique_ptr<bool[]> free_buf_;
  // Per-slot scratch reused across Advance calls (cleared, never freed).
  // ckpt-skip: per-slot scratch, cleared at the top of every Advance
  std::vector<sim::Cell> delivered_scratch_;
  // ckpt-skip: per-slot scratch, cleared at the top of every Advance
  std::vector<sim::Cell> departed_scratch_;
  // Sharded-path scratch.
  struct LaunchRec {
    sim::Cell cell;
    DispatchDecision decision;
  };
  // ckpt-skip: worker-pool scratch, rebuilt every sharded slot
  ShardSlotScratch shard_;
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<std::vector<LaunchRec>> launches_scratch_;  // per input
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<std::vector<sim::Cell>> kept_scratch_;      // per input
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<std::uint8_t> overflow_scratch_;            // per input
  struct LaunchRef {
    std::uint32_t input;
    std::uint32_t idx;
  };
  // ckpt-skip: per-slot scratch, cleared at the top of every sharded slot
  std::vector<std::vector<LaunchRef>> accept_buckets_;  // per plane
};

}  // namespace pps
