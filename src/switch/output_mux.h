// The PPS output-port multiplexer.
//
// Up to K cells can reach an output port in one slot (one per plane line),
// but the external line emits at most one cell per slot.  The multiplexer
// stages delivered cells and picks the next departure.  Policies:
//
//   * kFcfsArrival — depart in order of delivery to the output port (ties
//     by plane id).  Simple, but cells of one flow that crossed different
//     planes can be reordered if a later cell overtakes inside a shorter
//     plane queue.
//   * kOldestCellReseq — per-flow resequencing: a cell is eligible only
//     when its sequence number is the flow's next expected one; among
//     eligible cells, the one that entered the switch earliest departs
//     first.  This preserves flow order (a hard requirement: "the switch
//     should preserve the order of cells within a flow") at the cost of
//     occasionally idling while a flow's head is stuck in a plane; those
//     slots are counted in resequencing_stalls().
//
// Representation.  The staging buffer is indexed so that Depart is
// O(log F) in the number of flows with an eligible head, never O(backlog):
//
//   * kFcfsArrival keeps one FIFO of staged cells — the departure order is
//     exactly the delivery order, so the front of the FIFO is always the
//     next departure;
//   * kOldestCellReseq keeps a per-flow map seq -> cell plus a binary
//     min-heap of eligible flow heads keyed by (switch arrival, cell id).
//     A flow has at most one eligible cell at a time (sequence numbers are
//     unique within a flow), and a heap entry can only be consumed by the
//     departure that pops it, so no lazy invalidation is needed: entries
//     are pushed exactly when a cell becomes eligible (staged at the
//     expected seq, expected seq advanced by a departure, or a timeout
//     gap-close) and popped when it departs.
//
// The reassembly-timeout gap-close walks the per-flow index (O(flows))
// instead of rescanning every staged cell.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"
#include "switch/config.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace pps {

class OutputMux {
 public:
  // reseq_timeout: see SwitchConfig::reseq_timeout (0 = wait forever).
  OutputMux(sim::PortId output, sim::PortId num_ports, MuxPolicy policy,
            int reseq_timeout = 0);

  // Stages a cell delivered by a plane in slot t.
  void Stage(sim::Cell cell, sim::Slot t);

  // End of slot t: departs at most one cell; returns true and fills *out.
  bool Depart(sim::Slot t, sim::Cell* out);

  std::int64_t Backlog() const { return total_staged_; }

  // Slots in which the buffer was nonempty but no cell was eligible
  // (resequencing hold).  Always 0 under kFcfsArrival.
  std::uint64_t resequencing_stalls() const { return stalls_; }
  // Times the timeout fired and a sequence gap was skipped.
  std::uint64_t reseq_timeouts() const { return timeouts_; }
  // Total sequence numbers skipped by timeout gap-closes: the sum over
  // fired timeouts and flows of (new expected seq - old expected seq).
  // Gap-closes only ever raise a flow's expected seq (they take the max
  // with the flow's minimum staged seq), so this is the exact count of
  // presumed-lost cells the resequencer gave up waiting for.
  std::uint64_t seq_gaps_closed() const { return seq_gaps_closed_; }
  // Cells that arrived after a timeout gap-close had already passed their
  // sequence number: delayed past the reassembly window in a congested
  // plane, now undeliverable in order, dropped and counted here.  Always
  // 0 under kFcfsArrival and with reseq_timeout = 0 (wait forever).
  std::uint64_t late_drops() const { return late_drops_; }

  void Reset();

  // Exact-state checkpointing.  The FIFO serializes its live region only
  // (head index re-zeroed on load); the per-flow map serializes sorted by
  // FlowId so equal states produce identical bytes.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // Per-flow resequencing state (kOldestCellReseq).  `staged` holds the
  // flow's staged cells keyed by sequence number; `next_seq` is the next
  // expected sequence number.  The entry outlives its staged cells:
  // next_seq must persist across empty periods of the flow.
  struct FlowState {
    std::map<std::uint64_t, sim::Cell> staged;
    std::uint64_t next_seq = 0;
  };

  // Eligible flow head, ordered by (switch arrival, cell id).
  struct EligibleHead {
    sim::Slot arrival;
    sim::CellId id;
    sim::FlowId flow;
  };

  void PushEligible(const sim::Cell& cell, sim::FlowId flow);
  EligibleHead PopEligible();
  // Timeout gap-close over the per-flow index; returns having pushed the
  // newly eligible heads.
  void CloseSequenceGaps();

  sim::PortId output_;
  sim::PortId num_ports_;
  MuxPolicy policy_;
  int reseq_timeout_;

  std::int64_t total_staged_ = 0;
  // kFcfsArrival: cells in delivery order; head = next departure.  Backed
  // by a vector + head index so steady-state operation reuses storage.
  std::vector<sim::Cell> fifo_;
  std::size_t fifo_head_ = 0;
  // kOldestCellReseq: per-flow index + eligibility heap.
  std::unordered_map<sim::FlowId, FlowState> flows_;
  std::vector<EligibleHead> eligible_;  // binary min-heap

  std::uint64_t stalls_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t seq_gaps_closed_ = 0;
  std::uint64_t late_drops_ = 0;
  int stall_streak_ = 0;
};

}  // namespace pps
