// The PPS output-port multiplexer.
//
// Up to K cells can reach an output port in one slot (one per plane line),
// but the external line emits at most one cell per slot.  The multiplexer
// stages delivered cells and picks the next departure.  Policies:
//
//   * kFcfsArrival — depart in order of delivery to the output port (ties
//     by plane id).  Simple, but cells of one flow that crossed different
//     planes can be reordered if a later cell overtakes inside a shorter
//     plane queue.
//   * kOldestCellReseq — per-flow resequencing: a cell is eligible only
//     when all earlier cells of its flow have departed (or are ahead of it
//     in the staging buffer); among eligible cells, the one that entered
//     the switch earliest departs first.  This preserves flow order (a
//     hard requirement: "the switch should preserve the order of cells
//     within a flow") at the cost of occasionally idling while a flow's
//     head is stuck in a plane; those slots are counted in
//     resequencing_stalls().
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"
#include "switch/config.h"

namespace pps {

class OutputMux {
 public:
  // reseq_timeout: see SwitchConfig::reseq_timeout (0 = wait forever).
  OutputMux(sim::PortId output, sim::PortId num_ports, MuxPolicy policy,
            int reseq_timeout = 0);

  // Stages a cell delivered by a plane in slot t.
  void Stage(sim::Cell cell, sim::Slot t);

  // End of slot t: departs at most one cell; returns true and fills *out.
  bool Depart(sim::Slot t, sim::Cell* out);

  std::int64_t Backlog() const {
    return static_cast<std::int64_t>(staged_.size());
  }

  // Slots in which the buffer was nonempty but no cell was eligible
  // (resequencing hold).  Always 0 under kFcfsArrival.
  std::uint64_t resequencing_stalls() const { return stalls_; }
  // Times the timeout fired and a sequence gap was skipped.
  std::uint64_t reseq_timeouts() const { return timeouts_; }

  void Reset();

 private:
  bool Eligible(const sim::Cell& cell) const;

  sim::PortId output_;
  sim::PortId num_ports_;
  MuxPolicy policy_;
  int reseq_timeout_;
  std::vector<sim::Cell> staged_;
  std::uint64_t arrival_counter_ = 0;  // delivery order for FCFS ties
  std::vector<std::uint64_t> delivery_order_;
  std::unordered_map<sim::FlowId, std::uint64_t> next_seq_;
  std::uint64_t stalls_ = 0;
  std::uint64_t timeouts_ = 0;
  int stall_streak_ = 0;
};

}  // namespace pps
