// Internal-line rate constraints.
//
// Section 2 of the paper: "A cell sent from an input-port i to a plane k is
// transmitted over r' time-slots; transmission takes place in the first
// time-slot of this period, and then the line between i and k is not
// utilized in the next r'-1 time-slots" (the *input constraint*); the
// *output constraint* is symmetric for plane->output lines.  LinkBank
// tracks, for a full bipartite bank of links, the earliest slot at which
// the next transmission may start.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/cell.h"
#include "sim/error.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace pps {

class LinkBank {
 public:
  // rows x cols links, each admitting one start every rate_ratio slots.
  LinkBank(int rows, int cols, int rate_ratio);

  bool CanStart(int row, int col, sim::Slot t) const {
    return NextFree(row, col) <= t;
  }

  // Registers a transmission start; the caller must have checked CanStart.
  void Start(int row, int col, sim::Slot t);

  sim::Slot NextFree(int row, int col) const {
    return next_free_[Index(row, col)];
  }

  // Number of free links in `row` at slot t.
  int FreeCount(int row, sim::Slot t) const;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int rate_ratio() const { return rate_ratio_; }

  // Count of constraint violations tolerated in release mode (always 0 when
  // all callers use CanStart; audited by tests).
  std::uint64_t violations() const { return violations_; }

  void Reset();

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  std::size_t Index(int row, int col) const {
    SIM_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
               "link index out of range");
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }

  int rows_, cols_, rate_ratio_;
  std::vector<sim::Slot> next_free_;
  std::uint64_t violations_ = 0;
};

// Slot-exact reservations on a bank of links, used by booked (CPA-style)
// scheduling: a reservation at slot t occupies the link for [t, t + r'),
// so two reservations on one link must differ by at least r'.
class ReservationBank {
 public:
  ReservationBank(int rows, int cols, int rate_ratio);

  // True iff a reservation at slot t on link (row, col) would conflict with
  // an existing one (closer than rate_ratio in either direction).
  bool Conflicts(int row, int col, sim::Slot t) const;

  // Reserves; the caller must have checked Conflicts.
  void Reserve(int row, int col, sim::Slot t);

  // Drops reservations strictly before t (they have been consumed).
  void ExpireBefore(sim::Slot t);

  // Drops every reservation, including one at the maximum representable
  // slot, which ExpireBefore(t) can never reach (it only drops slots
  // strictly before t).  O(links); use on reset / plane failure.
  void Clear();

  std::size_t pending() const;

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  std::size_t Index(int row, int col) const {
    return static_cast<std::size_t>(row) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(col);
  }

  int rows_, cols_, rate_ratio_;
  // Ordered set of reserved start slots per link; reservations are sparse.
  std::vector<std::map<sim::Slot, bool>> reserved_;
};

}  // namespace pps
