#include "switch/pps.h"

#include <algorithm>

#include "ckpt/serializer.h"
#include "core/shard_pool.h"
#include "sim/error.h"

namespace pps {

void Demultiplexor::SaveState(ckpt::Writer& w) const { w.Marker("DMXD"); }

void Demultiplexor::LoadState(ckpt::Reader& r) { r.ExpectMarker("DMXD"); }

void BufferedDemultiplexor::SaveState(ckpt::Writer& w) const {
  w.Marker("DMXB");
}

void BufferedDemultiplexor::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DMXB");
}

const char* ToString(InfoModel m) {
  switch (m) {
    case InfoModel::kFullyDistributed: return "fully-distributed";
    case InfoModel::kRealTimeDistributed: return "u-RT";
    case InfoModel::kCentralized: return "centralized";
  }
  return "?";
}

BufferlessPps::BufferlessPps(SwitchConfig config, const DemuxFactory& factory)
    : config_(config),
      in_links_(config.num_ports, config.num_planes, config.rate_ratio),
      ring_(config.snapshot_history),
      dispatch_count_(static_cast<std::size_t>(config.num_planes), 0),
      failed_(static_cast<std::size_t>(config.num_planes), false),
      visibility_(config.num_planes, config.fault_visibility_lag) {
  config_.Validate();
  SIM_CHECK(config_.input_buffer_size == 0,
            "BufferlessPps cannot have input buffers; use InputBufferedPps");
  demux_.reserve(static_cast<std::size_t>(config_.num_ports));
  for (sim::PortId i = 0; i < config_.num_ports; ++i) {
    demux_.push_back(factory(i));
    SIM_CHECK(demux_.back() != nullptr, "factory returned null demux");
    demux_.back()->Reset(config_, i);
    if (demux_.back()->info_model() != InfoModel::kFullyDistributed) {
      needs_global_ = true;
    }
  }
  SIM_CHECK(!needs_global_ || ring_.enabled(),
            "u-RT/centralized demultiplexors need snapshot_history > 0");
  planes_.reserve(static_cast<std::size_t>(config_.num_planes));
  for (sim::PlaneId k = 0; k < config_.num_planes; ++k) {
    planes_.emplace_back(k, config_.num_ports, config_.rate_ratio,
                         config_.plane_scheduling);
  }
  muxes_.reserve(static_cast<std::size_t>(config_.num_ports));
  for (sim::PortId j = 0; j < config_.num_ports; ++j) {
    muxes_.emplace_back(j, config_.num_ports, config_.mux_policy,
                        config_.reseq_timeout);
  }
}

const GlobalSnapshot* BufferlessPps::GlobalViewFor(const Demultiplexor& d,
                                                   sim::Slot t) const {
  switch (d.info_model()) {
    case InfoModel::kFullyDistributed:
      return nullptr;
    case InfoModel::kCentralized:
      return ring_.Latest();  // end of slot t-1: full, immediate knowledge
    case InfoModel::kRealTimeDistributed:
      return ring_.Lookup(sim::SlotDifference(t, d.info_delay()));
  }
  return nullptr;
}

void BufferlessPps::Inject(sim::Cell cell, sim::Slot t) {
  SIM_CHECK(cell.input >= 0 && cell.input < config_.num_ports &&
                cell.output >= 0 && cell.output < config_.num_ports,
            "bad ports on " << cell);
  if (cell.arrival == sim::kNoSlot) cell.arrival = t;
  SIM_CHECK(cell.arrival == t, "arrival stamp mismatch on " << cell);
  // One cell per input per slot, injected in input order (the external
  // line rate, and the FCFS tie-break shared with the shadow switch).
  if (t == last_inject_slot_) {
    SIM_CHECK(cell.input > last_inject_input_,
              "two cells on input " << cell.input << " in slot " << t
                                    << " or out-of-order injection");
  }
  last_inject_slot_ = t;
  last_inject_input_ = cell.input;

  Demultiplexor& d = *demux_[static_cast<std::size_t>(cell.input)];
  if (!free_buf_) {
    free_buf_ = std::make_unique<bool[]>(
        static_cast<std::size_t>(config_.num_planes));
  }
  // A plane is offered to the demultiplexor when it *believes* the plane
  // is up; a ground-truth-failed plane inside the visibility lag stays in
  // the candidate set and dispatches to it become stale-dispatch losses.
  for (int k = 0; k < config_.num_planes; ++k) {
    free_buf_[static_cast<std::size_t>(k)] =
        !visibility_.VisiblyDown(k, t) && in_links_.CanStart(cell.input, k, t);
  }
  DispatchContext ctx;
  ctx.now = t;
  ctx.input_link_free = std::span<const bool>(
      free_buf_.get(), static_cast<std::size_t>(config_.num_planes));
  ctx.global = GlobalViewFor(d, t);

  const DispatchDecision decision = d.Dispatch(cell, ctx);
  if (decision.plane == sim::kNoPlane) {
    // Legitimate only when nothing is free (plane failures / exhausted
    // static partition) — a healthy K >= r' switch never gets here.
    ++input_drops_;
    if (log_.enabled()) {
      log_.Push({t, sim::EventKind::kDrop, cell.id, cell.input, cell.output,
                 sim::kNoPlane, "no usable plane"});
    }
    return;
  }
  SIM_CHECK(decision.plane >= 0 && decision.plane < config_.num_planes,
            d.name() << " returned invalid plane " << decision.plane);
  // Dispatching to a plane the demultiplexor *knows* is down is still an
  // algorithm bug; dispatching to one it cannot yet know about is the
  // modeled stale-visibility loss below.
  SIM_CHECK(!visibility_.VisiblyDown(decision.plane, t),
            d.name() << " dispatched to visibly failed plane "
                     << decision.plane);
  SIM_CHECK(in_links_.CanStart(cell.input, decision.plane, t),
            d.name() << " violated the input constraint: line ("
                     << cell.input << "," << decision.plane
                     << ") busy at slot " << t);
  in_links_.Start(cell.input, decision.plane, t);
  if (failed_[static_cast<std::size_t>(decision.plane)]) {
    // The transmission goes out on the (consumed) line but lands in a
    // dead plane: the cell is lost, not crashed on.
    ++stale_dispatch_losses_;
    if (log_.enabled()) {
      log_.Push({t, sim::EventKind::kDrop, cell.id, cell.input, cell.output,
                 decision.plane, "stale dispatch to failed plane"});
    }
    return;
  }
  if (!link_faults_.empty() &&
      link_faults_.Dropped(cell.input, decision.plane, t)) {
    ++link_drop_losses_;
    if (log_.enabled()) {
      log_.Push({t, sim::EventKind::kDrop, cell.id, cell.input, cell.output,
                 decision.plane, "link fault"});
    }
    return;
  }
  ++dispatch_count_[static_cast<std::size_t>(decision.plane)];
  if (log_.enabled()) {
    log_.Push({t, sim::EventKind::kDispatch, cell.id, cell.input,
               cell.output, decision.plane, {}});
  }
  planes_[static_cast<std::size_t>(decision.plane)].Accept(
      cell, t, decision.booked_delivery);
}

bool BufferlessPps::Shardable() const {
  if (log_.enabled()) return false;
  for (const auto& d : demux_) {
    if (!d->shard_independent()) return false;
  }
  return true;
}

namespace {
// Phase-A per-cell outcomes; phase B turns them into the serial path's
// counter and loss-ledger updates, in input order.
constexpr std::uint8_t kOutcomeNoPlane = 0;
constexpr std::uint8_t kOutcomeStale = 1;
constexpr std::uint8_t kOutcomeAccept = 2;
}  // namespace

const std::vector<std::uint8_t>& BufferlessPps::InjectBatch(
    std::span<const sim::Cell> cells, sim::Slot t, core::ShardPool& pool) {
  std::vector<std::uint8_t>& dropped = inject_dropped_scratch_;
  dropped.assign(cells.size(), 0);
  if (cells.empty()) return dropped;
  SIM_CHECK(!log_.enabled(),
            "InjectBatch with the event log armed: one ordered stream "
            "cannot be split across shards — use the serial protocol");
  // The external-line contract (one cell per input, increasing input
  // order) checked batch-wide up front; the serial path checks it
  // pairwise per call.
  for (std::size_t a = 0; a + 1 < cells.size(); ++a) {
    SIM_CHECK(cells[a].input < cells[a + 1].input,
              "batch not sorted by input: " << cells[a] << " before "
                                            << cells[a + 1]);
  }
  if (t == last_inject_slot_) {
    SIM_CHECK(cells.front().input > last_inject_input_,
              "two cells on input " << cells.front().input << " in slot " << t
                                    << " or out-of-order injection");
  }
  const auto kk = static_cast<std::size_t>(config_.num_planes);
  decisions_scratch_.resize(cells.size());
  outcome_scratch_.resize(cells.size());
  shard_.EnsureLanes(pool.lanes(), kk);

  // Phase A (parallel over arriving cells): each cell sits on a distinct
  // input port, so each task touches only its own demultiplexor and its
  // own LinkBank row; visibility, snapshots and ground-truth plane state
  // are read-only during the fan-out.
  pool.Run(cells.size(), [&](std::size_t i, unsigned lane) {
    const sim::Cell& cell = cells[i];
    SIM_CHECK(cell.input >= 0 && cell.input < config_.num_ports &&
                  cell.output >= 0 && cell.output < config_.num_ports,
              "bad ports on " << cell);
    SIM_CHECK(cell.arrival == t, "arrival stamp mismatch on " << cell);
    Demultiplexor& d = *demux_[static_cast<std::size_t>(cell.input)];
    bool* free_buf = shard_.FreeBufFor(lane);
    for (int k = 0; k < config_.num_planes; ++k) {
      free_buf[static_cast<std::size_t>(k)] =
          !visibility_.VisiblyDown(k, t) &&
          in_links_.CanStart(cell.input, k, t);
    }
    DispatchContext ctx;
    ctx.now = t;
    ctx.input_link_free = std::span<const bool>(free_buf, kk);
    ctx.global = GlobalViewFor(d, t);
    const DispatchDecision decision = d.Dispatch(cell, ctx);
    decisions_scratch_[i] = decision;
    if (decision.plane == sim::kNoPlane) {
      outcome_scratch_[i] = kOutcomeNoPlane;
      return;
    }
    SIM_CHECK(decision.plane >= 0 && decision.plane < config_.num_planes,
              d.name() << " returned invalid plane " << decision.plane);
    SIM_CHECK(!visibility_.VisiblyDown(decision.plane, t),
              d.name() << " dispatched to visibly failed plane "
                       << decision.plane);
    SIM_CHECK(in_links_.CanStart(cell.input, decision.plane, t),
              d.name() << " violated the input constraint: line ("
                       << cell.input << "," << decision.plane
                       << ") busy at slot " << t);
    in_links_.Start(cell.input, decision.plane, t);
    outcome_scratch_[i] = failed_[static_cast<std::size_t>(decision.plane)]
                              ? kOutcomeStale
                              : kOutcomeAccept;
  });

  // Phase B (serial, input order): the loss counters and — crucially —
  // the link-fault injector's sequential RNG draws must happen in exactly
  // the serial path's order.
  if (accept_buckets_.size() < kk) accept_buckets_.resize(kk);
  for (std::size_t k = 0; k < kk; ++k) accept_buckets_[k].clear();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    switch (outcome_scratch_[i]) {
      case kOutcomeNoPlane:
        ++input_drops_;
        dropped[i] = 1;
        break;
      case kOutcomeStale:
        ++stale_dispatch_losses_;
        dropped[i] = 1;
        break;
      default: {
        const sim::PlaneId plane = decisions_scratch_[i].plane;
        if (!link_faults_.empty() &&
            link_faults_.Dropped(cells[i].input, plane, t)) {
          ++link_drop_losses_;
          dropped[i] = 1;
        } else {
          ++dispatch_count_[static_cast<std::size_t>(plane)];
          accept_buckets_[static_cast<std::size_t>(plane)].push_back(
              static_cast<std::uint32_t>(i));
        }
        break;
      }
    }
  }
  last_inject_slot_ = t;
  last_inject_input_ = cells.back().input;

  // Phase C (parallel over planes): each plane accepts its bucket in
  // input order — the order the serial path's Accept calls observe.
  pool.Run(kk, [&](std::size_t k, unsigned /*lane*/) {
    for (const std::uint32_t i : accept_buckets_[k]) {
      planes_[k].Accept(cells[i], t, decisions_scratch_[i].booked_delivery);
    }
  });
  return dropped;
}

const std::vector<sim::Cell>& BufferlessPps::AdvanceSharded(
    sim::Slot t, core::ShardPool& pool) {
  const auto kk = planes_.size();
  const auto n = muxes_.size();
  shard_.EnsureShape(kk, n);
  shard_.DeliverPlanes(pool, planes_, failed_, t);
  shard_.BucketByOutput(kk);
  shard_.StageAndDepart(pool, muxes_, t);
  std::vector<sim::Cell>& departed = departed_scratch_;
  departed.clear();
  shard_.CollectDepartures(n, departed);
  if (needs_global_) {
    pool.Run(demux_.size(), [&](std::size_t i, unsigned /*lane*/) {
      if (demux_[i]->info_model() != InfoModel::kFullyDistributed) {
        demux_[i]->OnSlotEnd(t);
      }
    });
  }
  // Serial reductions in fixed index order (max is order-insensitive, but
  // the discipline keeps every cross-shard reduction deterministic).
  for (const Plane& plane : planes_) {
    max_plane_backlog_ = std::max(max_plane_backlog_, plane.TotalBacklog());
  }
  for (const OutputMux& mux : muxes_) {
    max_output_backlog_ = std::max(max_output_backlog_, mux.Backlog());
  }
  if (ring_.enabled()) {
    GlobalSnapshot snap = ring_.Recycle();
    FillSnapshotSharded(t, snap, pool);
    ring_.Push(std::move(snap));
  }
  return departed;
}

void BufferlessPps::FillSnapshotSharded(sim::Slot t, GlobalSnapshot& snap,
                                        core::ShardPool& pool) const {
  snap.slot = t;
  const auto n = static_cast<std::size_t>(config_.num_ports);
  const auto kk = static_cast<std::size_t>(config_.num_planes);
  snap.plane_backlog.resize(kk * n);
  snap.output_link_next_free.resize(kk * n);
  snap.input_link_next_free.resize(n * kk);
  snap.output_backlog.resize(n);
  // Row-disjoint writes: tasks [0, kk) fill plane rows, [kk, kk + n) fill
  // input rows.  The O(n) output-backlog row stays on the caller.
  pool.Run(kk + n, [&](std::size_t task, unsigned /*lane*/) {
    if (task < kk) {
      const std::size_t k = task;
      const Plane& plane = planes_[k];
      for (std::size_t j = 0; j < n; ++j) {
        snap.plane_backlog[k * n + j] = static_cast<std::int32_t>(
            plane.Backlog(static_cast<sim::PortId>(j)));
        snap.output_link_next_free[k * n + j] =
            plane.OutputLinkNextFree(static_cast<sim::PortId>(j));
      }
    } else {
      const std::size_t i = task - kk;
      for (std::size_t k = 0; k < kk; ++k) {
        snap.input_link_next_free[i * kk + k] =
            in_links_.NextFree(static_cast<int>(i), static_cast<int>(k));
      }
    }
  });
  for (std::size_t j = 0; j < n; ++j) {
    snap.output_backlog[j] = static_cast<std::int32_t>(muxes_[j].Backlog());
  }
}

void BufferlessPps::FailPlane(sim::PlaneId k, sim::Slot at) {
  SIM_CHECK(k >= 0 && k < config_.num_planes, "bad plane id " << k);
  if (failed_[static_cast<std::size_t>(k)]) return;
  failed_[static_cast<std::size_t>(k)] = true;
  // Stranded cells are counted once, at ground-truth failure time; a later
  // RecoverPlane starts from an empty plane, so a fail->recover->fail
  // cycle can only strand cells accepted after the recovery.
  failed_plane_losses_ += static_cast<std::uint64_t>(
      planes_[static_cast<std::size_t>(k)].TotalBacklog());
  // Reset also clears the failed plane's calendar and booking
  // reservations (ReservationBank::Clear), so when the plane rejoins via
  // RecoverPlane (or a fabric Reset) its stale bookings cannot trip the
  // output-constraint SIM_CHECKs.
  planes_[static_cast<std::size_t>(k)].Reset();
  visibility_.SetDown(k, at);
}

void BufferlessPps::RecoverPlane(sim::PlaneId k, sim::Slot at) {
  SIM_CHECK(k >= 0 && k < config_.num_planes, "bad plane id " << k);
  if (!failed_[static_cast<std::size_t>(k)]) return;
  failed_[static_cast<std::size_t>(k)] = false;
  // The plane was already cleared when it failed, but stale dispatches may
  // not touch plane state, so the rejoin clears again defensively: empty
  // calendar, empty FIFOs, no reservations, idle output links.
  planes_[static_cast<std::size_t>(k)].Reset();
  visibility_.SetUp(k, at);
}

const std::vector<sim::Cell>& BufferlessPps::Advance(sim::Slot t) {
  std::vector<sim::Cell>& delivered = delivered_scratch_;
  delivered.clear();
  for (Plane& plane : planes_) {
    if (failed_[static_cast<std::size_t>(plane.id())]) continue;
    plane.Deliver(t, delivered);
  }
  for (sim::Cell& cell : delivered) {
    muxes_[static_cast<std::size_t>(cell.output)].Stage(cell, t);
  }
  std::vector<sim::Cell>& departed = departed_scratch_;
  departed.clear();
  for (OutputMux& mux : muxes_) {
    sim::Cell cell;
    if (mux.Depart(t, &cell)) {
      if (log_.enabled()) {
        log_.Push({t, sim::EventKind::kDeparture, cell.id, cell.input,
                   cell.output, cell.plane, {}});
      }
      departed.push_back(cell);
    }
  }
  for (auto& d : demux_) {
    if (d->info_model() != InfoModel::kFullyDistributed) d->OnSlotEnd(t);
  }
  for (const Plane& plane : planes_) {
    max_plane_backlog_ = std::max(max_plane_backlog_, plane.TotalBacklog());
  }
  for (const OutputMux& mux : muxes_) {
    max_output_backlog_ = std::max(max_output_backlog_, mux.Backlog());
  }
  if (ring_.enabled()) {
    GlobalSnapshot snap = ring_.Recycle();
    FillSnapshot(t, snap);
    ring_.Push(std::move(snap));
  }
  return departed;
}

void BufferlessPps::FillSnapshot(sim::Slot t, GlobalSnapshot& snap) const {
  snap.slot = t;
  const auto n = static_cast<std::size_t>(config_.num_ports);
  const auto kk = static_cast<std::size_t>(config_.num_planes);
  snap.plane_backlog.resize(kk * n);
  snap.output_link_next_free.resize(kk * n);
  snap.input_link_next_free.resize(n * kk);
  snap.output_backlog.resize(n);
  for (std::size_t k = 0; k < kk; ++k) {
    const Plane& plane = planes_[k];
    for (std::size_t j = 0; j < n; ++j) {
      snap.plane_backlog[k * n + j] =
          static_cast<std::int32_t>(plane.Backlog(static_cast<sim::PortId>(j)));
      snap.output_link_next_free[k * n + j] =
          plane.OutputLinkNextFree(static_cast<sim::PortId>(j));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < kk; ++k) {
      snap.input_link_next_free[i * kk + k] =
          in_links_.NextFree(static_cast<int>(i), static_cast<int>(k));
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    snap.output_backlog[j] =
        static_cast<std::int32_t>(muxes_[j].Backlog());
  }
}

bool BufferlessPps::Drained() const { return TotalBacklog() == 0; }

std::int64_t BufferlessPps::PlaneBacklog(sim::PlaneId k, sim::PortId j) const {
  return planes_[static_cast<std::size_t>(k)].Backlog(j);
}

std::int64_t BufferlessPps::TotalBacklog() const {
  std::int64_t total = 0;
  for (const Plane& plane : planes_) total += plane.TotalBacklog();
  for (const OutputMux& mux : muxes_) total += mux.Backlog();
  return total;
}

std::uint64_t BufferlessPps::resequencing_stalls() const {
  std::uint64_t total = 0;
  for (const OutputMux& mux : muxes_) total += mux.resequencing_stalls();
  return total;
}

std::uint64_t BufferlessPps::reseq_late_losses() const {
  std::uint64_t total = 0;
  for (const OutputMux& mux : muxes_) total += mux.late_drops();
  return total;
}

void BufferlessPps::SaveState(ckpt::Writer& w) const {
  w.Marker("BPPS");
  SIM_CHECK(!log_.enabled() || log_.events().empty(),
            "checkpointing with a non-empty event log is not supported "
            "(the log is diagnostic state and is not serialized)");
  for (const auto& d : demux_) d->SaveState(w);
  for (const Plane& plane : planes_) plane.SaveState(w);
  for (const OutputMux& mux : muxes_) mux.SaveState(w);
  in_links_.SaveState(w);
  ring_.SaveState(w);
  w.Size(dispatch_count_.size());
  for (std::uint64_t c : dispatch_count_) w.U64(c);
  w.I32(last_inject_input_);
  w.I64(last_inject_slot_);
  w.Size(failed_.size());
  for (bool f : failed_) w.Bool(f);
  visibility_.SaveState(w);
  link_faults_.SaveState(w);
  w.U64(input_drops_);
  w.U64(failed_plane_losses_);
  w.U64(stale_dispatch_losses_);
  w.U64(link_drop_losses_);
  w.I64(max_plane_backlog_);
  w.I64(max_output_backlog_);
}

void BufferlessPps::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("BPPS");
  for (auto& d : demux_) d->LoadState(r);
  for (Plane& plane : planes_) plane.LoadState(r);
  for (OutputMux& mux : muxes_) mux.LoadState(r);
  in_links_.LoadState(r);
  ring_.LoadState(r);
  SIM_CHECK(r.Size() == dispatch_count_.size(),
            "fabric checkpoint has a different plane count");
  for (std::uint64_t& c : dispatch_count_) c = r.U64();
  last_inject_input_ = r.I32();
  last_inject_slot_ = r.I64();
  SIM_CHECK(r.Size() == failed_.size(),
            "fabric checkpoint has a different plane count");
  for (std::size_t k = 0; k < failed_.size(); ++k) failed_[k] = r.Bool();
  visibility_.LoadState(r);
  link_faults_.LoadState(r);
  input_drops_ = r.U64();
  failed_plane_losses_ = r.U64();
  stale_dispatch_losses_ = r.U64();
  link_drop_losses_ = r.U64();
  max_plane_backlog_ = r.I64();
  max_output_backlog_ = r.I64();
}

void BufferlessPps::Reset() {
  for (sim::PortId i = 0; i < config_.num_ports; ++i) {
    demux_[static_cast<std::size_t>(i)]->Reset(config_, i);
  }
  for (Plane& plane : planes_) plane.Reset();
  for (OutputMux& mux : muxes_) mux.Reset();
  in_links_.Reset();
  ring_.Clear();
  std::fill(dispatch_count_.begin(), dispatch_count_.end(), 0);
  std::fill(failed_.begin(), failed_.end(), false);
  visibility_.Reset();
  link_faults_.Clear();
  input_drops_ = 0;
  failed_plane_losses_ = 0;
  stale_dispatch_losses_ = 0;
  link_drop_losses_ = 0;
  max_plane_backlog_ = 0;
  max_output_backlog_ = 0;
  last_inject_input_ = -1;
  last_inject_slot_ = sim::kNoSlot;
  log_.Clear();
}

}  // namespace pps
