#include "switch/plane.h"

#include <algorithm>
#include <limits>

#include "sim/error.h"

namespace pps {

Plane::Plane(sim::PlaneId id, sim::PortId num_ports, int rate_ratio,
             PlaneScheduling scheduling)
    : id_(id),
      num_ports_(num_ports),
      rate_ratio_(rate_ratio),
      scheduling_(scheduling),
      out_links_(1, num_ports, rate_ratio),
      bookings_(1, num_ports, rate_ratio) {
  queues_.resize(static_cast<std::size_t>(num_ports));
  backlog_.assign(static_cast<std::size_t>(num_ports), 0);
}

void Plane::Accept(sim::Cell cell, sim::Slot t, sim::Slot booked_delivery) {
  SIM_CHECK(cell.output >= 0 && cell.output < num_ports_,
            "bad output on " << cell);
  cell.plane = id_;
  cell.dispatched = t;
  ++backlog_[static_cast<std::size_t>(cell.output)];
  if (scheduling_ == PlaneScheduling::kEagerFifo) {
    SIM_CHECK(booked_delivery == sim::kNoSlot,
              "booked delivery in eager mode for " << cell);
    queues_[static_cast<std::size_t>(cell.output)].push_back(cell);
  } else {
    SIM_CHECK(booked_delivery != sim::kNoSlot && booked_delivery >= t,
              "booked mode requires a delivery slot >= now for " << cell);
    SIM_CHECK(!bookings_.Conflicts(0, cell.output, booked_delivery),
              "booking at slot " << booked_delivery << " violates the output"
                                 << " constraint on plane " << id_
                                 << " line to output " << cell.output);
    bookings_.Reserve(0, cell.output, booked_delivery);
    calendar_[booked_delivery].push_back(cell);
  }
}

void Plane::Deliver(sim::Slot t, std::vector<sim::Cell>& out) {
  if (scheduling_ == PlaneScheduling::kEagerFifo) {
    for (sim::PortId j = 0; j < num_ports_; ++j) {
      auto& q = queues_[static_cast<std::size_t>(j)];
      if (q.empty() || !out_links_.CanStart(0, j, t)) continue;
      sim::Cell cell = q.front();
      q.pop_front();
      out_links_.Start(0, j, t);
      cell.reached_output = t;
      --backlog_[static_cast<std::size_t>(j)];
      out.push_back(cell);
    }
  } else {
    auto it = calendar_.find(t);
    if (it == calendar_.end()) return;
    for (sim::Cell cell : it->second) {
      cell.reached_output = t;
      --backlog_[static_cast<std::size_t>(cell.output)];
      out.push_back(cell);
    }
    calendar_.erase(it);
    bookings_.ExpireBefore(t + 1);
  }
}

bool Plane::BookingConflicts(sim::PortId j, sim::Slot slot) const {
  return bookings_.Conflicts(0, j, slot);
}

std::int64_t Plane::Backlog(sim::PortId j) const {
  return backlog_[static_cast<std::size_t>(j)];
}

std::int64_t Plane::TotalBacklog() const {
  std::int64_t total = 0;
  for (std::int64_t b : backlog_) total += b;
  return total;
}

void Plane::Reset() {
  for (auto& q : queues_) q.clear();
  calendar_.clear();
  bookings_.ExpireBefore(std::numeric_limits<sim::Slot>::max());
  std::fill(backlog_.begin(), backlog_.end(), 0);
  out_links_.Reset();
}

}  // namespace pps
