#include "switch/plane.h"

#include <algorithm>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace pps {

namespace {
// Initial calendar ring size; doubles on bucket collisions.  CPA-style
// demultiplexors book at most ~r' * plane-backlog slots ahead, so 64
// covers the common case without growth.
constexpr std::size_t kInitialCalendarSize = 64;
}  // namespace

Plane::Plane(sim::PlaneId id, sim::PortId num_ports, int rate_ratio,
             PlaneScheduling scheduling)
    : id_(id),
      num_ports_(num_ports),
      rate_ratio_(rate_ratio),
      scheduling_(scheduling),
      out_links_(1, num_ports, rate_ratio),
      bookings_(1, num_ports, rate_ratio) {
  queues_.resize(static_cast<std::size_t>(num_ports));
  backlog_.assign(static_cast<std::size_t>(num_ports), 0);
  if (scheduling_ == PlaneScheduling::kBooked) {
    calendar_.resize(kInitialCalendarSize);
    calendar_mask_ = kInitialCalendarSize - 1;
  }
}

void Plane::GrowCalendar() {
  std::vector<CalendarBucket> grown(calendar_.size() * 2);
  const std::size_t mask = grown.size() - 1;
  for (CalendarBucket& bucket : calendar_) {
    if (bucket.slot == sim::kNoSlot) continue;
    grown[static_cast<std::size_t>(bucket.slot) & mask] = std::move(bucket);
  }
  calendar_ = std::move(grown);
  calendar_mask_ = mask;
}

Plane::CalendarBucket& Plane::BucketFor(sim::Slot slot) {
  // Open addressing by slot & mask: distinct outstanding slots must land
  // on distinct buckets, so double the ring until this slot's bucket is
  // vacant or already tagged with it.
  for (;;) {
    CalendarBucket& bucket =
        calendar_[static_cast<std::size_t>(slot) & calendar_mask_];
    if (bucket.slot == slot || bucket.slot == sim::kNoSlot) return bucket;
    GrowCalendar();
  }
}

void Plane::Accept(sim::Cell cell, sim::Slot t, sim::Slot booked_delivery) {
  SIM_CHECK(cell.output >= 0 && cell.output < num_ports_,
            "bad output on " << cell);
  cell.plane = id_;
  cell.dispatched = t;
  ++backlog_[static_cast<std::size_t>(cell.output)];
  if (scheduling_ == PlaneScheduling::kEagerFifo) {
    SIM_CHECK(booked_delivery == sim::kNoSlot,
              "booked delivery in eager mode for " << cell);
    queues_[static_cast<std::size_t>(cell.output)].push_back(cell);
  } else {
    SIM_CHECK(booked_delivery != sim::kNoSlot && booked_delivery >= t,
              "booked mode requires a delivery slot >= now for " << cell);
    SIM_CHECK(!bookings_.Conflicts(0, cell.output, booked_delivery),
              "booking at slot " << booked_delivery << " violates the output"
                                 << " constraint on plane " << id_
                                 << " line to output " << cell.output);
    bookings_.Reserve(0, cell.output, booked_delivery);
    CalendarBucket& bucket = BucketFor(booked_delivery);
    bucket.slot = booked_delivery;
    bucket.cells.push_back(cell);
    ++calendar_pending_;
  }
}

void Plane::Deliver(sim::Slot t, std::vector<sim::Cell>& out) {
  if (scheduling_ == PlaneScheduling::kEagerFifo) {
    for (sim::PortId j = 0; j < num_ports_; ++j) {
      auto& q = queues_[static_cast<std::size_t>(j)];
      if (q.empty() || !out_links_.CanStart(0, j, t)) continue;
      sim::Cell cell = q.front();
      q.pop_front();
      out_links_.Start(0, j, t);
      cell.reached_output = t;
      --backlog_[static_cast<std::size_t>(j)];
      out.push_back(cell);
    }
  } else {
    if (calendar_pending_ == 0) return;
    CalendarBucket& bucket =
        calendar_[static_cast<std::size_t>(t) & calendar_mask_];
    if (bucket.slot != t) return;
    for (sim::Cell cell : bucket.cells) {
      cell.reached_output = t;
      --backlog_[static_cast<std::size_t>(cell.output)];
      out.push_back(cell);
    }
    calendar_pending_ -= static_cast<std::int64_t>(bucket.cells.size());
    bucket.cells.clear();  // keeps capacity: the bucket storage recycles
    bucket.slot = sim::kNoSlot;
    bookings_.ExpireBefore(sim::SlotPlus(t, 1));
  }
}

bool Plane::BookingConflicts(sim::PortId j, sim::Slot slot) const {
  return bookings_.Conflicts(0, j, slot);
}

std::int64_t Plane::Backlog(sim::PortId j) const {
  return backlog_[static_cast<std::size_t>(j)];
}

std::int64_t Plane::TotalBacklog() const {
  std::int64_t total = 0;
  for (std::int64_t b : backlog_) total += b;
  return total;
}

void Plane::Reset() {
  for (auto& q : queues_) q.clear();
  for (CalendarBucket& bucket : calendar_) {
    bucket.slot = sim::kNoSlot;
    bucket.cells.clear();
  }
  calendar_pending_ = 0;
  // A true clear, not ExpireBefore(max): the sentinel-slot reservation
  // (slot == numeric_limits<Slot>::max()) is not strictly before any slot
  // and would leak, and Clear is O(links) instead of O(reservations).
  bookings_.Clear();
  std::fill(backlog_.begin(), backlog_.end(), 0);
  out_links_.Reset();
}

void Plane::SaveState(ckpt::Writer& w) const {
  w.Marker("PLN0");
  w.I32(id_);
  w.I32(num_ports_);
  w.I32(rate_ratio_);
  w.U8(static_cast<std::uint8_t>(scheduling_));
  out_links_.SaveState(w);
  for (const auto& q : queues_) {
    w.Size(q.size());
    for (const sim::Cell& cell : q) ckpt::SaveCell(w, cell);
  }
  // Booked calendar: ring size + the non-vacant buckets sorted by slot.
  w.Size(calendar_.size());
  std::vector<const CalendarBucket*> booked;
  for (const CalendarBucket& bucket : calendar_) {
    if (bucket.slot != sim::kNoSlot) booked.push_back(&bucket);
  }
  std::sort(booked.begin(), booked.end(),
            [](const CalendarBucket* a, const CalendarBucket* b) {
              return a->slot < b->slot;
            });
  w.Size(booked.size());
  for (const CalendarBucket* bucket : booked) {
    w.I64(bucket->slot);
    w.Size(bucket->cells.size());
    for (const sim::Cell& cell : bucket->cells) ckpt::SaveCell(w, cell);
  }
  bookings_.SaveState(w);
  for (std::int64_t b : backlog_) w.I64(b);
}

void Plane::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("PLN0");
  SIM_CHECK(r.I32() == id_ && r.I32() == num_ports_ && r.I32() == rate_ratio_,
            "plane checkpoint has a different shape");
  SIM_CHECK(r.U8() == static_cast<std::uint8_t>(scheduling_),
            "plane checkpoint has a different scheduling mode");
  out_links_.LoadState(r);
  for (auto& q : queues_) {
    q.clear();
    const std::size_t n = r.Count();
    for (std::size_t i = 0; i < n; ++i) {
      q.push_back(ckpt::LoadCell(r, num_ports_));
    }
  }
  const std::size_t ring = r.Size();
  SIM_CHECK(ring == 0 || (ring & (ring - 1)) == 0,
            "plane checkpoint calendar size is not a power of two");
  // The ring is sparse capacity (only occupied buckets follow in the
  // stream), so it can legitimately exceed the remaining bytes — but a
  // live calendar starts at 64 and doubles only on collisions between
  // outstanding bookings, so a ring past 2^26 is corruption, not load.
  SIM_CHECK(ring <= (std::size_t{1} << 26),
            "plane checkpoint calendar ring of " << ring << " is implausible");
  calendar_.assign(ring, CalendarBucket{});
  calendar_mask_ = ring == 0 ? 0 : ring - 1;
  calendar_pending_ = 0;
  const std::size_t buckets = r.Size();
  SIM_CHECK(buckets <= ring,
            "plane checkpoint has " << buckets
                                    << " occupied calendar buckets in a ring "
                                       "of "
                                    << ring);
  for (std::size_t i = 0; i < buckets; ++i) {
    const sim::Slot slot = r.I64();
    CalendarBucket& bucket =
        calendar_[static_cast<std::size_t>(slot) & calendar_mask_];
    SIM_CHECK(bucket.slot == sim::kNoSlot,
              "plane checkpoint calendar buckets collide");
    bucket.slot = slot;
    const std::size_t cells = r.Count();
    bucket.cells.reserve(cells);
    for (std::size_t c = 0; c < cells; ++c) {
      bucket.cells.push_back(ckpt::LoadCell(r, num_ports_));
    }
    calendar_pending_ += static_cast<std::int64_t>(cells);
  }
  bookings_.LoadState(r);
  for (std::int64_t& b : backlog_) b = r.I64();
}

}  // namespace pps
