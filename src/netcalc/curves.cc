#include "netcalc/curves.h"

#include <algorithm>

#include "sim/error.h"

namespace netcalc {

AffineCurve OutputEnvelope(const AffineCurve& alpha,
                           const RateLatencyCurve& beta) {
  SIM_CHECK(alpha.rate <= beta.rate,
            "unstable system: arrival rate " << alpha.rate
                                             << " exceeds service rate "
                                             << beta.rate);
  return {alpha.burst + alpha.rate * beta.latency, alpha.rate};
}

RateLatencyCurve Concatenate(const RateLatencyCurve& a,
                             const RateLatencyCurve& b) {
  return {std::min(a.rate, b.rate), a.latency + b.latency};
}

}  // namespace netcalc
