// Closed-form delay/backlog bounds for (arrival, service) curve pairs.
#pragma once

#include "netcalc/curves.h"

namespace netcalc {

// Maximum horizontal deviation between alpha and beta: worst-case delay of
// any FIFO server offering beta to traffic bounded by alpha.  Requires
// alpha.rate <= beta.rate (stability).
double DelayBound(const AffineCurve& alpha, const RateLatencyCurve& beta);

// Maximum vertical deviation: worst-case backlog (buffer requirement).
double BacklogBound(const AffineCurve& alpha, const RateLatencyCurve& beta);

// The paper's reference switch: a work-conserving output port draining one
// cell per slot with zero latency.  Under (R=1, B) leaky-bucket traffic its
// worst-case queuing delay and buffer occupancy are both exactly B — the
// fact Lemma 4 leans on ("the maximum buffer size needed for any
// work-conserving switch to work under (R,B) leaky-bucket traffic is B").
double ReferenceSwitchDelayBound(double burst);
double ReferenceSwitchBacklogBound(double burst);

// Worst-case drain time of c cells concentrated in one plane toward one
// output when the plane->output link starts one cell every rate_ratio
// slots: the c-th cell leaves no earlier than slot (c-1)*rate_ratio after
// the first send, i.e. total occupancy c*rate_ratio slots.  This is the
// "c * r'" term in Lemma 4's proof.
double ConcentrationDrainSlots(double cells, double rate_ratio);

}  // namespace netcalc
