// Minimal deterministic network calculus (Cruz, "A calculus for network
// delay, part I") specialised to what the paper needs.
//
// The paper's traffic model (Definition 3) is the classic (R, B)
// leaky-bucket envelope: over any interval of length tau, at most
// tau*R + B cells share an input port or an output port.  In network
// calculus terms that is the affine arrival curve alpha(t) = B + R*t.  A
// work-conserving output port serving one cell per slot is the
// rate-latency service curve beta(t) = max(0, t - T) with rate 1 and
// latency T = 0.  Lemma 4's "(s + B)" slack and the claim that "the maximum
// buffer size needed for any work-conserving switch ... is B" both follow
// from these curves; the netcalc module computes them so the experiment
// code never hard-codes a bound.
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace netcalc {

// Affine (leaky-bucket) arrival curve alpha(t) = burst + rate * t for t > 0,
// alpha(0) = 0.  Rates are in cells/slot; bursts in cells.
struct AffineCurve {
  double burst = 0.0;  // sigma (the paper's B)
  double rate = 0.0;   // rho   (the paper's R, normalised to 1 externally)

  double Eval(double t) const { return t <= 0.0 ? 0.0 : burst + rate * t; }

  // Aggregation of independent flows through the same port.
  friend AffineCurve operator+(const AffineCurve& a, const AffineCurve& b) {
    return {a.burst + b.burst, a.rate + b.rate};
  }
};

// Rate-latency service curve beta(t) = rate * max(0, t - latency).
struct RateLatencyCurve {
  double rate = 0.0;
  double latency = 0.0;

  double Eval(double t) const {
    return t <= latency ? 0.0 : rate * (t - latency);
  }
};

// Output envelope of an AffineCurve after crossing a RateLatencyCurve
// server (alpha ⊘ beta): burst grows by rate * latency.
AffineCurve OutputEnvelope(const AffineCurve& alpha,
                           const RateLatencyCurve& beta);

// Concatenation of two rate-latency servers (min-plus convolution):
// rate = min, latency = sum.
RateLatencyCurve Concatenate(const RateLatencyCurve& a,
                             const RateLatencyCurve& b);

}  // namespace netcalc
