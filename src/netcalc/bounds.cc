#include "netcalc/bounds.h"

#include "sim/error.h"

namespace netcalc {

double DelayBound(const AffineCurve& alpha, const RateLatencyCurve& beta) {
  SIM_CHECK(beta.rate > 0.0, "service rate must be positive");
  SIM_CHECK(alpha.rate <= beta.rate, "unstable: rho > service rate");
  return beta.latency + alpha.burst / beta.rate;
}

double BacklogBound(const AffineCurve& alpha, const RateLatencyCurve& beta) {
  SIM_CHECK(alpha.rate <= beta.rate, "unstable: rho > service rate");
  return alpha.burst + alpha.rate * beta.latency;
}

double ReferenceSwitchDelayBound(double burst) {
  return DelayBound({burst, 1.0}, {1.0, 0.0});
}

double ReferenceSwitchBacklogBound(double burst) {
  return BacklogBound({burst, 1.0}, {1.0, 0.0});
}

double ConcentrationDrainSlots(double cells, double rate_ratio) {
  SIM_CHECK(cells >= 0.0 && rate_ratio >= 1.0, "bad concentration params");
  return cells * rate_ratio;
}

}  // namespace netcalc
