#include "traffic/random_sources.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace traffic {

BernoulliSource::BernoulliSource(sim::PortId num_ports, double load,
                                 Pattern pattern, sim::Rng rng,
                                 double hotspot_fraction)
    : num_ports_(num_ports),
      load_(load),
      pattern_(pattern),
      hotspot_fraction_(hotspot_fraction) {
  SIM_CHECK(num_ports > 0, "need ports");
  SIM_CHECK(load >= 0.0 && load <= 1.0, "load must be in [0,1]");
  per_input_rng_.reserve(static_cast<std::size_t>(num_ports));
  for (sim::PortId i = 0; i < num_ports; ++i) {
    per_input_rng_.push_back(rng.Fork(static_cast<std::uint64_t>(i)));
  }
}

sim::PortId BernoulliSource::PickOutput(sim::PortId input, sim::Slot t,
                                        sim::Rng& rng) {
  switch (pattern_) {
    case Pattern::kUniform:
      return static_cast<sim::PortId>(
          rng.UniformInt(static_cast<std::uint64_t>(num_ports_)));
    case Pattern::kDiagonal:
      return static_cast<sim::PortId>(sim::SlotPlus(t, input) %
                                      static_cast<sim::Slot>(num_ports_));
    case Pattern::kHotspot:
      if (rng.Bernoulli(hotspot_fraction_)) return 0;
      return static_cast<sim::PortId>(
          rng.UniformInt(static_cast<std::uint64_t>(num_ports_)));
    case Pattern::kTranspose:
      return static_cast<sim::PortId>((input + num_ports_ / 2) % num_ports_);
  }
  return 0;
}

std::vector<sim::Arrival> BernoulliSource::ArrivalsAt(sim::Slot t) {
  std::vector<sim::Arrival> out;
  for (sim::PortId i = 0; i < num_ports_; ++i) {
    sim::Rng& rng = per_input_rng_[static_cast<std::size_t>(i)];
    if (rng.Bernoulli(load_)) {
      out.push_back({i, PickOutput(i, t, rng)});
    }
  }
  return out;
}

void BernoulliSource::SaveState(ckpt::Writer& w) const {
  w.Marker("BERN");
  w.Size(per_input_rng_.size());
  for (const sim::Rng& rng : per_input_rng_) ckpt::SaveRng(w, rng);
}

void BernoulliSource::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("BERN");
  SIM_CHECK(r.Size() == per_input_rng_.size(),
            "bernoulli checkpoint has a different port count");
  for (sim::Rng& rng : per_input_rng_) ckpt::LoadRng(r, rng);
}

void BernoulliSource::Reseed(std::uint64_t seed) {
  sim::Rng base(seed);
  for (sim::PortId i = 0; i < num_ports_; ++i) {
    per_input_rng_[static_cast<std::size_t>(i)] =
        base.Fork(static_cast<std::uint64_t>(i));
  }
}

OnOffSource::OnOffSource(sim::PortId num_ports, double load,
                         double mean_burst_len, sim::Rng rng)
    : num_ports_(num_ports) {
  SIM_CHECK(num_ports > 0, "need ports");
  SIM_CHECK(load > 0.0 && load < 1.0, "load must be in (0,1)");
  SIM_CHECK(mean_burst_len >= 1.0, "mean burst length must be >= 1");
  // ON dwell ~ Geometric(p_off) with mean 1/p_off = mean_burst_len.
  p_off_ = 1.0 / mean_burst_len;
  // Stationary P(on) = p_on / (p_on + p_off) = load.
  p_on_ = load * p_off_ / (1.0 - load);
  if (p_on_ > 1.0) p_on_ = 1.0;
  ports_.resize(static_cast<std::size_t>(num_ports));
  for (sim::PortId i = 0; i < num_ports; ++i) {
    auto& ps = ports_[static_cast<std::size_t>(i)];
    ps.rng = rng.Fork(static_cast<std::uint64_t>(i) + 0x5151u);
    ps.on = ps.rng.Bernoulli(load);
    ps.dest = static_cast<sim::PortId>(
        ps.rng.UniformInt(static_cast<std::uint64_t>(num_ports)));
  }
}

void OnOffSource::SaveState(ckpt::Writer& w) const {
  w.Marker("ONOF");
  w.Size(ports_.size());
  for (const PortState& ps : ports_) {
    w.Bool(ps.on);
    w.I32(ps.dest);
    ckpt::SaveRng(w, ps.rng);
  }
}

void OnOffSource::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("ONOF");
  SIM_CHECK(r.Size() == ports_.size(),
            "on-off checkpoint has a different port count");
  for (PortState& ps : ports_) {
    ps.on = r.Bool();
    ps.dest = r.I32();
    ckpt::LoadRng(r, ps.rng);
  }
}

void OnOffSource::Reseed(std::uint64_t seed) {
  sim::Rng base(seed);
  for (sim::PortId i = 0; i < num_ports_; ++i) {
    // Same per-port salt as the constructor; on/off phase and destination
    // are deliberately kept — only the randomness stream changes.
    ports_[static_cast<std::size_t>(i)].rng =
        base.Fork(static_cast<std::uint64_t>(i) + 0x5151u);
  }
}

std::vector<sim::Arrival> OnOffSource::ArrivalsAt(sim::Slot t) {
  (void)t;
  std::vector<sim::Arrival> out;
  for (sim::PortId i = 0; i < num_ports_; ++i) {
    auto& ps = ports_[static_cast<std::size_t>(i)];
    if (ps.on) {
      out.push_back({i, ps.dest});
      if (ps.rng.Bernoulli(p_off_)) ps.on = false;
    } else {
      if (ps.rng.Bernoulli(p_on_)) {
        ps.on = true;
        ps.dest = static_cast<sim::PortId>(
            ps.rng.UniformInt(static_cast<std::uint64_t>(num_ports_)));
        // The burst starts in the next slot; this slot stays silent,
        // matching a geometric OFF dwell of at least one slot.
      }
    }
  }
  return out;
}

RateMatrixSource::RateMatrixSource(std::vector<std::vector<double>> rates,
                                   sim::Rng rng)
    : rates_(std::move(rates)) {
  SIM_CHECK(!rates_.empty(), "rate matrix needs at least one ingress row");
  const std::size_t egress = rates_.front().size();
  SIM_CHECK(egress > 0, "rate matrix needs at least one egress column");
  row_sum_.reserve(rates_.size());
  for (const std::vector<double>& row : rates_) {
    SIM_CHECK(row.size() == egress,
              "rate matrix rows must all have the same egress count");
    double sum = 0.0;
    for (double rate : row) {
      SIM_CHECK(rate >= 0.0, "rate matrix entries must be non-negative");
      sum += rate;
    }
    SIM_CHECK(sum <= 1.0 + 1e-9,
              "rate matrix row offers more than the line rate (sum " << sum
                                                                     << ")");
    row_sum_.push_back(sum);
  }
  per_input_rng_.reserve(rates_.size());
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    per_input_rng_.push_back(rng.Fork(static_cast<std::uint64_t>(i)));
  }
}

std::vector<sim::Arrival> RateMatrixSource::ArrivalsAt(sim::Slot t) {
  (void)t;
  std::vector<sim::Arrival> out;
  for (std::size_t i = 0; i < rates_.size(); ++i) {
    sim::Rng& rng = per_input_rng_[i];
    const double sum = row_sum_[i];
    if (sum <= 0.0 || !rng.Bernoulli(sum)) continue;
    // Destination proportional to the row: one uniform draw over the total
    // row mass, walked cumulatively.
    double point = rng.UniformDouble() * sum;
    const std::vector<double>& row = rates_[i];
    sim::PortId dest = 0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      point -= row[j];
      if (point < 0.0) {
        dest = static_cast<sim::PortId>(j);
        break;
      }
      // Floating-point tail: the last positive-rate column absorbs it.
      if (row[j] > 0.0) dest = static_cast<sim::PortId>(j);
    }
    out.push_back({static_cast<sim::PortId>(i), dest});
  }
  return out;
}

void RateMatrixSource::SaveState(ckpt::Writer& w) const {
  w.Marker("RMTX");
  w.Size(per_input_rng_.size());
  for (const sim::Rng& rng : per_input_rng_) ckpt::SaveRng(w, rng);
}

void RateMatrixSource::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("RMTX");
  SIM_CHECK(r.Size() == per_input_rng_.size(),
            "rate-matrix checkpoint has a different ingress count");
  for (sim::Rng& rng : per_input_rng_) ckpt::LoadRng(r, rng);
}

void RateMatrixSource::Reseed(std::uint64_t seed) {
  sim::Rng base(seed);
  for (std::size_t i = 0; i < per_input_rng_.size(); ++i) {
    per_input_rng_[i] = base.Fork(static_cast<std::uint64_t>(i));
  }
}

}  // namespace traffic
