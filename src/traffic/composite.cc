#include "traffic/composite.h"

#include <algorithm>

#include "sim/error.h"

namespace traffic {

PhasedSource::PhasedSource(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  for (const Phase& p : phases_) {
    SIM_CHECK(p.source != nullptr, "null phase source");
    SIM_CHECK(p.duration > 0, "phase duration must be positive");
    total_ += p.duration;
  }
}

std::vector<sim::Arrival> PhasedSource::ArrivalsAt(sim::Slot t) {
  while (current_ < phases_.size() &&
         t >= sim::SlotPlus(phase_start_, phases_[current_].duration)) {
    phase_start_ += phases_[current_].duration;
    ++current_;
  }
  if (current_ >= phases_.size()) return {};
  // Phases see local time starting at 0.
  return phases_[current_].source->ArrivalsAt(
      sim::SlotDifference(t, phase_start_));
}

bool PhasedSource::Exhausted(sim::Slot t) const { return t >= total_; }

MergedSource::MergedSource(std::vector<SourcePtr> sources)
    : sources_(std::move(sources)) {
  for (const SourcePtr& s : sources_) SIM_CHECK(s != nullptr, "null source");
}

std::vector<sim::Arrival> MergedSource::ArrivalsAt(sim::Slot t) {
  std::vector<sim::Arrival> out;
  for (const SourcePtr& s : sources_) {
    auto part = s->ArrivalsAt(t);
    out.insert(out.end(), part.begin(), part.end());
  }
  // Model check: at most one cell per input per slot.
  std::sort(out.begin(), out.end());
  for (std::size_t i = 1; i < out.size(); ++i) {
    SIM_CHECK(out[i].input != out[i - 1].input,
              "merged sources collide on input " << out[i].input
                                                 << " at slot " << t);
  }
  return out;
}

bool MergedSource::Exhausted(sim::Slot t) const {
  for (const SourcePtr& s : sources_) {
    if (!s->Exhausted(t)) return false;
  }
  return true;
}

}  // namespace traffic
