#include "traffic/transforms.h"

#include "sim/error.h"

namespace traffic {

Trace Shift(const Trace& trace, sim::Slot offset) {
  Trace out;
  for (const TraceEntry& e : trace.entries()) {
    const sim::Slot shifted = sim::SlotPlus(e.slot, offset);
    SIM_CHECK(shifted >= 0, "shift would produce a negative slot");
    out.Add(shifted, e.input, e.output);
  }
  out.Normalize();
  return out;
}

Trace Dilate(const Trace& trace, int factor) {
  SIM_CHECK(factor >= 1, "dilation factor must be >= 1");
  Trace out;
  for (const TraceEntry& e : trace.entries()) {
    out.Add(e.slot * factor, e.input, e.output);
  }
  out.Normalize();
  return out;
}

Trace PermutePorts(const Trace& trace,
                   const std::vector<sim::PortId>& input_perm,
                   const std::vector<sim::PortId>& output_perm) {
  Trace out;
  for (const TraceEntry& e : trace.entries()) {
    SIM_CHECK(static_cast<std::size_t>(e.input) < input_perm.size() &&
                  static_cast<std::size_t>(e.output) < output_perm.size(),
              "port out of permutation range");
    out.Add(e.slot, input_perm[static_cast<std::size_t>(e.input)],
            output_perm[static_cast<std::size_t>(e.output)]);
  }
  out.Normalize();
  return out;
}

Trace Truncate(const Trace& trace, sim::Slot horizon) {
  Trace out;
  for (const TraceEntry& e : trace.entries()) {
    if (e.slot < horizon) out.Add(e.slot, e.input, e.output);
  }
  out.Normalize();
  return out;
}

Trace Merge(const Trace& a, const Trace& b) {
  Trace out;
  for (const TraceEntry& e : a.entries()) out.Add(e.slot, e.input, e.output);
  for (const TraceEntry& e : b.entries()) out.Add(e.slot, e.input, e.output);
  out.Normalize();
  const auto& entries = out.entries();
  for (std::size_t i = 1; i < entries.size(); ++i) {
    SIM_CHECK(!(entries[i].slot == entries[i - 1].slot &&
                entries[i].input == entries[i - 1].input),
              "merge collision on input " << entries[i].input << " at slot "
                                          << entries[i].slot);
  }
  return out;
}

Trace Transpose(const Trace& trace) {
  Trace out;
  for (const TraceEntry& e : trace.entries()) {
    out.Add(e.slot, e.output, e.input);
  }
  out.Normalize();
  return out;
}

}  // namespace traffic
