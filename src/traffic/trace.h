// Deterministic traffic traces: the workhorse of the lower-bound
// adversaries, which construct explicit cell-by-cell arrival sequences
// (e.g. the traffic "LB" in the proof of Theorem 6).
//
// A trace is a time-sorted list of (slot, input, output) events.  It can be
// built programmatically, recorded from another source, saved to and loaded
// from a simple text format or a compact binary framing, and replayed as a
// TrafficSource.
//
// Formats:
//   * text ("# pps trace v1"): one "slot input output" line per entry —
//     human-editable, the historical format;
//   * binary ("PPSTRCB1" magic): varint-delta framing — slots are stored
//     as deltas from the previous entry, ports as raw varints, so dense
//     long-horizon traces shrink to a few bytes per cell.  Load sniffs
//     the magic, so either format can be handed to any loader.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.h"
#include "traffic/source.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace traffic {

struct TraceEntry {
  sim::Slot slot = 0;
  sim::PortId input = sim::kNoPort;
  sim::PortId output = sim::kNoPort;

  friend auto operator<=>(const TraceEntry&, const TraceEntry&) = default;
};

// Mutable builder + replayable source.
class Trace {
 public:
  Trace() = default;

  // Appends an arrival.  Entries may be added out of order; Normalize()
  // (or replay construction) sorts them.  Duplicate (slot, input) pairs
  // are a model violation and rejected by Validate().
  void Add(sim::Slot slot, sim::PortId input, sim::PortId output);

  // Appends every entry of `other` shifted by `offset` slots.  Throws
  // sim::SimError if any shifted slot overflows the Slot domain (or lands
  // on the kNoSlot sentinel) instead of silently wrapping.
  void Append(const Trace& other, sim::Slot offset);

  // Sorts entries by (slot, input).
  void Normalize();

  // Throws sim::SimError if two cells share (slot, input), or any port id
  // is outside [0, num_ports).
  void Validate(sim::PortId num_ports) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<TraceEntry>& entries() const { return entries_; }
  // Slot of the last entry (requires nonempty, normalized).
  sim::Slot last_slot() const;

  // Text serialization: one "slot input output" line per entry, '#'
  // comments.
  void Save(std::ostream& os) const;
  // Loads either format: sniffs the binary magic, falls back to text.
  static Trace Load(std::istream& is);

  // Compact binary framing (varint slot deltas); requires a normalized
  // trace so the deltas are nonnegative.
  void SaveBinary(std::ostream& os) const;
  static Trace LoadBinary(std::istream& is);

 private:
  std::vector<TraceEntry> entries_;
  bool normalized_ = true;
};

// TrafficSource replaying an in-memory trace.
class TraceTraffic final : public TrafficSource {
 public:
  explicit TraceTraffic(Trace trace);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;
  bool Exhausted(sim::Slot t) const override;

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  std::size_t cursor_ = 0;
};

// TrafficSource streaming a trace file (text or binary) without holding
// the whole trace in memory: entries are decoded on demand with a
// one-entry lookahead, so serving multi-billion-slot traces keeps O(1)
// traffic state.  Checkpointable — the resume seeks the underlying file
// back to the recorded byte offset.
class StreamingTraceSource final : public TrafficSource {
 public:
  explicit StreamingTraceSource(std::string path);
  ~StreamingTraceSource() override;

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;
  bool Exhausted(sim::Slot t) const override;

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

  std::uint64_t entries_read() const { return entries_read_; }

 private:
  struct Impl;
  // Decodes the next entry into lookahead_; sets eof_ when drained.
  void Advance();

  std::string path_;
  std::unique_ptr<Impl> impl_;
  TraceEntry lookahead_{};
  bool have_lookahead_ = false;
  bool eof_ = false;
  std::uint64_t entries_read_ = 0;
  sim::Slot prev_slot_ = 0;  // binary delta base; doubles as an order check
};

}  // namespace traffic
