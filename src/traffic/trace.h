// Deterministic traffic traces: the workhorse of the lower-bound
// adversaries, which construct explicit cell-by-cell arrival sequences
// (e.g. the traffic "LB" in the proof of Theorem 6).
//
// A trace is a time-sorted list of (slot, input, output) events.  It can be
// built programmatically, recorded from another source, saved to and loaded
// from a simple text format, and replayed as a TrafficSource.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.h"
#include "traffic/source.h"

namespace traffic {

struct TraceEntry {
  sim::Slot slot = 0;
  sim::PortId input = sim::kNoPort;
  sim::PortId output = sim::kNoPort;

  friend auto operator<=>(const TraceEntry&, const TraceEntry&) = default;
};

// Mutable builder + replayable source.
class Trace {
 public:
  Trace() = default;

  // Appends an arrival.  Entries may be added out of order; Normalize()
  // (or replay construction) sorts them.  Duplicate (slot, input) pairs
  // are a model violation and rejected by Validate().
  void Add(sim::Slot slot, sim::PortId input, sim::PortId output);

  // Appends every entry of `other` shifted by `offset` slots.
  void Append(const Trace& other, sim::Slot offset);

  // Sorts entries by (slot, input).
  void Normalize();

  // Throws sim::SimError if two cells share (slot, input), or any port id
  // is outside [0, num_ports).
  void Validate(sim::PortId num_ports) const;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  const std::vector<TraceEntry>& entries() const { return entries_; }
  // Slot of the last entry (requires nonempty, normalized).
  sim::Slot last_slot() const;

  // Serialization: one "slot input output" line per entry, '#' comments.
  void Save(std::ostream& os) const;
  static Trace Load(std::istream& is);

 private:
  std::vector<TraceEntry> entries_;
  bool normalized_ = true;
};

// TrafficSource replaying a trace.
class TraceTraffic final : public TrafficSource {
 public:
  explicit TraceTraffic(Trace trace);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;
  bool Exhausted(sim::Slot t) const override;

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  std::size_t cursor_ = 0;
};

}  // namespace traffic
