// Traffic source interface.
//
// A TrafficSource produces the cells offered to a switch, slot by slot.
// The external line rate R is one cell per slot per port, so a source may
// emit at most one Arrival per input port per slot; switches and the
// Validator enforce this.  Sources are pull-based and must be queried with
// strictly increasing slots.
#pragma once

#include <memory>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"

namespace traffic {

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  // Arrivals in slot t.  Called once per slot with strictly increasing t.
  // At most one arrival per input port.
  virtual std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) = 0;

  // True once the source is known to produce no further arrivals at or
  // after slot t; infinite sources always return false.  Harnesses use
  // this plus switch-drained checks to terminate runs.
  virtual bool Exhausted(sim::Slot t) const {
    (void)t;
    return false;
  }
};

using SourcePtr = std::unique_ptr<TrafficSource>;

}  // namespace traffic
