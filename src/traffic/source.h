// Traffic source interface.
//
// A TrafficSource produces the cells offered to a switch, slot by slot.
// The external line rate R is one cell per slot per port, so a source may
// emit at most one Arrival per input port per slot; switches and the
// Validator enforce this.  Sources are pull-based and must be queried with
// strictly increasing slots.
#pragma once

#include <memory>
#include <vector>

#include "sim/cell.h"
#include "sim/error.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace traffic {

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  // Arrivals in slot t.  Called once per slot with strictly increasing t.
  // At most one arrival per input port.
  virtual std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) = 0;

  // True once the source is known to produce no further arrivals at or
  // after slot t; infinite sources always return false.  Harnesses use
  // this plus switch-drained checks to terminate runs.
  virtual bool Exhausted(sim::Slot t) const {
    (void)t;
    return false;
  }

  // --- run forking (tools/pps_serve --fork) ---
  //
  // Reseeding replaces every internal RNG stream with fresh streams forked
  // from `seed`, leaving modulation state (on/off phases, dwell counters,
  // cursors) intact: a forked resume keeps the same traffic regime but
  // draws different randomness from the fork point on — the "what if the
  // arrivals had gone differently" question.  Deterministic trace-backed
  // sources cannot reseed and keep the default.
  virtual bool reseedable() const { return false; }
  virtual void Reseed(std::uint64_t seed) {
    (void)seed;
    throw sim::SimError("traffic source cannot be reseeded");
  }

  // --- exact-state checkpointing (ckpt/) ---
  //
  // A checkpointable source can serialize its complete mutable state
  // (cursors, RNG streams, per-port modulation state) so a restored run
  // replays the identical arrival sequence from the checkpoint slot on.
  // The engine refuses to checkpoint a run whose source says false —
  // a silently default-constructed source on resume would diverge.
  virtual bool checkpointable() const { return false; }
  virtual void SaveState(ckpt::Writer& w) const {
    (void)w;
    throw sim::SimError("traffic source is not checkpointable");
  }
  virtual void LoadState(ckpt::Reader& r) {
    (void)r;
    throw sim::SimError("traffic source is not checkpointable");
  }
};

using SourcePtr = std::unique_ptr<TrafficSource>;

}  // namespace traffic
