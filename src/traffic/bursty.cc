#include "traffic/bursty.h"

#include <cmath>
#include <utility>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace traffic {

namespace {

// Geometric dwell with the given mean (>= 1), support {1, 2, ...}:
// 1 + failures-before-success at p = 1/mean has mean exactly `mean`.
std::int64_t DrawDwell(sim::Rng& rng, double mean) {
  return 1 + static_cast<std::int64_t>(rng.Geometric(1.0 / mean));
}

double IdleMeanFor(double load, double mean_burst) {
  // Long-run per-port rate is B / (B + D); solve D for the target load.
  // Dwells are at least one slot, so extremely high loads are clamped
  // (slightly under-offered) rather than mis-drawn.
  return std::max(1.0, mean_burst * (1.0 - load) / load);
}

}  // namespace

// ---------------------------------------------------------------------------
// MmppSource

MmppSource::MmppSource(sim::PortId num_ports, double load,
                       std::vector<Phase> phases, sim::Rng rng)
    : num_ports_(num_ports), phases_(std::move(phases)) {
  SIM_CHECK(num_ports > 0, "need ports");
  SIM_CHECK(load > 0.0 && load < 1.0, "load must be in (0,1)");
  SIM_CHECK(!phases_.empty(), "mmpp needs at least one burst phase");
  double total_weight = 0.0;
  double weighted_mean = 0.0;
  cumulative_weight_.reserve(phases_.size());
  for (const Phase& phase : phases_) {
    SIM_CHECK(phase.mean_burst >= 1.0,
              "mmpp phase mean burst must be >= 1, got " << phase.mean_burst);
    SIM_CHECK(phase.weight > 0.0,
              "mmpp phase weight must be > 0, got " << phase.weight);
    total_weight += phase.weight;
    weighted_mean += phase.weight * phase.mean_burst;
    cumulative_weight_.push_back(total_weight);
  }
  mean_burst_ = weighted_mean / total_weight;
  mean_idle_ = IdleMeanFor(load, mean_burst_);

  ports_.resize(static_cast<std::size_t>(num_ports));
  for (sim::PortId i = 0; i < num_ports; ++i) {
    PortState& ps = ports_[static_cast<std::size_t>(i)];
    ps.rng = rng.Fork(static_cast<std::uint64_t>(i) + 0x4d50u);
    StartIdle(ps);
  }
}

MmppSource MmppSource::HeavyTailed(sim::PortId num_ports, double load,
                                   int num_phases, double base_burst,
                                   sim::Rng rng) {
  SIM_CHECK(num_phases >= 1, "heavy-tailed mmpp needs >= 1 phase");
  SIM_CHECK(base_burst >= 1.0, "base burst must be >= 1");
  std::vector<Phase> phases;
  phases.reserve(static_cast<std::size_t>(num_phases));
  double mean = base_burst;
  double weight = 1.0;
  for (int k = 0; k < num_phases; ++k) {
    phases.push_back({mean, weight});
    mean *= 4.0;
    weight *= 0.5;
  }
  return MmppSource(num_ports, load, std::move(phases), rng);
}

void MmppSource::StartBurst(PortState& ps) {
  const double total = cumulative_weight_.back();
  const double u = ps.rng.UniformDouble() * total;
  std::size_t phase = 0;
  while (phase + 1 < cumulative_weight_.size() &&
         u >= cumulative_weight_[phase]) {
    ++phase;
  }
  ps.on = true;
  ps.phase = static_cast<std::int32_t>(phase);
  ps.remaining = DrawDwell(ps.rng, phases_[phase].mean_burst);
  ps.dest = static_cast<sim::PortId>(
      ps.rng.UniformInt(static_cast<std::uint64_t>(num_ports_)));
}

void MmppSource::StartIdle(PortState& ps) {
  ps.on = false;
  ps.remaining = DrawDwell(ps.rng, mean_idle_);
}

std::vector<sim::Arrival> MmppSource::ArrivalsAt(sim::Slot t) {
  (void)t;
  std::vector<sim::Arrival> out;
  for (sim::PortId i = 0; i < num_ports_; ++i) {
    PortState& ps = ports_[static_cast<std::size_t>(i)];
    if (ps.on) out.push_back({i, ps.dest});
    if (--ps.remaining == 0) {
      if (ps.on) {
        StartIdle(ps);
      } else {
        StartBurst(ps);
      }
    }
  }
  return out;
}

void MmppSource::SaveState(ckpt::Writer& w) const {
  w.Marker("MMPP");
  w.Size(ports_.size());
  for (const PortState& ps : ports_) {
    w.Bool(ps.on);
    w.I32(ps.phase);
    w.I64(ps.remaining);
    w.I32(ps.dest);
    ckpt::SaveRng(w, ps.rng);
  }
}

void MmppSource::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("MMPP");
  SIM_CHECK(r.Size() == ports_.size(),
            "mmpp checkpoint has a different port count");
  for (PortState& ps : ports_) {
    ps.on = r.Bool();
    ps.phase = r.I32();
    SIM_CHECK(ps.phase >= 0 &&
                  static_cast<std::size_t>(ps.phase) < phases_.size(),
              "mmpp checkpoint has phase " << ps.phase << " out of range");
    ps.remaining = r.I64();
    SIM_CHECK(ps.remaining >= 1,
              "mmpp checkpoint has dwell " << ps.remaining << " < 1");
    ps.dest = r.I32();
    ckpt::LoadRng(r, ps.rng);
  }
}

void MmppSource::Reseed(std::uint64_t seed) {
  sim::Rng base(seed);
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    // Same per-port salt as the constructor; phase/dwell/destination state
    // is deliberately kept — only the randomness stream changes.
    ports_[i].rng = base.Fork(static_cast<std::uint64_t>(i) + 0x4d50u);
  }
}

// ---------------------------------------------------------------------------
// ParetoOnOffSource

ParetoOnOffSource::ParetoOnOffSource(sim::PortId num_ports, double load,
                                     double alpha, double min_burst,
                                     std::int64_t max_burst, sim::Rng rng)
    : num_ports_(num_ports),
      alpha_(alpha),
      min_burst_(min_burst),
      max_burst_(max_burst) {
  SIM_CHECK(num_ports > 0, "need ports");
  SIM_CHECK(load > 0.0 && load < 1.0, "load must be in (0,1)");
  SIM_CHECK(alpha > 1.0, "pareto alpha must be > 1 (finite mean)");
  SIM_CHECK(min_burst >= 1.0, "pareto min burst must be >= 1");
  SIM_CHECK(max_burst >= static_cast<std::int64_t>(std::ceil(min_burst)),
            "pareto max burst must be >= ceil(min burst)");
  SIM_CHECK(max_burst <= 10'000'000,
            "pareto max burst above 1e7 (exact mean computation is O(cap))");

  // E[X] of the capped discrete dwell X = min(cap, ceil(Y)) via the tail
  // sum E[X] = sum_{x>=1} P(X >= x); P(X >= x) = P(Y > x-1).
  double mean = 0.0;
  for (std::int64_t x = 1; x <= max_burst_; ++x) {
    const double boundary = static_cast<double>(x - 1);
    mean += boundary < min_burst_
                ? 1.0
                : std::pow(min_burst_ / boundary, alpha_);
  }
  mean_burst_ = mean;
  mean_idle_ = IdleMeanFor(load, mean_burst_);

  ports_.resize(static_cast<std::size_t>(num_ports));
  for (sim::PortId i = 0; i < num_ports; ++i) {
    PortState& ps = ports_[static_cast<std::size_t>(i)];
    ps.rng = rng.Fork(static_cast<std::uint64_t>(i) + 0x5041u);
    StartIdle(ps);
  }
}

std::int64_t ParetoOnOffSource::DrawBurst(sim::Rng& rng) const {
  // Inverse-CDF draw: Y = xm * (1-U)^(-1/alpha), U uniform in [0,1), so
  // 1-U is in (0,1] and the pow never divides by zero.
  const double y =
      min_burst_ * std::pow(1.0 - rng.UniformDouble(), -1.0 / alpha_);
  if (!(y < static_cast<double>(max_burst_))) return max_burst_;
  const std::int64_t dwell = static_cast<std::int64_t>(std::ceil(y));
  return dwell < 1 ? 1 : dwell;
}

void ParetoOnOffSource::StartIdle(PortState& ps) {
  ps.on = false;
  ps.remaining = DrawDwell(ps.rng, mean_idle_);
}

std::vector<sim::Arrival> ParetoOnOffSource::ArrivalsAt(sim::Slot t) {
  (void)t;
  std::vector<sim::Arrival> out;
  for (sim::PortId i = 0; i < num_ports_; ++i) {
    PortState& ps = ports_[static_cast<std::size_t>(i)];
    if (ps.on) out.push_back({i, ps.dest});
    if (--ps.remaining == 0) {
      if (ps.on) {
        StartIdle(ps);
      } else {
        ps.on = true;
        ps.remaining = DrawBurst(ps.rng);
        ps.dest = static_cast<sim::PortId>(
            ps.rng.UniformInt(static_cast<std::uint64_t>(num_ports_)));
      }
    }
  }
  return out;
}

void ParetoOnOffSource::SaveState(ckpt::Writer& w) const {
  w.Marker("PAR0");
  w.Size(ports_.size());
  for (const PortState& ps : ports_) {
    w.Bool(ps.on);
    w.I64(ps.remaining);
    w.I32(ps.dest);
    ckpt::SaveRng(w, ps.rng);
  }
}

void ParetoOnOffSource::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("PAR0");
  SIM_CHECK(r.Size() == ports_.size(),
            "pareto checkpoint has a different port count");
  for (PortState& ps : ports_) {
    ps.on = r.Bool();
    ps.remaining = r.I64();
    SIM_CHECK(ps.remaining >= 1,
              "pareto checkpoint has dwell " << ps.remaining << " < 1");
    ps.dest = r.I32();
    ckpt::LoadRng(r, ps.rng);
  }
}

void ParetoOnOffSource::Reseed(std::uint64_t seed) {
  sim::Rng base(seed);
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    // Same per-port salt as the constructor; on/off and dwell state is
    // deliberately kept — only the randomness stream changes.
    ports_[i].rng = base.Fork(static_cast<std::uint64_t>(i) + 0x5041u);
  }
}

}  // namespace traffic
