#include "traffic/trace.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace traffic {

namespace {

constexpr char kBinaryMagic[8] = {'P', 'P', 'S', 'T', 'R', 'C', 'B', '1'};

// LEB128-style unsigned varint.
void PutVarint(std::ostream& os, std::uint64_t v) {
  while (v >= 0x80) {
    os.put(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  os.put(static_cast<char>(v));
}

bool GetVarint(std::istream& is, std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    const int ch = is.get();
    if (ch == std::istream::traits_type::eof()) return false;
    SIM_CHECK(shift < 64, "binary trace: varint too long");
    v |= static_cast<std::uint64_t>(ch & 0x7f) << shift;
    if ((ch & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return true;
}

// Decodes one binary-framed entry; false on clean EOF.
bool GetBinaryEntry(std::istream& is, sim::Slot prev_slot, TraceEntry* e) {
  std::uint64_t delta = 0;
  if (!GetVarint(is, &delta)) return false;
  std::uint64_t input = 0, output = 0;
  SIM_CHECK(GetVarint(is, &input) && GetVarint(is, &output),
            "binary trace: truncated entry");
  sim::Slot slot = 0;
  SIM_CHECK(delta <= static_cast<std::uint64_t>(
                         std::numeric_limits<sim::Slot>::max()) &&
                sim::CheckedSlotPlus(prev_slot,
                                     static_cast<std::int64_t>(delta), &slot),
            "binary trace: slot delta overflows");
  e->slot = slot;
  SIM_CHECK(input <= static_cast<std::uint64_t>(
                         std::numeric_limits<sim::PortId>::max()) &&
                output <= static_cast<std::uint64_t>(
                              std::numeric_limits<sim::PortId>::max()),
            "binary trace: port id out of range");
  e->input = static_cast<sim::PortId>(input);
  e->output = static_cast<sim::PortId>(output);
  return true;
}

}  // namespace

void Trace::Add(sim::Slot slot, sim::PortId input, sim::PortId output) {
  if (!entries_.empty() && normalized_) {
    const TraceEntry& back = entries_.back();
    if (slot < back.slot || (slot == back.slot && input < back.input)) {
      normalized_ = false;
    }
  }
  entries_.push_back({slot, input, output});
}

void Trace::Append(const Trace& other, sim::Slot offset) {
  for (const TraceEntry& e : other.entries_) {
    sim::Slot shifted = 0;
    SIM_CHECK(sim::CheckedSlotPlus(e.slot, offset, &shifted),
              "Trace::Append overflows the slot domain: " << e.slot << " + "
                                                          << offset);
    Add(shifted, e.input, e.output);
  }
}

void Trace::Normalize() {
  std::sort(entries_.begin(), entries_.end());
  normalized_ = true;
}

void Trace::Validate(sim::PortId num_ports) const {
  SIM_CHECK(normalized_, "Validate requires a normalized trace");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TraceEntry& e = entries_[i];
    SIM_CHECK(e.input >= 0 && e.input < num_ports,
              "input out of range at entry " << i);
    SIM_CHECK(e.output >= 0 && e.output < num_ports,
              "output out of range at entry " << i);
    if (i > 0) {
      const TraceEntry& p = entries_[i - 1];
      SIM_CHECK(!(p.slot == e.slot && p.input == e.input),
                "two cells on input " << e.input << " in slot " << e.slot);
    }
  }
}

sim::Slot Trace::last_slot() const {
  SIM_CHECK(!entries_.empty(), "last_slot of empty trace");
  SIM_CHECK(normalized_, "last_slot requires a normalized trace");
  return entries_.back().slot;
}

void Trace::Save(std::ostream& os) const {
  os << "# pps trace v1: slot input output\n";
  for (const TraceEntry& e : entries_) {
    os << e.slot << " " << e.input << " " << e.output << "\n";
  }
}

void Trace::SaveBinary(std::ostream& os) const {
  SIM_CHECK(normalized_, "SaveBinary requires a normalized trace");
  os.write(kBinaryMagic, sizeof(kBinaryMagic));
  PutVarint(os, entries_.size());
  sim::Slot prev = 0;
  for (const TraceEntry& e : entries_) {
    SIM_CHECK(e.slot >= prev && e.slot >= 0,
              "SaveBinary requires nonnegative sorted slots");
    SIM_CHECK(e.input >= 0 && e.output >= 0,
              "SaveBinary requires nonnegative port ids");
    PutVarint(
        os, static_cast<std::uint64_t>(sim::SlotDifference(e.slot, prev)));
    PutVarint(os, static_cast<std::uint64_t>(e.input));
    PutVarint(os, static_cast<std::uint64_t>(e.output));
    prev = e.slot;
  }
  SIM_CHECK(os.good(), "SaveBinary: stream write failed");
}

Trace Trace::LoadBinary(std::istream& is) {
  char magic[sizeof(kBinaryMagic)] = {};
  is.read(magic, sizeof(magic));
  SIM_CHECK(is.gcount() == sizeof(magic) &&
                std::equal(magic, magic + sizeof(magic), kBinaryMagic),
            "binary trace: bad magic");
  std::uint64_t count = 0;
  SIM_CHECK(GetVarint(is, &count), "binary trace: missing entry count");
  Trace t;
  // Cap the up-front reservation: a corrupted count must not translate
  // into a multi-terabyte allocation before the (cheap) per-entry reads
  // discover the stream is short.  Honest oversized traces still load —
  // the vector just grows normally past the cap.
  t.entries_.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  sim::Slot prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    TraceEntry e;
    SIM_CHECK(GetBinaryEntry(is, prev, &e),
              "binary trace: truncated after " << i << " of " << count
                                               << " entries");
    t.Add(e.slot, e.input, e.output);
    prev = e.slot;
  }
  t.Normalize();
  return t;
}

Trace Trace::Load(std::istream& is) {
  // Sniff the binary magic; fall back to the text format.
  const std::istream::pos_type start = is.tellg();
  char magic[sizeof(kBinaryMagic)] = {};
  is.read(magic, sizeof(magic));
  const bool binary =
      is.gcount() == sizeof(magic) &&
      std::equal(magic, magic + sizeof(magic), kBinaryMagic);
  is.clear();
  is.seekg(start);
  if (binary) return LoadBinary(is);

  Trace t;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    sim::Slot slot;
    sim::PortId input, output;
    SIM_CHECK(static_cast<bool>(ls >> slot >> input >> output),
              "malformed trace line: " << line);
    t.Add(slot, input, output);
  }
  t.Normalize();
  return t;
}

TraceTraffic::TraceTraffic(Trace trace) : trace_(std::move(trace)) {
  trace_.Normalize();
}

std::vector<sim::Arrival> TraceTraffic::ArrivalsAt(sim::Slot t) {
  std::vector<sim::Arrival> out;
  const auto& entries = trace_.entries();
  while (cursor_ < entries.size() && entries[cursor_].slot < t) {
    // Skipping is allowed (harness may fast-forward over idle slots).
    ++cursor_;
  }
  while (cursor_ < entries.size() && entries[cursor_].slot == t) {
    out.push_back({entries[cursor_].input, entries[cursor_].output});
    ++cursor_;
  }
  return out;
}

bool TraceTraffic::Exhausted(sim::Slot t) const {
  (void)t;
  return cursor_ >= trace_.entries().size();
}

void TraceTraffic::SaveState(ckpt::Writer& w) const {
  w.Marker("TRCT");
  w.Size(trace_.entries().size());  // resume-time consistency check
  w.Size(cursor_);
}

void TraceTraffic::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("TRCT");
  const std::size_t recorded = r.Size();
  SIM_CHECK(recorded == trace_.entries().size(),
            "trace checkpoint was taken over " << recorded
                                               << " entries, this trace has "
                                               << trace_.entries().size());
  cursor_ = r.Size();
  SIM_CHECK(cursor_ <= trace_.entries().size(),
            "trace checkpoint cursor out of range");
}

// --- StreamingTraceSource --------------------------------------------------

struct StreamingTraceSource::Impl {
  std::ifstream is;
  bool binary = false;
  std::uint64_t binary_count = 0;  // declared entries (binary framing only)
};

StreamingTraceSource::StreamingTraceSource(std::string path)
    : path_(std::move(path)), impl_(new Impl) {
  impl_->is.open(path_, std::ios::binary);
  SIM_CHECK(impl_->is.good(), "cannot open trace " << path_);
  char magic[sizeof(kBinaryMagic)] = {};
  impl_->is.read(magic, sizeof(magic));
  impl_->binary =
      impl_->is.gcount() == sizeof(magic) &&
      std::equal(magic, magic + sizeof(magic), kBinaryMagic);
  if (impl_->binary) {
    SIM_CHECK(GetVarint(impl_->is, &impl_->binary_count),
              "binary trace: missing entry count in " << path_);
  } else {
    impl_->is.clear();
    impl_->is.seekg(0);
  }
  Advance();
}

StreamingTraceSource::~StreamingTraceSource() = default;

void StreamingTraceSource::Advance() {
  have_lookahead_ = false;
  if (eof_) return;
  if (impl_->binary) {
    if (entries_read_ >= impl_->binary_count) {
      eof_ = true;
      return;
    }
    TraceEntry e;
    SIM_CHECK(GetBinaryEntry(impl_->is, prev_slot_, &e),
              "binary trace: truncated after " << entries_read_ << " of "
                                               << impl_->binary_count
                                               << " entries in " << path_);
    SIM_CHECK(e.slot >= prev_slot_, "trace not sorted at entry "
                                        << entries_read_ << " in " << path_);
    lookahead_ = e;
  } else {
    std::string line;
    for (;;) {
      if (!std::getline(impl_->is, line)) {
        eof_ = true;
        return;
      }
      if (!line.empty() && line[0] != '#') break;
    }
    std::istringstream ls(line);
    TraceEntry e;
    SIM_CHECK(static_cast<bool>(ls >> e.slot >> e.input >> e.output),
              "malformed trace line in " << path_ << ": " << line);
    SIM_CHECK(e.slot >= prev_slot_,
              "streaming replay requires a sorted trace; entry "
                  << entries_read_ << " of " << path_ << " goes backwards");
    lookahead_ = e;
  }
  prev_slot_ = lookahead_.slot;
  have_lookahead_ = true;
  ++entries_read_;
}

std::vector<sim::Arrival> StreamingTraceSource::ArrivalsAt(sim::Slot t) {
  std::vector<sim::Arrival> out;
  while (have_lookahead_ && lookahead_.slot < t) Advance();
  while (have_lookahead_ && lookahead_.slot == t) {
    out.push_back({lookahead_.input, lookahead_.output});
    Advance();
  }
  return out;
}

bool StreamingTraceSource::Exhausted(sim::Slot t) const {
  (void)t;
  return !have_lookahead_ && eof_;
}

void StreamingTraceSource::SaveState(ckpt::Writer& w) const {
  w.Marker("TRCS");
  w.Str(path_);
  const std::istream::pos_type pos = impl_->is.tellg();
  SIM_CHECK(pos != std::istream::pos_type(-1) || eof_,
            "streaming trace: cannot record file offset of " << path_);
  w.I64(eof_ ? -1 : static_cast<std::int64_t>(pos));
  w.Bool(have_lookahead_);
  if (have_lookahead_) {
    w.I64(lookahead_.slot);
    w.I32(lookahead_.input);
    w.I32(lookahead_.output);
  }
  w.Bool(eof_);
  w.U64(entries_read_);
  w.I64(prev_slot_);
}

void StreamingTraceSource::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("TRCS");
  const std::string recorded_path = r.Str();
  SIM_CHECK(recorded_path == path_,
            "streaming trace checkpoint was taken over '"
                << recorded_path << "', this source reads '" << path_ << "'");
  const std::int64_t pos = r.I64();
  have_lookahead_ = r.Bool();
  if (have_lookahead_) {
    lookahead_.slot = r.I64();
    lookahead_.input = r.I32();
    lookahead_.output = r.I32();
  }
  eof_ = r.Bool();
  entries_read_ = r.U64();
  prev_slot_ = r.I64();
  if (!eof_) {
    impl_->is.clear();
    impl_->is.seekg(pos);
    SIM_CHECK(impl_->is.good(),
              "streaming trace: cannot seek " << path_ << " to " << pos);
  }
}

}  // namespace traffic
