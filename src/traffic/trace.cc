#include "traffic/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "sim/error.h"

namespace traffic {

void Trace::Add(sim::Slot slot, sim::PortId input, sim::PortId output) {
  if (!entries_.empty() && normalized_) {
    const TraceEntry& back = entries_.back();
    if (slot < back.slot || (slot == back.slot && input < back.input)) {
      normalized_ = false;
    }
  }
  entries_.push_back({slot, input, output});
}

void Trace::Append(const Trace& other, sim::Slot offset) {
  for (const TraceEntry& e : other.entries_) {
    Add(e.slot + offset, e.input, e.output);
  }
}

void Trace::Normalize() {
  std::sort(entries_.begin(), entries_.end());
  normalized_ = true;
}

void Trace::Validate(sim::PortId num_ports) const {
  SIM_CHECK(normalized_, "Validate requires a normalized trace");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TraceEntry& e = entries_[i];
    SIM_CHECK(e.input >= 0 && e.input < num_ports,
              "input out of range at entry " << i);
    SIM_CHECK(e.output >= 0 && e.output < num_ports,
              "output out of range at entry " << i);
    if (i > 0) {
      const TraceEntry& p = entries_[i - 1];
      SIM_CHECK(!(p.slot == e.slot && p.input == e.input),
                "two cells on input " << e.input << " in slot " << e.slot);
    }
  }
}

sim::Slot Trace::last_slot() const {
  SIM_CHECK(!entries_.empty(), "last_slot of empty trace");
  SIM_CHECK(normalized_, "last_slot requires a normalized trace");
  return entries_.back().slot;
}

void Trace::Save(std::ostream& os) const {
  os << "# pps trace v1: slot input output\n";
  for (const TraceEntry& e : entries_) {
    os << e.slot << " " << e.input << " " << e.output << "\n";
  }
}

Trace Trace::Load(std::istream& is) {
  Trace t;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    sim::Slot slot;
    sim::PortId input, output;
    SIM_CHECK(static_cast<bool>(ls >> slot >> input >> output),
              "malformed trace line: " << line);
    t.Add(slot, input, output);
  }
  t.Normalize();
  return t;
}

TraceTraffic::TraceTraffic(Trace trace) : trace_(std::move(trace)) {
  trace_.Normalize();
}

std::vector<sim::Arrival> TraceTraffic::ArrivalsAt(sim::Slot t) {
  std::vector<sim::Arrival> out;
  const auto& entries = trace_.entries();
  while (cursor_ < entries.size() && entries[cursor_].slot < t) {
    // Skipping is allowed (harness may fast-forward over idle slots).
    ++cursor_;
  }
  while (cursor_ < entries.size() && entries[cursor_].slot == t) {
    out.push_back({entries[cursor_].input, entries[cursor_].output});
    ++cursor_;
  }
  return out;
}

bool TraceTraffic::Exhausted(sim::Slot t) const {
  (void)t;
  return cursor_ >= trace_.entries().size();
}

}  // namespace traffic
