// Heavy-tailed burst generators: the workloads that make long supervised
// runs worth protecting (ROADMAP item 3's remaining generator gap).
//
// OnOffSource's geometric bursts have exponential tails — long runs
// average out and the backlog process mixes quickly.  Real aggregates
// don't behave that way: flow sizes are heavy-tailed, so a switch sees
// rare, *very* long bursts that dominate the queueing behaviour (the
// overload regimes in Bienkowski's multi-queue lower bound and Fung's
// bounded-buffer model, PAPERS.md).  Two checkpointable models:
//
//   MmppSource        Markov-modulated on-off: each burst first draws a
//                     *phase* from a weighted ladder of mean burst
//                     lengths, then a geometric dwell with that phase's
//                     mean.  A ladder with geometrically spaced means and
//                     slowly decaying weights is the standard
//                     hyperexponential approximation of a heavy tail —
//                     MmppSource::HeavyTailed builds exactly that.
//   ParetoOnOffSource on-off with *discrete Pareto* ON dwells
//                     (X = ceil(xm * U^{-1/alpha}), capped), the textbook
//                     heavy-tail: for alpha in (1, 2) the dwell has finite
//                     mean but infinite variance.
//
// Both hold one destination per burst (bursts are flows), emit one cell
// per slot while ON, and scale the idle dwell so the long-run offered
// load per port is `load`.  Each port has an independent forked RNG
// stream, and SaveState/LoadState capture phase, remaining dwell,
// destination and RNG words exactly — the supervisor's replay guarantee
// extends to these sources unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "sim/types.h"
#include "traffic/source.h"

namespace traffic {

// Markov-modulated burst source with a weighted ladder of burst phases.
class MmppSource final : public TrafficSource {
 public:
  struct Phase {
    double mean_burst = 1.0;  // mean ON dwell in slots, >= 1
    double weight = 1.0;      // relative pick probability, > 0
  };

  // `load` in (0,1); at least one phase.  Idle dwells are geometric with
  // mean max(1, B*(1-load)/load) where B is the weight-averaged mean
  // burst length (the max(1, .) clamp slightly under-loads extremely
  // high-load configs; dwells are at least one slot).
  MmppSource(sim::PortId num_ports, double load, std::vector<Phase> phases,
             sim::Rng rng);

  // The standard heavy-tail approximation: `num_phases` phases with means
  // base_burst * 4^k and weights decaying as 2^-k, so each rung is 4x
  // longer but only 2x rarer — burst-length mass keeps shifting into the
  // tail the way a Pareto's does.
  static MmppSource HeavyTailed(sim::PortId num_ports, double load,
                                int num_phases, double base_burst,
                                sim::Rng rng);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

  bool reseedable() const override { return true; }
  void Reseed(std::uint64_t seed) override;

  double mean_burst() const { return mean_burst_; }

 private:
  struct PortState {
    bool on = false;
    std::int32_t phase = 0;        // burst phase while ON
    std::int64_t remaining = 0;    // slots left in the current dwell
    sim::PortId dest = 0;
    sim::Rng rng{0};
  };

  void StartBurst(PortState& ps);
  void StartIdle(PortState& ps);

  // ckpt-skip: construction-time constant, identical on resume
  sim::PortId num_ports_;
  // ckpt-skip: construction-time constant, identical on resume
  std::vector<Phase> phases_;
  // ckpt-skip: derived constant (cumulative phase weights)
  std::vector<double> cumulative_weight_;
  // ckpt-skip: derived constant (weight-averaged mean burst)
  double mean_burst_ = 1.0;
  // ckpt-skip: derived constant (mean idle dwell for the target load)
  double mean_idle_ = 1.0;
  std::vector<PortState> ports_;
};

// On-off source with discrete Pareto ON dwells.
class ParetoOnOffSource final : public TrafficSource {
 public:
  // alpha > 1 (finite-mean tail; 1 < alpha < 2 gives infinite variance),
  // min_burst >= 1 slots (the Pareto scale xm), dwells capped at
  // max_burst so a single draw cannot exceed the run.  `load` in (0,1).
  ParetoOnOffSource(sim::PortId num_ports, double load, double alpha,
                    double min_burst, std::int64_t max_burst, sim::Rng rng);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

  bool reseedable() const override { return true; }
  void Reseed(std::uint64_t seed) override;

  // E[dwell] of the capped discrete Pareto, computed exactly at
  // construction (the idle scaling uses it).
  double mean_burst() const { return mean_burst_; }

 private:
  struct PortState {
    bool on = false;
    std::int64_t remaining = 0;
    sim::PortId dest = 0;
    sim::Rng rng{0};
  };

  std::int64_t DrawBurst(sim::Rng& rng) const;
  void StartIdle(PortState& ps);

  // ckpt-skip: construction-time constant, identical on resume
  sim::PortId num_ports_;
  // ckpt-skip: construction-time constant, identical on resume
  double alpha_;
  // ckpt-skip: construction-time constant, identical on resume
  double min_burst_;
  // ckpt-skip: construction-time constant, identical on resume
  std::int64_t max_burst_;
  // ckpt-skip: derived constant (exact capped-Pareto mean)
  double mean_burst_ = 1.0;
  // ckpt-skip: derived constant (mean idle dwell for the target load)
  double mean_idle_ = 1.0;
  std::vector<PortState> ports_;
};

}  // namespace traffic
