// Sequencing and merging of traffic sources.
//
// The lower-bound adversaries build traffic in phases ("drive demultiplexor
// i into state sigma_i, wait for the planes to drain, then fire the
// concentration burst").  PhasedSource plays a list of (source, duration)
// stages back to back; MergedSource unions sources that address disjoint
// input ports.
#pragma once

#include <vector>

#include "sim/types.h"
#include "traffic/source.h"

namespace traffic {

class PhasedSource final : public TrafficSource {
 public:
  struct Phase {
    SourcePtr source;
    sim::Slot duration;  // slots this phase covers; must be > 0
  };

  explicit PhasedSource(std::vector<Phase> phases);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;
  bool Exhausted(sim::Slot t) const override;

  // Total duration of all phases.
  sim::Slot total_duration() const { return total_; }

 private:
  std::vector<Phase> phases_;
  std::size_t current_ = 0;
  sim::Slot phase_start_ = 0;
  sim::Slot total_ = 0;
};

// Union of sources; the caller guarantees they never emit on the same input
// in the same slot (checked).
class MergedSource final : public TrafficSource {
 public:
  explicit MergedSource(std::vector<SourcePtr> sources);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;
  bool Exhausted(sim::Slot t) const override;

 private:
  std::vector<SourcePtr> sources_;
};

// A source that emits nothing — used for quiet phases.
class SilentSource final : public TrafficSource {
 public:
  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override {
    (void)t;
    return {};
  }
  bool Exhausted(sim::Slot t) const override {
    (void)t;
    return true;
  }
};

}  // namespace traffic
