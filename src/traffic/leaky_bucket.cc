#include "traffic/leaky_bucket.h"

#include <algorithm>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace traffic {

TokenBucket::TokenBucket(std::int64_t burst, std::int64_t rate_num,
                         std::int64_t rate_den)
    : capacity_(burst + 1), rate_num_(rate_num), rate_den_(rate_den) {
  SIM_CHECK(burst >= 0 && rate_num > 0 && rate_den > 0,
            "bad token bucket parameters");
  tokens_scaled_ = capacity_ * rate_den_;  // start full
}

void TokenBucket::AdvanceTo(sim::Slot t) {
  SIM_CHECK(t >= now_, "token bucket time moved backwards");
  tokens_scaled_ =
      std::min(capacity_ * rate_den_,
               tokens_scaled_ + sim::SlotDifference(t, now_) * rate_num_);
  now_ = t;
}

bool TokenBucket::TryConsume(sim::Slot t) {
  AdvanceTo(t);
  if (tokens_scaled_ < rate_den_) return false;
  tokens_scaled_ -= rate_den_;
  return true;
}

std::int64_t TokenBucket::Available(sim::Slot t) {
  AdvanceTo(t);
  return tokens_scaled_ / rate_den_;
}

void TokenBucket::SaveState(ckpt::Writer& w) const {
  w.Marker("TBKT");
  w.I64(capacity_);
  w.I64(rate_num_);
  w.I64(rate_den_);
  w.I64(tokens_scaled_);
  w.I64(now_);
}

void TokenBucket::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("TBKT");
  SIM_CHECK(r.I64() == capacity_ && r.I64() == rate_num_ &&
                r.I64() == rate_den_,
            "token bucket checkpoint has different parameters");
  tokens_scaled_ = r.I64();
  now_ = r.I64();
  // AdvanceTo does arithmetic on both: a live bucket keeps its clock
  // non-negative and its tokens within [0, full], so anything else is
  // corruption that would overflow downstream.
  SIM_CHECK(now_ >= 0 && tokens_scaled_ >= 0 &&
                tokens_scaled_ <= capacity_ * rate_den_,
            "token bucket checkpoint state is out of range");
}

BurstinessMeter::BurstinessMeter(sim::PortId num_ports)
    : in_(static_cast<std::size_t>(num_ports)),
      out_(static_cast<std::size_t>(num_ports)) {
  SIM_CHECK(num_ports > 0, "need at least one port");
}

void BurstinessMeter::RecordPort(PortState& ps, sim::Slot t) {
  SIM_CHECK(t >= ps.last, "BurstinessMeter slots must be non-decreasing");
  // F(s) = count - s decreases while no cell arrives, so its minimum over
  // (last, t] is attained at s = t.
  ps.min_excess = std::min(ps.min_excess, sim::SlotDifference(ps.count, t));
  ++ps.count;
  const sim::Slot excess_now =
      sim::SlotDifference(ps.count, sim::SlotPlus(t, 1));
  ps.max_burst =
      std::max(ps.max_burst, sim::SlotDifference(excess_now, ps.min_excess));
  ps.last = t;
}

void BurstinessMeter::Record(sim::Slot t, sim::PortId input,
                             sim::PortId output) {
  RecordPort(in_.at(static_cast<std::size_t>(input)), t);
  RecordPort(out_.at(static_cast<std::size_t>(output)), t);
  ++cells_;
}

std::int64_t BurstinessMeter::OutputBurstiness() const {
  std::int64_t b = 0;
  for (const PortState& ps : out_) b = std::max(b, ps.max_burst);
  return b;
}

std::int64_t BurstinessMeter::InputBurstiness() const {
  std::int64_t b = 0;
  for (const PortState& ps : in_) b = std::max(b, ps.max_burst);
  return b;
}

std::int64_t BurstinessMeter::OutputBurstiness(sim::PortId j) const {
  return out_.at(static_cast<std::size_t>(j)).max_burst;
}

void BurstinessMeter::SaveState(ckpt::Writer& w) const {
  w.Marker("BMTR");
  w.Size(in_.size());
  for (const std::vector<PortState>* v : {&in_, &out_}) {
    for (const PortState& ps : *v) {
      w.I64(ps.count);
      w.I64(ps.min_excess);
      w.I64(ps.max_burst);
      w.I64(ps.last);
    }
  }
  w.U64(cells_);
}

void BurstinessMeter::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("BMTR");
  SIM_CHECK(r.Size() == in_.size(),
            "burstiness meter checkpoint has a different port count");
  for (std::vector<PortState>* v : {&in_, &out_}) {
    for (PortState& ps : *v) {
      ps.count = r.I64();
      ps.min_excess = r.I64();
      ps.max_burst = r.I64();
      ps.last = r.I64();
      // RecordPort subtracts these from one another: a live meter keeps
      // count/last/max_burst non-negative and min_excess within
      // [-(last+1), count], so reject corrupt extremes before they reach
      // the (overflow-prone) slot arithmetic.
      SIM_CHECK(ps.count >= 0 && ps.last >= 0 && ps.max_burst >= 0 &&
                    ps.max_burst <= ps.count && ps.min_excess <= ps.count &&
                    ps.min_excess >= -1 - ps.last,
                "burstiness meter checkpoint state is out of range");
    }
  }
  cells_ = r.U64();
}

PolicedSource::PolicedSource(SourcePtr inner, sim::PortId num_ports,
                             std::int64_t burst)
    : inner_(std::move(inner)) {
  SIM_CHECK(inner_ != nullptr, "PolicedSource needs an inner source");
  per_output_.reserve(static_cast<std::size_t>(num_ports));
  for (sim::PortId j = 0; j < num_ports; ++j) {
    per_output_.emplace_back(burst, /*rate_num=*/1, /*rate_den=*/1);
  }
}

void PolicedSource::SaveState(ckpt::Writer& w) const {
  w.Marker("POLS");
  inner_->SaveState(w);
  w.Size(per_output_.size());
  for (const TokenBucket& b : per_output_) b.SaveState(w);
  w.U64(dropped_);
  w.U64(passed_);
}

void PolicedSource::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("POLS");
  inner_->LoadState(r);
  SIM_CHECK(r.Size() == per_output_.size(),
            "policed source checkpoint has a different port count");
  for (TokenBucket& b : per_output_) b.LoadState(r);
  dropped_ = r.U64();
  passed_ = r.U64();
}

std::vector<sim::Arrival> PolicedSource::ArrivalsAt(sim::Slot t) {
  std::vector<sim::Arrival> offered = inner_->ArrivalsAt(t);
  std::vector<sim::Arrival> passed;
  passed.reserve(offered.size());
  for (const sim::Arrival& a : offered) {
    if (per_output_[static_cast<std::size_t>(a.output)].TryConsume(t)) {
      passed.push_back(a);
      ++passed_;
    } else {
      ++dropped_;
    }
  }
  return passed;
}

}  // namespace traffic
