// Trace transforms: pure functions from traces to traces, for composing
// adversarial constructions and post-processing recorded workloads.
//
// All transforms preserve the model invariant "at most one cell per input
// per slot" when their parameters allow it, and Validate() is re-run by
// callers that need certainty.
#pragma once

#include <vector>

#include "sim/types.h"
#include "traffic/trace.h"

namespace traffic {

// Shifts every entry by `offset` slots (offset may be negative as long as
// no slot becomes negative; checked).
Trace Shift(const Trace& trace, sim::Slot offset);

// Stretches time by an integer factor: slot s becomes s * factor.  Thins
// the traffic to 1/factor of the rate while preserving order — useful to
// turn a rate-R construction into a rate-R/factor one.
Trace Dilate(const Trace& trace, int factor);

// Applies a port permutation to inputs and outputs (both of size N).
// Relabeling ports must not change any delay property of a symmetric
// switch — the property tests use this as a metamorphic check.
Trace PermutePorts(const Trace& trace,
                   const std::vector<sim::PortId>& input_perm,
                   const std::vector<sim::PortId>& output_perm);

// Keeps only entries with slot < horizon.
Trace Truncate(const Trace& trace, sim::Slot horizon);

// Interleaves two traces; throws if they collide on (slot, input).
Trace Merge(const Trace& a, const Trace& b);

// Reverses the roles of inputs and outputs (entry (t, i, j) becomes
// (t, j, i)): the time-reversal-flavoured dual used to stress output-side
// bookkeeping with input-side patterns.
Trace Transpose(const Trace& trace);

}  // namespace traffic
