// Leaky-bucket machinery: token buckets, an (R, B)-admissibility meter, and
// a shaping decorator.
//
// Definition 3 of the paper: traffic is (R, B) leaky-bucket iff for every
// interval [t, t+tau) and every port, the number of cells sharing an input
// port or an output port is at most tau*R + B.  With the external rate
// normalised to R = 1 cell/slot, the per-input constraint is automatic
// (one arrival per slot) and the burstiness lives in the per-output
// counts.  BurstinessMeter measures the smallest B for which an observed
// sequence is (1, B) leaky-bucket, online and exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"
#include "traffic/source.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace traffic {

// Classic token bucket with integer tokens: capacity `burst + 1`, refill
// `rate_num / rate_den` tokens per slot (rationals keep it exact).  A cell
// conforms if at least one token is available at its slot.
class TokenBucket {
 public:
  TokenBucket(std::int64_t burst, std::int64_t rate_num, std::int64_t rate_den);

  // Advances to slot t (monotone) and tries to consume one token.
  bool TryConsume(sim::Slot t);
  // Tokens currently available at slot t (after advancing).
  std::int64_t Available(sim::Slot t);

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  void AdvanceTo(sim::Slot t);

  std::int64_t capacity_;        // burst + 1, in tokens
  std::int64_t rate_num_, rate_den_;
  std::int64_t tokens_scaled_;   // tokens * rate_den, to stay integral
  sim::Slot now_ = 0;
};

// Measures, per output port (and per input port), the exact minimal
// burstiness B such that the observed arrivals are (1, B) leaky-bucket.
//
// For a counting process C(t) (cells destined to j that arrived in [0,t)),
// the minimal B is max over t1 <= t2 of C(t2) - C(t1) - (t2 - t1), i.e. the
// maximum rise of X(t) = C(t) - t above its running minimum.  That is
// computed online in O(1) per cell.
class BurstinessMeter {
 public:
  explicit BurstinessMeter(sim::PortId num_ports);

  // Records one arrival.  Slots must be non-decreasing.
  void Record(sim::Slot t, sim::PortId input, sim::PortId output);

  // Minimal B over output ports / input ports for the traffic seen so far.
  std::int64_t OutputBurstiness() const;
  std::int64_t InputBurstiness() const;
  std::int64_t OutputBurstiness(sim::PortId j) const;

  // True iff the observed traffic is (1, B) leaky-bucket.
  bool IsAdmissible(std::int64_t burst) const {
    return OutputBurstiness() <= burst && InputBurstiness() <= burst;
  }

  std::uint64_t cells() const { return cells_; }

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  struct PortState {
    std::int64_t count = 0;        // C so far
    std::int64_t min_excess = 0;   // running min of C(t) - t (at slot starts)
    std::int64_t max_burst = 0;    // result accumulator
    sim::Slot last = 0;
  };
  void RecordPort(PortState& ps, sim::Slot t);

  std::vector<PortState> in_, out_;
  std::uint64_t cells_ = 0;
};

// Decorator that shapes an arbitrary source into strictly (1, B)
// leaky-bucket traffic by *dropping* non-conforming cells (a policer).
// Used to turn stochastic sources into provably admissible workloads for
// experiments that require Definition 3 to hold exactly.
class PolicedSource final : public TrafficSource {
 public:
  PolicedSource(SourcePtr inner, sim::PortId num_ports, std::int64_t burst);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;
  bool Exhausted(sim::Slot t) const override { return inner_->Exhausted(t); }

  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t passed() const { return passed_; }

  // Checkpointable iff the wrapped source is.
  bool checkpointable() const override { return inner_->checkpointable(); }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  SourcePtr inner_;
  std::vector<TokenBucket> per_output_;
  std::uint64_t dropped_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace traffic
