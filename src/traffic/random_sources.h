// Stochastic workload generators for the engineering experiments
// (delay-vs-load curves, scaling studies).  All draw from a seeded
// sim::Rng, one independent stream per input port, so results are exactly
// reproducible and insensitive to port count changes.
#pragma once

#include <vector>

#include "sim/rng.h"
#include "sim/types.h"
#include "traffic/source.h"

namespace traffic {

// Destination-selection patterns shared by the generators.
enum class Pattern {
  kUniform,    // destination uniform over all outputs
  kDiagonal,   // input i sends to output (i + t) mod N (conflict-free)
  kHotspot,    // a fraction of cells aim at output 0, rest uniform
  kTranspose,  // input i always sends to output (i + N/2) mod N
};

// Bernoulli i.i.d. traffic: in each slot each input emits a cell with
// probability `load`, destination chosen by `pattern`.  Uniform Bernoulli
// traffic at load < 1 is admissible in expectation; wrap in PolicedSource
// when the experiment needs a hard (1, B) envelope.
class BernoulliSource final : public TrafficSource {
 public:
  BernoulliSource(sim::PortId num_ports, double load, Pattern pattern,
                  sim::Rng rng, double hotspot_fraction = 0.5);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

  bool reseedable() const override { return true; }
  void Reseed(std::uint64_t seed) override;

 private:
  sim::PortId PickOutput(sim::PortId input, sim::Slot t, sim::Rng& rng);

  // ckpt-skip: construction-time constant, identical on resume
  sim::PortId num_ports_;
  // ckpt-skip: construction-time constant, identical on resume
  double load_;
  // ckpt-skip: construction-time constant, identical on resume
  Pattern pattern_;
  // ckpt-skip: construction-time constant, identical on resume
  double hotspot_fraction_;
  std::vector<sim::Rng> per_input_rng_;
};

// Two-state Markov-modulated on-off source per input: in the ON state the
// input emits one cell per slot toward a destination held for the whole
// burst; OFF emits nothing.  Mean burst length = burst_len, offered load =
// load.  This is the classic bursty-arrivals model used to stress
// load-balancers; it produces large per-output bursts while keeping the
// long-run rate admissible.
class OnOffSource final : public TrafficSource {
 public:
  OnOffSource(sim::PortId num_ports, double load, double mean_burst_len,
              sim::Rng rng);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

  bool reseedable() const override { return true; }
  void Reseed(std::uint64_t seed) override;

 private:
  struct PortState {
    bool on = false;
    sim::PortId dest = 0;
    sim::Rng rng{0};
  };

  // ckpt-skip: construction-time constant, identical on resume
  sim::PortId num_ports_;
  // ckpt-skip: construction-time constant, identical on resume
  double p_on_;   // OFF -> ON transition probability
  // ckpt-skip: construction-time constant, identical on resume
  double p_off_;  // ON -> OFF transition probability
  std::vector<PortState> ports_;
};

// Rectangular rate-matrix traffic for topology scenarios (topo/): entry
// (i, j) is the load offered from external ingress i toward external
// egress j, in cells per slot.  Each slot, ingress i emits a cell with
// probability sum_j rate[i][j] (each row sum must be <= 1, the external
// line rate) and picks the destination proportionally to its row — the
// standard admissible-traffic-matrix workload of multi-stage fabric
// studies.  Note the port spaces may differ: arrivals carry ingress
// indices on `input` and egress indices on `output`.
class RateMatrixSource final : public TrafficSource {
 public:
  explicit RateMatrixSource(std::vector<std::vector<double>> rates,
                            sim::Rng rng);

  std::vector<sim::Arrival> ArrivalsAt(sim::Slot t) override;

  bool checkpointable() const override { return true; }
  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

  bool reseedable() const override { return true; }
  void Reseed(std::uint64_t seed) override;

  sim::PortId num_ingress() const {
    return static_cast<sim::PortId>(rates_.size());
  }
  sim::PortId num_egress() const {
    return rates_.empty() ? 0
                          : static_cast<sim::PortId>(rates_.front().size());
  }

 private:
  // ckpt-skip: construction-time constant, identical on resume
  std::vector<std::vector<double>> rates_;
  // ckpt-skip: derived constant (per-row total offered load)
  std::vector<double> row_sum_;
  std::vector<sim::Rng> per_input_rng_;
};

}  // namespace traffic
