#include "traffic/aqt.h"

#include <algorithm>

#include "sim/error.h"

namespace traffic {

AqtValidator::AqtValidator(sim::PortId num_ports, int window,
                           std::int64_t rho_num, std::int64_t rho_den)
    : window_(window),
      in_(static_cast<std::size_t>(num_ports)),
      out_(static_cast<std::size_t>(num_ports)) {
  SIM_CHECK(num_ports > 0, "need ports");
  SIM_CHECK(window >= 1, "window must be >= 1");
  SIM_CHECK(rho_num > 0 && rho_den > 0 && rho_num <= rho_den,
            "rho must be a rational in (0, 1]");
  budget_ = (rho_num * window + rho_den - 1) / rho_den;  // ceil(rho * w)
}

void AqtValidator::RecordPort(PortWindow& pw, sim::Slot t) {
  while (!pw.recent.empty() &&
         pw.recent.front() <= sim::SlotDifference(t, window_)) {
    pw.recent.pop_front();
  }
  pw.recent.push_back(t);
  const auto count = static_cast<std::int64_t>(pw.recent.size());
  pw.worst = std::max(pw.worst, count);
  if (count > budget_) ++violations_;
}

void AqtValidator::Record(sim::Slot t, sim::PortId input,
                          sim::PortId output) {
  RecordPort(in_.at(static_cast<std::size_t>(input)), t);
  RecordPort(out_.at(static_cast<std::size_t>(output)), t);
}

double AqtValidator::peak_utilization() const {
  std::int64_t worst = 0;
  for (const auto& pw : in_) worst = std::max(worst, pw.worst);
  for (const auto& pw : out_) worst = std::max(worst, pw.worst);
  return static_cast<double>(worst) / static_cast<double>(budget_);
}

}  // namespace traffic
