// Adversarial Queueing Theory (AQT) injection model, after Borodin et al.
// and Andrews et al. (the paper's discussion: "One can also use the
// metaphor of an adversary controlling the injection of cells ... Two
// models were suggested to restrict the injected flows from flooding the
// network; our flows satisfy these stronger restrictions as well").
//
// A (rho, w)-adversary may inject, in any window of w consecutive slots,
// at most rho * w cells requiring any single link (here: any single input
// or output port).  This checker verifies an arrival sequence against that
// window constraint exactly, so tests can certify that the lower-bound
// traffics satisfy the stronger AQT restriction too (a (1, B) leaky-bucket
// flow is (1, w)-AQT-admissible for every w >= B, and a B = 0 flow for
// every w >= 1).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/types.h"

namespace traffic {

class AqtValidator {
 public:
  // rho in (0, 1] as a rational rho_num/rho_den; window w >= 1 slots.
  AqtValidator(sim::PortId num_ports, int window, std::int64_t rho_num,
               std::int64_t rho_den);

  // Records one arrival; slots must be non-decreasing.
  void Record(sim::Slot t, sim::PortId input, sim::PortId output);

  // True iff every w-window so far satisfied count <= ceil(rho * w) on
  // every port.
  bool admissible() const { return violations_ == 0; }
  std::uint64_t violations() const { return violations_; }

  // Worst window load observed, as a fraction of the budget (<= 1 when
  // admissible).
  double peak_utilization() const;

 private:
  struct PortWindow {
    std::deque<sim::Slot> recent;  // arrival slots within the last window
    std::int64_t worst = 0;        // max cells ever seen in one window
  };
  void RecordPort(PortWindow& pw, sim::Slot t);

  int window_;
  std::int64_t budget_;  // ceil(rho * w)
  std::vector<PortWindow> in_, out_;
  std::uint64_t violations_ = 0;
};

}  // namespace traffic
