// Virtual output queues: the input-side buffering of a combined
// input-output-queued (CIOQ) crossbar switch.
//
// Related-work substrate: the paper contrasts the PPS with crossbar-based
// designs — Chuang, Goel, McKeown & Prabhakar show a CIOQ switch needs
// speedup 2 - 1/N to mimic an output-queued switch, and Tamir & Chi's
// arbitrated crossbars are the prime example of u-RT demultiplexing.  A
// cell arriving at input i for output j waits in VOQ(i, j); per-flow FIFO
// order is automatic because each flow lives in exactly one VOQ.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/cell.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace cioq {

class VoqBank {
 public:
  VoqBank(sim::PortId num_ports);

  void Push(const sim::Cell& cell);
  // Head cell of VOQ(i, j); nullptr when empty.
  const sim::Cell* Head(sim::PortId input, sim::PortId output) const;
  sim::Cell Pop(sim::PortId input, sim::PortId output);

  std::int64_t Backlog(sim::PortId input, sim::PortId output) const;
  std::int64_t InputBacklog(sim::PortId input) const;
  std::int64_t TotalBacklog() const;
  bool Empty() const { return total_ == 0; }

  sim::PortId num_ports() const { return num_ports_; }

  void Reset();

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  std::size_t Index(sim::PortId input, sim::PortId output) const {
    return static_cast<std::size_t>(input) *
               static_cast<std::size_t>(num_ports_) +
           static_cast<std::size_t>(output);
  }

  sim::PortId num_ports_;
  std::vector<std::deque<sim::Cell>> queues_;
  // ckpt-skip: recomputed from the restored queue sizes in LoadState
  std::int64_t total_ = 0;
};

// One crossbar matching: matched[i] = output for input i, or kNoPort.
using Matching = std::vector<sim::PortId>;

// Scheduler interface: compute a matching over the nonempty VOQs.  Called
// once per scheduling phase (S phases per slot at speedup S).
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual void Reset(sim::PortId num_ports) = 0;
  virtual Matching Schedule(const VoqBank& voqs) = 0;
  virtual std::string name() const = 0;

  // Exact-state checkpointing: the default writes/expects a bare marker —
  // right for stateless schedulers; pointer-carrying ones override both.
  virtual void SaveState(ckpt::Writer& w) const;
  virtual void LoadState(ckpt::Reader& r);
};

// Audits that a matching is feasible (each input and output used at most
// once, every matched VOQ nonempty) and maximal (no unmatched input-output
// pair with a nonempty VOQ remains).  Returns false on any violation.
bool IsFeasibleMatching(const VoqBank& voqs, const Matching& matching);
bool IsMaximalMatching(const VoqBank& voqs, const Matching& matching);

}  // namespace cioq
