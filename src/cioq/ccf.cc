#include "cioq/ccf.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "sim/error.h"

namespace cioq {
namespace {

struct Candidate {
  sim::Slot urgency;  // shadow departure slot (Cell::tag)
  sim::CellId id;     // FCFS tie-break
  sim::PortId input;

  bool MoreUrgentThan(const Candidate& other) const {
    return urgency != other.urgency ? urgency < other.urgency
                                    : id < other.id;
  }
};

}  // namespace

Matching CcfScheduler::Schedule(const VoqBank& voqs) {
  const sim::PortId n = num_ports_;
  // Proposal lists: per output, candidate inputs sorted by urgency.
  std::vector<std::vector<Candidate>> prefs(static_cast<std::size_t>(n));
  for (sim::PortId j = 0; j < n; ++j) {
    for (sim::PortId i = 0; i < n; ++i) {
      const sim::Cell* head = voqs.Head(i, j);
      if (head == nullptr) continue;
      SIM_CHECK(head->tag != sim::kNoSlot,
                "CCF requires tag-stamped cells (enable stamping in "
                "CioqSwitch)");
      prefs[static_cast<std::size_t>(j)].push_back(
          {head->tag, head->id, i});
    }
    std::sort(prefs[static_cast<std::size_t>(j)].begin(),
              prefs[static_cast<std::size_t>(j)].end(),
              [](const Candidate& a, const Candidate& b) {
                return a.MoreUrgentThan(b);
              });
  }

  // Gale-Shapley, outputs proposing.  held[i] = output whose proposal
  // input i currently holds, and the urgency it came with.
  std::vector<sim::PortId> held_output(static_cast<std::size_t>(n),
                                       sim::kNoPort);
  std::vector<Candidate> held_candidate(static_cast<std::size_t>(n));
  std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
  std::deque<sim::PortId> free_outputs;
  for (sim::PortId j = 0; j < n; ++j) {
    if (!prefs[static_cast<std::size_t>(j)].empty()) free_outputs.push_back(j);
  }
  while (!free_outputs.empty()) {
    const sim::PortId j = free_outputs.front();
    free_outputs.pop_front();
    auto& list = prefs[static_cast<std::size_t>(j)];
    auto& pos = cursor[static_cast<std::size_t>(j)];
    bool placed = false;
    while (pos < list.size() && !placed) {
      const Candidate cand = list[pos++];
      const auto idx = static_cast<std::size_t>(cand.input);
      if (held_output[idx] == sim::kNoPort) {
        held_output[idx] = j;
        held_candidate[idx] = cand;
        placed = true;
      } else if (cand.MoreUrgentThan(held_candidate[idx])) {
        // The input trades up; the displaced output resumes proposing.
        free_outputs.push_back(held_output[idx]);
        held_output[idx] = j;
        held_candidate[idx] = cand;
        placed = true;
      }
    }
    // If the list is exhausted the output stays unmatched this phase.
  }

  Matching matching(static_cast<std::size_t>(n), sim::kNoPort);
  for (sim::PortId i = 0; i < n; ++i) {
    const sim::PortId j = held_output[static_cast<std::size_t>(i)];
    if (j != sim::kNoPort) matching[static_cast<std::size_t>(i)] = j;
  }
  return matching;
}

}  // namespace cioq
