#include "cioq/islip.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace cioq {

void IslipScheduler::Reset(sim::PortId num_ports) {
  SIM_CHECK(iterations_ >= 1, "need at least one iSLIP iteration");
  num_ports_ = num_ports;
  grant_ptr_.assign(static_cast<std::size_t>(num_ports), 0);
  accept_ptr_.assign(static_cast<std::size_t>(num_ports), 0);
}

Matching IslipScheduler::Schedule(const VoqBank& voqs) {
  const sim::PortId n = num_ports_;
  Matching matching(static_cast<std::size_t>(n), sim::kNoPort);
  std::vector<bool> input_matched(static_cast<std::size_t>(n), false);
  std::vector<bool> output_matched(static_cast<std::size_t>(n), false);

  for (int iter = 0; iter < iterations_; ++iter) {
    // Grant phase: each unmatched output picks one requesting input.
    std::vector<sim::PortId> grant_to(static_cast<std::size_t>(n),
                                      sim::kNoPort);
    for (sim::PortId j = 0; j < n; ++j) {
      if (output_matched[static_cast<std::size_t>(j)]) continue;
      const int start = grant_ptr_[static_cast<std::size_t>(j)];
      for (int step = 0; step < n; ++step) {
        const auto i = static_cast<sim::PortId>((start + step) % n);
        if (input_matched[static_cast<std::size_t>(i)]) continue;
        if (voqs.Head(i, j) == nullptr) continue;
        grant_to[static_cast<std::size_t>(j)] = i;
        break;
      }
    }
    // Accept phase: each input with grants accepts the output next at or
    // after its accept pointer.
    bool any = false;
    for (sim::PortId i = 0; i < n; ++i) {
      if (input_matched[static_cast<std::size_t>(i)]) continue;
      const int start = accept_ptr_[static_cast<std::size_t>(i)];
      for (int step = 0; step < n; ++step) {
        const auto j = static_cast<sim::PortId>((start + step) % n);
        if (grant_to[static_cast<std::size_t>(j)] != i) continue;
        matching[static_cast<std::size_t>(i)] = j;
        input_matched[static_cast<std::size_t>(i)] = true;
        output_matched[static_cast<std::size_t>(j)] = true;
        any = true;
        if (iter == 0) {
          // Pointer updates only on first-iteration acceptance — the
          // desynchronisation rule.
          accept_ptr_[static_cast<std::size_t>(i)] =
              (static_cast<int>(j) + 1) % n;
          grant_ptr_[static_cast<std::size_t>(j)] =
              (static_cast<int>(i) + 1) % n;
        }
        break;
      }
    }
    if (!any) break;
  }
  return matching;
}

void IslipScheduler::SaveState(ckpt::Writer& w) const {
  w.Marker("ISLP");
  w.I32(iterations_);
  w.I32(num_ports_);
  for (int p : grant_ptr_) w.I32(p);
  for (int p : accept_ptr_) w.I32(p);
}

void IslipScheduler::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("ISLP");
  SIM_CHECK(r.I32() == iterations_,
            "iSLIP checkpoint has a different iteration count");
  SIM_CHECK(r.I32() == num_ports_,
            "iSLIP checkpoint has a different port count");
  for (int& p : grant_ptr_) {
    p = r.I32();
    SIM_CHECK(p >= 0 && p < num_ports_, "iSLIP grant pointer out of range");
  }
  for (int& p : accept_ptr_) {
    p = r.I32();
    SIM_CHECK(p >= 0 && p < num_ports_, "iSLIP accept pointer out of range");
  }
}

}  // namespace cioq
