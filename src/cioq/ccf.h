// Critical-cells-first (CCF) stable matching, after Chuang, Goel, McKeown
// & Prabhakar, "Matching output queueing with a combined input output
// queued switch": with speedup 2 (their bound: 2 - 1/N) a CIOQ switch can
// exactly mimic an output-queued switch.
//
// Each cell is stamped at arrival with its shadow FCFS-OQ departure slot
// (Cell::tag, maintained by CioqSwitch when tag stamping is enabled); the
// scheduler computes a stable matching by Gale-Shapley with outputs
// proposing to inputs in order of increasing urgency (tag, id), and inputs
// accepting the most urgent proposal.  Stability means: no unmatched
// (input, output) pair exists where both would prefer each other — which
// is exactly the property the mimicking proof needs so that a critical
// cell is never blocked by two non-critical transfers.
#pragma once

#include "cioq/voq.h"

namespace cioq {

class CcfScheduler final : public Scheduler {
 public:
  void Reset(sim::PortId num_ports) override { num_ports_ = num_ports; }
  Matching Schedule(const VoqBank& voqs) override;
  std::string name() const override { return "ccf"; }

 private:
  sim::PortId num_ports_ = 0;
};

}  // namespace cioq
