// Combined input-output-queued (CIOQ) crossbar switch with integer
// speedup: the architecture the paper's related work measures the PPS
// against (Chuang et al.: speedup 2 - 1/N suffices to mimic an OQ switch;
// Krishna et al., Prabhakar & McKeown on work-conserving speedups).
//
// Slot protocol (same Inject/Advance surface as the PPS fabrics, so
// core::RunRelative works unchanged):
//   Inject(cell, t)   cell enters VOQ(input, output);
//   Advance(t)        `speedup` scheduling phases: each computes a
//                     crossbar matching and transfers the matched head
//                     cells to the output queues; then every output emits
//                     at most one cell.
// A cell can cross arrival -> VOQ -> crossbar -> output -> wire within one
// slot, matching the zero-propagation accounting used for the PPS.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cioq/voq.h"
#include "sim/cell.h"
#include "sim/types.h"

namespace cioq {

class CioqSwitch {
 public:
  // speedup >= 1: scheduling phases per slot.
  CioqSwitch(sim::PortId num_ports, int speedup,
             std::unique_ptr<Scheduler> scheduler);

  void Inject(sim::Cell cell, sim::Slot t);
  std::vector<sim::Cell> Advance(sim::Slot t);

  bool Drained() const;
  std::int64_t TotalBacklog() const;

  // Matching audits accumulated over the run (tests assert zero).
  std::uint64_t infeasible_matchings() const { return infeasible_; }
  std::uint64_t nonmaximal_matchings() const { return nonmaximal_; }

  // Harness compatibility (the PPS fabrics expose the same counter).
  std::uint64_t resequencing_stalls() const { return 0; }

  struct Config {
    sim::PortId num_ports;
  };
  const Config& config() const { return config_; }

  void Reset();

 private:
  Config config_;
  int speedup_;
  std::unique_ptr<Scheduler> scheduler_;
  VoqBank voqs_;
  std::vector<std::deque<sim::Cell>> output_queues_;
  // Shadow FCFS-OQ departure per output; every arriving cell is stamped
  // with its value (Cell::tag), which urgency-based schedulers (CCF) use.
  std::vector<sim::Slot> next_dep_;
  std::uint64_t infeasible_ = 0;
  std::uint64_t nonmaximal_ = 0;
};

}  // namespace cioq
