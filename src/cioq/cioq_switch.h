// Combined input-output-queued (CIOQ) crossbar switch with integer
// speedup: the architecture the paper's related work measures the PPS
// against (Chuang et al.: speedup 2 - 1/N suffices to mimic an OQ switch;
// Krishna et al., Prabhakar & McKeown on work-conserving speedups).
//
// Slot protocol (same Inject/Advance surface as the PPS fabrics, so
// core::RunRelative works unchanged):
//   Inject(cell, t)   cell enters VOQ(input, output);
//   Advance(t)        `speedup` scheduling phases: each computes a
//                     crossbar matching and transfers the matched head
//                     cells to the output queues; then every output emits
//                     at most one cell.
// A cell can cross arrival -> VOQ -> crossbar -> output -> wire within one
// slot, matching the zero-propagation accounting used for the PPS.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cioq/voq.h"
#include "fault/loss.h"
#include "sim/cell.h"
#include "sim/types.h"

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace cioq {

class CioqSwitch {
 public:
  // speedup >= 1: scheduling phases per slot.
  CioqSwitch(sim::PortId num_ports, int speedup,
             std::unique_ptr<Scheduler> scheduler);

  void Inject(sim::Cell cell, sim::Slot t);
  // Returns this slot's departures; the reference points at internal
  // scratch reused every slot (the PPS fabrics' contract — valid until
  // the next Advance call, copy if needed longer).
  const std::vector<sim::Cell>& Advance(sim::Slot t);

  bool Drained() const;
  std::int64_t TotalBacklog() const;

  // Matching audits accumulated over the run (tests assert zero).
  std::uint64_t infeasible_matchings() const { return infeasible_; }
  std::uint64_t nonmaximal_matchings() const { return nonmaximal_; }

  // Harness compatibility (the PPS fabrics expose the same counter).
  std::uint64_t resequencing_stalls() const { return 0; }

  // Explicit no-op fault surface: a crossbar has no planes to fail, so a
  // fault::FaultSchedule driven through a CIOQ run applies cleanly with no
  // effect instead of needing harness special-casing.  The loss ledger is
  // identically empty — the crossbar is lossless.
  void FailPlane(sim::PlaneId /*k*/, sim::Slot /*at*/) {}
  void RecoverPlane(sim::PlaneId /*k*/, sim::Slot /*at*/) {}
  fault::LossBreakdown Losses() const { return {}; }

  struct Config {
    sim::PortId num_ports;
  };
  const Config& config() const { return config_; }

  void Reset();

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  Config config_;
  int speedup_;
  std::unique_ptr<Scheduler> scheduler_;
  VoqBank voqs_;
  std::vector<std::deque<sim::Cell>> output_queues_;
  // Shadow FCFS-OQ departure per output; every arriving cell is stamped
  // with its value (Cell::tag), which urgency-based schedulers (CCF) use.
  std::vector<sim::Slot> next_dep_;
  // Per-slot scratch reused across Advance calls (cleared, never freed).
  // ckpt-skip: cleared at the top of every Advance; never live across slots
  std::vector<sim::Cell> departed_scratch_;
  std::uint64_t infeasible_ = 0;
  std::uint64_t nonmaximal_ = 0;
};

}  // namespace cioq
