#include "cioq/qps.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace cioq {

void QpsScheduler::Reset(sim::PortId num_ports) {
  SIM_CHECK(rounds_ >= 1, "need at least one QPS round");
  num_ports_ = num_ports;
  rngs_.clear();
  rngs_.reserve(static_cast<std::size_t>(num_ports));
  sim::Rng base(seed_);
  for (sim::PortId i = 0; i < num_ports; ++i) {
    rngs_.push_back(base.Fork(static_cast<std::uint64_t>(i)));
  }
}

Matching QpsScheduler::Schedule(const VoqBank& voqs) {
  const sim::PortId n = num_ports_;
  Matching matching(static_cast<std::size_t>(n), sim::kNoPort);
  std::vector<bool> input_matched(static_cast<std::size_t>(n), false);
  std::vector<bool> output_matched(static_cast<std::size_t>(n), false);

  for (int round = 0; round < rounds_; ++round) {
    // Propose phase: queue-proportional sampling.  Input i draws a point
    // uniform in [0, InputBacklog(i)) and walks its VOQ lengths to find the
    // output that point lands in — VOQ(i, j) is proposed with probability
    // len(i,j) / InputBacklog(i).
    std::vector<sim::PortId> proposal(static_cast<std::size_t>(n),
                                      sim::kNoPort);
    bool any_proposal = false;
    for (sim::PortId i = 0; i < n; ++i) {
      if (input_matched[static_cast<std::size_t>(i)]) continue;
      const std::int64_t backlog = voqs.InputBacklog(i);
      if (backlog == 0) continue;
      std::uint64_t point =
          rngs_[static_cast<std::size_t>(i)].UniformInt(
              static_cast<std::uint64_t>(backlog));
      for (sim::PortId j = 0; j < n; ++j) {
        const auto len = static_cast<std::uint64_t>(voqs.Backlog(i, j));
        if (point < len) {
          if (!output_matched[static_cast<std::size_t>(j)]) {
            proposal[static_cast<std::size_t>(i)] = j;
            any_proposal = true;
          }
          break;
        }
        point -= len;
      }
    }
    if (!any_proposal) break;

    // Accept phase: each output takes its longest-VOQ proposer.
    bool any_match = false;
    for (sim::PortId j = 0; j < n; ++j) {
      if (output_matched[static_cast<std::size_t>(j)]) continue;
      sim::PortId best = sim::kNoPort;
      std::int64_t best_len = 0;
      for (sim::PortId i = 0; i < n; ++i) {
        if (proposal[static_cast<std::size_t>(i)] != j) continue;
        const std::int64_t len = voqs.Backlog(i, j);
        if (len > best_len) {
          best_len = len;
          best = i;
        }
      }
      if (best == sim::kNoPort) continue;
      matching[static_cast<std::size_t>(best)] = j;
      input_matched[static_cast<std::size_t>(best)] = true;
      output_matched[static_cast<std::size_t>(j)] = true;
      any_match = true;
    }
    if (!any_match) break;
  }
  return matching;
}

void QpsScheduler::SaveState(ckpt::Writer& w) const {
  w.Marker("QPS0");
  w.I32(rounds_);
  w.U64(seed_);
  w.I32(num_ports_);
  for (const sim::Rng& rng : rngs_) ckpt::SaveRng(w, rng);
}

void QpsScheduler::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("QPS0");
  SIM_CHECK(r.I32() == rounds_, "QPS checkpoint has a different round count");
  SIM_CHECK(r.U64() == seed_, "QPS checkpoint was taken under another seed");
  SIM_CHECK(r.I32() == num_ports_,
            "QPS checkpoint has a different port count");
  for (sim::Rng& rng : rngs_) ckpt::LoadRng(r, rng);
}

}  // namespace cioq
