#include "cioq/cioq_switch.h"

#include <algorithm>

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace cioq {

CioqSwitch::CioqSwitch(sim::PortId num_ports, int speedup,
                       std::unique_ptr<Scheduler> scheduler)
    : config_{num_ports},
      speedup_(speedup),
      scheduler_(std::move(scheduler)),
      voqs_(num_ports) {
  SIM_CHECK(speedup >= 1, "speedup must be >= 1");
  SIM_CHECK(scheduler_ != nullptr, "need a scheduler");
  scheduler_->Reset(num_ports);
  output_queues_.resize(static_cast<std::size_t>(num_ports));
  next_dep_.assign(static_cast<std::size_t>(num_ports), 0);
}

void CioqSwitch::Inject(sim::Cell cell, sim::Slot t) {
  if (cell.arrival == sim::kNoSlot) cell.arrival = t;
  SIM_CHECK(cell.arrival == t, "arrival stamp mismatch on " << cell);
  // Stamp the shadow FCFS departure (injection order = FCFS tie-break).
  sim::Slot& next = next_dep_[static_cast<std::size_t>(cell.output)];
  cell.tag = std::max(t, next);
  next = sim::SlotPlus(cell.tag, 1);
  voqs_.Push(cell);
}

const std::vector<sim::Cell>& CioqSwitch::Advance(sim::Slot t) {
  for (int phase = 0; phase < speedup_; ++phase) {
    if (voqs_.Empty()) break;
    const Matching matching = scheduler_->Schedule(voqs_);
    if (!IsFeasibleMatching(voqs_, matching)) {
      ++infeasible_;
      continue;
    }
    if (!IsMaximalMatching(voqs_, matching)) ++nonmaximal_;
    for (sim::PortId i = 0; i < config_.num_ports; ++i) {
      const sim::PortId j = matching[static_cast<std::size_t>(i)];
      if (j == sim::kNoPort) continue;
      sim::Cell cell = voqs_.Pop(i, j);
      cell.reached_output = t;
      // Output queues emit in shadow-departure order (tags increase within
      // a flow, so per-flow order is automatic): sorted insert by
      // (tag, id).
      auto& q = output_queues_[static_cast<std::size_t>(j)];
      auto it = q.end();
      while (it != q.begin()) {
        auto prev = std::prev(it);
        if (prev->tag < cell.tag ||
            (prev->tag == cell.tag && prev->id < cell.id)) {
          break;
        }
        it = prev;
      }
      q.insert(it, cell);
    }
  }
  departed_scratch_.clear();
  for (auto& q : output_queues_) {
    if (q.empty()) continue;
    sim::Cell cell = q.front();
    q.pop_front();
    cell.departure = t;
    departed_scratch_.push_back(cell);
  }
  return departed_scratch_;
}

bool CioqSwitch::Drained() const { return TotalBacklog() == 0; }

std::int64_t CioqSwitch::TotalBacklog() const {
  std::int64_t total = voqs_.TotalBacklog();
  for (const auto& q : output_queues_) {
    total += static_cast<std::int64_t>(q.size());
  }
  return total;
}

void CioqSwitch::SaveState(ckpt::Writer& w) const {
  w.Marker("CIOQ");
  w.I32(config_.num_ports);
  w.I32(speedup_);
  scheduler_->SaveState(w);
  voqs_.SaveState(w);
  for (const auto& q : output_queues_) {
    w.Size(q.size());
    for (const sim::Cell& cell : q) ckpt::SaveCell(w, cell);
  }
  for (sim::Slot s : next_dep_) w.I64(s);
  w.U64(infeasible_);
  w.U64(nonmaximal_);
}

void CioqSwitch::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("CIOQ");
  SIM_CHECK(r.I32() == config_.num_ports,
            "CIOQ checkpoint has a different port count");
  SIM_CHECK(r.I32() == speedup_, "CIOQ checkpoint has a different speedup");
  scheduler_->LoadState(r);
  voqs_.LoadState(r);
  for (auto& q : output_queues_) {
    q.clear();
    const std::size_t n = r.Count();
    for (std::size_t c = 0; c < n; ++c) {
      q.push_back(ckpt::LoadCell(r, config_.num_ports));
    }
  }
  for (sim::Slot& s : next_dep_) s = r.I64();
  infeasible_ = r.U64();
  nonmaximal_ = r.U64();
}

void CioqSwitch::Reset() {
  voqs_.Reset();
  for (auto& q : output_queues_) q.clear();
  scheduler_->Reset(config_.num_ports);
  std::fill(next_dep_.begin(), next_dep_.end(), 0);
  infeasible_ = 0;
  nonmaximal_ = 0;
}

}  // namespace cioq
