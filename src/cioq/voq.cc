#include "cioq/voq.h"

#include "ckpt/serializer.h"
#include "sim/error.h"

namespace cioq {

VoqBank::VoqBank(sim::PortId num_ports) : num_ports_(num_ports) {
  SIM_CHECK(num_ports > 0, "need ports");
  queues_.resize(static_cast<std::size_t>(num_ports) *
                 static_cast<std::size_t>(num_ports));
}

void VoqBank::Push(const sim::Cell& cell) {
  SIM_CHECK(cell.input >= 0 && cell.input < num_ports_ && cell.output >= 0 &&
                cell.output < num_ports_,
            "bad ports on " << cell);
  queues_[Index(cell.input, cell.output)].push_back(cell);
  ++total_;
}

const sim::Cell* VoqBank::Head(sim::PortId input, sim::PortId output) const {
  const auto& q = queues_[Index(input, output)];
  return q.empty() ? nullptr : &q.front();
}

sim::Cell VoqBank::Pop(sim::PortId input, sim::PortId output) {
  auto& q = queues_[Index(input, output)];
  SIM_CHECK(!q.empty(), "pop from empty VOQ(" << input << "," << output
                                              << ")");
  sim::Cell cell = q.front();
  q.pop_front();
  --total_;
  return cell;
}

std::int64_t VoqBank::Backlog(sim::PortId input, sim::PortId output) const {
  return static_cast<std::int64_t>(queues_[Index(input, output)].size());
}

std::int64_t VoqBank::InputBacklog(sim::PortId input) const {
  std::int64_t total = 0;
  for (sim::PortId j = 0; j < num_ports_; ++j) total += Backlog(input, j);
  return total;
}

std::int64_t VoqBank::TotalBacklog() const { return total_; }

void VoqBank::Reset() {
  for (auto& q : queues_) q.clear();
  total_ = 0;
}

void VoqBank::SaveState(ckpt::Writer& w) const {
  w.Marker("VOQB");
  w.I32(num_ports_);
  for (const auto& q : queues_) {
    w.Size(q.size());
    for (const sim::Cell& cell : q) ckpt::SaveCell(w, cell);
  }
}

void VoqBank::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("VOQB");
  SIM_CHECK(r.I32() == num_ports_,
            "VOQ bank checkpoint has a different port count");
  total_ = 0;
  for (auto& q : queues_) {
    q.clear();
    const std::size_t n = r.Count();
    for (std::size_t c = 0; c < n; ++c) {
      q.push_back(ckpt::LoadCell(r, num_ports_));
    }
    total_ += static_cast<std::int64_t>(n);
  }
}

// Stateless schedulers (oldest-first, CCF) inherit these defaults; the
// marker still lands in the stream so a mismatched scheduler is caught.
void Scheduler::SaveState(ckpt::Writer& w) const { w.Marker("SCH0"); }

void Scheduler::LoadState(ckpt::Reader& r) { r.ExpectMarker("SCH0"); }

bool IsFeasibleMatching(const VoqBank& voqs, const Matching& matching) {
  const sim::PortId n = voqs.num_ports();
  if (static_cast<sim::PortId>(matching.size()) != n) return false;
  std::vector<bool> out_used(static_cast<std::size_t>(n), false);
  for (sim::PortId i = 0; i < n; ++i) {
    const sim::PortId j = matching[static_cast<std::size_t>(i)];
    if (j == sim::kNoPort) continue;
    if (j < 0 || j >= n) return false;
    if (out_used[static_cast<std::size_t>(j)]) return false;
    out_used[static_cast<std::size_t>(j)] = true;
    if (voqs.Head(i, j) == nullptr) return false;
  }
  return true;
}

bool IsMaximalMatching(const VoqBank& voqs, const Matching& matching) {
  const sim::PortId n = voqs.num_ports();
  std::vector<bool> out_used(static_cast<std::size_t>(n), false);
  for (sim::PortId i = 0; i < n; ++i) {
    const sim::PortId j = matching[static_cast<std::size_t>(i)];
    if (j != sim::kNoPort) out_used[static_cast<std::size_t>(j)] = true;
  }
  for (sim::PortId i = 0; i < n; ++i) {
    if (matching[static_cast<std::size_t>(i)] != sim::kNoPort) continue;
    for (sim::PortId j = 0; j < n; ++j) {
      if (!out_used[static_cast<std::size_t>(j)] &&
          voqs.Head(i, j) != nullptr) {
        return false;  // augmentable pair left unmatched
      }
    }
  }
  return true;
}

}  // namespace cioq
