// Oldest-cell-first greedy maximal matching: the scheduler that gets a
// CIOQ switch closest to output-queued behaviour without implementing the
// full stable-marriage machinery of Chuang et al.
//
// Each phase, candidate (input, output) pairs are scanned in increasing
// order of the head cell's switch-arrival slot (ties by cell id) and
// greedily added to the matching.  The result is maximal by construction
// and prioritises exactly the cells the shadow OQ switch would serve
// first, so with speedup 2 the measured relative delay is small (the
// exact-mimicking theorem needs the more elaborate CCF/stable matching,
// which this greedy approximates).
#pragma once

#include "cioq/voq.h"

namespace cioq {

class OldestFirstScheduler final : public Scheduler {
 public:
  void Reset(sim::PortId num_ports) override { num_ports_ = num_ports; }
  Matching Schedule(const VoqBank& voqs) override;
  std::string name() const override { return "oldest-first"; }

 private:
  sim::PortId num_ports_ = 0;
};

}  // namespace cioq
