#include "cioq/oldest_first.h"

#include <algorithm>

namespace cioq {

Matching OldestFirstScheduler::Schedule(const VoqBank& voqs) {
  struct Candidate {
    sim::Slot arrival;
    sim::CellId id;
    sim::PortId input;
    sim::PortId output;
  };
  std::vector<Candidate> candidates;
  for (sim::PortId i = 0; i < num_ports_; ++i) {
    for (sim::PortId j = 0; j < num_ports_; ++j) {
      const sim::Cell* head = voqs.Head(i, j);
      if (head != nullptr) {
        candidates.push_back({head->arrival, head->id, i, j});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.arrival != b.arrival ? a.arrival < b.arrival
                                            : a.id < b.id;
            });
  Matching matching(static_cast<std::size_t>(num_ports_), sim::kNoPort);
  std::vector<bool> out_used(static_cast<std::size_t>(num_ports_), false);
  for (const Candidate& c : candidates) {
    if (matching[static_cast<std::size_t>(c.input)] != sim::kNoPort) continue;
    if (out_used[static_cast<std::size_t>(c.output)]) continue;
    matching[static_cast<std::size_t>(c.input)] = c.output;
    out_used[static_cast<std::size_t>(c.output)] = true;
  }
  return matching;
}

}  // namespace cioq
