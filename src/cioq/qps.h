// QPS-r (Gong et al.): queue-proportional sampling with r rounds of
// propose/accept — a crossbar scheduler with O(1) work per input per round
// that still delivers throughput and delay comparable to maximal matching.
//
// Each round has two phases over the still-unmatched ports:
//   propose — every unmatched input with backlog samples ONE output, with
//             probability proportional to its VOQ lengths (hence
//             "queue-proportional": hot VOQs are proposed more often);
//   accept  — every unmatched output that received proposals accepts the
//             proposer with the longest VOQ (ties to the lowest input id).
// Unlike iSLIP the result is deliberately not maximal — that is the cost
// of constant-time sampling — so CioqSwitch's nonmaximal_matchings counter
// is expected to be nonzero under QPS (it stays a counter, not an audit
// failure).
//
// Sampling draws from per-input sim::Rng streams forked from a fixed seed
// at Reset, so runs are exactly reproducible and the streams checkpoint as
// plain generator state.
#pragma once

#include <vector>

#include "cioq/voq.h"
#include "sim/rng.h"

namespace cioq {

class QpsScheduler final : public Scheduler {
 public:
  explicit QpsScheduler(int rounds = 2,
                        std::uint64_t seed = 0x9c56a737c4a51fb3ull)
      : rounds_(rounds), seed_(seed) {}

  void Reset(sim::PortId num_ports) override;
  Matching Schedule(const VoqBank& voqs) override;
  std::string name() const override {
    return "qps-r" + std::to_string(rounds_);
  }

  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  int rounds_;
  std::uint64_t seed_;
  sim::PortId num_ports_ = 0;
  std::vector<sim::Rng> rngs_;  // one stream per input port
};

}  // namespace cioq
