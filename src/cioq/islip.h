// iSLIP (McKeown): iterative round-robin matching with pointer
// desynchronisation — the de-facto crossbar scheduler in commercial
// switches, and a concrete instance of the arbitration machinery behind
// the paper's u-RT class.
//
// Each iteration has three phases:
//   request — every unmatched input requests all outputs with nonempty VOQ;
//   grant   — every unmatched output grants the requesting input next at
//             or after its grant pointer;
//   accept  — every input accepts the granting output next at or after its
//             accept pointer.
// Pointers advance (one past the accepted port) only when a grant is
// accepted in the FIRST iteration, which desynchronises them and yields
// 100% throughput under uniform traffic.
#pragma once

#include <vector>

#include "cioq/voq.h"

namespace cioq {

class IslipScheduler final : public Scheduler {
 public:
  explicit IslipScheduler(int iterations = 2) : iterations_(iterations) {}

  void Reset(sim::PortId num_ports) override;
  Matching Schedule(const VoqBank& voqs) override;
  std::string name() const override {
    return "islip-i" + std::to_string(iterations_);
  }

  void SaveState(ckpt::Writer& w) const override;
  void LoadState(ckpt::Reader& r) override;

 private:
  int iterations_;
  sim::PortId num_ports_ = 0;
  std::vector<int> grant_ptr_;   // per output
  std::vector<int> accept_ptr_;  // per input
};

}  // namespace cioq
