// Exhaustive worst-case search for tiny switches: the ground truth the
// constructed adversaries are checked against.
//
// For a bufferless PPS with a deterministic demultiplexing algorithm and
// burst-free single-output traffic (at most one cell destined for the
// target output per slot — the B = 0 regime of Theorems 6/8), this
// enumerates EVERY arrival sequence of bounded length, replays each
// against the PPS and the shadow switch, and returns the exact worst-case
// relative queuing delay.  Exponential, so only for N <= 4 and short
// horizons — but on those instances it certifies that the alignment
// adversary (core/adversary_alignment.h) is optimal, not merely feasible.
#pragma once

#include "switch/config.h"
#include "switch/demux_iface.h"
#include "traffic/trace.h"

namespace core {

struct SearchResult {
  sim::Slot worst_rqd = 0;
  traffic::Trace witness;       // a trace attaining worst_rqd
  std::uint64_t traces_tried = 0;
};

struct SearchOptions {
  sim::PortId target_output = 0;
  // Traffic length in decision slots; each slot chooses one of
  // {no cell, input 0 fires, ..., input N-1 fires} toward the target
  // output, so the search explores (N+1)^horizon sequences.
  int horizon = 8;
  // Idle slots appended before measuring, so the switch drains.
  sim::Slot drain_tail = 64;
};

SearchResult ExhaustiveWorstCase(const pps::SwitchConfig& config,
                                 const pps::DemuxFactory& factory,
                                 const SearchOptions& options = {});

}  // namespace core
