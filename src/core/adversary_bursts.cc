#include "core/adversary_bursts.h"

#include <algorithm>
#include <cmath>

#include <unordered_map>

#include "core/bounds.h"
#include "sim/error.h"
#include "switch/pps.h"
#include "traffic/trace.h"

namespace core {

StaleBurstPlan BuildStaleBurstTraffic(const pps::SwitchConfig& config,
                                      const StaleBurstOptions& options) {
  config.Validate();
  SIM_CHECK(options.u >= 1, "Theorem 10 needs u >= 1");
  const sim::PortId j = options.target_output;
  const int n = config.num_ports;

  const double ue_raw = bounds::EffectiveU(options.u, config.rate_ratio);
  const int ue = std::max(1, static_cast<int>(std::floor(ue_raw)));
  // m = u'^2 N / K cells, at most one per input so every sender is fresh
  // (its input lines are all free and it carries no burst history).
  const int m = std::min(
      n, std::max(ue, static_cast<int>(std::floor(
                          static_cast<double>(ue) * ue * n /
                          config.num_planes))));
  const int per_slot = (m + ue - 1) / ue;  // ceil(m / u') senders per slot

  StaleBurstPlan plan;
  plan.target_output = j;
  plan.burst_window = ue;
  plan.burst_cells = m;

  // Idle warm-up: long enough that the pre-burst snapshot (empty switch)
  // is what every u-RT decision during the burst sees.
  const sim::Slot start = std::max<sim::Slot>(options.warmup, options.u + 1);
  plan.burst_start = start;

  int fired = 0;
  sim::Slot slot = start;
  sim::PortId next_input = 0;
  while (fired < m) {
    for (int g = 0; g < per_slot && fired < m; ++g) {
      plan.trace.Add(slot, next_input, j);
      next_input = static_cast<sim::PortId>((next_input + 1) % n);
      ++fired;
    }
    ++slot;
  }
  plan.burst_end = slot;

  if (options.jitter_probe) {
    // Wait for the concentrated burst to drain, then send one cell from
    // the last burst flow through an empty switch.
    const sim::Slot gap =
        static_cast<sim::Slot>(m) * config.rate_ratio + config.rate_ratio + 8;
    const sim::PortId probe_input =
        static_cast<sim::PortId>((next_input + n - 1) % n);
    plan.trace.Add(sim::SlotPlus(slot, gap), probe_input, j);
  }

  plan.trace.Normalize();
  plan.trace.Validate(config.num_ports);
  return plan;
}

CongestionPlan BuildCongestionTraffic(const pps::SwitchConfig& config,
                                      const CongestionOptions& options) {
  config.Validate();
  const sim::PortId j = options.target_output;
  const int n = config.num_ports;

  CongestionPlan plan;
  plan.target_output = j;

  // Flood: all N inputs send to j every slot.  This violates any (R, B)
  // envelope once flood_slots * (N - 1) > B — Proposition 15 in action.
  sim::Slot slot = 0;
  for (; slot < options.flood_slots; ++slot) {
    for (sim::PortId i = 0; i < n; ++i) plan.trace.Add(slot, i, j);
  }
  plan.flood_end = slot;

  // Sustain: one cell per slot toward j (exactly the output line rate), so
  // the backlog accumulated by the flood never drains and every plane
  // queue stays backlogged under a spreading (FTD) demultiplexor.
  for (sim::Slot s = 0; s < options.sustain_slots; ++s, ++slot) {
    plan.trace.Add(slot, static_cast<sim::PortId>(s % n), j);
  }
  plan.sustain_end = slot;

  plan.trace.Normalize();
  plan.trace.Validate(config.num_ports);
  return plan;
}

double MeasureCongestedFraction(const pps::SwitchConfig& config,
                                const pps::DemuxFactory& factory,
                                const CongestionPlan& plan) {
  pps::BufferlessPps sw(config, factory);
  traffic::TraceTraffic source(plan.trace);
  std::unordered_map<sim::FlowId, std::uint64_t> seq;
  sim::CellId next_id = 0;
  sim::Slot congested = 0;
  const sim::Slot window =
      sim::SlotDifference(plan.sustain_end, plan.flood_end);
  SIM_CHECK(window > 0, "empty sustained window");
  for (sim::Slot t = 0; t < plan.sustain_end; ++t) {
    for (const auto& a : source.ArrivalsAt(t)) {
      sim::Cell cell;
      cell.id = next_id++;
      cell.input = a.input;
      cell.output = a.output;
      cell.seq = seq[sim::MakeFlowId(a.input, a.output,
                                     config.num_ports)]++;
      sw.Inject(cell, t);
    }
    bool hot_output_served = false;
    for (const sim::Cell& cell : sw.Advance(t)) {
      if (cell.output == plan.target_output) hot_output_served = true;
    }
    if (t >= plan.flood_end && hot_output_served) ++congested;
  }
  return static_cast<double>(congested) / static_cast<double>(window);
}

}  // namespace core
