// The composable slot engine: the relative-delay harness decomposed into
// reusable stages, driven by one non-templated run loop over the
// fabric::Fabric interface.
//
// The old core::RunRelative was a duck-typed template instantiated once
// per architecture, with fault/audit/loss surfaces special-cased by
// `if constexpr (requires ...)`.  SlotEngine::Run replaces it: every
// architecture is a Fabric, and the cross-cutting concerns live in
// explicit stages composed per run —
//
//   FaultScheduleApplier   plane fail/recover events at slot start,
//                          link-drop windows armed before the first slot
//   ArrivalFeeder          pulls/validates/stamps arrivals (ids, per-flow
//                          seqs), measures offered burstiness exactly
//   AuditTaps              the explicit auditor and/or the PPS_AUDIT auto
//                          pair (measured switch + shadow OQ)
//   RelativeDelayLedger    pending-cell tracking, relative-delay
//                          finalization, per-flow jitter, loss
//                          reconciliation sweeps
//   DrainController        source-exhaustion detection, drain/grace stop
//
// The stages are plain classes: tests compose them individually, and the
// engine wires them in the exact order the monolithic loop used, so the
// refactor is pinned by a differential golden test (byte-identical
// RunResults against the pre-refactor harness; tests/test_fabric.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "audit/enabled.h"
#include "audit/invariant_auditor.h"
#include "core/harness.h"
#include "fabric/fabric.h"
#include "fault/fault_schedule.h"
#include "sim/cell.h"
#include "sim/latency_recorder.h"
#include "sim/types.h"
#include "traffic/leaky_bucket.h"
#include "traffic/source.h"

#if PPS_AUDIT_ENABLED
#include <optional>
#endif

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

namespace core {

// Applies the run's effective fault timeline to the fabric: the legacy
// single-failure knob is folded in, LinkDrop windows are armed on the
// fabric's injector at construction (they are stateless per-dispatch
// trials), and plane fail/recover events fire at the start of their slot.
// Fabrics without a fault surface accept the events as no-ops, so an
// empty or irrelevant schedule is exactly a no-fault run.
class FaultScheduleApplier {
 public:
  FaultScheduleApplier(fabric::Fabric& fabric, const RunOptions& options);

  // Applies every plane event due at or before slot t; returns true if
  // any fired (the caller re-reads the loss ledger: failing a plane
  // strands its queued cells).
  bool ApplyDue(sim::Slot t);

  // Exact-state checkpointing: the event cursor.  The LinkDrop windows
  // this applier armed at construction live inside the fabric's injector
  // and are replaced wholesale by the fabric's own LoadState, so a
  // resumed run never ends up with doubled windows.
  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

  // Forked-resume variant (RunOptions::fork): consumes the saved cursor
  // without pinning the saved schedule to this run's, then repositions the
  // cursor onto THIS applier's schedule at `resume_slot` (events strictly
  // before it are history) and re-arms the fabric's link-drop windows from
  // this schedule, replacing the restored run's windows wholesale.
  void LoadStateForked(ckpt::Reader& r, sim::Slot resume_slot);

 private:
  // ckpt-skip: wiring reference re-established by the run harness on resume
  fabric::Fabric& fabric_;
  fault::FaultSchedule schedule_;
  std::size_t cursor_ = 0;
};

// Pulls arrivals from the traffic source, enforces the external-line
// contract (one cell per input per slot, in-range ports), stamps globally
// unique ids and per-flow sequence numbers, and meters the offered
// traffic's exact burstiness (Definition 3).
class ArrivalFeeder {
 public:
  ArrivalFeeder(traffic::TrafficSource& source, sim::PortId num_ports,
                sim::Slot source_cutoff);

  // The validated cells arriving in slot t, sorted by input port.  The
  // reference points at per-slot scratch reused across calls.
  const std::vector<sim::Cell>& CellsAt(sim::Slot t);

  // True once no further arrivals can come at or after slot t + 1 (the
  // cutoff passed, or the source reports exhaustion).
  bool ExhaustedAfter(sim::Slot t) const;

  // Exact minimal burstiness B of the traffic offered so far.
  std::int64_t OfferedBurstiness() const;

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // ckpt-skip: wiring reference; the source checkpoints itself separately
  traffic::TrafficSource& source_;
  sim::PortId num_ports_;
  sim::Slot cutoff_;  // 0 = pull until the source reports Exhausted
  traffic::BurstinessMeter meter_;
  std::unordered_map<sim::FlowId, std::uint64_t> seq_;
  sim::CellId next_id_ = 0;
  // ckpt-skip: per-slot scratch, rebuilt by the next CellsAt call
  std::vector<sim::Cell> cells_scratch_;
};

// Observation seam between the delay ledger and whoever audits finalized
// relative delays.  AuditTaps implements it for single-switch runs; the
// topology engine's edge taps (topo/network_engine.cc) implement it for
// network-edge measurements, which is what lets RelativeDelayLedger be
// reused verbatim across both engines.
class RelativeDelayObserver {
 public:
  virtual ~RelativeDelayObserver() = default;

  // A finalized relative delay for a cell of flow (input, output) that
  // arrived (at the measured boundary) in slot `arrival`.
  virtual void OnRelativeDelay(sim::PortId input, sim::PortId output,
                               sim::Slot arrival,
                               sim::Slot relative_delay) = 0;
};

// The audit tap points of a run: an explicitly attached auditor always
// observes the measured switch; under -DPPS_AUDIT=ON a fresh auditor pair
// (measured + shadow) is constructed per run and a dirty report is a hard
// error at run end.
class AuditTaps final : public RelativeDelayObserver {
 public:
  AuditTaps(fabric::Fabric& fabric, const RunOptions& options);

  void OnInject(const sim::Cell& cell, sim::Slot t);
  void OnMeasuredDepart(const sim::Cell& cell, sim::Slot t);
  void OnShadowDepart(const sim::Cell& cell, sim::Slot t);
  void OnRelativeDelay(sim::PortId input, sim::PortId output,
                       sim::Slot arrival, sim::Slot relative_delay) override;
  void OnSlotEnd(sim::Slot t, std::int64_t backlog, std::uint64_t lost,
                 std::int64_t shadow_backlog);

  // Run-end reconciliation: loss taxonomy (only exact on drained runs),
  // final conservation check, violation count accumulation into the
  // result — and, for the auto-armed pair, a SIM_CHECK that both reports
  // are clean.
  void Finish(RunResult& result, sim::Slot t, std::int64_t backlog,
              std::uint64_t lost, std::int64_t shadow_backlog);

 private:
  audit::InvariantAuditor* aud_ = nullptr;
  audit::InvariantAuditor* shadow_aud_ = nullptr;
#if PPS_AUDIT_ENABLED
  std::optional<audit::InvariantAuditor> auto_aud_;
  std::optional<audit::InvariantAuditor> auto_shadow_aud_;
#endif
};

// Accumulates the windowed service mode's per-interval rows
// (RunOptions::window_slots / on_window; see WindowRow in harness.h).
// Counter-style fields come from deltas of the run-level accumulators at
// window boundaries; delay statistics come from the per-finalization hook
// the ledger calls.  Disabled (window_slots = 0) it is a no-op.
class WindowAccumulator {
 public:
  WindowAccumulator(sim::Slot window_slots,
                    std::function<void(const WindowRow&)> emit);

  bool enabled() const { return window_slots_ > 0; }

  // A cell's relative delay was finalized (ledger hook).
  void OnFinalized(sim::FlowId flow, sim::Slot measured_delay,
                   sim::Slot shadow_delay, sim::Slot relative_delay);

  // End of slot t: emits the current window's row when t is its last
  // slot.  `cum_losses` is the run's loss delta so far (fabric minus
  // base).
  void OnSlotEnd(sim::Slot t, const RunResult& result,
                 const fault::LossBreakdown& cum_losses,
                 std::int64_t backlog, std::int64_t shadow_backlog);

  // Run end: emits the final partial window if it saw any slots or any
  // late reconciliation activity.
  void Finish(sim::Slot end, const RunResult& result,
              const fault::LossBreakdown& cum_losses, std::int64_t backlog,
              std::int64_t shadow_backlog);

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // Window-local per-flow delay extremes for the jitter column.
  struct FlowExtremes {
    sim::Slot measured_min = 0;
    sim::Slot measured_max = 0;
    sim::Slot shadow_min = 0;
    sim::Slot shadow_max = 0;
  };

  void EmitRow(sim::Slot end, const RunResult& result,
               const fault::LossBreakdown& cum_losses, std::int64_t backlog,
               std::int64_t shadow_backlog);

  sim::Slot window_slots_;
  // ckpt-skip: caller-supplied sink callback, re-bound on resume
  std::function<void(const WindowRow&)> emit_;
  std::uint64_t index_ = 0;
  sim::Slot window_start_ = 0;
  // Run-level accumulator values at the last emitted boundary.
  std::uint64_t prev_cells_ = 0;
  std::uint64_t prev_dropped_ = 0;
  fault::LossBreakdown prev_losses_;
  // Window-local delay accumulators.
  std::uint64_t finalized_ = 0;
  sim::Slot max_relative_delay_ = 0;
  sim::OnlineStats relative_delay_;
  std::unordered_map<sim::FlowId, FlowExtremes> flow_extremes_;
};

// Tracks every cell in flight in at least one of the two switches and
// finalizes its relative delay once both departures are known.  Entries
// are erased as soon as possible — synchronously for inject drops, and by
// reconciliation sweeps against the fabric's loss counters for id-less
// losses — so memory stays bounded by the in-flight backlog, not the run
// length.
class RelativeDelayLedger {
 public:
  RelativeDelayLedger(sim::PortId num_ports, bool keep_timeline,
                      RelativeDelayObserver& taps,
                      WindowAccumulator* window = nullptr);

  // A cell offered to both switches this slot.
  void Track(const sim::Cell& cell);

  // The measured switch dropped the cell synchronously at Inject: it will
  // never depart, so the entry is reclaimed once the shadow delivers it.
  void MarkInjectDropped(sim::CellId id, RunResult& result);

  void OnMeasuredDepart(const sim::Cell& cell, RunResult& result);
  void OnShadowDepart(const sim::Cell& cell, RunResult& result);

  // Reclaims entries whose shadow copy departed but whose measured copy
  // never will (cells lost with no id: stranded in a failed plane, buffer
  // overflows).  Call only when the measured switch is drained.
  void SweepLossLeaks(RunResult& result);

  // Run-end variant of the sweep: also reclaims entries whose shadow copy
  // is still queued (an undrained shadow), counting every non-inject-drop
  // leak as dropped.  Call only when the measured switch is drained.
  void ReconcileUndeparted(RunResult& result);

  // Folds the remaining statistics into the result: per-switch delay
  // stats, order preservation, max relative jitter, timeline sort.
  void Finish(RunResult& result);

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // Per-flow min/max tracker for jitter computation.
  struct MinMax {
    sim::Slot min = 0;
    sim::Slot max = 0;
    bool seen = false;

    void Add(sim::Slot v);
  };

  struct PendingCell {
    sim::Slot arrival = sim::kNoSlot;
    sim::PortId input = sim::kNoPort;
    sim::PortId output = sim::kNoPort;
    sim::Slot measured_delay = sim::kNoSlot;
    sim::Slot shadow_delay = sim::kNoSlot;
    bool inject_dropped = false;
  };

  void Finalize(sim::CellId id, PendingCell& cell, RunResult& result);

  sim::PortId num_ports_;
  bool keep_timeline_;
  // ckpt-skip: wiring reference; the taps checkpoint with the run loop
  RelativeDelayObserver& taps_;
  // ckpt-skip: wiring pointer to a stage that checkpoints itself
  WindowAccumulator* window_;
  sim::LatencyRecorder measured_rec_;
  sim::LatencyRecorder shadow_rec_;
  std::unordered_map<sim::CellId, PendingCell> pending_;
  std::unordered_map<sim::FlowId, MinMax> jitter_measured_;
  std::unordered_map<sim::FlowId, MinMax> jitter_shadow_;
};

// Decides when the run loop stops: once arrivals are exhausted, stop at
// the first slot where both switches drained, or `drain_grace` slots
// after exhaustion even if not drained (0 = wait for drain or max_slots).
class DrainController {
 public:
  explicit DrainController(sim::Slot drain_grace)
      : drain_grace_(drain_grace) {}

  bool exhausted() const { return exhausted_at_ != sim::kNoSlot; }
  void NoteExhausted(sim::Slot at) {
    if (!exhausted()) exhausted_at_ = at;
  }

  // True when the loop should stop after slot t.
  bool ShouldStop(sim::Slot t, bool all_drained) const;

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  sim::Slot drain_grace_;
  sim::Slot exhausted_at_ = sim::kNoSlot;
};

// The one run loop for every switch architecture: drives `fabric` and its
// shadow OQ switch with identical cells and reports the paper's relative
// measurements.  Equivalent to the historical per-architecture
// core::RunRelative overloads, which are now thin wrappers over this.
class SlotEngine {
 public:
  RunResult Run(fabric::Fabric& fabric, traffic::TrafficSource& source,
                const RunOptions& options = {});
};

}  // namespace core
