#include "core/sweep.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/parallel.h"
#include "core/table.h"
#include "sim/error.h"

namespace core {
namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string ResultsDir(const SweepOptions& options) {
  if (!options.results_dir.empty()) return options.results_dir;
  if (const char* env = std::getenv("PPS_BENCH_RESULTS_DIR")) return env;
  return "bench_results";
}

bool ProgressEnabled(const SweepOptions& options) {
  if (!options.progress) return false;
  if (const char* env = std::getenv("PPS_SWEEP_PROGRESS")) {
    return std::string_view(env) != "0";
  }
  return true;
}

// Compact "k=v k=v" rendering of a params object for progress lines.
std::string ParamsLabel(const json::Value& params) {
  std::string label;
  for (const auto& [key, value] : params.items()) {
    if (!label.empty()) label += ' ';
    label += key;
    label += '=';
    switch (value.kind()) {
      case json::Value::Kind::kString: label += value.as_string(); break;
      default: label += value.Dump(); break;
    }
  }
  return label;
}

}  // namespace

std::uint64_t SweepSeed(std::uint64_t base_seed, const std::string& bench,
                        std::size_t index) {
  return SplitMix64(base_seed ^ Fnv1a(bench) ^
                    (0x9e3779b97f4a7c15ull * (index + 1)));
}

const std::string& GitRevision() {
  static const std::string rev = [] {
    if (const char* env = std::getenv("PPS_GIT_REV")) return std::string(env);
    std::string out = "unknown";
    if (FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
      char buf[64] = {};
      if (fgets(buf, sizeof(buf), pipe)) {
        std::string line(buf);
        while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
          line.pop_back();
        }
        if (!line.empty()) out = line;
      }
      if (pclose(pipe) != 0) out = "unknown";
    }
    return out;
  }();
  return rev;
}

std::string StablePointsDump(const json::Value& doc) {
  const json::Value* points = doc.Find("points");
  std::string out;
  if (points == nullptr) return out;
  for (const json::Value& point : points->elements()) {
    json::Value stable = json::Value::MakeObject();
    for (const auto& [key, value] : point.items()) {
      if (key != "wall_ms") stable.Set(key, value);
    }
    out += stable.Dump();
    out += '\n';
  }
  return out;
}

Sweep::Sweep(SweepOptions options) : options_(std::move(options)) {
  SIM_CHECK(!options_.bench.empty(), "sweep needs a bench name");
  SIM_CHECK(!options_.columns.empty(), "sweep needs table columns");
}

std::size_t Sweep::Add(json::Value params) {
  SIM_CHECK(params.is_object(),
            "sweep point params must be a JSON object (use json::Obj)");
  params_.push_back(std::move(params));
  return params_.size() - 1;
}

unsigned Sweep::effective_workers() const {
  if (options_.workers != 0) return options_.workers;
  if (const char* env = std::getenv("PPS_SWEEP_WORKERS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<unsigned>(parsed);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

json::Value Sweep::Run(const std::function<PointResult(const SweepPoint&)>& fn,
                       std::ostream& os, const std::string& footnote) {
  const unsigned workers = effective_workers();
  const bool progress = ProgressEnabled(options_);
  const std::size_t total = params_.size();

  struct TimedResult {
    PointResult result;
    double wall_ms = 0.0;
  };

  std::mutex progress_mutex;
  std::size_t done = 0;
  const auto results = ParallelMap<TimedResult>(
      total,
      [&](std::size_t i) {
        SweepPoint point;
        point.index = i;
        point.seed = SweepSeed(options_.base_seed, options_.bench, i);
        point.params = &params_[i];
        // pps-lint: allow(determinism): wall-clock brackets the point for
        // the progress report only; it never feeds simulation results.
        const auto start = std::chrono::steady_clock::now();
        TimedResult timed;
        timed.result = fn(point);
        // pps-lint: allow(determinism): see above — reported runtime only.
        const auto stop = std::chrono::steady_clock::now();
        timed.wall_ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        SIM_CHECK(timed.result.cells.size() == options_.columns.size(),
                  "sweep point " << i << " of " << options_.bench
                                 << " returned " << timed.result.cells.size()
                                 << " cells for "
                                 << options_.columns.size() << " columns");
        if (progress) {
          std::lock_guard<std::mutex> lock(progress_mutex);
          ++done;
          std::fprintf(stderr, "[sweep %s] %zu/%zu %s (%.1f ms)\n",
                       options_.bench.c_str(), done, total,
                       ParamsLabel(params_[i]).c_str(), timed.wall_ms);
        }
        return timed;
      },
      workers);

  Table table(options_.title, options_.columns);
  json::Value doc = json::Value::MakeObject();
  doc.Set("bench", options_.bench);
  doc.Set("git_rev", GitRevision());
  doc.Set("workers", static_cast<std::int64_t>(workers));
  json::Value points = json::Value::MakeArray();
  for (std::size_t i = 0; i < results.size(); ++i) {
    table.AddRow(results[i].result.cells);
    json::Value point = json::Value::MakeObject();
    point.Set("params", params_[i]);
    for (const auto& [key, value] : results[i].result.metrics.items()) {
      point.Set(key, value);
    }
    point.Set("wall_ms", results[i].wall_ms);
    points.Append(std::move(point));
  }
  doc.Set("points", std::move(points));

  table.Print(os);
  if (!footnote.empty()) os << footnote << "\n\n";

  // PPS_BENCH_RESULTS_DIR="" means "table only, no JSON".
  if (options_.write_json && !ResultsDir(options_).empty()) {
    const std::filesystem::path dir = ResultsDir(options_);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::filesystem::path file = dir / (options_.bench + ".json");
    std::ofstream stream(file);
    if (stream) {
      stream << doc.Dump(2) << "\n";
    } else {
      std::fprintf(stderr, "[sweep %s] cannot write %s\n",
                   options_.bench.c_str(), file.string().c_str());
    }
  }
  return doc;
}

}  // namespace core
