#include "core/slot_engine.h"

#include <algorithm>
#include <optional>

#include "core/shard_pool.h"
#include "sim/error.h"
#include "switch/output_queued.h"

namespace core {

// ---------------------------------------------------------------------------
// FaultScheduleApplier

FaultScheduleApplier::FaultScheduleApplier(fabric::Fabric& fabric,
                                           const RunOptions& options)
    : fabric_(fabric), schedule_(options.fault_schedule) {
  if (options.fail_plane_at != sim::kNoSlot) {
    schedule_.Fail(options.fail_plane, options.fail_plane_at);
  }
  fault::LinkFaultInjector* injector = fabric_.link_faults();
  if (injector != nullptr && !schedule_.empty()) {
    injector->Seed(schedule_.seed());
    for (const fault::FaultEvent& ev : schedule_.events()) {
      if (ev.kind == fault::FaultKind::kLinkDrop) {
        injector->AddWindow(ev.input, ev.plane, ev.probability, ev.at,
                            ev.window);
      }
    }
  }
}

bool FaultScheduleApplier::ApplyDue(sim::Slot t) {
  bool fired = false;
  while (cursor_ < schedule_.events().size() &&
         schedule_.events()[cursor_].at <= t) {
    const fault::FaultEvent& ev = schedule_.events()[cursor_++];
    if (ev.kind == fault::FaultKind::kPlaneFail) {
      fabric_.FailPlane(ev.plane, t);
    } else if (ev.kind == fault::FaultKind::kPlaneRecover) {
      fabric_.RecoverPlane(ev.plane, t);
    }
    // kLinkDrop windows were armed at construction.
    fired = true;
  }
  return fired;
}

// ---------------------------------------------------------------------------
// ArrivalFeeder

ArrivalFeeder::ArrivalFeeder(traffic::TrafficSource& source,
                             sim::PortId num_ports, sim::Slot source_cutoff)
    : source_(source),
      num_ports_(num_ports),
      cutoff_(source_cutoff),
      meter_(num_ports) {}

const std::vector<sim::Cell>& ArrivalFeeder::CellsAt(sim::Slot t) {
  cells_scratch_.clear();
  const bool cut = cutoff_ > 0 && t >= cutoff_;
  if (cut) return cells_scratch_;
  std::vector<sim::Arrival> arrivals = source_.ArrivalsAt(t);
  std::sort(arrivals.begin(), arrivals.end());
  for (std::size_t a = 0; a < arrivals.size(); ++a) {
    if (a > 0) {
      SIM_CHECK(arrivals[a].input != arrivals[a - 1].input,
                "source emitted two cells on input " << arrivals[a].input
                                                     << " in slot " << t);
    }
    // Range-check before MakeFlowId: a source emitting kNoPort or an
    // out-of-range port would otherwise wrap into a garbage flow id.
    SIM_CHECK(arrivals[a].input >= 0 && arrivals[a].input < num_ports_ &&
                  arrivals[a].output >= 0 && arrivals[a].output < num_ports_,
              "source emitted out-of-range ports (" << arrivals[a].input
                                                    << " -> "
                                                    << arrivals[a].output
                                                    << ") in slot " << t);
    sim::Cell cell;
    cell.id = next_id_++;
    cell.input = arrivals[a].input;
    cell.output = arrivals[a].output;
    cell.seq = seq_[sim::MakeFlowId(cell.input, cell.output, num_ports_)]++;
    cell.arrival = t;
    meter_.Record(t, cell.input, cell.output);
    cells_scratch_.push_back(cell);
  }
  return cells_scratch_;
}

bool ArrivalFeeder::ExhaustedAfter(sim::Slot t) const {
  const bool cut = cutoff_ > 0 && t >= cutoff_;
  return cut || source_.Exhausted(t + 1);
}

std::int64_t ArrivalFeeder::OfferedBurstiness() const {
  return meter_.OutputBurstiness();
}

// ---------------------------------------------------------------------------
// AuditTaps

AuditTaps::AuditTaps(fabric::Fabric& fabric, const RunOptions& options) {
  aud_ = options.auditor;
#if PPS_AUDIT_ENABLED
  // Auto-audit needs the cell-conservation ledger to start from zero, so
  // it only engages when the switch is empty at run start (the normal
  // case; reused undrained switches keep their explicit auditor if any).
  if (aud_ == nullptr && fabric.TotalBacklog() == 0) {
    audit::InvariantAuditor::Options aopts;
    aopts.rqd_upper_bound = options.audit_rqd_upper_bound;
    aopts.rqd_lower_bound = options.audit_rqd_lower_bound;
    aopts.rqd_epochs = options.audit_rqd_epochs;
    // A first-delivered-first-out mux legitimately reorders flows that
    // straddle planes; per-flow order is only promised under resequencing.
    aopts.check_flow_order = fabric.flow_order_promised();
    auto_aud_.emplace(fabric.num_ports(), aopts);
    aud_ = &*auto_aud_;
    audit::InvariantAuditor::Options sopts;
    sopts.check_work_conservation = true;  // the reference discipline
    auto_shadow_aud_.emplace(fabric.num_ports(), sopts);
    shadow_aud_ = &*auto_shadow_aud_;
  }
#else
  (void)fabric;
#endif
}

void AuditTaps::OnInject(const sim::Cell& cell, sim::Slot t) {
  if (aud_ != nullptr) aud_->OnInject(cell, t);
  if (shadow_aud_ != nullptr) shadow_aud_->OnInject(cell, t);
}

void AuditTaps::OnMeasuredDepart(const sim::Cell& cell, sim::Slot t) {
  if (aud_ != nullptr) aud_->OnDepart(cell, t);
}

void AuditTaps::OnShadowDepart(const sim::Cell& cell, sim::Slot t) {
  if (shadow_aud_ != nullptr) shadow_aud_->OnDepart(cell, t);
}

void AuditTaps::OnRelativeDelay(sim::PortId input, sim::PortId output,
                                sim::Slot arrival,
                                sim::Slot relative_delay) {
  if (aud_ != nullptr) {
    aud_->OnRelativeDelay(input, output, arrival, relative_delay);
  }
}

void AuditTaps::OnSlotEnd(sim::Slot t, std::int64_t backlog,
                          std::uint64_t lost, std::int64_t shadow_backlog) {
  if (aud_ != nullptr) aud_->OnSlotEnd(t, backlog, lost);
  if (shadow_aud_ != nullptr) shadow_aud_->OnSlotEnd(t, shadow_backlog);
}

void AuditTaps::Finish(RunResult& result, sim::Slot t, std::int64_t backlog,
                       std::uint64_t lost, std::int64_t shadow_backlog) {
  if (aud_ != nullptr) {
    // The taxonomy reconciliation is only exact once every pending cell
    // has been resolved, i.e. when both switches drained.
    if (result.drained) {
      aud_->OnLossTaxonomy(result.losses, result.dropped, t);
    }
    aud_->OnRunEnd(t, backlog, lost);
    result.audit_violations += aud_->report().total();
  }
  if (shadow_aud_ != nullptr) {
    shadow_aud_->OnRunEnd(t, shadow_backlog);
    result.audit_violations += shadow_aud_->report().total();
  }
#if PPS_AUDIT_ENABLED
  // The audited build promises that every engine run is model-clean:
  // surface any detector hit as a hard error so ctest/sweeps fail loudly.
  if (auto_aud_.has_value()) {
    SIM_CHECK(auto_aud_->clean() && auto_shadow_aud_->clean(),
              "measured switch: " << auto_aud_->report().Summary()
                                  << "; shadow: "
                                  << auto_shadow_aud_->report().Summary());
  }
#endif
}

// ---------------------------------------------------------------------------
// RelativeDelayLedger

void RelativeDelayLedger::MinMax::Add(sim::Slot v) {
  if (!seen) {
    min = max = v;
    seen = true;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
}

RelativeDelayLedger::RelativeDelayLedger(sim::PortId num_ports,
                                         bool keep_timeline, AuditTaps& taps)
    : num_ports_(num_ports), keep_timeline_(keep_timeline), taps_(taps) {
  measured_rec_.set_num_ports(num_ports);
  shadow_rec_.set_num_ports(num_ports);
}

void RelativeDelayLedger::Track(const sim::Cell& cell) {
  auto [it, inserted] = pending_.emplace(
      cell.id, PendingCell{cell.arrival, cell.input, cell.output,
                           sim::kNoSlot, sim::kNoSlot, false});
  SIM_CHECK(inserted, "duplicate cell id " << cell.id);
}

void RelativeDelayLedger::MarkInjectDropped(sim::CellId id,
                                            RunResult& result) {
  auto it = pending_.find(id);
  SIM_CHECK(it != pending_.end(), "inject-drop on untracked cell " << id);
  it->second.inject_dropped = true;
  ++result.dropped;
}

void RelativeDelayLedger::Finalize(sim::CellId id, PendingCell& cell,
                                   RunResult& result) {
  // Both delays are known here (checked by the callers); SlotDifference
  // asserts neither is still the kNoSlot sentinel.
  const sim::Slot rel =
      sim::SlotDifference(cell.measured_delay, cell.shadow_delay);
  taps_.OnRelativeDelay(cell.input, cell.output, cell.arrival, rel);
  result.relative_delay.Add(rel);
  result.max_relative_delay = std::max(result.max_relative_delay, rel);
  if (keep_timeline_) {
    result.timeline.push_back({cell.arrival, rel, cell.input, cell.output});
  }
  const sim::FlowId flow =
      sim::MakeFlowId(cell.input, cell.output, num_ports_);
  jitter_measured_[flow].Add(cell.measured_delay);
  jitter_shadow_[flow].Add(cell.shadow_delay);
  pending_.erase(id);
}

void RelativeDelayLedger::OnMeasuredDepart(const sim::Cell& cell,
                                           RunResult& result) {
  measured_rec_.Record(cell);
  auto it = pending_.find(cell.id);
  SIM_CHECK(it != pending_.end(), "unknown departure " << cell);
  it->second.measured_delay = cell.delay();
  if (it->second.shadow_delay != sim::kNoSlot) {
    Finalize(cell.id, it->second, result);
  }
}

void RelativeDelayLedger::OnShadowDepart(const sim::Cell& cell,
                                         RunResult& result) {
  shadow_rec_.Record(cell);
  auto it = pending_.find(cell.id);
  SIM_CHECK(it != pending_.end(), "unknown shadow departure " << cell);
  if (it->second.inject_dropped) {
    pending_.erase(it);  // the measured switch lost it at Inject
    return;
  }
  it->second.shadow_delay = cell.delay();
  if (it->second.measured_delay != sim::kNoSlot) {
    Finalize(cell.id, it->second, result);
  }
}

void RelativeDelayLedger::SweepLossLeaks(RunResult& result) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.measured_delay == sim::kNoSlot &&
        it->second.shadow_delay != sim::kNoSlot) {
      ++result.dropped;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void RelativeDelayLedger::ReconcileUndeparted(RunResult& result) {
  // Reconcile losses that carried no cell id (stranded in a failed plane,
  // buffer overflows, inject drops whose shadow copy is still queued):
  // once the measured switch is drained, an entry with no departure can
  // never get one.  Erase such leaks so tracked state matches the
  // finalized cells exactly.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.measured_delay == sim::kNoSlot) {
      if (!it->second.inject_dropped) ++result.dropped;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void RelativeDelayLedger::Finish(RunResult& result) {
  result.order_preserved = measured_rec_.order_preserved();
  result.pps_delay = measured_rec_.delay_stats();
  result.shadow_delay = shadow_rec_.delay_stats();

  for (const auto& [flow, mm] : jitter_measured_) {
    if (!mm.seen) continue;
    const auto& qq = jitter_shadow_.at(flow);
    const sim::Slot jp = mm.max - mm.min;
    const sim::Slot jq = qq.max - qq.min;
    result.max_relative_jitter =
        std::max(result.max_relative_jitter, jp - jq);
  }
  if (keep_timeline_) {
    std::sort(result.timeline.begin(), result.timeline.end(),
              [](const CellRelative& a, const CellRelative& b) {
                return a.arrival < b.arrival;
              });
  }
}

// ---------------------------------------------------------------------------
// DrainController

bool DrainController::ShouldStop(sim::Slot t, bool all_drained) const {
  if (!exhausted()) return false;
  if (all_drained) return true;
  return drain_grace_ > 0 &&
         sim::SlotDifference(t, exhausted_at_) >= drain_grace_;
}

// ---------------------------------------------------------------------------
// SlotEngine

RunResult SlotEngine::Run(fabric::Fabric& fabric,
                          traffic::TrafficSource& source,
                          const RunOptions& options) {
  const sim::PortId n = fabric.num_ports();

  pps::OutputQueuedSwitch shadow(n);

  RunResult result;

  FaultScheduleApplier faults(fabric, options);
  ArrivalFeeder feeder(source, n, options.source_cutoff);
  AuditTaps taps(fabric, options);
  RelativeDelayLedger ledger(n, options.keep_timeline, taps);
  DrainController drain(options.drain_grace);

  const fault::LossBreakdown losses_base = fabric.losses();
  const std::uint64_t lost_base = losses_base.total();
  std::uint64_t known_lost = lost_base;

  // Sharded hot path: one worker pool for the whole run, engaged only
  // when the caller asked for lanes and the fabric guarantees that its
  // sharded protocol is byte-identical to the serial one.  The pool's
  // actual lane count is clamped by the process-wide ThreadBudget; a
  // degraded (even fully serial) grant changes wall-clock only, never
  // results.
  std::optional<ShardPool> pool;
  if (options.threads > 1 && fabric.shardable()) pool.emplace(options.threads);
  const bool sharded = pool.has_value() && pool->parallel();

  sim::Slot t = 0;
  for (; t < options.max_slots; ++t) {
    // Apply this slot's plane fail/recover events before arrivals, so the
    // fabric's ground truth (and, modulo the visibility lag, the
    // demultiplexors' beliefs) is up to date when dispatch decisions run.
    // Cells stranded inside a failed plane bump the loss counter without
    // naming ids; their entries are reconciled by the sweeps.
    if (faults.ApplyDue(t)) known_lost = fabric.losses().total();

    if (sharded) {
      const std::vector<sim::Cell>& cells = feeder.CellsAt(t);
      for (const sim::Cell& cell : cells) {
        ledger.Track(cell);
        taps.OnInject(cell, t);
        shadow.Inject(cell, t);
        ++result.cells;
      }
      // Batch inject with explicit per-cell drop flags: the same
      // attribution the serial loop derives from per-cell losses()
      // deltas, marked in input order after the barrier.
      const std::vector<std::uint8_t>& dropped =
          fabric.InjectBatch(cells, t, *pool);
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (dropped[i] != 0) ledger.MarkInjectDropped(cells[i].id, result);
      }
      known_lost = fabric.losses().total();
    } else {
      for (const sim::Cell& cell : feeder.CellsAt(t)) {
        ledger.Track(cell);
        taps.OnInject(cell, t);
        fabric.Inject(cell, t);
        shadow.Inject(cell, t);
        ++result.cells;
        // A synchronous Inject drop (plane failures / exhausted static
        // partition) means this cell will never depart the measured
        // switch: mark the entry so it is reclaimed once the shadow
        // delivers it, instead of leaking for the rest of the run.
        const std::uint64_t lost = fabric.losses().total();
        if (lost != known_lost) {
          known_lost = lost;
          ledger.MarkInjectDropped(cell.id, result);
        }
      }
    }

    for (const sim::Cell& cell :
         sharded ? fabric.AdvanceSharded(t, *pool) : fabric.Advance(t)) {
      taps.OnMeasuredDepart(cell, t);
      ledger.OnMeasuredDepart(cell, result);
    }
    for (const sim::Cell& cell : shadow.Advance(t)) {
      taps.OnShadowDepart(cell, t);
      ledger.OnShadowDepart(cell, result);
    }
    // Losses recorded during Advance (buffer overflows, stranded cells)
    // carry no cell ids; fold them into the baseline so they are not
    // misattributed to the next injected cell.
    known_lost = fabric.losses().total();
    taps.OnSlotEnd(t, fabric.TotalBacklog(), known_lost - lost_base,
                   shadow.TotalBacklog());

    // Periodic reconciliation against the loss counters: cells lost with
    // no id leave pending entries that only drain at run end otherwise.
    // Whenever the measured switch is drained, an entry whose shadow copy
    // has departed but whose measured copy never did can never be
    // finalized — reclaim it now so pending memory stays bounded by the
    // in-flight backlog in long fault runs, not by the run length.
    constexpr sim::Slot kReconcilePeriod = 1024;
    if (known_lost > 0 && (t + 1) % kReconcilePeriod == 0 &&
        fabric.Drained()) {
      ledger.SweepLossLeaks(result);
    }

    if (!drain.exhausted() && feeder.ExhaustedAfter(t)) {
      drain.NoteExhausted(t + 1);
    }
    if (drain.ShouldStop(t, fabric.Drained() && shadow.Drained())) {
      ++t;
      break;
    }
  }
  result.duration = t;
  result.drained = fabric.Drained() && shadow.Drained();
  if (fabric.Drained()) {
    ledger.ReconcileUndeparted(result);
  }
  result.losses = fabric.losses() - losses_base;
  result.traffic_burstiness = feeder.OfferedBurstiness();
  result.resequencing_stalls = fabric.resequencing_stalls();
  ledger.Finish(result);
  taps.Finish(result, t, fabric.TotalBacklog(), known_lost - lost_base,
              shadow.TotalBacklog());
  return result;
}

}  // namespace core
