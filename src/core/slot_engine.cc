#include "core/slot_engine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <utility>

#include "ckpt/io.h"
#include "ckpt/serializer.h"
#include "core/shard_pool.h"
#include "sim/error.h"
#include "switch/output_queued.h"

namespace core {

namespace {

// The loss taxonomy travels field by field so a future breakdown category
// forces a conscious format bump instead of a silent reinterpretation.
void SaveLoss(ckpt::Writer& w, const fault::LossBreakdown& l) {
  w.U64(l.input_drops);
  w.U64(l.stranded_cells);
  w.U64(l.stale_dispatches);
  w.U64(l.link_drops);
  w.U64(l.late_arrivals);
  w.U64(l.buffer_overflows);
}

fault::LossBreakdown LoadLoss(ckpt::Reader& r) {
  fault::LossBreakdown l;
  l.input_drops = r.U64();
  l.stranded_cells = r.U64();
  l.stale_dispatches = r.U64();
  l.link_drops = r.U64();
  l.late_arrivals = r.U64();
  l.buffer_overflows = r.U64();
  return l;
}

}  // namespace

// ---------------------------------------------------------------------------
// FaultScheduleApplier

FaultScheduleApplier::FaultScheduleApplier(fabric::Fabric& fabric,
                                           const RunOptions& options)
    : fabric_(fabric), schedule_(options.fault_schedule) {
  if (options.fail_plane_at != sim::kNoSlot) {
    schedule_.Fail(options.fail_plane, options.fail_plane_at);
  }
  fault::LinkFaultInjector* injector = fabric_.link_faults();
  if (injector != nullptr && !schedule_.empty()) {
    injector->Seed(schedule_.seed());
    for (const fault::FaultEvent& ev : schedule_.events()) {
      if (ev.kind == fault::FaultKind::kLinkDrop) {
        injector->AddWindow(ev.input, ev.plane, ev.probability, ev.at,
                            ev.window);
      }
    }
  }
}

bool FaultScheduleApplier::ApplyDue(sim::Slot t) {
  bool fired = false;
  while (cursor_ < schedule_.events().size() &&
         schedule_.events()[cursor_].at <= t) {
    const fault::FaultEvent& ev = schedule_.events()[cursor_++];
    if (ev.kind == fault::FaultKind::kPlaneFail) {
      fabric_.FailPlane(ev.plane, t);
    } else if (ev.kind == fault::FaultKind::kPlaneRecover) {
      fabric_.RecoverPlane(ev.plane, t);
    }
    // kLinkDrop windows were armed at construction.
    fired = true;
  }
  return fired;
}

void FaultScheduleApplier::SaveState(ckpt::Writer& w) const {
  w.Marker("FLT0");
  w.Size(schedule_.events().size());
  w.Size(cursor_);
}

void FaultScheduleApplier::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("FLT0");
  SIM_CHECK(r.Size() == schedule_.events().size(),
            "checkpoint was taken under a different fault schedule");
  cursor_ = r.Size();
  SIM_CHECK(cursor_ <= schedule_.events().size(),
            "checkpoint fault cursor out of range");
}

void FaultScheduleApplier::LoadStateForked(ckpt::Reader& r,
                                           sim::Slot resume_slot) {
  r.ExpectMarker("FLT0");
  const std::size_t saved_events = r.Size();
  const std::size_t saved_cursor = r.Size();
  SIM_CHECK(saved_cursor <= saved_events,
            "checkpoint fault cursor out of range");
  // The saved timeline is history; this run's schedule takes over from the
  // resume slot.  Events before it are treated as already applied (the
  // restored fabric state reflects whatever actually happened).
  cursor_ = 0;
  while (cursor_ < schedule_.events().size() &&
         schedule_.events()[cursor_].at < resume_slot) {
    ++cursor_;
  }
  // The fabric's LoadState just restored the *saving* run's link-drop
  // windows; replace them with this schedule's (Clear + re-arm, exactly
  // the constructor's arming pass).
  fault::LinkFaultInjector* injector = fabric_.link_faults();
  if (injector != nullptr) {
    injector->Clear();
    if (!schedule_.empty()) {
      injector->Seed(schedule_.seed());
      for (const fault::FaultEvent& ev : schedule_.events()) {
        if (ev.kind == fault::FaultKind::kLinkDrop) {
          injector->AddWindow(ev.input, ev.plane, ev.probability, ev.at,
                              ev.window);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ArrivalFeeder

ArrivalFeeder::ArrivalFeeder(traffic::TrafficSource& source,
                             sim::PortId num_ports, sim::Slot source_cutoff)
    : source_(source),
      num_ports_(num_ports),
      cutoff_(source_cutoff),
      meter_(num_ports) {}

const std::vector<sim::Cell>& ArrivalFeeder::CellsAt(sim::Slot t) {
  cells_scratch_.clear();
  const bool cut = cutoff_ > 0 && t >= cutoff_;
  if (cut) return cells_scratch_;
  std::vector<sim::Arrival> arrivals = source_.ArrivalsAt(t);
  std::sort(arrivals.begin(), arrivals.end());
  for (std::size_t a = 0; a < arrivals.size(); ++a) {
    if (a > 0) {
      SIM_CHECK(arrivals[a].input != arrivals[a - 1].input,
                "source emitted two cells on input " << arrivals[a].input
                                                     << " in slot " << t);
    }
    // Range-check before MakeFlowId: a source emitting kNoPort or an
    // out-of-range port would otherwise wrap into a garbage flow id.
    SIM_CHECK(arrivals[a].input >= 0 && arrivals[a].input < num_ports_ &&
                  arrivals[a].output >= 0 && arrivals[a].output < num_ports_,
              "source emitted out-of-range ports (" << arrivals[a].input
                                                    << " -> "
                                                    << arrivals[a].output
                                                    << ") in slot " << t);
    sim::Cell cell;
    cell.id = next_id_++;
    cell.input = arrivals[a].input;
    cell.output = arrivals[a].output;
    cell.seq = seq_[sim::MakeFlowId(cell.input, cell.output, num_ports_)]++;
    cell.arrival = t;
    meter_.Record(t, cell.input, cell.output);
    cells_scratch_.push_back(cell);
  }
  return cells_scratch_;
}

bool ArrivalFeeder::ExhaustedAfter(sim::Slot t) const {
  const bool cut = cutoff_ > 0 && t >= cutoff_;
  return cut || source_.Exhausted(sim::SlotPlus(t, 1));
}

std::int64_t ArrivalFeeder::OfferedBurstiness() const {
  return meter_.OutputBurstiness();
}

void ArrivalFeeder::SaveState(ckpt::Writer& w) const {
  w.Marker("FDR0");
  w.I32(num_ports_);
  w.I64(cutoff_);
  meter_.SaveState(w);
  w.U64(next_id_);
  // Canonical bytes: the per-flow sequence map in sorted key order.
  std::map<sim::FlowId, std::uint64_t> sorted(seq_.begin(), seq_.end());
  w.Size(sorted.size());
  for (const auto& [flow, next] : sorted) {
    w.U64(flow);
    w.U64(next);
  }
}

void ArrivalFeeder::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("FDR0");
  SIM_CHECK(r.I32() == num_ports_,
            "feeder checkpoint has a different port count");
  SIM_CHECK(r.I64() == cutoff_,
            "feeder checkpoint has a different source cutoff");
  meter_.LoadState(r);
  next_id_ = r.U64();
  seq_.clear();
  const std::size_t n = r.Count();
  for (std::size_t i = 0; i < n; ++i) {
    const sim::FlowId flow = r.U64();
    seq_[flow] = r.U64();
  }
}

// ---------------------------------------------------------------------------
// AuditTaps

AuditTaps::AuditTaps(fabric::Fabric& fabric, const RunOptions& options) {
  aud_ = options.auditor;
#if PPS_AUDIT_ENABLED
  // Auto-audit needs the cell-conservation ledger to start from zero, so
  // it only engages when the switch is empty at run start (the normal
  // case; reused undrained switches keep their explicit auditor if any).
  // A resumed run is mid-flight by definition — the fabric still looks
  // empty here because its state loads after stage construction — so the
  // auto pair stays off (matching the uninterrupted run's contribution of
  // zero violations; a dirty uninterrupted run would have thrown).
  if (aud_ == nullptr && fabric.TotalBacklog() == 0 &&
      options.resume_from.empty()) {
    audit::InvariantAuditor::Options aopts;
    aopts.rqd_upper_bound = options.audit_rqd_upper_bound;
    aopts.rqd_lower_bound = options.audit_rqd_lower_bound;
    aopts.rqd_epochs = options.audit_rqd_epochs;
    // A first-delivered-first-out mux legitimately reorders flows that
    // straddle planes; per-flow order is only promised under resequencing.
    aopts.check_flow_order = fabric.flow_order_promised();
    auto_aud_.emplace(fabric.num_ports(), aopts);
    aud_ = &*auto_aud_;
    audit::InvariantAuditor::Options sopts;
    sopts.check_work_conservation = true;  // the reference discipline
    auto_shadow_aud_.emplace(fabric.num_ports(), sopts);
    shadow_aud_ = &*auto_shadow_aud_;
  }
#else
  (void)fabric;
#endif
}

void AuditTaps::OnInject(const sim::Cell& cell, sim::Slot t) {
  if (aud_ != nullptr) aud_->OnInject(cell, t);
  if (shadow_aud_ != nullptr) shadow_aud_->OnInject(cell, t);
}

void AuditTaps::OnMeasuredDepart(const sim::Cell& cell, sim::Slot t) {
  if (aud_ != nullptr) aud_->OnDepart(cell, t);
}

void AuditTaps::OnShadowDepart(const sim::Cell& cell, sim::Slot t) {
  if (shadow_aud_ != nullptr) shadow_aud_->OnDepart(cell, t);
}

void AuditTaps::OnRelativeDelay(sim::PortId input, sim::PortId output,
                                sim::Slot arrival,
                                sim::Slot relative_delay) {
  if (aud_ != nullptr) {
    aud_->OnRelativeDelay(input, output, arrival, relative_delay);
  }
}

void AuditTaps::OnSlotEnd(sim::Slot t, std::int64_t backlog,
                          std::uint64_t lost, std::int64_t shadow_backlog) {
  if (aud_ != nullptr) aud_->OnSlotEnd(t, backlog, lost);
  if (shadow_aud_ != nullptr) shadow_aud_->OnSlotEnd(t, shadow_backlog);
}

void AuditTaps::Finish(RunResult& result, sim::Slot t, std::int64_t backlog,
                       std::uint64_t lost, std::int64_t shadow_backlog) {
  if (aud_ != nullptr) {
    // The taxonomy reconciliation is only exact once every pending cell
    // has been resolved, i.e. when both switches drained.
    if (result.drained) {
      aud_->OnLossTaxonomy(result.losses, result.dropped, t);
    }
    aud_->OnRunEnd(t, backlog, lost);
    result.audit_violations += aud_->report().total();
  }
  if (shadow_aud_ != nullptr) {
    shadow_aud_->OnRunEnd(t, shadow_backlog);
    result.audit_violations += shadow_aud_->report().total();
  }
#if PPS_AUDIT_ENABLED
  // The audited build promises that every engine run is model-clean:
  // surface any detector hit as a hard error so ctest/sweeps fail loudly.
  if (auto_aud_.has_value()) {
    SIM_CHECK(auto_aud_->clean() && auto_shadow_aud_->clean(),
              "measured switch: " << auto_aud_->report().Summary()
                                  << "; shadow: "
                                  << auto_shadow_aud_->report().Summary());
  }
#endif
}

// ---------------------------------------------------------------------------
// RelativeDelayLedger

void RelativeDelayLedger::MinMax::Add(sim::Slot v) {
  if (!seen) {
    min = max = v;
    seen = true;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
}

RelativeDelayLedger::RelativeDelayLedger(sim::PortId num_ports,
                                         bool keep_timeline,
                                         RelativeDelayObserver& taps,
                                         WindowAccumulator* window)
    : num_ports_(num_ports),
      keep_timeline_(keep_timeline),
      taps_(taps),
      window_(window) {
  measured_rec_.set_num_ports(num_ports);
  shadow_rec_.set_num_ports(num_ports);
}

void RelativeDelayLedger::Track(const sim::Cell& cell) {
  auto [it, inserted] = pending_.emplace(
      cell.id, PendingCell{cell.arrival, cell.input, cell.output,
                           sim::kNoSlot, sim::kNoSlot, false});
  SIM_CHECK(inserted, "duplicate cell id " << cell.id);
}

void RelativeDelayLedger::MarkInjectDropped(sim::CellId id,
                                            RunResult& result) {
  auto it = pending_.find(id);
  SIM_CHECK(it != pending_.end(), "inject-drop on untracked cell " << id);
  it->second.inject_dropped = true;
  ++result.dropped;
}

void RelativeDelayLedger::Finalize(sim::CellId id, PendingCell& cell,
                                   RunResult& result) {
  // Both delays are known here (checked by the callers); SlotDifference
  // asserts neither is still the kNoSlot sentinel.
  const sim::Slot rel =
      sim::SlotDifference(cell.measured_delay, cell.shadow_delay);
  taps_.OnRelativeDelay(cell.input, cell.output, cell.arrival, rel);
  result.relative_delay.Add(rel);
  result.max_relative_delay = std::max(result.max_relative_delay, rel);
  if (keep_timeline_) {
    result.timeline.push_back({cell.arrival, rel, cell.input, cell.output});
  }
  const sim::FlowId flow =
      sim::MakeFlowId(cell.input, cell.output, num_ports_);
  jitter_measured_[flow].Add(cell.measured_delay);
  jitter_shadow_[flow].Add(cell.shadow_delay);
  if (window_ != nullptr && window_->enabled()) {
    window_->OnFinalized(flow, cell.measured_delay, cell.shadow_delay, rel);
  }
  pending_.erase(id);
}

void RelativeDelayLedger::OnMeasuredDepart(const sim::Cell& cell,
                                           RunResult& result) {
  measured_rec_.Record(cell);
  auto it = pending_.find(cell.id);
  SIM_CHECK(it != pending_.end(), "unknown departure " << cell);
  it->second.measured_delay = cell.delay();
  if (it->second.shadow_delay != sim::kNoSlot) {
    Finalize(cell.id, it->second, result);
  }
}

void RelativeDelayLedger::OnShadowDepart(const sim::Cell& cell,
                                         RunResult& result) {
  shadow_rec_.Record(cell);
  auto it = pending_.find(cell.id);
  SIM_CHECK(it != pending_.end(), "unknown shadow departure " << cell);
  if (it->second.inject_dropped) {
    pending_.erase(it);  // the measured switch lost it at Inject
    return;
  }
  it->second.shadow_delay = cell.delay();
  if (it->second.measured_delay != sim::kNoSlot) {
    Finalize(cell.id, it->second, result);
  }
}

void RelativeDelayLedger::SweepLossLeaks(RunResult& result) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.measured_delay == sim::kNoSlot &&
        it->second.shadow_delay != sim::kNoSlot) {
      ++result.dropped;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void RelativeDelayLedger::ReconcileUndeparted(RunResult& result) {
  // Reconcile losses that carried no cell id (stranded in a failed plane,
  // buffer overflows, inject drops whose shadow copy is still queued):
  // once the measured switch is drained, an entry with no departure can
  // never get one.  Erase such leaks so tracked state matches the
  // finalized cells exactly.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.measured_delay == sim::kNoSlot) {
      if (!it->second.inject_dropped) ++result.dropped;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void RelativeDelayLedger::Finish(RunResult& result) {
  result.order_preserved = measured_rec_.order_preserved();
  result.pps_delay = measured_rec_.delay_stats();
  result.shadow_delay = shadow_rec_.delay_stats();

  for (const auto& [flow, mm] : jitter_measured_) {
    if (!mm.seen) continue;
    const auto it = jitter_shadow_.find(flow);
    SIM_CHECK(it != jitter_shadow_.end(),
              "jitter ledger has no shadow entry for flow "
                  << flow << " (corrupt restore?)");
    const auto& qq = it->second;
    const sim::Slot jp = sim::SlotDifference(mm.max, mm.min);
    const sim::Slot jq = sim::SlotDifference(qq.max, qq.min);
    result.max_relative_jitter =
        std::max(result.max_relative_jitter, sim::SlotDifference(jp, jq));
  }
  if (keep_timeline_) {
    std::sort(result.timeline.begin(), result.timeline.end(),
              [](const CellRelative& a, const CellRelative& b) {
                return a.arrival < b.arrival;
              });
  }
}

namespace {

template <typename Map>
void SaveMinMaxMap(ckpt::Writer& w, const Map& map) {
  std::map<typename Map::key_type, typename Map::mapped_type> sorted(
      map.begin(), map.end());
  w.Size(sorted.size());
  for (const auto& [flow, mm] : sorted) {
    w.U64(flow);
    w.I64(mm.min);
    w.I64(mm.max);
    w.Bool(mm.seen);
  }
}

template <typename Map>
void LoadMinMaxMap(ckpt::Reader& r, Map& map) {
  map.clear();
  const std::size_t n = r.Count();
  for (std::size_t i = 0; i < n; ++i) {
    const sim::FlowId flow = r.U64();
    auto& mm = map[flow];
    mm.min = r.I64();
    mm.max = r.I64();
    mm.seen = r.Bool();
    // Finish() subtracts these: negative or inverted extremes (delays are
    // non-negative) would be signed-overflow UB, so a corrupt entry must
    // die here instead.
    SIM_CHECK(mm.min >= 0 && mm.min <= mm.max,
              "jitter ledger checkpoint has invalid extremes ["
                  << mm.min << ", " << mm.max << "] for flow " << flow);
  }
}

}  // namespace

void RelativeDelayLedger::SaveState(ckpt::Writer& w) const {
  w.Marker("LGR0");
  w.I32(num_ports_);
  w.Bool(keep_timeline_);
  measured_rec_.SaveState(w);
  shadow_rec_.SaveState(w);
  // Canonical bytes: unordered maps in sorted key order.
  std::map<sim::CellId, PendingCell> sorted(pending_.begin(), pending_.end());
  w.Size(sorted.size());
  for (const auto& [id, cell] : sorted) {
    w.U64(id);
    w.I64(cell.arrival);
    w.I32(cell.input);
    w.I32(cell.output);
    w.I64(cell.measured_delay);
    w.I64(cell.shadow_delay);
    w.Bool(cell.inject_dropped);
  }
  SaveMinMaxMap(w, jitter_measured_);
  SaveMinMaxMap(w, jitter_shadow_);
}

void RelativeDelayLedger::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("LGR0");
  SIM_CHECK(r.I32() == num_ports_,
            "ledger checkpoint has a different port count");
  SIM_CHECK(r.Bool() == keep_timeline_,
            "ledger checkpoint was taken with a different keep_timeline");
  measured_rec_.LoadState(r);
  shadow_rec_.LoadState(r);
  pending_.clear();
  const std::size_t n = r.Count();
  for (std::size_t i = 0; i < n; ++i) {
    const sim::CellId id = r.U64();
    PendingCell cell;
    cell.arrival = r.I64();
    cell.input = r.I32();
    cell.output = r.I32();
    cell.measured_delay = r.I64();
    cell.shadow_delay = r.I64();
    cell.inject_dropped = r.Bool();
    // Finalize() subtracts the delays and fans the ports out to taps, so
    // the restored entry must look like one Track() could have produced.
    const auto delay_ok = [](sim::Slot d) {
      return d == sim::kNoSlot || d >= 0;
    };
    SIM_CHECK(cell.arrival >= 0 && cell.input >= 0 &&
                  cell.input < num_ports_ && cell.output >= 0 &&
                  cell.output < num_ports_ && delay_ok(cell.measured_delay) &&
                  delay_ok(cell.shadow_delay),
              "ledger checkpoint pending cell " << id << " is out of range");
    pending_.emplace(id, cell);
  }
  LoadMinMaxMap(r, jitter_measured_);
  LoadMinMaxMap(r, jitter_shadow_);
}

// ---------------------------------------------------------------------------
// WindowAccumulator

WindowAccumulator::WindowAccumulator(
    sim::Slot window_slots, std::function<void(const WindowRow&)> emit)
    : window_slots_(window_slots), emit_(std::move(emit)) {
  SIM_CHECK(window_slots_ >= 0, "window_slots must be >= 0");
}

void WindowAccumulator::OnFinalized(sim::FlowId flow,
                                    sim::Slot measured_delay,
                                    sim::Slot shadow_delay,
                                    sim::Slot relative_delay) {
  ++finalized_;
  relative_delay_.Add(relative_delay);
  max_relative_delay_ = std::max(max_relative_delay_, relative_delay);
  auto [it, inserted] = flow_extremes_.try_emplace(
      flow, FlowExtremes{measured_delay, measured_delay, shadow_delay,
                         shadow_delay});
  if (!inserted) {
    FlowExtremes& fe = it->second;
    fe.measured_min = std::min(fe.measured_min, measured_delay);
    fe.measured_max = std::max(fe.measured_max, measured_delay);
    fe.shadow_min = std::min(fe.shadow_min, shadow_delay);
    fe.shadow_max = std::max(fe.shadow_max, shadow_delay);
  }
}

void WindowAccumulator::EmitRow(sim::Slot end, const RunResult& result,
                                const fault::LossBreakdown& cum_losses,
                                std::int64_t backlog,
                                std::int64_t shadow_backlog) {
  WindowRow row;
  row.index = index_;
  row.from = window_start_;
  row.to = end;
  row.offered = result.cells - prev_cells_;
  row.finalized = finalized_;
  row.dropped = result.dropped - prev_dropped_;
  row.losses = cum_losses - prev_losses_;
  row.max_relative_delay = max_relative_delay_;
  row.relative_delay = relative_delay_;
  for (const auto& [flow, fe] : flow_extremes_) {
    const sim::Slot measured_jitter =
        sim::SlotDifference(fe.measured_max, fe.measured_min);
    const sim::Slot shadow_jitter =
        sim::SlotDifference(fe.shadow_max, fe.shadow_min);
    row.max_relative_jitter = std::max(
        row.max_relative_jitter,
        sim::SlotDifference(measured_jitter, shadow_jitter));
  }
  row.backlog = backlog;
  row.shadow_backlog = shadow_backlog;
  if (emit_) emit_(row);
  ++index_;
  window_start_ = end;
  prev_cells_ = result.cells;
  prev_dropped_ = result.dropped;
  prev_losses_ = cum_losses;
  finalized_ = 0;
  max_relative_delay_ = 0;
  relative_delay_ = {};
  flow_extremes_.clear();
}

void WindowAccumulator::OnSlotEnd(sim::Slot t, const RunResult& result,
                                  const fault::LossBreakdown& cum_losses,
                                  std::int64_t backlog,
                                  std::int64_t shadow_backlog) {
  if (!enabled()) return;
  if (sim::SlotPlus(t, 1) % window_slots_ != 0) return;
  EmitRow(sim::SlotPlus(t, 1), result, cum_losses, backlog, shadow_backlog);
}

void WindowAccumulator::Finish(sim::Slot end, const RunResult& result,
                               const fault::LossBreakdown& cum_losses,
                               std::int64_t backlog,
                               std::int64_t shadow_backlog) {
  if (!enabled()) return;
  // A final partial window, plus any end-of-run reconciliation (sweeps
  // after the last full window charge drops with no slot of their own).
  if (end > window_start_ || finalized_ > 0 ||
      result.cells != prev_cells_ || result.dropped != prev_dropped_) {
    EmitRow(end, result, cum_losses, backlog, shadow_backlog);
  }
}

void WindowAccumulator::SaveState(ckpt::Writer& w) const {
  w.Marker("WIN0");
  w.I64(window_slots_);
  w.U64(index_);
  w.I64(window_start_);
  w.U64(prev_cells_);
  w.U64(prev_dropped_);
  SaveLoss(w, prev_losses_);
  w.U64(finalized_);
  w.I64(max_relative_delay_);
  relative_delay_.SaveState(w);
  std::map<sim::FlowId, FlowExtremes> sorted(flow_extremes_.begin(),
                                             flow_extremes_.end());
  w.Size(sorted.size());
  for (const auto& [flow, fe] : sorted) {
    w.U64(flow);
    w.I64(fe.measured_min);
    w.I64(fe.measured_max);
    w.I64(fe.shadow_min);
    w.I64(fe.shadow_max);
  }
}

void WindowAccumulator::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("WIN0");
  SIM_CHECK(r.I64() == window_slots_,
            "checkpoint was taken with a different window_slots");
  index_ = r.U64();
  window_start_ = r.I64();
  SIM_CHECK(window_start_ >= 0, "window checkpoint start "
                                    << window_start_ << " is not a slot");
  prev_cells_ = r.U64();
  prev_dropped_ = r.U64();
  prev_losses_ = LoadLoss(r);
  finalized_ = r.U64();
  max_relative_delay_ = r.I64();
  relative_delay_.LoadState(r);
  flow_extremes_.clear();
  const std::size_t n = r.Count();
  for (std::size_t i = 0; i < n; ++i) {
    const sim::FlowId flow = r.U64();
    FlowExtremes fe;
    fe.measured_min = r.I64();
    fe.measured_max = r.I64();
    fe.shadow_min = r.I64();
    fe.shadow_max = r.I64();
    // EmitRow subtracts each pair: extremes come from finalized delays,
    // which are non-negative and ordered.
    SIM_CHECK(fe.measured_min >= 0 && fe.measured_min <= fe.measured_max &&
                  fe.shadow_min >= 0 && fe.shadow_min <= fe.shadow_max,
              "window checkpoint extremes for flow " << flow
                                                     << " are out of range");
    flow_extremes_.emplace(flow, fe);
  }
}

// ---------------------------------------------------------------------------
// DrainController

bool DrainController::ShouldStop(sim::Slot t, bool all_drained) const {
  if (!exhausted()) return false;
  if (all_drained) return true;
  return drain_grace_ > 0 &&
         sim::SlotDifference(t, exhausted_at_) >= drain_grace_;
}

void DrainController::SaveState(ckpt::Writer& w) const {
  w.Marker("DRN0");
  w.I64(drain_grace_);
  w.I64(exhausted_at_);
}

void DrainController::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("DRN0");
  SIM_CHECK(r.I64() == drain_grace_,
            "drain checkpoint has a different drain_grace");
  exhausted_at_ = r.I64();
  // ShouldStop subtracts this from the current slot: unset or a genuine
  // non-negative slot only.
  SIM_CHECK(exhausted_at_ == sim::kNoSlot || exhausted_at_ >= 0,
            "drain checkpoint exhausted_at " << exhausted_at_
                                             << " is not a slot");
}

// ---------------------------------------------------------------------------
// SlotEngine

namespace {

// Everything the run loop cannot re-derive at a slot boundary, in one
// fixed section order.  The engine header pins the run's identity (fabric
// name, geometry, the options that shape the loop); each stage then saves
// its own marker-prefixed payload, so any drift between the saving and
// the resuming configuration fails at the first wrong marker or check.
void WriteCheckpoint(const RunOptions& options, fabric::Fabric& fabric,
                     const pps::OutputQueuedSwitch& shadow,
                     const traffic::TrafficSource& source,
                     const FaultScheduleApplier& faults,
                     const ArrivalFeeder& feeder,
                     const RelativeDelayLedger& ledger,
                     const DrainController& drain,
                     const WindowAccumulator& window, const RunResult& result,
                     const fault::LossBreakdown& losses_base,
                     sim::Slot next_slot, bool stopping, ckpt::Io& io) {
  ckpt::Writer w;
  w.Marker("ENG0");
  w.Str(fabric.name());
  w.I32(fabric.num_ports());
  w.I64(next_slot);
  w.Bool(stopping);
  SaveLoss(w, losses_base);
  // The partial RunResult: the fields the loop accumulates in place
  // (everything else is recomputed at Finish from restored stage state).
  w.Marker("RES0");
  w.U64(result.cells);
  w.U64(result.dropped);
  w.I64(result.max_relative_delay);
  result.relative_delay.SaveState(w);
  w.Bool(options.keep_timeline);
  w.Size(result.timeline.size());
  for (const CellRelative& c : result.timeline) {
    w.I64(c.arrival);
    w.I64(c.relative_delay);
    w.I32(c.input);
    w.I32(c.output);
  }
  w.Marker("FAB0");
  fabric.SaveState(w);
  w.Marker("SHD0");
  shadow.SaveState(w);
  w.Marker("SRC0");
  source.SaveState(w);
  feeder.SaveState(w);
  ledger.SaveState(w);
  drain.SaveState(w);
  faults.SaveState(w);
  w.Bool(window.enabled());
  if (window.enabled()) window.SaveState(w);
  if (options.checkpoint_sink) {
    options.checkpoint_sink(w, next_slot, stopping);
  } else {
    ckpt::WriteFile(options.checkpoint_path, w, io);
  }
}

// Returns next_slot; sets `stopping` when the saving run stopped in the
// checkpointed slot (the resumed run then skips the loop entirely).
sim::Slot LoadCheckpoint(const RunOptions& options, fabric::Fabric& fabric,
                         pps::OutputQueuedSwitch& shadow,
                         traffic::TrafficSource& source,
                         FaultScheduleApplier& faults, ArrivalFeeder& feeder,
                         RelativeDelayLedger& ledger, DrainController& drain,
                         WindowAccumulator& window, RunResult& result,
                         fault::LossBreakdown& losses_base, bool& stopping,
                         ckpt::Io& io) {
  const std::string payload = ckpt::ReadFile(options.resume_from, io);
  ckpt::Reader r(payload);
  r.ExpectMarker("ENG0");
  const std::string saved_name = r.Str();
  SIM_CHECK(saved_name == fabric.name(),
            "checkpoint was taken on fabric '"
                << saved_name << "', resuming on '" << fabric.name() << "'");
  SIM_CHECK(r.I32() == fabric.num_ports(),
            "checkpoint has a different port count");
  // max_slots is deliberately NOT pinned: resuming an interrupted run
  // with a larger slot budget is the normal use (the saving run's budget
  // was what got it interrupted).
  const sim::Slot next_slot = r.I64();
  SIM_CHECK(next_slot >= 0,
            "checkpoint resume slot " << next_slot << " is not a slot");
  stopping = r.Bool();
  losses_base = LoadLoss(r);
  r.ExpectMarker("RES0");
  result.cells = r.U64();
  result.dropped = r.U64();
  result.max_relative_delay = r.I64();
  result.relative_delay.LoadState(r);
  SIM_CHECK(r.Bool() == options.keep_timeline,
            "checkpoint was taken with a different keep_timeline");
  result.timeline.clear();
  const std::size_t timeline_size = r.Count();
  result.timeline.reserve(timeline_size);
  for (std::size_t i = 0; i < timeline_size; ++i) {
    CellRelative c;
    c.arrival = r.I64();
    c.relative_delay = r.I64();
    c.input = r.I32();
    c.output = r.I32();
    result.timeline.push_back(c);
  }
  r.ExpectMarker("FAB0");
  fabric.LoadState(r);
  r.ExpectMarker("SHD0");
  shadow.LoadState(r);
  r.ExpectMarker("SRC0");
  source.LoadState(r);
  if (options.fork && options.fork_source_seed != 0) {
    // Forked run: same exact source state, diverged randomness stream.
    source.Reseed(options.fork_source_seed);
  }
  feeder.LoadState(r);
  ledger.LoadState(r);
  drain.LoadState(r);
  if (options.fork) {
    faults.LoadStateForked(r, next_slot);
  } else {
    faults.LoadState(r);
  }
  const bool saved_window = r.Bool();
  SIM_CHECK(saved_window == window.enabled(),
            "checkpoint was taken with a different window_slots");
  if (saved_window) window.LoadState(r);
  SIM_CHECK(r.AtEnd(),
            "checkpoint has " << r.remaining() << " trailing bytes");
  return next_slot;
}

}  // namespace

RunResult SlotEngine::Run(fabric::Fabric& fabric,
                          traffic::TrafficSource& source,
                          const RunOptions& options) {
  const sim::PortId n = fabric.num_ports();

  pps::OutputQueuedSwitch shadow(n);

  RunResult result;

  const bool checkpointing = options.checkpoint_every > 0;
  const bool resuming = !options.resume_from.empty();
  if (checkpointing) {
    SIM_CHECK(!options.checkpoint_path.empty() || options.checkpoint_sink,
              "checkpoint_every needs a checkpoint_path or checkpoint_sink");
  }
  ckpt::Io& io =
      options.checkpoint_io ? *options.checkpoint_io : ckpt::DefaultIo();
  if (checkpointing || resuming) {
    SIM_CHECK(fabric.checkpointable(),
              "fabric '" << fabric.name()
                         << "' does not support exact-state checkpointing");
    SIM_CHECK(source.checkpointable(),
              "this traffic source does not support exact-state "
              "checkpointing (TrafficSource::checkpointable)");
    // An externally attached auditor has observation state the checkpoint
    // does not capture; restoring around it would silently desynchronize
    // its ledgers.  The PPS_AUDIT auto pair is handled (suppressed on
    // resume), so audited builds still checkpoint fine.
    SIM_CHECK(options.auditor == nullptr,
              "an externally attached auditor cannot be checkpointed");
  }
  if (options.fork) {
    SIM_CHECK(resuming, "fork = true needs a resume_from checkpoint");
    SIM_CHECK(options.fork_source_seed == 0 || source.reseedable(),
              "fork_source_seed set but this traffic source cannot be "
              "reseeded (TrafficSource::reseedable)");
  }

  FaultScheduleApplier faults(fabric, options);
  ArrivalFeeder feeder(source, n, options.source_cutoff);
  AuditTaps taps(fabric, options);
  WindowAccumulator window(options.window_slots, options.on_window);
  RelativeDelayLedger ledger(n, options.keep_timeline, taps, &window);
  DrainController drain(options.drain_grace);

  fault::LossBreakdown losses_base = fabric.losses();
  sim::Slot start_slot = 0;
  bool resumed_stopping = false;
  if (resuming) {
    // Stage construction above armed link-fault windows and (in audited
    // builds) would have armed the auto-audit pair; LoadCheckpoint runs
    // after it so the fabric's restored injector replaces the re-armed
    // windows wholesale and the restored state is the checkpoint's, bit
    // for bit.
    start_slot =
        LoadCheckpoint(options, fabric, shadow, source, faults, feeder,
                       ledger, drain, window, result, losses_base,
                       resumed_stopping, io);
  }
  const std::uint64_t lost_base = losses_base.total();
  std::uint64_t known_lost = fabric.losses().total();

  // Sharded hot path: one worker pool for the whole run, engaged only
  // when the caller asked for lanes and the fabric guarantees that its
  // sharded protocol is byte-identical to the serial one.  The pool's
  // actual lane count is clamped by the process-wide ThreadBudget; a
  // degraded (even fully serial) grant changes wall-clock only, never
  // results.
  std::optional<ShardPool> pool;
  if (options.threads > 1 && fabric.shardable()) pool.emplace(options.threads);
  const bool sharded = pool.has_value() && pool->parallel();

  sim::Slot t = start_slot;
  for (; !resumed_stopping && t < options.max_slots; ++t) {
    // Apply this slot's plane fail/recover events before arrivals, so the
    // fabric's ground truth (and, modulo the visibility lag, the
    // demultiplexors' beliefs) is up to date when dispatch decisions run.
    // Cells stranded inside a failed plane bump the loss counter without
    // naming ids; their entries are reconciled by the sweeps.
    if (faults.ApplyDue(t)) known_lost = fabric.losses().total();

    if (sharded) {
      const std::vector<sim::Cell>& cells = feeder.CellsAt(t);
      for (const sim::Cell& cell : cells) {
        ledger.Track(cell);
        taps.OnInject(cell, t);
        shadow.Inject(cell, t);
        ++result.cells;
      }
      // Batch inject with explicit per-cell drop flags: the same
      // attribution the serial loop derives from per-cell losses()
      // deltas, marked in input order after the barrier.
      const std::vector<std::uint8_t>& dropped =
          fabric.InjectBatch(cells, t, *pool);
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (dropped[i] != 0) ledger.MarkInjectDropped(cells[i].id, result);
      }
      known_lost = fabric.losses().total();
    } else {
      for (const sim::Cell& cell : feeder.CellsAt(t)) {
        ledger.Track(cell);
        taps.OnInject(cell, t);
        fabric.Inject(cell, t);
        shadow.Inject(cell, t);
        ++result.cells;
        // A synchronous Inject drop (plane failures / exhausted static
        // partition) means this cell will never depart the measured
        // switch: mark the entry so it is reclaimed once the shadow
        // delivers it, instead of leaking for the rest of the run.
        const std::uint64_t lost = fabric.losses().total();
        if (lost != known_lost) {
          known_lost = lost;
          ledger.MarkInjectDropped(cell.id, result);
        }
      }
    }

    for (const sim::Cell& cell :
         sharded ? fabric.AdvanceSharded(t, *pool) : fabric.Advance(t)) {
      taps.OnMeasuredDepart(cell, t);
      ledger.OnMeasuredDepart(cell, result);
    }
    for (const sim::Cell& cell : shadow.Advance(t)) {
      taps.OnShadowDepart(cell, t);
      ledger.OnShadowDepart(cell, result);
    }
    // Losses recorded during Advance (buffer overflows, stranded cells)
    // carry no cell ids; fold them into the baseline so they are not
    // misattributed to the next injected cell.
    known_lost = fabric.losses().total();
    taps.OnSlotEnd(t, fabric.TotalBacklog(), known_lost - lost_base,
                   shadow.TotalBacklog());

    // Periodic reconciliation against the loss counters: cells lost with
    // no id leave pending entries that only drain at run end otherwise.
    // Whenever the measured switch is drained, an entry whose shadow copy
    // has departed but whose measured copy never did can never be
    // finalized — reclaim it now so pending memory stays bounded by the
    // in-flight backlog in long fault runs, not by the run length.
    constexpr sim::Slot kReconcilePeriod = 1024;
    if (known_lost > 0 && sim::SlotPlus(t, 1) % kReconcilePeriod == 0 &&
        fabric.Drained()) {
      ledger.SweepLossLeaks(result);
    }

    if (window.enabled()) {
      window.OnSlotEnd(t, result, fabric.losses() - losses_base,
                       fabric.TotalBacklog(), shadow.TotalBacklog());
    }

    if (!drain.exhausted() && feeder.ExhaustedAfter(t)) {
      drain.NoteExhausted(sim::SlotPlus(t, 1));
    }
    const bool stop =
        drain.ShouldStop(t, fabric.Drained() && shadow.Drained());
    // Graceful shutdown: the flag is polled only at slot boundaries, so
    // the current slot always completes.  The extra checkpoint written on
    // the way out is marked stopping=false — the run did NOT finish, and
    // resuming from it must continue the loop.
    const bool interrupted =
        !stop && options.stop_flag &&
        options.stop_flag->load(std::memory_order_acquire);
    const bool boundary =
        checkpointing && sim::SlotPlus(t, 1) % options.checkpoint_every == 0;
    if (boundary || (checkpointing && interrupted)) {
      WriteCheckpoint(options, fabric, shadow, source, faults, feeder,
                      ledger, drain, window, result, losses_base,
                      sim::SlotPlus(t, 1), stop, io);
    }
    if (stop || interrupted) {
      result.interrupted = interrupted;
      ++t;
      break;
    }
  }
  result.duration = t;
  result.drained = fabric.Drained() && shadow.Drained();
  if (fabric.Drained()) {
    ledger.ReconcileUndeparted(result);
  }
  result.losses = fabric.losses() - losses_base;
  result.traffic_burstiness = feeder.OfferedBurstiness();
  result.resequencing_stalls = fabric.resequencing_stalls();
  window.Finish(t, result, result.losses, fabric.TotalBacklog(),
                shadow.TotalBacklog());
  ledger.Finish(result);
  taps.Finish(result, t, fabric.TotalBacklog(),
              fabric.losses().total() - lost_base, shadow.TotalBacklog());
  return result;
}

}  // namespace core
