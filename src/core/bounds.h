// Closed-form bound formulas from the paper, one function per stated
// result.  Benchmarks print these next to measured values so every
// experiment row is "paper says >= X, simulator measured Y".
//
// Conventions: R is normalised to 1 cell/slot, r' = R/r (integer), speedup
// S = K/r'.  (R/r - 1) is written r' - 1 and (1 - r/R) is 1 - 1/r'.
#pragma once

namespace core::bounds {

// Lemma 4: concentrating c same-output cells in one plane, arriving within
// a window of s slots under (R, B) leaky-bucket traffic, forces relative
// queuing delay and relative delay jitter of at least c*r' - (s + B).
double Lemma4(int c, int rate_ratio, int window, int burstiness);

// Theorem 6: bufferless, d-partitioned fully-distributed: (R/r - 1) * d.
double Theorem6(int rate_ratio, int d);

// Corollary 7: bufferless, unpartitioned fully-distributed: (R/r - 1) * N.
double Corollary7(int rate_ratio, int num_ports);

// Theorem 8: bufferless, any fully-distributed: (R/r - 1) * N / S.
double Theorem8(int rate_ratio, int num_ports, double speedup);

// Theorem 10: bufferless u-RT: (1 - u'r/R) * u'N/S with
// u' = min(u, R/(2r)); requires burstiness u'^2 N/K - u'.
double Theorem10(int u, int rate_ratio, int num_ports, double speedup);
double Theorem10Burstiness(int u, int rate_ratio, int num_ports,
                           int num_planes);
// The u' = min(u, r'/2) cap used by Theorem 10.
double EffectiveU(int u, int rate_ratio);

// Corollary 11: any real-time distributed (u = 1): (1 - r/R) * N/S, with
// burstiness N/K - 1.
double Corollary11(int rate_ratio, int num_ports, double speedup);

// Theorem 12 (upper bound): input-buffered u-RT with buffers >= u and
// S >= 2 achieves relative queuing delay <= u.
double Theorem12Upper(int u);

// Theorem 13: input-buffered fully-distributed, any buffer size:
// (1 - r/R) * N/S.
double Theorem13(int rate_ratio, int num_ports, double speedup);

// Model-convention slack.  The paper's completion-time accounting charges
// the final plane->output transmission for its full r' slots, while this
// simulator (per the paper's own zero-propagation convention for relative
// measurements) delivers a cell in the slot its transmission *starts*.
// Measured relative delays can therefore sit up to r' - 1 slots below the
// printed formulas; benches report measured, bound, and this slack.
double ConventionSlack(int rate_ratio);

// Cited upper bounds used as baselines:
// Iyer-McKeown [15] fully-distributed: N * R/r (tightness of Cor. 7).
double IyerMcKeownUpper(int rate_ratio, int num_ports);
// FTD [17]: at least 2N * R/r.
double FtdLower(int rate_ratio, int num_ports);

// --- Degraded mode (the fault model, src/fault/) ---
//
// With `planes_down` of the K planes failed, the fabric is effectively a
// K' = K - planes_down plane PPS at the same r': every formula above
// holds with K' substituted for K.  The functions below do exactly that
// substitution, per failure epoch.

// Effective speedup S' = (K - planes_down) / r'.
double DegradedSpeedup(int num_planes, int planes_down, int rate_ratio);

// True iff the surviving planes still sustain the external line rate
// (S' >= 1, i.e. K' >= r').  Below this, input backlogs grow without
// bound and no finite relative-delay bound is claimed.
bool DegradedSustainsLineRate(int num_planes, int planes_down,
                              int rate_ratio);

// Theorem 8 with K' surviving planes: (r' - 1) * N / S'.  Returns +inf
// when the epoch does not sustain line rate.
double DegradedTheorem8(int rate_ratio, int num_ports, int num_planes,
                        int planes_down);

// Iyer-McKeown upper bound with K' surviving planes.  The N * r' bound is
// independent of K, but it only holds while S' >= 1; +inf below that.
double DegradedIyerMcKeownUpper(int rate_ratio, int num_ports,
                                int num_planes, int planes_down);

}  // namespace core::bounds
