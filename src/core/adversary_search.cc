#include "core/adversary_search.h"

#include <vector>

#include "core/harness.h"
#include "sim/error.h"
#include "switch/pps.h"

namespace core {
namespace {

// Replays one choice sequence (choice[t] in [0, N]: N = silent, otherwise
// the firing input) and returns the measured worst relative delay.
sim::Slot Evaluate(const pps::SwitchConfig& config,
                   const pps::DemuxFactory& factory,
                   const std::vector<int>& choices,
                   const SearchOptions& options, traffic::Trace* out_trace) {
  traffic::Trace trace;
  for (std::size_t t = 0; t < choices.size(); ++t) {
    if (choices[t] < config.num_ports) {
      trace.Add(static_cast<sim::Slot>(t),
                static_cast<sim::PortId>(choices[t]), options.target_output);
    }
  }
  if (trace.empty()) return 0;
  trace.Normalize();
  pps::BufferlessPps sw(config, factory);
  traffic::TraceTraffic src(trace);
  RunOptions ropt;
  ropt.max_slots = static_cast<sim::Slot>(choices.size()) +
                   options.drain_tail;
  const RunResult result = RunRelative(sw, src, ropt);
  if (out_trace != nullptr) *out_trace = trace;
  return result.max_relative_delay;
}

}  // namespace

SearchResult ExhaustiveWorstCase(const pps::SwitchConfig& config,
                                 const pps::DemuxFactory& factory,
                                 const SearchOptions& options) {
  config.Validate();
  SIM_CHECK(config.num_ports <= 5 && options.horizon <= 12,
            "exhaustive search is exponential; keep N <= 5, horizon <= 12");
  const int branching = config.num_ports + 1;

  SearchResult best;
  std::vector<int> choices(static_cast<std::size_t>(options.horizon), 0);
  // Odometer enumeration of all (N+1)^horizon sequences.
  while (true) {
    const sim::Slot rqd = Evaluate(config, factory, choices, options,
                                   /*out_trace=*/nullptr);
    ++best.traces_tried;
    if (rqd > best.worst_rqd) {
      best.worst_rqd = rqd;
      Evaluate(config, factory, choices, options, &best.witness);
    }
    int pos = 0;
    while (pos < options.horizon &&
           ++choices[static_cast<std::size_t>(pos)] == branching) {
      choices[static_cast<std::size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == options.horizon) break;
  }
  return best;
}

}  // namespace core
