// Minimal JSON document builder for machine-readable experiment metrics.
//
// The sweep runner (core/sweep.h) emits every experiment table twice: the
// human-readable core::Table on stdout and a structured JSON document under
// bench_results/, so the perf trajectory of the simulator is diffable and
// plottable across commits.  This is a writer, not a parser: documents are
// built in memory and serialised with Dump().
//
// Design constraints that matter for the sweep runner:
//   * object keys keep insertion order, so two runs of the same grid
//     serialise byte-identically regardless of worker count;
//   * doubles round-trip via std::to_chars (shortest form), so repeated
//     runs of a deterministic experiment produce identical bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace core::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(int v) : kind_(Kind::kInt), int_(v) {}
  Value(long v) : kind_(Kind::kInt), int_(v) {}
  Value(long long v) : kind_(Kind::kInt), int_(v) {}
  Value(unsigned v) : kind_(Kind::kInt), int_(v) {}
  Value(unsigned long v) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Value(unsigned long long v)
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(v)) {}
  Value(double v) : kind_(Kind::kDouble), double_(v) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value MakeArray() { Value v; v.kind_ = Kind::kArray; return v; }
  static Value MakeObject() { Value v; v.kind_ = Kind::kObject; return v; }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Object operations.  Set replaces an existing key in place (keeping its
  // position) or appends a new entry.
  Value& Set(std::string key, Value value);
  const Value* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, Value>>& items() const {
    return object_;
  }

  // Array operations.
  void Append(Value value);
  const std::vector<Value>& elements() const { return array_; }

  // Scalar accessors (valid only for the matching kind).
  bool as_bool() const { return bool_; }
  std::int64_t as_int() const { return int_; }
  double as_double() const { return double_; }
  const std::string& as_string() const { return string_; }

  // Serialises the value.  indent < 0 yields the compact single-line form;
  // indent >= 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

// Convenience builder: Obj({{"algorithm", "rr"}, {"N", 16}}).
Value Obj(std::initializer_list<std::pair<const char*, Value>> entries);

// Escapes a string for embedding in a JSON document (without quotes).
std::string Escape(std::string_view s);

}  // namespace core::json
