// Plain-text experiment tables: aligned columns on stdout plus optional
// CSV, so every benchmark binary prints rows in the shape the paper's
// evaluation section would have.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace core {

class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  // Convenience: mixed cells via Fmt helpers below.
  void AddRow(std::vector<std::string> cells);

  void Print(std::ostream& os) const;
  std::string ToCsv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string Fmt(std::int64_t v);
std::string Fmt(std::uint64_t v);
std::string Fmt(int v);
std::string Fmt(double v, int precision = 2);
std::string FmtRatio(double measured, double bound);

}  // namespace core
