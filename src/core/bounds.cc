#include "core/bounds.h"

#include <algorithm>
#include <limits>

namespace core::bounds {

double Lemma4(int c, int rate_ratio, int window, int burstiness) {
  return static_cast<double>(c) * rate_ratio - (window + burstiness);
}

double Theorem6(int rate_ratio, int d) {
  return static_cast<double>(rate_ratio - 1) * d;
}

double Corollary7(int rate_ratio, int num_ports) {
  return Theorem6(rate_ratio, num_ports);
}

double Theorem8(int rate_ratio, int num_ports, double speedup) {
  return static_cast<double>(rate_ratio - 1) * num_ports / speedup;
}

double EffectiveU(int u, int rate_ratio) {
  return std::min(static_cast<double>(u), rate_ratio / 2.0);
}

double Theorem10(int u, int rate_ratio, int num_ports, double speedup) {
  const double ue = EffectiveU(u, rate_ratio);
  return (1.0 - ue / rate_ratio) * ue * num_ports / speedup;
}

double Theorem10Burstiness(int u, int rate_ratio, int num_ports,
                           int num_planes) {
  const double ue = EffectiveU(u, rate_ratio);
  return ue * ue * num_ports / num_planes - ue;
}

double Corollary11(int rate_ratio, int num_ports, double speedup) {
  return (1.0 - 1.0 / rate_ratio) * num_ports / speedup;
}

double Theorem12Upper(int u) { return static_cast<double>(u); }

double Theorem13(int rate_ratio, int num_ports, double speedup) {
  return (1.0 - 1.0 / rate_ratio) * num_ports / speedup;
}

double ConventionSlack(int rate_ratio) {
  return static_cast<double>(rate_ratio - 1);
}

double IyerMcKeownUpper(int rate_ratio, int num_ports) {
  return static_cast<double>(num_ports) * rate_ratio;
}

double FtdLower(int rate_ratio, int num_ports) {
  return 2.0 * num_ports * rate_ratio;
}

double DegradedSpeedup(int num_planes, int planes_down, int rate_ratio) {
  return static_cast<double>(num_planes - planes_down) / rate_ratio;
}

bool DegradedSustainsLineRate(int num_planes, int planes_down,
                              int rate_ratio) {
  return num_planes - planes_down >= rate_ratio;
}

double DegradedTheorem8(int rate_ratio, int num_ports, int num_planes,
                        int planes_down) {
  if (!DegradedSustainsLineRate(num_planes, planes_down, rate_ratio)) {
    return std::numeric_limits<double>::infinity();
  }
  return Theorem8(rate_ratio, num_ports,
                  DegradedSpeedup(num_planes, planes_down, rate_ratio));
}

double DegradedIyerMcKeownUpper(int rate_ratio, int num_ports,
                                int num_planes, int planes_down) {
  if (!DegradedSustainsLineRate(num_planes, planes_down, rate_ratio)) {
    return std::numeric_limits<double>::infinity();
  }
  return IyerMcKeownUpper(rate_ratio, num_ports);
}

}  // namespace core::bounds
