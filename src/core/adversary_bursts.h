// Burst-based adversaries: the Theorem-10 construction against u-RT
// algorithms and the Theorem-14 congestion traffic.
#pragma once

#include "switch/config.h"
#include "switch/demux_iface.h"
#include "traffic/trace.h"

namespace core {

// --- Theorem 10: stale-information burst ------------------------------------
//
// A u-RT demultiplexor decides on global information at least u slots old.
// The adversary first leaves the switch idle (so the stale snapshots show
// empty planes), then fires a burst of m = u'^2 N/K cells destined for one
// output within u' slots (u' = min(u, r'/2)), from distinct inputs.  No
// demultiplexor can see the burst in the global state before it ends, and
// identical stale views drive them to concentrate cells in few planes.
// The burstiness of this traffic is exactly the theorem's
// B = u'^2 N/K - u' budget (capped at what N distinct inputs can emit).
struct StaleBurstPlan {
  traffic::Trace trace;
  sim::PortId target_output = 0;
  sim::Slot burst_start = 0;
  sim::Slot burst_end = 0;
  int burst_cells = 0;
  int burst_window = 0;  // u' in slots
};

struct StaleBurstOptions {
  sim::PortId target_output = 0;
  int u = 1;                 // the algorithm's information delay
  sim::Slot warmup = 0;      // idle slots before the burst (>= u + 1 forced)
  bool jitter_probe = true;
};

StaleBurstPlan BuildStaleBurstTraffic(const pps::SwitchConfig& config,
                                      const StaleBurstOptions& options);

// --- Theorem 14 / Proposition 15: congestion traffic ------------------------
//
// A period is congested for output j if *all* plane queues toward j are
// continuously backlogged.  The adversary floods j from all N inputs for
// `flood_slots` (rate N >> R — deliberately NOT leaky-bucket,
// Proposition 15), then sustains exactly one cell per slot toward j for
// `sustain_slots`, keeping the backlog constant while the output line
// drains at R.
struct CongestionPlan {
  traffic::Trace trace;
  sim::PortId target_output = 0;
  sim::Slot flood_end = 0;     // end of the warm-up flood
  sim::Slot sustain_end = 0;   // end of the congested period
};

struct CongestionOptions {
  sim::PortId target_output = 0;
  sim::Slot flood_slots = 8;
  sim::Slot sustain_slots = 256;
};

CongestionPlan BuildCongestionTraffic(const pps::SwitchConfig& config,
                                      const CongestionOptions& options);

// Certifies the operative content of Theorem 14's congested period:
// replays the plan against a fresh PPS built from `factory` and returns,
// over the sustained window [flood_end, sustain_end), the fraction of
// slots in which the target output actually emitted a cell.  1.0 means
// the hot output never idled — the PPS served it exactly like the
// work-conserving reference, which is why no relative queuing delay
// accrues.  (In this fabric the flood backlog migrates from the plane
// queues into the output staging buffer as planes deliver eagerly; the
// never-idle property is the invariant that survives that migration.)
double MeasureCongestedFraction(const pps::SwitchConfig& config,
                                const pps::DemuxFactory& factory,
                                const CongestionPlan& plan);

}  // namespace core
