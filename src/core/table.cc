#include "core/table.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "sim/error.h"

namespace core {
namespace {

// Filesystem-safe slug from a table title.
std::string Slugify(const std::string& title) {
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
    if (slug.size() >= 64) break;
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "table" : slug;
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  SIM_CHECK(cells.size() == headers_.size(),
            "row width " << cells.size() << " != header width "
                         << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);

  // Optional machine-readable sink: if PPS_CSV_DIR is set, every printed
  // table is also written there as <slug>.csv.
  if (const char* dir = std::getenv("PPS_CSV_DIR"); dir != nullptr) {
    const std::string path = std::string(dir) + "/" + Slugify(title_) +
                             ".csv";
    std::ofstream csv(path);
    if (csv.good()) csv << ToCsv();
  }
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Fmt(std::int64_t v) { return std::to_string(v); }
std::string Fmt(std::uint64_t v) { return std::to_string(v); }
std::string Fmt(int v) { return std::to_string(v); }

std::string Fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string FmtRatio(double measured, double bound) {
  if (bound == 0.0) return measured == 0.0 ? "1.00" : "inf";
  return Fmt(measured / bound, 2);
}

}  // namespace core
