// Parallel sweep helper: runs independent simulations on worker threads.
//
// The simulation core is single-threaded by design (slot-synchronous
// semantics), but experiment sweeps are embarrassingly parallel: each
// (N, K, r', u, algorithm) grid point is its own fabric, its own traffic
// and its own harness.  ParallelMap evaluates `fn` over an index range on
// up to `workers` std::jthread workers and collects the results in input
// order.  Exceptions propagate: the first worker exception is rethrown on
// the caller thread, and the remaining workers stop pulling new indices as
// soon as one is recorded.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/shard_pool.h"

namespace core {

template <typename Result>
std::vector<Result> ParallelMap(std::size_t count,
                                const std::function<Result(std::size_t)>& fn,
                                unsigned workers = 0) {
  static_assert(std::is_default_constructible_v<Result>,
                "ParallelMap results are collected into pre-sized storage");
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  if (count == 0) return {};
  // The extra threads draw on the process-wide ThreadBudget, so sweep
  // workers compose with per-run engine shards (core/shard_pool.h)
  // without oversubscribing: whichever layer allocates first wins the
  // lanes, the other degrades — results are unaffected either way (each
  // grid point is independent, and the sharded engine is byte-identical
  // at any lane count).  The caller participates, so `workers` threads
  // of concurrency need workers - 1 leased ones.
  ThreadLease lease(
      count <= 1 ? 0
                 : static_cast<unsigned>(
                       std::min<std::size_t>(workers, count) - 1));
  const unsigned spawn = lease.granted();
  if (spawn == 0) {
    std::vector<Result> results(count);
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  // Workers write into a plain array rather than a std::vector directly:
  // for Result = bool, vector<bool> packs eight elements per byte, so
  // concurrent writes to adjacent indices would be a data race (UB).  A
  // Result[] array gives every index its own object.
  std::unique_ptr<Result[]> slots(new Result[count]());
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  const auto work = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      try {
        slots[i] = fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        // Drain the index range so peers stop pulling new work instead
        // of burning through the rest of the grid.
        next.store(count);
        return;
      }
    }
  };
  {
    std::vector<std::jthread> pool;
    pool.reserve(spawn);
    for (unsigned w = 0; w < spawn; ++w) pool.emplace_back(work);
    work();  // the caller is a worker too
  }  // jthreads join here
  if (error) std::rethrow_exception(error);
  std::vector<Result> results;
  results.reserve(count);
  std::move(slots.get(), slots.get() + count, std::back_inserter(results));
  return results;
}

}  // namespace core
