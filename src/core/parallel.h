// Parallel sweep helper: runs independent simulations on worker threads.
//
// The simulation core is single-threaded by design (slot-synchronous
// semantics), but experiment sweeps are embarrassingly parallel: each
// (N, K, r', u, algorithm) grid point is its own fabric, its own traffic
// and its own harness.  ParallelMap evaluates `fn` over an index range on
// up to `workers` std::jthread workers and collects the results in input
// order.  Exceptions propagate: the first worker exception is rethrown on
// the caller thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace core {

template <typename Result>
std::vector<Result> ParallelMap(std::size_t count,
                                const std::function<Result(std::size_t)>& fn,
                                unsigned workers = 0) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<Result> results(count);
  if (count == 0) return results;
  if (workers == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  {
    std::vector<std::jthread> pool;
    const unsigned spawn =
        static_cast<unsigned>(std::min<std::size_t>(workers, count));
    pool.reserve(spawn);
    for (unsigned w = 0; w < spawn; ++w) {
      pool.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= count) return;
          try {
            results[i] = fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!error) error = std::current_exception();
            return;
          }
        }
      });
    }
  }  // jthreads join here
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace core
