// The relative-delay harness: the paper's measurement methodology made
// executable.
//
// Section 1.1: "The switch used for the comparison is called a shadow
// switch ... it receives exactly the same stream of flows as the PPS;
// namely, at any given time, the two switches receive the same cells, with
// the same destinations, on the same input-ports."
//
// The harness drives a PPS (bufferless or input-buffered) and an ideal
// FCFS output-queued switch with identical cells — same ids, sequence
// numbers and arrival slots — and reports:
//   * relative queuing delay:  max over cells of delay_PPS - delay_OQ;
//   * relative delay jitter:   max over flows of jitter_PPS - jitter_OQ
//     (jitter = max - min delay among the flow's cells);
// plus distributional statistics, traffic burstiness (measured exactly),
// and model audits (order preservation, no constraint violations).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "audit/invariant_auditor.h"
#include "ckpt/io.h"
#include "ckpt/serializer.h"
#include "cioq/cioq_switch.h"
#include "fault/fault_schedule.h"
#include "fault/loss.h"
#include "sim/cell.h"
#include "sim/latency_recorder.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "switch/input_buffered_pps.h"
#include "switch/output_queued.h"
#include "switch/pps.h"
#include "switch/rate_limited_oq.h"
#include "traffic/leaky_bucket.h"
#include "traffic/source.h"

namespace fabric {
class Fabric;
}  // namespace fabric

namespace core {

// One row of the windowed service mode (RunOptions::window_slots): the
// run's measurements restricted to the slot interval [from, to), emitted
// through RunOptions::on_window as soon as the window's last slot
// completes.  Delay statistics cover the cells *finalized* (both
// departures known) during the window, so a streaming consumer sees every
// cell exactly once and the engine's window state stays bounded by the
// in-flight backlog, never the run length.
struct WindowRow {
  std::uint64_t index = 0;  // 0-based window number
  sim::Slot from = 0;       // first slot of the window
  sim::Slot to = 0;         // one past the last slot (to - from <= window)
  std::uint64_t offered = 0;    // cells offered to both switches
  std::uint64_t finalized = 0;  // relative delays resolved in the window
  std::uint64_t dropped = 0;    // loss charges reconciled in the window
  fault::LossBreakdown losses;  // loss-taxonomy delta over the window
  // Max/ distribution of relative queuing delay among finalized cells.
  sim::Slot max_relative_delay = 0;
  sim::OnlineStats relative_delay;
  // Max over flows of (measured jitter - shadow jitter) among the flow's
  // cells finalized in this window (the paper's jitter, window-local).
  sim::Slot max_relative_jitter = 0;
  std::int64_t backlog = 0;  // measured-switch backlog at window end
  std::int64_t shadow_backlog = 0;
};

struct RunOptions {
  // Hard cap on simulated slots (safety against non-draining runs).
  sim::Slot max_slots = 1'000'000;
  // Worker lanes for the sharded slot pipeline (core/shard_pool.h): demux
  // decisions fan out per input, plane advancement per plane, departures
  // per output, with deterministic barriers at each stage boundary.  The
  // result is byte-identical to threads = 1 for every RunResult field.
  // 0 or 1 runs the classic serial loop; values above 1 engage sharding
  // only when the fabric reports shardable() (otherwise serial), and the
  // actual lane count is clamped by the process-wide core::ThreadBudget
  // so nested parallelism (sweep workers x engine shards) cannot
  // oversubscribe the machine.
  unsigned threads = 1;
  // Stop offering arrivals at this slot even if the source is infinite
  // (0 = pull until the source reports Exhausted).  Lets stochastic
  // sources terminate cleanly so the switches can drain.
  sim::Slot source_cutoff = 0;
  // Stop this many slots after the source is exhausted even if not
  // drained (0 = run until drained or max_slots).
  sim::Slot drain_grace = 0;
  // Record (arrival, relative delay) per cell for windowed analyses
  // (e.g. Theorem 14's congested-period measurement).
  bool keep_timeline = false;
  // Fault injection, legacy single-failure form: take fail_plane out of
  // service at the start of slot fail_plane_at (kNoSlot = never).  Folded
  // into fault_schedule at run start; only meaningful for fabrics with a
  // FailPlane surface, ignored otherwise.
  sim::Slot fail_plane_at = sim::kNoSlot;
  sim::PlaneId fail_plane = 0;
  // Fault injection, general form (fault/fault_schedule.h): plane
  // fail/recover events are applied at the start of their slot, LinkDrop
  // windows are armed on the fabric's LinkFaultInjector (seeded from the
  // schedule) before the first slot.  An empty schedule is exactly a
  // no-fault run.  Ignored for fabrics without a fault surface (CIOQ).
  fault::FaultSchedule fault_schedule;
  // Model-invariant auditing (audit/invariant_auditor.h).  An explicitly
  // attached auditor observes the measured switch's inject/depart/slot-end
  // stream plus finalized relative delays, in every build; when null and
  // the tree is configured with -DPPS_AUDIT=ON, the harness constructs its
  // own auditors for both the measured switch and the shadow OQ switch and
  // throws sim::SimError at run end if any detector fired.
  audit::InvariantAuditor* auditor = nullptr;
  // Claimed ceiling/floor on relative queuing delay for the auto-audit
  // (core/bounds values; kNoSlot = unchecked).  Ignored when `auditor` is
  // set — put the bounds in its Options instead.
  sim::Slot audit_rqd_upper_bound = sim::kNoSlot;
  sim::Slot audit_rqd_lower_bound = sim::kNoSlot;
  // Per-failure-epoch RQD ceilings for the auto-audit (see
  // DegradedRqdEpochs below).  Ignored when `auditor` is set.
  std::vector<audit::RqdEpoch> audit_rqd_epochs;

  // --- exact-state checkpoint/restore (ckpt/serializer.h) ---
  //
  // With checkpoint_every = E > 0 the engine writes a full-state snapshot
  // to checkpoint_path (atomically: tmp + rename, each write replacing
  // the last) after slots E-1, 2E-1, ...  A later run with resume_from
  // set to that file continues where the snapshot was taken and is
  // byte-identical to the uninterrupted run for every RunResult field —
  // Welford accumulator doubles, timelines, loss taxonomy — in both the
  // serial and the sharded (threads = T) engine.  Both options require a
  // checkpointable fabric (every fabric/adapters.h adapter) and a
  // checkpointable traffic source (TrafficSource::checkpointable());
  // externally attached auditors are not captured and are rejected.
  sim::Slot checkpoint_every = 0;
  std::string checkpoint_path;
  // Resume from this checkpoint before the first slot ("" = fresh run).
  // The fabric/source/options must match the saving run's configuration;
  // mismatches fail loudly at load (wrong fabric name, port count,
  // keep_timeline, window_slots, drain_grace, source identity, ...).
  std::string resume_from;
  // Forked resume (pps_serve --fork): with fork = true, resume_from loads
  // the checkpoint's exact state but the run continues under THIS options'
  // fault_schedule instead of the saved one — the saved fault cursor is
  // discarded and the new schedule takes over from the resume slot (events
  // strictly before it are treated as history; link-drop windows are
  // re-armed from the new schedule).  fork_source_seed != 0 additionally
  // re-seeds the traffic source's randomness streams after its state loads
  // (requires TrafficSource::reseedable()), so a forked run explores a
  // *diverged* future — different faults, different coin flips — from the
  // same exact mid-run state.  A plain resume (fork = false) keeps the
  // byte-identity guarantee; a forked run deliberately gives it up.
  bool fork = false;
  std::uint64_t fork_source_seed = 0;
  // Filesystem seam for checkpoint_path writes and resume_from reads
  // (null = the real filesystem).  The serve supervisor threads a
  // ckpt::FaultyIo through here so injected torn writes / ENOSPC / read
  // corruption exercise the engine's real checkpoint path in tests.
  ckpt::Io* checkpoint_io = nullptr;
  // When set, replaces the checkpoint_path write entirely: at every
  // checkpoint boundary the engine hands the serialized snapshot (and the
  // slot the snapshot resumes at, plus whether the run is stopping in this
  // slot) to the sink, which owns persistence — the serve supervisor uses
  // this for generation rotation.  Exceptions thrown by the sink propagate
  // out of the run, exactly like a failed direct write.  With a sink set,
  // checkpoint_path may be empty.
  std::function<void(const ckpt::Writer&, sim::Slot, bool)> checkpoint_sink;
  // Graceful-shutdown flag, polled at each slot boundary (null = never
  // stop early).  When it becomes true the engine finishes the current
  // slot, writes a final *resumable* checkpoint (if checkpointing), marks
  // RunResult::interrupted, and returns — the windowed-mode partial row
  // still goes out through on_window.  pps_serve latches SIGINT/SIGTERM
  // into this flag.
  const std::atomic<bool>* stop_flag = nullptr;

  // --- windowed service mode ---
  //
  // With window_slots = W > 0 the engine emits a WindowRow through
  // on_window after slots W-1, 2W-1, ... and a final partial row at run
  // end, giving per-interval RQD / jitter / loss-taxonomy readings with
  // memory bounded by the in-flight state (tools/pps_serve streams these
  // as JSON lines).  The accumulator is part of the checkpointed state,
  // so a resumed windowed run emits exactly the rows the uninterrupted
  // run would have emitted after the snapshot.
  sim::Slot window_slots = 0;
  std::function<void(const WindowRow&)> on_window;
};

struct CellRelative {
  sim::Slot arrival;
  sim::Slot relative_delay;
  sim::PortId input;
  sim::PortId output;
};

struct RunResult {
  std::uint64_t cells = 0;     // cells offered to both switches
  sim::Slot duration = 0;      // slots simulated
  bool drained = false;        // both switches empty at the end
  // True when the run ended because RunOptions::stop_flag was raised
  // rather than by draining or hitting max_slots.  An interrupted run's
  // final checkpoint is resumable; resuming it and letting the run finish
  // reproduces the uninterrupted results bit for bit.
  bool interrupted = false;
  // Cells the measured switch lost (inject drops under plane failures or
  // an exhausted static partition, cells stranded in a failed plane,
  // buffer overflows).  These cells are excluded from the delay statistics
  // and their tracking entries are reclaimed — synchronously for inject
  // drops, and by a periodic reconciliation sweep against the switch's
  // loss counters for id-less losses (stranded cells, overflows) — so
  // `cells - dropped` is the finalized-cell count and memory stays bounded
  // by the in-flight backlog in long fault runs, not by the run length.
  std::uint64_t dropped = 0;
  // Loss taxonomy: the per-category fabric counters, as this run's delta.
  // On a fully drained run losses.total() == dropped exactly (audited by
  // InvariantAuditor::OnLossTaxonomy); undrained runs may have lost fewer
  // cells than remain untracked.
  fault::LossBreakdown losses;

  sim::Slot max_relative_delay = 0;
  sim::Slot max_relative_jitter = 0;
  sim::OnlineStats relative_delay;  // distribution over cells
  sim::OnlineStats pps_delay;
  sim::OnlineStats shadow_delay;

  // Exact minimal burstiness B of the offered traffic (Definition 3).
  std::int64_t traffic_burstiness = 0;

  // Audits.
  bool order_preserved = true;
  std::uint64_t resequencing_stalls = 0;
  // Total invariant violations the attached/auto auditors detected (0 when
  // no auditing was active; the auto-audit throws before returning, so a
  // nonzero value can only come from an explicitly attached auditor).
  std::uint64_t audit_violations = 0;

  std::vector<CellRelative> timeline;  // only if keep_timeline

  // Maximum relative delay among cells arriving in [from, to).
  sim::Slot MaxRelativeDelayIn(sim::Slot from, sim::Slot to) const;
};

// Runs `source` through any fabric and its shadow OQ switch: the general
// form every overload below reduces to (core/slot_engine.h has the
// engine; fabric/registry.h constructs fabrics by name).
RunResult RunRelative(fabric::Fabric& fabric, traffic::TrafficSource& source,
                      const RunOptions& options = {});

// Architecture-specific compatibility overloads: each wraps the switch in
// its non-owning fabric adapter and runs the slot engine.

// Runs `source` through a bufferless PPS and its shadow OQ switch.
RunResult RunRelative(pps::BufferlessPps& pps, traffic::TrafficSource& source,
                      const RunOptions& options = {});

// Same for the input-buffered variant.
RunResult RunRelative(pps::InputBufferedPps& pps,
                      traffic::TrafficSource& source,
                      const RunOptions& options = {});

// And for the related-work CIOQ crossbar switch (cioq/), which exposes the
// same Inject/Advance/Drained surface.
RunResult RunRelative(cioq::CioqSwitch& sw, traffic::TrafficSource& source,
                      const RunOptions& options = {});

// The ideal OQ switch measured against a second OQ shadow (relative delay
// is identically zero — a useful engine/registry smoke invariant).
RunResult RunRelative(pps::OutputQueuedSwitch& sw,
                      traffic::TrafficSource& source,
                      const RunOptions& options = {});

// The non-work-conserving rate-limited OQ switch (Discussion section).
RunResult RunRelative(pps::RateLimitedOqSwitch& sw,
                      traffic::TrafficSource& source,
                      const RunOptions& options = {});

// Human-readable one-line summary.
std::string Summarize(const RunResult& result);

// Degraded-mode RQD ceilings for the auto-audit, one per failure epoch of
// `schedule`: the Iyer-McKeown upper bound recomputed with that epoch's
// surviving plane count (core::bounds::DegradedIyerMcKeownUpper), plus
// `slack` slots of margin for cells straddling an epoch boundary and for
// stale-visibility transients.  Epochs whose survivors cannot sustain
// line rate get no bound (sim::kNoSlot).
std::vector<audit::RqdEpoch> DegradedRqdEpochs(
    const fault::FaultSchedule& schedule, const pps::SwitchConfig& config,
    sim::Slot slack = 0);

}  // namespace core
