#include "core/harness.h"

#include <algorithm>
#include <sstream>

#include <cmath>

#include "core/bounds.h"
#include "core/slot_engine.h"
#include "fabric/adapters.h"

namespace core {

sim::Slot RunResult::MaxRelativeDelayIn(sim::Slot from, sim::Slot to) const {
  sim::Slot best = 0;
  for (const CellRelative& c : timeline) {
    if (c.arrival >= from && c.arrival < to) {
      best = std::max(best, c.relative_delay);
    }
  }
  return best;
}

RunResult RunRelative(fabric::Fabric& fabric, traffic::TrafficSource& source,
                      const RunOptions& options) {
  return SlotEngine().Run(fabric, source, options);
}

RunResult RunRelative(pps::BufferlessPps& pps, traffic::TrafficSource& source,
                      const RunOptions& options) {
  fabric::BufferlessPpsFabric fabric(pps);
  return SlotEngine().Run(fabric, source, options);
}

RunResult RunRelative(pps::InputBufferedPps& pps,
                      traffic::TrafficSource& source,
                      const RunOptions& options) {
  fabric::InputBufferedPpsFabric fabric(pps);
  return SlotEngine().Run(fabric, source, options);
}

RunResult RunRelative(cioq::CioqSwitch& sw, traffic::TrafficSource& source,
                      const RunOptions& options) {
  fabric::CioqFabric fabric(sw);
  return SlotEngine().Run(fabric, source, options);
}

RunResult RunRelative(pps::OutputQueuedSwitch& sw,
                      traffic::TrafficSource& source,
                      const RunOptions& options) {
  fabric::OutputQueuedFabric fabric(sw);
  return SlotEngine().Run(fabric, source, options);
}

RunResult RunRelative(pps::RateLimitedOqSwitch& sw,
                      traffic::TrafficSource& source,
                      const RunOptions& options) {
  fabric::RateLimitedOqFabric fabric(sw);
  return SlotEngine().Run(fabric, source, options);
}

std::vector<audit::RqdEpoch> DegradedRqdEpochs(
    const fault::FaultSchedule& schedule, const pps::SwitchConfig& config,
    sim::Slot slack) {
  std::vector<audit::RqdEpoch> epochs;
  for (const fault::FaultSchedule::Epoch& e : schedule.FailureEpochs()) {
    const double bound = bounds::DegradedIyerMcKeownUpper(
        config.rate_ratio, config.num_ports, config.num_planes,
        e.planes_down);
    audit::RqdEpoch out{e.from, sim::kNoSlot};
    if (std::isfinite(bound)) {
      out.upper_bound = sim::SlotPlus(static_cast<sim::Slot>(bound), slack);
    }
    epochs.push_back(out);
  }
  return epochs;
}

std::string Summarize(const RunResult& result) {
  std::ostringstream os;
  os << "cells=" << result.cells << " slots=" << result.duration
     << (result.drained ? "" : " UNDRAINED") << " B=" << result.traffic_burstiness
     << " maxRQD=" << result.max_relative_delay
     << " maxRDJ=" << result.max_relative_jitter
     << " meanRQD=" << result.relative_delay.mean()
     << (result.order_preserved ? "" : " ORDER-VIOLATION");
  return os.str();
}

}  // namespace core
