#include "core/harness.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <unordered_map>

#include <cmath>

#include "audit/enabled.h"
#include "core/bounds.h"
#include "sim/error.h"
#include "switch/config.h"

namespace core {
namespace {

// Per-flow min/max tracker for jitter computation.
struct MinMax {
  sim::Slot min = 0;
  sim::Slot max = 0;
  bool seen = false;

  void Add(sim::Slot v) {
    if (!seen) {
      min = max = v;
      seen = true;
    } else {
      min = std::min(min, v);
      max = std::max(max, v);
    }
  }
};

// A cell in flight in at least one of the two switches.  Entries are
// erased as soon as both departures are known, so memory stays bounded by
// the larger of the two backlogs rather than the run length.
struct PendingCell {
  sim::Slot arrival = sim::kNoSlot;
  sim::PortId input = sim::kNoPort;
  sim::PortId output = sim::kNoPort;
  sim::Slot pps_delay = sim::kNoSlot;
  sim::Slot shadow_delay = sim::kNoSlot;
  // The measured switch dropped this cell at Inject: it will never depart,
  // so the entry is reclaimed as soon as the shadow delivers its copy.
  bool pps_dropped = false;
};

// The measured switch's loss ledger, for fabrics that keep one (the CIOQ
// crossbar is lossless and reports an empty breakdown).
template <typename PpsT>
fault::LossBreakdown LossesOf(const PpsT& pps) {
  if constexpr (requires { pps.Losses(); }) {
    return pps.Losses();
  } else {
    return {};
  }
}

// Total cells lost inside the measured switch.
template <typename PpsT>
std::uint64_t LostInSwitch(const PpsT& pps) {
  return LossesOf(pps).total();
}

// Shared implementation over the fabric types: they expose the same
// Inject/Advance/Drained/config surface.
template <typename PpsT>
RunResult RunImpl(PpsT& pps, traffic::TrafficSource& source,
                  const RunOptions& options) {
  const auto& config = pps.config();
  const sim::PortId n = config.num_ports;

  pps::OutputQueuedSwitch shadow(n);
  traffic::BurstinessMeter meter(n);

  sim::LatencyRecorder pps_rec;
  sim::LatencyRecorder oq_rec;
  pps_rec.set_num_ports(n);
  oq_rec.set_num_ports(n);

  std::unordered_map<sim::FlowId, std::uint64_t> seq;
  std::unordered_map<sim::CellId, PendingCell> pending;
  std::unordered_map<sim::FlowId, MinMax> jitter_pps, jitter_oq;
  sim::CellId next_id = 0;

  RunResult result;

  // The effective fault timeline: the schedule from the options with the
  // legacy single-failure knob folded in.  LinkDrop windows are armed on
  // the fabric up front (they are stateless per-dispatch trials); plane
  // fail/recover events are applied by the per-slot cursor below.
  fault::FaultSchedule schedule = options.fault_schedule;
  if (options.fail_plane_at != sim::kNoSlot) {
    schedule.Fail(options.fail_plane, options.fail_plane_at);
  }
  if constexpr (requires { pps.link_faults(); }) {
    if (!schedule.empty()) {
      pps.link_faults().Seed(schedule.seed());
      for (const fault::FaultEvent& ev : schedule.events()) {
        if (ev.kind == fault::FaultKind::kLinkDrop) {
          pps.link_faults().AddWindow(ev.input, ev.plane, ev.probability,
                                      ev.at, ev.window);
        }
      }
    }
  }
  std::size_t fault_cursor = 0;

  // Model-invariant auditing.  An explicitly attached auditor always
  // observes the measured switch; under -DPPS_AUDIT=ON a fresh pair of
  // auditors (measured + shadow) is constructed for every run instead.
  const fault::LossBreakdown losses_base = LossesOf(pps);
  const std::uint64_t lost_base = losses_base.total();
  audit::InvariantAuditor* aud = options.auditor;
  audit::InvariantAuditor* shadow_aud = nullptr;
#if PPS_AUDIT_ENABLED
  std::optional<audit::InvariantAuditor> auto_aud;
  std::optional<audit::InvariantAuditor> auto_shadow_aud;
  // Auto-audit needs the cell-conservation ledger to start from zero, so
  // it only engages when the switch is empty at run start (the normal
  // case; reused undrained switches keep their explicit auditor if any).
  if (aud == nullptr && pps.TotalBacklog() == 0) {
    audit::InvariantAuditor::Options aopts;
    aopts.rqd_upper_bound = options.audit_rqd_upper_bound;
    aopts.rqd_lower_bound = options.audit_rqd_lower_bound;
    aopts.rqd_epochs = options.audit_rqd_epochs;
    // A first-delivered-first-out mux legitimately reorders flows that
    // straddle planes; per-flow order is only promised under resequencing.
    if constexpr (requires { pps.config().mux_policy; }) {
      aopts.check_flow_order =
          pps.config().mux_policy == pps::MuxPolicy::kOldestCellReseq;
    }
    auto_aud.emplace(n, aopts);
    aud = &*auto_aud;
    audit::InvariantAuditor::Options sopts;
    sopts.check_work_conservation = true;  // the reference discipline
    auto_shadow_aud.emplace(n, sopts);
    shadow_aud = &*auto_shadow_aud;
  }
#endif

  auto finalize = [&](sim::CellId id, PendingCell& cell) {
    // Both delays are known here (checked by the callers); SlotDifference
    // asserts neither is still the kNoSlot sentinel.
    const sim::Slot rel =
        sim::SlotDifference(cell.pps_delay, cell.shadow_delay);
    if (aud != nullptr) {
      aud->OnRelativeDelay(cell.input, cell.output, cell.arrival, rel);
    }
    result.relative_delay.Add(rel);
    result.max_relative_delay = std::max(result.max_relative_delay, rel);
    if (options.keep_timeline) {
      result.timeline.push_back({cell.arrival, rel, cell.input, cell.output});
    }
    const sim::FlowId flow = sim::MakeFlowId(cell.input, cell.output, n);
    jitter_pps[flow].Add(cell.pps_delay);
    jitter_oq[flow].Add(cell.shadow_delay);
    pending.erase(id);
  };

  sim::Slot exhausted_at = sim::kNoSlot;
  std::uint64_t known_lost = LostInSwitch(pps);
  sim::Slot t = 0;
  for (; t < options.max_slots; ++t) {
    // Apply this slot's plane fail/recover events before arrivals, so the
    // fabric's ground truth (and, modulo the visibility lag, the
    // demultiplexors' beliefs) is up to date when dispatch decisions run.
    if constexpr (requires {
                    pps.FailPlane(sim::PlaneId{0}, t);
                    pps.RecoverPlane(sim::PlaneId{0}, t);
                  }) {
      while (fault_cursor < schedule.events().size() &&
             schedule.events()[fault_cursor].at <= t) {
        const fault::FaultEvent& ev = schedule.events()[fault_cursor++];
        if (ev.kind == fault::FaultKind::kPlaneFail) {
          pps.FailPlane(ev.plane, t);
        } else if (ev.kind == fault::FaultKind::kPlaneRecover) {
          pps.RecoverPlane(ev.plane, t);
        }
        // kLinkDrop windows were armed before the run.
        // Cells stranded inside a failed plane bump the loss counter
        // without naming ids; their entries are reconciled by the sweeps.
        known_lost = LostInSwitch(pps);
      }
    }
    const bool cut =
        options.source_cutoff > 0 && t >= options.source_cutoff;
    std::vector<sim::Arrival> arrivals =
        cut ? std::vector<sim::Arrival>{} : source.ArrivalsAt(t);
    std::sort(arrivals.begin(), arrivals.end());
    for (std::size_t a = 0; a < arrivals.size(); ++a) {
      if (a > 0) {
        SIM_CHECK(arrivals[a].input != arrivals[a - 1].input,
                  "source emitted two cells on input " << arrivals[a].input
                                                       << " in slot " << t);
      }
      // Range-check before MakeFlowId: a source emitting kNoPort or an
      // out-of-range port would otherwise wrap into a garbage flow id.
      SIM_CHECK(arrivals[a].input >= 0 && arrivals[a].input < n &&
                    arrivals[a].output >= 0 && arrivals[a].output < n,
                "source emitted out-of-range ports (" << arrivals[a].input
                                                      << " -> "
                                                      << arrivals[a].output
                                                      << ") in slot " << t);
      sim::Cell cell;
      cell.id = next_id++;
      cell.input = arrivals[a].input;
      cell.output = arrivals[a].output;
      cell.seq = seq[sim::MakeFlowId(cell.input, cell.output, n)]++;
      cell.arrival = t;
      meter.Record(t, cell.input, cell.output);
      auto [slot_it, inserted] = pending.emplace(
          cell.id, PendingCell{t, cell.input, cell.output,
                               sim::kNoSlot, sim::kNoSlot, false});
      SIM_CHECK(inserted, "duplicate cell id " << cell.id);
      if (aud != nullptr) aud->OnInject(cell, t);
      if (shadow_aud != nullptr) shadow_aud->OnInject(cell, t);
      pps.Inject(cell, t);
      shadow.Inject(cell, t);
      ++result.cells;
      // A synchronous Inject drop (plane failures / exhausted static
      // partition) means this cell will never depart the measured switch:
      // mark the entry so it is reclaimed once the shadow delivers it,
      // instead of leaking for the rest of the run.
      const std::uint64_t lost = LostInSwitch(pps);
      if (lost != known_lost) {
        known_lost = lost;
        slot_it->second.pps_dropped = true;
        ++result.dropped;
      }
    }

    for (const sim::Cell& cell : pps.Advance(t)) {
      if (aud != nullptr) aud->OnDepart(cell, t);
      pps_rec.Record(cell);
      auto it = pending.find(cell.id);
      SIM_CHECK(it != pending.end(), "unknown departure " << cell);
      it->second.pps_delay = cell.delay();
      if (it->second.shadow_delay != sim::kNoSlot) {
        finalize(cell.id, it->second);
      }
    }
    for (const sim::Cell& cell : shadow.Advance(t)) {
      if (shadow_aud != nullptr) shadow_aud->OnDepart(cell, t);
      oq_rec.Record(cell);
      auto it = pending.find(cell.id);
      SIM_CHECK(it != pending.end(), "unknown shadow departure " << cell);
      if (it->second.pps_dropped) {
        pending.erase(it);  // the measured switch lost it at Inject
        continue;
      }
      it->second.shadow_delay = cell.delay();
      if (it->second.pps_delay != sim::kNoSlot) {
        finalize(cell.id, it->second);
      }
    }
    // Losses recorded during Advance (buffer overflows, stranded cells)
    // carry no cell ids; fold them into the baseline so they are not
    // misattributed to the next injected cell.
    known_lost = LostInSwitch(pps);
    if (aud != nullptr) {
      aud->OnSlotEnd(t, pps.TotalBacklog(), known_lost - lost_base);
    }
    if (shadow_aud != nullptr) {
      shadow_aud->OnSlotEnd(t, shadow.TotalBacklog());
    }

    // Periodic reconciliation against the loss counters: cells lost with
    // no id (stranded in a failed plane, buffer overflows) leave pending
    // entries that only drain at run end otherwise.  Whenever the measured
    // switch is drained, an entry whose shadow copy has departed but whose
    // measured copy never did can never be finalized — reclaim it now so
    // pending memory stays bounded by the in-flight backlog in long fault
    // runs, not by the run length.  (Entries whose shadow copy is still
    // queued are reclaimed by the shadow-departure path or a later sweep.)
    constexpr sim::Slot kReconcilePeriod = 1024;
    if (known_lost > 0 && (t + 1) % kReconcilePeriod == 0 && pps.Drained()) {
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->second.pps_delay == sim::kNoSlot &&
            it->second.shadow_delay != sim::kNoSlot) {
          ++result.dropped;
          it = pending.erase(it);
        } else {
          ++it;
        }
      }
    }

    if (exhausted_at == sim::kNoSlot &&
        (cut || source.Exhausted(t + 1))) {
      exhausted_at = t + 1;
    }
    if (exhausted_at != sim::kNoSlot) {
      const bool drained = pps.Drained() && shadow.Drained();
      if (drained) {
        result.drained = true;
        ++t;
        break;
      }
      if (options.drain_grace > 0 &&
          sim::SlotDifference(t, exhausted_at) >= options.drain_grace) {
        ++t;
        break;
      }
    }
  }
  result.duration = t;
  result.drained = pps.Drained() && shadow.Drained();
  // Reconcile losses that carried no cell id (stranded in a failed plane,
  // buffer overflows, inject drops whose shadow copy is still queued):
  // once the measured switch is drained, an entry with no departure can
  // never get one.  Erase such leaks so tracked state matches the
  // finalized cells exactly.
  if (pps.Drained()) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->second.pps_delay == sim::kNoSlot) {
        if (!it->second.pps_dropped) ++result.dropped;
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  }
  result.losses = LossesOf(pps) - losses_base;
  result.traffic_burstiness = meter.OutputBurstiness();
  result.order_preserved = pps_rec.order_preserved();
  result.resequencing_stalls = pps.resequencing_stalls();
  result.pps_delay = pps_rec.delay_stats();
  result.shadow_delay = oq_rec.delay_stats();

  for (const auto& [flow, mm] : jitter_pps) {
    if (!mm.seen) continue;
    const auto& qq = jitter_oq.at(flow);
    const sim::Slot jp = mm.max - mm.min;
    const sim::Slot jq = qq.max - qq.min;
    result.max_relative_jitter =
        std::max(result.max_relative_jitter, jp - jq);
  }
  if (options.keep_timeline) {
    std::sort(result.timeline.begin(), result.timeline.end(),
              [](const CellRelative& a, const CellRelative& b) {
                return a.arrival < b.arrival;
              });
  }
  if (aud != nullptr) {
    // The taxonomy reconciliation is only exact once every pending cell
    // has been resolved, i.e. when both switches drained.
    if (result.drained) {
      aud->OnLossTaxonomy(result.losses, result.dropped, t);
    }
    aud->OnRunEnd(t, pps.TotalBacklog(), known_lost - lost_base);
    result.audit_violations += aud->report().total();
  }
  if (shadow_aud != nullptr) {
    shadow_aud->OnRunEnd(t, shadow.TotalBacklog());
    result.audit_violations += shadow_aud->report().total();
  }
#if PPS_AUDIT_ENABLED
  // The audited build promises that every harness run is model-clean:
  // surface any detector hit as a hard error so ctest/sweeps fail loudly.
  if (auto_aud.has_value()) {
    SIM_CHECK(auto_aud->clean() && auto_shadow_aud->clean(),
              "measured switch: " << auto_aud->report().Summary()
                                  << "; shadow: "
                                  << auto_shadow_aud->report().Summary());
  }
#endif
  return result;
}

}  // namespace

sim::Slot RunResult::MaxRelativeDelayIn(sim::Slot from, sim::Slot to) const {
  sim::Slot best = 0;
  for (const CellRelative& c : timeline) {
    if (c.arrival >= from && c.arrival < to) {
      best = std::max(best, c.relative_delay);
    }
  }
  return best;
}

RunResult RunRelative(pps::BufferlessPps& pps, traffic::TrafficSource& source,
                      const RunOptions& options) {
  return RunImpl(pps, source, options);
}

RunResult RunRelative(pps::InputBufferedPps& pps,
                      traffic::TrafficSource& source,
                      const RunOptions& options) {
  return RunImpl(pps, source, options);
}

RunResult RunRelative(cioq::CioqSwitch& sw, traffic::TrafficSource& source,
                      const RunOptions& options) {
  return RunImpl(sw, source, options);
}

std::vector<audit::RqdEpoch> DegradedRqdEpochs(
    const fault::FaultSchedule& schedule, const pps::SwitchConfig& config,
    sim::Slot slack) {
  std::vector<audit::RqdEpoch> epochs;
  for (const fault::FaultSchedule::Epoch& e : schedule.FailureEpochs()) {
    const double bound = bounds::DegradedIyerMcKeownUpper(
        config.rate_ratio, config.num_ports, config.num_planes,
        e.planes_down);
    audit::RqdEpoch out{e.from, sim::kNoSlot};
    if (std::isfinite(bound)) {
      out.upper_bound = sim::SlotPlus(static_cast<sim::Slot>(bound), slack);
    }
    epochs.push_back(out);
  }
  return epochs;
}

std::string Summarize(const RunResult& result) {
  std::ostringstream os;
  os << "cells=" << result.cells << " slots=" << result.duration
     << (result.drained ? "" : " UNDRAINED") << " B=" << result.traffic_burstiness
     << " maxRQD=" << result.max_relative_delay
     << " maxRDJ=" << result.max_relative_jitter
     << " meanRQD=" << result.relative_delay.mean()
     << (result.order_preserved ? "" : " ORDER-VIOLATION");
  return os.str();
}

}  // namespace core
