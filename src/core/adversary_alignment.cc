#include "core/adversary_alignment.h"

#include <algorithm>
#include <memory>

#include "sim/error.h"

namespace core {
namespace {

// Probe context: every input line free.  Alignment traffic reproduces this
// in the real run by spacing a given input's cells at least r' slots
// apart, so the clone's trajectory and the live demultiplexor's coincide.
struct ProbeEnv {
  explicit ProbeEnv(const pps::SwitchConfig& config)
      : all_free(std::make_unique<bool[]>(
            static_cast<std::size_t>(config.num_planes))) {
    std::fill_n(all_free.get(), config.num_planes, true);
    ctx.now = 0;
    ctx.input_link_free = std::span<const bool>(
        all_free.get(), static_cast<std::size_t>(config.num_planes));
    ctx.global = nullptr;
  }
  std::unique_ptr<bool[]> all_free;
  pps::DispatchContext ctx;
};

sim::Cell ProbeCell(sim::PortId input, sim::PortId output) {
  sim::Cell cell;
  cell.input = input;
  cell.output = output;
  cell.arrival = 0;
  return cell;
}

// Plane the demultiplexor would choose next for (input -> output), without
// mutating it.
sim::PlaneId Peek(const pps::Demultiplexor& demux, sim::PortId input,
                  sim::PortId output, ProbeEnv& env) {
  auto clone = demux.Clone();
  return clone->Dispatch(ProbeCell(input, output), env.ctx).plane;
}

struct CandidateAlignment {
  std::vector<sim::PortId> aligned;
  std::vector<int> probes;  // per aligned input
  int total_probes = 0;
};

CandidateAlignment TryAlign(const pps::SwitchConfig& config,
                            const pps::DemuxFactory& factory,
                            sim::PortId output, sim::PlaneId target,
                            int max_probes, ProbeEnv& env) {
  CandidateAlignment result;
  for (sim::PortId i = 0; i < config.num_ports; ++i) {
    auto demux = factory(i);
    demux->Reset(config, i);
    SIM_CHECK(demux->info_model() == pps::InfoModel::kFullyDistributed,
              "the alignment adversary targets fully-distributed "
              "algorithms; got "
                  << demux->name());
    int m = 0;
    bool ok = false;
    while (m <= max_probes) {
      if (Peek(*demux, i, output, env) == target) {
        ok = true;
        break;
      }
      demux->Dispatch(ProbeCell(i, output), env.ctx);
      ++m;
    }
    if (ok) {
      result.aligned.push_back(i);
      result.probes.push_back(m);
      result.total_probes += m;
    }
  }
  return result;
}

}  // namespace

AlignmentPlan BuildAlignmentTraffic(const pps::SwitchConfig& config,
                                    const pps::DemuxFactory& factory,
                                    const AlignmentOptions& options) {
  config.Validate();
  SIM_CHECK(options.target_output >= 0 &&
                options.target_output < config.num_ports,
            "bad target output");
  ProbeEnv env(config);
  const sim::PortId j = options.target_output;
  const sim::Slot rp = config.rate_ratio;

  // Pick the plane that the most demultiplexors can be aligned to (the
  // d-partition maximiser of Theorem 6 / the pigeonhole plane of
  // Theorem 8).  Ties break toward fewer alignment cells.
  sim::PlaneId best_plane = options.forced_plane;
  CandidateAlignment best;
  if (options.search_planes) {
    for (sim::PlaneId k = 0; k < config.num_planes; ++k) {
      CandidateAlignment cand = TryAlign(config, factory, j, k,
                                         options.max_probes_per_input, env);
      if (cand.aligned.size() > best.aligned.size() ||
          (cand.aligned.size() == best.aligned.size() &&
           cand.total_probes < best.total_probes)) {
        best = std::move(cand);
        best_plane = k;
      }
    }
  } else {
    best = TryAlign(config, factory, j, options.forced_plane,
                    options.max_probes_per_input, env);
  }
  SIM_CHECK(!best.aligned.empty(),
            "alignment failed for every input (max_probes too small?)");

  if (options.burst_limit > 0 &&
      static_cast<std::size_t>(options.burst_limit) < best.aligned.size()) {
    best.aligned.resize(static_cast<std::size_t>(options.burst_limit));
    best.probes.resize(static_cast<std::size_t>(options.burst_limit));
    best.total_probes = 0;
    for (int p : best.probes) best.total_probes += p;
  }

  AlignmentPlan plan;
  plan.target_output = j;
  plan.target_plane = best_plane;
  plan.aligned_inputs = best.aligned;
  plan.probes_used = best.total_probes;

  // Phase 1: sequential alignment traffic (the A_i of Figure 2), one cell
  // per r' slots so every arrival sees all input lines free and the rate
  // toward output j never exceeds 1/r' <= R.
  sim::Slot cursor = 0;
  for (std::size_t a = 0; a < best.aligned.size(); ++a) {
    const sim::PortId i = best.aligned[a];
    for (int m = 0; m < best.probes[a]; ++m) {
      plan.trace.Add(cursor, i, j);
      cursor += rp;
    }
  }

  // Phase 2: quiet period until all plane buffers drain.  Every alignment
  // cell is gone after at most (cells so far) * r' slots of silence.
  const sim::Slot drain = static_cast<sim::Slot>(best.total_probes + 1) * rp;
  cursor = sim::SlotPlus(sim::SlotPlus(cursor, drain), options.extra_gap);

  // Phase 3: the concentration burst — d cells destined for j in d
  // consecutive slots, one per aligned input (leaky-bucket with B = 0).
  plan.burst_start = cursor;
  for (const sim::PortId i : best.aligned) {
    plan.trace.Add(cursor, i, j);
    ++cursor;
  }
  plan.burst_end = cursor;

  // Phase 4: jitter probe — after the burst drains, the flow that suffered
  // the maximal delay sends one cell through an empty switch (delay 0), so
  // its jitter equals the burst cell's delay (Lemma 4(2)).
  if (options.jitter_probe) {
    const sim::Slot settle =
        static_cast<sim::Slot>(best.aligned.size() + 1) * rp;
    cursor = sim::SlotPlus(sim::SlotPlus(cursor, settle), options.extra_gap);
    plan.trace.Add(cursor, best.aligned.back(), j);
  }

  plan.trace.Normalize();
  plan.trace.Validate(config.num_ports);
  return plan;
}

}  // namespace core
