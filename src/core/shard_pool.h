// Intra-run worker pool + process-wide thread budget.
//
// ParallelMap (core/parallel.h) parallelizes *across* runs: every sweep
// point is an independent fabric.  ShardPool parallelizes *inside* one
// run: a PPS slot decomposes into per-input demux decisions, per-plane
// calendar advancement and per-output mux departures, with the slot
// barrier as the only true synchronization point (the same decomposition
// QPS-r exploits for iterative crossbar scheduling).  The pool provides
// the fork-join primitive the sharded fabrics and the slot engine build
// those stages from:
//
//   ShardPool pool(options.threads);          // lanes = workers + caller
//   pool.Run(num_tasks, [&](std::size_t task, unsigned lane) { ... });
//
// Contract:
//   * Run(n, fn) invokes fn exactly once per task in [0, n) and returns
//     only after every invocation finished (a barrier).  Tasks may run in
//     any order and on any lane; determinism therefore requires tasks to
//     write disjoint state, with any cross-task reduction performed by
//     the caller afterwards in a fixed task-index order.
//   * `lane` in [0, lanes()) identifies the executing lane (the caller
//     participates as a lane), for per-lane scratch.  Two tasks on the
//     same lane never overlap.
//   * Exceptions: the pending tasks of the generation still run, then
//     Run rethrows the exception of the *lowest-indexed* failing task on
//     the caller thread — deterministic even when several tasks fail.
//
// Worker threads are spawned once at construction and parked on a
// condition variable between generations, so a per-slot Run costs one
// wake/sleep cycle, not thread creation.
//
// --- Thread budget -------------------------------------------------------
//
// Nested parallelism would oversubscribe: a sweep already fans out one
// thread per point (ParallelMap), and a threaded engine inside each point
// would multiply that by its shard count.  ThreadBudget is the process-
// wide ledger both spawners draw from: a spawner may create at most as
// many *extra* threads as it can lease, and leases are returned when the
// pool (or map call) retires.  Sweep workers therefore degrade inner
// shard pools toward serial instead of stacking hardware_concurrency^2
// threads — and since threaded runs are byte-identical to serial runs,
// a degraded grant never changes any result.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

namespace core {

class ThreadBudget {
 public:
  static ThreadBudget& Instance() {
    static ThreadBudget budget;
    return budget;
  }

  static unsigned DefaultLimit() {
    return std::max(1u, std::thread::hardware_concurrency());
  }

  // Leases up to `requested` worker threads; returns the grant (possibly
  // 0, meaning "run serial").  Pair with Release(grant).
  unsigned Acquire(unsigned requested) {
    std::lock_guard<std::mutex> lock(mu_);
    const unsigned available = limit_ > outstanding_ ? limit_ - outstanding_ : 0;
    const unsigned grant = std::min(requested, available);
    outstanding_ += grant;
    peak_ = std::max(peak_, outstanding_);
    return grant;
  }

  void Release(unsigned granted) {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_ -= std::min(granted, outstanding_);
  }

  // Test/tool hook; 0 restores the hardware default.
  void SetLimit(unsigned limit) {
    std::lock_guard<std::mutex> lock(mu_);
    limit_ = limit == 0 ? DefaultLimit() : limit;
  }

  unsigned limit() const {
    std::lock_guard<std::mutex> lock(mu_);
    return limit_;
  }
  unsigned outstanding() const {
    std::lock_guard<std::mutex> lock(mu_);
    return outstanding_;
  }
  // High-water mark of simultaneously leased threads since ResetPeak —
  // what the oversubscription regression test asserts on.
  unsigned peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }
  void ResetPeak() {
    std::lock_guard<std::mutex> lock(mu_);
    peak_ = outstanding_;
  }

 private:
  ThreadBudget() = default;

  mutable std::mutex mu_;
  unsigned limit_ = DefaultLimit();
  unsigned outstanding_ = 0;
  unsigned peak_ = 0;
};

// RAII lease on the process thread budget.
class ThreadLease {
 public:
  explicit ThreadLease(unsigned requested)
      : granted_(ThreadBudget::Instance().Acquire(requested)) {}
  ~ThreadLease() { ThreadBudget::Instance().Release(granted_); }

  ThreadLease(const ThreadLease&) = delete;
  ThreadLease& operator=(const ThreadLease&) = delete;

  unsigned granted() const { return granted_; }

 private:
  unsigned granted_;
};

// Scoped budget override for tests (restores the previous limit).
class ScopedThreadBudget {
 public:
  explicit ScopedThreadBudget(unsigned limit)
      : previous_(ThreadBudget::Instance().limit()) {
    ThreadBudget::Instance().SetLimit(limit);
  }
  ~ScopedThreadBudget() { ThreadBudget::Instance().SetLimit(previous_); }

  ScopedThreadBudget(const ScopedThreadBudget&) = delete;
  ScopedThreadBudget& operator=(const ScopedThreadBudget&) = delete;

 private:
  unsigned previous_;
};

class ShardPool {
 public:
  using Task = std::function<void(std::size_t task, unsigned lane)>;

  // `lanes` counts the caller: lanes <= 1 (or an exhausted budget) gives
  // a serial pool that runs everything inline on the caller.
  explicit ShardPool(unsigned lanes)
      : lease_(lanes > 1 ? lanes - 1 : 0) {
    const unsigned spawn = lease_.granted();
    workers_.reserve(spawn);
    for (unsigned w = 0; w < spawn; ++w) {
      workers_.emplace_back([this, lane = w + 1] { WorkerLoop(lane); });
    }
  }

  ~ShardPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    // jthreads join on destruction of workers_.
  }

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  // Lanes executing tasks, caller included.
  unsigned lanes() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }
  bool parallel() const { return !workers_.empty(); }

  void Run(std::size_t tasks, const Task& fn) {
    if (tasks == 0) return;
    if (!parallel() || tasks == 1) {
      for (std::size_t i = 0; i < tasks; ++i) fn(i, 0);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn_ = &fn;
      tasks_ = tasks;
      next_.store(0, std::memory_order_relaxed);
      pending_workers_ = static_cast<unsigned>(workers_.size());
      ++generation_;
    }
    wake_cv_.notify_all();
    DrainTasks(/*lane=*/0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
    fn_ = nullptr;
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      error_task_ = std::numeric_limits<std::size_t>::max();
      std::rethrow_exception(error);
    }
  }

 private:
  void WorkerLoop(unsigned lane) {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      DrainTasks(lane);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_workers_ == 0) done_cv_.notify_one();
      }
    }
  }

  void DrainTasks(unsigned lane) {
    // fn_/tasks_ are set under mu_ before workers observe the generation
    // bump (and before the caller enters), so the unlocked reads here are
    // release/acquire-ordered by the mutex.
    const Task* fn = fn_;
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks_) return;
      try {
        (*fn)(i, lane);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (i < error_task_) {
          error_task_ = i;
          error_ = std::current_exception();
        }
      }
    }
  }

  ThreadLease lease_;
  std::vector<std::jthread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  const Task* fn_ = nullptr;
  std::size_t tasks_ = 0;
  std::atomic<std::size_t> next_{0};
  unsigned pending_workers_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::size_t error_task_ = std::numeric_limits<std::size_t>::max();
};

}  // namespace core
