#include "core/metrics_json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace core::json {
namespace {

void AppendNumber(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void AppendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; serialise as null (consistent across runs).
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

std::string Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Value& Value::Set(std::string key, Value value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Value* Value::Find(std::string_view key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::Append(Value value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
}

void Value::DumpTo(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: AppendNumber(out, int_); break;
    case Kind::kDouble: AppendNumber(out, double_); break;
    case Kind::kString:
      out += '"';
      out += Escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += Escape(object_[i].first);
        out += "\":";
        if (pretty) out += ' ';
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

Value Obj(std::initializer_list<std::pair<const char*, Value>> entries) {
  Value v = Value::MakeObject();
  for (const auto& [key, value] : entries) v.Set(key, value);
  return v;
}

}  // namespace core::json
