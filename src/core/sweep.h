// Declarative experiment sweeps: a grid of points, executed in parallel,
// reported as a core::Table on stdout AND as a structured JSON document
// under bench_results/ — the machine-readable perf trajectory of the
// simulator.
//
// Every bench binary follows the same shape:
//
//   core::Sweep sweep({.bench = "bench_theorem6",
//                      .title = "Theorem 6: ...",
//                      .columns = {"algorithm", "N", ..., "RQD"}});
//   for (const Case& c : cases) {
//     sweep.Add(json::Obj({{"algorithm", c.algorithm}, {"r'", c.rate}}));
//   }
//   sweep.Run([&](const core::SweepPoint& pt) {
//     const Case& c = cases[pt.index];
//     ...simulate...
//     core::PointResult out;
//     out.cells = {...table row...};
//     out.metrics.Set("bound", bound).Set("measured", rqd)
//               .Set("cells", result.cells).Set("slots", result.duration);
//     return out;
//   }, std::cout, "footnote printed under the table");
//
// Guarantees:
//   * points execute over core::ParallelMap (one fabric per point, no
//     shared mutable state), but the table rows and the JSON points are
//     emitted in grid order, so output is byte-identical for any worker
//     count — including workers = 1;
//   * every point gets a deterministic seed derived from (base_seed,
//     bench, index), available as SweepPoint::seed for stochastic
//     workloads;
//   * per-point wall-clock time is measured and recorded as wall_ms (the
//     only JSON field allowed to differ between runs);
//   * a progress line per completed point goes to stderr (suppress with
//     PPS_SWEEP_PROGRESS=0).
//
// JSON document schema (bench_results/<bench>.json):
//   {
//     "bench":   "<bench>",
//     "git_rev": "<short rev or 'unknown'>",
//     "workers": <int>,
//     "points": [
//       {"params": {...declared grid point...},
//        ...metrics (e.g. "bound", "measured", "cells", "slots")...,
//        "wall_ms": <double>},
//       ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/metrics_json.h"

namespace core {

struct SweepOptions {
  // Output file stem: results land in <results_dir>/<bench>.json.
  std::string bench;
  // Table title and column headers (the existing core::Table contract).
  std::string title;
  std::vector<std::string> columns;
  // 0 = PPS_SWEEP_WORKERS env var if set, else hardware concurrency.
  unsigned workers = 0;
  // Mixed into every per-point seed.
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;
  // "" = PPS_BENCH_RESULTS_DIR env var if set, else "bench_results".
  // Setting the env var to the empty string suppresses the JSON output.
  // (The explicit default keeps designated initializers that stop at
  // `columns` clean under -Wmissing-field-initializers.)
  std::string results_dir = {};
  // Write the JSON document (tests disable this to keep runs hermetic).
  bool write_json = true;
  // Emit per-point progress lines on stderr.
  bool progress = true;
};

// Handed to the point function; index addresses the caller's own grid
// metadata, params echoes what was declared via Add, seed is stable across
// worker counts and runs.
struct SweepPoint {
  std::size_t index = 0;
  std::uint64_t seed = 0;
  const json::Value* params = nullptr;  // always an object
};

struct PointResult {
  // One table row, aligned with SweepOptions::columns.
  std::vector<std::string> cells;
  // Structured measurements, merged into the point's JSON object.  By
  // convention benches report "bound" / "measured" / "cells" / "slots"
  // where those quantities exist.
  json::Value metrics = json::Value::MakeObject();
};

class Sweep {
 public:
  explicit Sweep(SweepOptions options);

  // Declares one grid point; params must be a json object.  Returns its
  // index (also the order of table rows and JSON points).
  std::size_t Add(json::Value params);
  std::size_t size() const { return params_.size(); }

  // Executes every declared point, prints the table (plus an optional
  // footnote) to os, writes the JSON document, and returns it.
  json::Value Run(const std::function<PointResult(const SweepPoint&)>& fn,
                  std::ostream& os, const std::string& footnote = "");

  // The worker count Run will use after env overrides.
  unsigned effective_workers() const;

 private:
  SweepOptions options_;
  std::vector<json::Value> params_;
};

// Deterministic per-point seed: SplitMix64 over (base_seed, bench, index).
std::uint64_t SweepSeed(std::uint64_t base_seed, const std::string& bench,
                        std::size_t index);

// Short git revision of the working tree ("unknown" outside a checkout;
// override with PPS_GIT_REV).  Cached after the first call.
const std::string& GitRevision();

// Serialises a sweep document's points with the volatile "wall_ms" field
// stripped — the byte-identity contract for determinism tests.
std::string StablePointsDump(const json::Value& doc);

}  // namespace core
