// The Theorem-6 adversary (Figure 2 of the paper): state-alignment traffic
// for fully-distributed demultiplexing algorithms.
//
// Proof recipe, made constructive:
//   1. For every input i, find traffic A_i that drives demultiplexor i
//      into a state sigma_i from which its next cell destined for output j
//      goes to the target plane k.  Because the algorithm is fully
//      distributed and deterministic, this can be computed on a *clone* of
//      the demultiplexor, feeding it probe cells one at a time with every
//      input line free — exactly the situation the real run reproduces
//      when alignment cells are spaced r' slots apart.
//   2. Play the A_i sequentially (traffic "LB"), then send nothing until
//      every plane buffer drains (fully-distributed demultiplexors do not
//      change state without arrivals).
//   3. Fire the concentration burst: the d aligned inputs send one cell
//      each, destined for j, in d consecutive slots.  All d cells land in
//      plane k, which can forward only one cell per r' slots to output j.
//   4. (For jitter) after the burst drains, the worst-delayed flow sends
//      one more cell through an empty switch: its delay is 0, so the
//      flow's jitter equals the burst cell's delay.
//
// The resulting traffic is leaky-bucket with B = 0: cells destined for j
// are sent at most one per slot, and each input sends at most one cell per
// slot.  (Verified by traffic::BurstinessMeter in the tests.)
#pragma once

#include <string>
#include <vector>

#include "switch/config.h"
#include "switch/demux_iface.h"
#include "traffic/trace.h"

namespace core {

struct AlignmentPlan {
  traffic::Trace trace;
  sim::PortId target_output = 0;
  sim::PlaneId target_plane = 0;
  std::vector<sim::PortId> aligned_inputs;  // the d burst senders
  sim::Slot burst_start = 0;                // first slot of the burst
  sim::Slot burst_end = 0;                  // one past the last burst slot
  int probes_used = 0;                      // alignment cells injected

  int d() const { return static_cast<int>(aligned_inputs.size()); }
};

struct AlignmentOptions {
  sim::PortId target_output = 0;
  // Give up aligning an input after this many probe cells (covers
  // partitioned algorithms whose state can never reach some planes).
  int max_probes_per_input = 256;
  // Try every plane and keep the one aligning the most inputs when true;
  // otherwise use only plane `forced_plane`.
  bool search_planes = true;
  sim::PlaneId forced_plane = 0;
  // Extra quiet slots appended after the drain gap (safety margin).
  sim::Slot extra_gap = 8;
  // Append the post-burst jitter probe cell.
  bool jitter_probe = true;
  // Fire only the first `burst_limit` aligned inputs in the concentration
  // burst (0 = all of them).  Used to sweep the concentration size c of
  // Lemma 4 independently of how many inputs could be aligned.
  int burst_limit = 0;
};

// Builds the Theorem-6 traffic for the algorithm produced by `factory`.
// The factory must produce fully-distributed demultiplexors (checked).
AlignmentPlan BuildAlignmentTraffic(const pps::SwitchConfig& config,
                                    const pps::DemuxFactory& factory,
                                    const AlignmentOptions& options = {});

}  // namespace core
