#include "serve/checkpoint_rotation.h"

#include <algorithm>
#include <utility>

#include "sim/error.h"

namespace serve {

namespace {

constexpr int kGenDigits = 8;

// Parses the generation number out of "<base_name>.g<8 digits>", or -1.
std::int64_t ParseGen(const std::string& name, const std::string& base_name) {
  const std::string prefix = base_name + ".g";
  if (name.size() != prefix.size() + kGenDigits) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  std::int64_t gen = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    gen = gen * 10 + (c - '0');
  }
  return gen;
}

}  // namespace

CheckpointRotation::CheckpointRotation(ckpt::Io& io, std::string base,
                                       int keep)
    : io_(io), keep_(keep) {
  SIM_CHECK(keep_ >= 1, "checkpoint rotation needs keep >= 1, got " << keep_);
  SIM_CHECK(!base.empty(), "checkpoint rotation needs a base path");
  const std::size_t slash = base.find_last_of('/');
  if (slash == std::string::npos) {
    // std::string temporaries, not const char* assignment: GCC 12's
    // -Wrestrict misfires on the _M_replace path under -Werror (PR105329).
    dir_ = std::string(".");
    base_name_ = std::move(base);
  } else {
    dir_ = base.substr(0, slash);
    base_name_ = base.substr(slash + 1);
  }
  SIM_CHECK(!base_name_.empty(),
            "checkpoint rotation base path ends in '/': " << dir_ << '/');

  std::int64_t min_gen = -1;
  std::int64_t max_gen = -1;
  for (const std::string& name : io_.ListDir(dir_)) {
    const std::int64_t gen = ParseGen(name, base_name_);
    if (gen < 0) continue;
    had_initial_files_ = true;
    if (min_gen < 0 || gen < min_gen) min_gen = gen;
    if (gen > max_gen) max_gen = gen;
  }
  if (max_gen >= 0) {
    next_gen_ = max_gen + 1;
    oldest_ = min_gen;
  }
}

std::string CheckpointRotation::GenPath(std::int64_t gen) const {
  std::string digits = std::to_string(gen);
  if (digits.size() < kGenDigits) {
    digits.insert(0, kGenDigits - digits.size(), '0');
  }
  return dir_ + "/" + base_name_ + ".g" + digits;
}

void CheckpointRotation::Write(const ckpt::Writer& writer) {
  ckpt::WriteFile(GenPath(next_gen_), writer, io_);
  ++next_gen_;
  ++generations_written_;
  while (oldest_ + keep_ < next_gen_) {
    io_.Remove(GenPath(oldest_));
    ++oldest_;
  }
}

std::optional<std::string> CheckpointRotation::NewestValidPath() {
  for (std::int64_t gen = next_gen_ - 1; gen >= oldest_; --gen) {
    const std::string path = GenPath(gen);
    if (!io_.Exists(path)) continue;
    try {
      ckpt::ReadFile(path, io_);  // container validation only
      return path;
    } catch (const sim::SimError&) {
      // Torn, corrupt, or unreadable: fall back to the next older one.
    }
  }
  return std::nullopt;
}

void CheckpointRotation::MarkBad(const std::string& path) {
  for (std::int64_t gen = oldest_; gen < next_gen_; ++gen) {
    if (GenPath(gen) == path) {
      io_.Remove(path);
      return;
    }
  }
}

}  // namespace serve
