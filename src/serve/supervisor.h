// The self-healing serve supervisor: a crash-safe wrapper around the slot
// engine.
//
// The engine (core/slot_engine.cc) already guarantees that
// checkpoint-at-S + restore-and-continue is byte-identical to the
// uninterrupted run.  The supervisor turns that primitive into an
// *automatic* property of a whole run:
//
//   write side   every checkpoint boundary goes through a
//                CheckpointRotation (keep last N generations, atomic,
//                CRC'd), so one bad write never destroys the only copy;
//   failure      a sim::SimError out of the run is classified by type —
//                ckpt::IoError (transient: retry after exponential
//                backoff), ckpt::CorruptError (the restore file is bad:
//                discard it and fall back to an older generation),
//                anything else (model/config: fatal, rethrown);
//   replay       each retry reconstructs the fabric and source from
//                factories and resumes from the newest valid generation;
//                window rows the previous attempt already emitted are
//                deduplicated by their monotone index, so the downstream
//                consumer sees exactly the uninterrupted row sequence;
//   budget       the retry counter counts *consecutive failures without
//                progress* — it resets whenever an attempt lands a new
//                valid generation — and RetriesExhaustedError ends runs
//                that fail without ever advancing;
//   fatal floor  when generations exist (on disk at startup, or written
//                by this process) and none validates, the supervisor
//                throws NoValidCheckpointError instead of silently
//                restarting from slot 0 and emitting wrong (duplicate)
//                results.
//
// The acceptance bar, proven in tests/test_serve.cc: a run failed and
// recovered K times under injected I/O faults produces RunResult fields
// and window rows byte-identical (bit_cast-level for doubles) to the
// uninterrupted golden run.  DESIGN.md "Recovery model" has the state
// diagram; tools/pps_serve.cc maps the error types to exit codes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/harness.h"
#include "serve/checkpoint_rotation.h"
#include "sim/error.h"

namespace fabric {
class Fabric;
}  // namespace fabric

namespace serve {

// Process exit codes pps_serve maps run outcomes to (documented in
// README.md; scripts/crash_recovery.sh asserts them).
inline constexpr int kExitOk = 0;                 // finished or graceful stop
inline constexpr int kExitUsage = 2;              // bad flags
inline constexpr int kExitFatal = 3;              // model/config SimError
inline constexpr int kExitRetriesExhausted = 4;   // RetriesExhaustedError
inline constexpr int kExitNoValidCheckpoint = 5;  // NoValidCheckpointError

// The retry budget ran out: max_retries consecutive attempts failed with
// recoverable errors and no new generation was written between them.
class RetriesExhaustedError : public sim::SimError {
 public:
  explicit RetriesExhaustedError(const std::string& what)
      : sim::SimError(what) {}
};

// Checkpoint generations exist but none validates (all torn/corrupt).
// Restarting from slot 0 would re-emit rows the consumer already has, so
// this is fatal by design.
class NoValidCheckpointError : public sim::SimError {
 public:
  explicit NoValidCheckpointError(const std::string& what)
      : sim::SimError(what) {}
};

struct SupervisorOptions {
  // Generation base path: generations land at "<base>.g00000000", ...
  std::string checkpoint_base;
  // Generations to keep (--keep-checkpoints).
  int keep_checkpoints = 3;
  // Max consecutive recoverable failures without progress (--max-retries).
  int max_retries = 5;
  // Exponential backoff for transient (IoError) failures: attempt n waits
  // min(backoff_base_ms << (n-1), backoff_cap_ms).  Corrupt-checkpoint
  // fallback retries immediately — waiting cannot un-corrupt a file.
  std::int64_t backoff_base_ms = 100;
  std::int64_t backoff_cap_ms = 5000;
  // Filesystem seam (null = real filesystem).  Tests thread a
  // ckpt::FaultyIo through here; the engine inherits it via
  // RunOptions::checkpoint_io.
  ckpt::Io* io = nullptr;
  // Backoff sleeper (null = std::this_thread::sleep_for).  Injectable so
  // tests run instantly; must not read wall clocks.
  std::function<void(std::int64_t)> sleep_ms;
  // Recovery narration (retry/fallback/give-up events), one line per
  // call; null = silent.  pps_serve points this at stderr.
  std::function<void(const std::string&)> log;
};

class Supervisor {
 public:
  using FabricFactory = std::function<std::unique_ptr<fabric::Fabric>()>;
  using SourceFactory =
      std::function<std::unique_ptr<traffic::TrafficSource>()>;

  explicit Supervisor(SupervisorOptions options);

  // Runs `base` to completion under supervision, reconstructing the
  // fabric/source from the factories for every attempt.  `base` must have
  // checkpoint_every > 0; its checkpoint_path/resume_from/checkpoint_sink
  // are owned by the supervisor and must be empty — except resume_from,
  // which may name an explicit (non-generation) checkpoint to start from
  // when no generations exist yet.
  //
  // Returns the completed RunResult (RunResult::interrupted set when a
  // graceful stop ended the run early).  Throws RetriesExhaustedError,
  // NoValidCheckpointError, or the original fatal sim::SimError.
  core::RunResult Run(const FabricFactory& make_fabric,
                      const SourceFactory& make_source,
                      const core::RunOptions& base);

  // Attempts made by the last Run (1 = no recovery needed).
  int attempts() const { return attempts_; }

 private:
  SupervisorOptions options_;
  int attempts_ = 0;
};

}  // namespace serve
