// Checkpoint generation rotation: keep the last N snapshots, restore from
// the newest one that validates.
//
// A single checkpoint file is a single point of failure — the exact
// scenario PR 7's atomic tmp+rename cannot cover is filesystem-level
// damage *after* the rename (torn sectors, bit rot, an injected
// short-write in tests).  Rotation turns "the checkpoint is corrupt" from
// run-fatal into a bounded rollback: generations are written as
//   <base>.g00000000, <base>.g00000001, ...
// monotonically, the oldest pruned once more than `keep` exist, and
// restore walks newest → oldest, taking the first file whose container
// validates (magic, version, size, CRC — ckpt::ReadFile).  The price of a
// fallback is bounded replay work: at most keep × checkpoint_every slots.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ckpt/io.h"
#include "ckpt/serializer.h"

namespace serve {

class CheckpointRotation {
 public:
  // Scans for existing "<base>.g<8 digits>" generations through `io` (so
  // a restart resumes the numbering instead of overwriting) and remembers
  // whether any were present — the supervisor's all-corrupt fatal rule
  // keys off that.
  CheckpointRotation(ckpt::Io& io, std::string base, int keep);

  // Writes the snapshot as the next generation (atomic, CRC'd container)
  // and prunes generations beyond `keep`.  Throws ckpt::IoError through
  // from the write — the caller decides whether that is retryable.
  void Write(const ckpt::Writer& writer);

  // The newest generation whose *container* validates (payload-level
  // validation happens when the engine actually restores).  Generations
  // that fail are skipped, not deleted — a later fsck may still want the
  // bytes; MarkBad is the explicit discard.
  std::optional<std::string> NewestValidPath();

  // Discards a generation the engine rejected at restore time (payload
  // corruption below the container layer), so the next NewestValidPath
  // falls back to an older one.  Paths not produced by this rotation are
  // ignored.
  void MarkBad(const std::string& path);

  // Path of generation `gen` (for tests and external tooling).
  std::string GenPath(std::int64_t gen) const;

  // True when generation files existed before this process wrote any.
  bool had_initial_files() const { return had_initial_files_; }
  // Generations successfully written by this instance.
  std::int64_t generations_written() const { return generations_written_; }
  std::int64_t next_gen() const { return next_gen_; }
  std::int64_t oldest_gen() const { return oldest_; }
  int keep() const { return keep_; }

 private:
  ckpt::Io& io_;
  std::string dir_;        // directory part of base ("." when none)
  std::string base_name_;  // file-name part of base
  int keep_;
  bool had_initial_files_ = false;
  std::int64_t next_gen_ = 0;  // next generation number to write
  std::int64_t oldest_ = 0;    // oldest generation not yet pruned
  std::int64_t generations_written_ = 0;
};

}  // namespace serve
