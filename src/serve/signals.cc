#include "serve/signals.h"

#include <csignal>

#include "sim/error.h"

namespace serve {

namespace {

std::atomic<bool>* g_stop_flag = nullptr;

extern "C" void HandleStopSignal(int /*signum*/) {
  // Only a lock-free atomic store: the one operation (besides
  // sig_atomic_t) the standard allows in a handler.
  if (g_stop_flag != nullptr) {
    g_stop_flag->store(true, std::memory_order_release);
  }
}

}  // namespace

void InstallStopHandlers(std::atomic<bool>& flag) {
  SIM_CHECK(flag.is_lock_free(),
            "std::atomic<bool> is not lock-free on this platform; signal "
            "handlers cannot use it");
  g_stop_flag = &flag;
  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking calls too
  SIM_CHECK(sigaction(SIGINT, &action, nullptr) == 0,
            "cannot install SIGINT handler");
  SIM_CHECK(sigaction(SIGTERM, &action, nullptr) == 0,
            "cannot install SIGTERM handler");
}

}  // namespace serve
