// Graceful-shutdown signal plumbing for pps_serve.
//
// SIGINT/SIGTERM are latched into an atomic flag the engine polls at slot
// boundaries (RunOptions::stop_flag): the current slot completes, a final
// resumable checkpoint is written, the windowed partial row goes out, and
// the process exits 0.  Only SIGKILL skips all of that — which is exactly
// the case scripts/crash_recovery.sh proves recoverable from the outside.
#pragma once

#include <atomic>

namespace serve {

// Installs SIGINT/SIGTERM handlers that store `true` into `flag` (which
// must outlive the handlers — pps_serve uses a process-lifetime atomic).
// The handlers do nothing else: std::atomic<bool> stores are async-signal
// safe when lock-free, which SIM_CHECKed at install time.
void InstallStopHandlers(std::atomic<bool>& flag);

}  // namespace serve
