#include "serve/supervisor.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "fabric/fabric.h"
#include "traffic/source.h"

namespace serve {

namespace {

void DefaultSleepMs(std::int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  SIM_CHECK(!options_.checkpoint_base.empty(),
            "supervisor needs a checkpoint_base");
  SIM_CHECK(options_.keep_checkpoints >= 1,
            "supervisor needs keep_checkpoints >= 1, got "
                << options_.keep_checkpoints);
  SIM_CHECK(options_.max_retries >= 0,
            "supervisor needs max_retries >= 0, got " << options_.max_retries);
  if (!options_.sleep_ms) options_.sleep_ms = DefaultSleepMs;
}

core::RunResult Supervisor::Run(const FabricFactory& make_fabric,
                                const SourceFactory& make_source,
                                const core::RunOptions& base) {
  SIM_CHECK(base.checkpoint_every > 0,
            "the supervisor requires checkpoint_every > 0 (it recovers by "
            "rolling back to checkpoints)");
  SIM_CHECK(base.checkpoint_path.empty() && !base.checkpoint_sink,
            "checkpoint_path/checkpoint_sink are owned by the supervisor");

  ckpt::Io& io = options_.io != nullptr ? *options_.io : ckpt::DefaultIo();
  CheckpointRotation rotation(io, options_.checkpoint_base,
                              options_.keep_checkpoints);

  const auto note = [this](const std::string& line) {
    if (options_.log) options_.log(line);
  };

  attempts_ = 0;
  int consecutive_failures = 0;
  // Monotone dedup cursor over window rows: replayed slots re-emit rows a
  // previous attempt already delivered (bit-identical, by the engine's
  // restore guarantee); only indices >= the cursor reach the consumer.
  std::uint64_t next_window_index = 0;

  for (;;) {
    ++attempts_;

    std::string resume;
    bool resume_is_generation = false;
    if (std::optional<std::string> newest = rotation.NewestValidPath()) {
      resume = *newest;
      resume_is_generation = true;
    } else if (rotation.had_initial_files() ||
               rotation.generations_written() > 0) {
      throw NoValidCheckpointError(
          "serve: no checkpoint generation under '" +
          options_.checkpoint_base +
          "' validates (all torn or corrupt); refusing to restart from "
          "slot 0 and re-emit rows the consumer already has");
    } else if (!base.resume_from.empty()) {
      // Explicit starting checkpoint, used only until the first
      // generation exists.
      resume = base.resume_from;
    }

    std::unique_ptr<fabric::Fabric> fabric = make_fabric();
    std::unique_ptr<traffic::TrafficSource> source = make_source();

    core::RunOptions opts = base;
    opts.resume_from = resume;
    opts.checkpoint_io = &io;
    opts.checkpoint_path.clear();
    opts.checkpoint_sink = [&rotation](const ckpt::Writer& w, sim::Slot,
                                       bool) { rotation.Write(w); };
    if (base.on_window) {
      opts.on_window = [&next_window_index,
                        emit = base.on_window](const core::WindowRow& row) {
        if (row.index < next_window_index) return;
        next_window_index = row.index + 1;
        emit(row);
      };
    }

    const std::int64_t gens_before = rotation.generations_written();
    try {
      return core::RunRelative(*fabric, *source, opts);
    } catch (const ckpt::CorruptError& e) {
      // The restore source is bad.  Waiting will not fix bytes: discard
      // the generation and fall back immediately.
      consecutive_failures = rotation.generations_written() > gens_before
                                 ? 1
                                 : consecutive_failures + 1;
      if (resume_is_generation) {
        rotation.MarkBad(resume);
        note("serve: attempt " + std::to_string(attempts_) +
             ": checkpoint " + resume + " is corrupt (" + e.what() +
             "); falling back to an older generation");
      } else if (!resume.empty()) {
        throw NoValidCheckpointError(
            "serve: explicit resume checkpoint '" + resume +
            "' is corrupt and no generations exist: " + e.what());
      }
      if (consecutive_failures > options_.max_retries) {
        throw RetriesExhaustedError(
            "serve: " + std::to_string(consecutive_failures) +
            " consecutive recoverable failures without progress (budget " +
            std::to_string(options_.max_retries) + "); last: " + e.what());
      }
    } catch (const ckpt::IoError& e) {
      // The filesystem misbehaved (ENOSPC, failed fsync, read error):
      // transient by classification — retry after exponential backoff.
      consecutive_failures = rotation.generations_written() > gens_before
                                 ? 1
                                 : consecutive_failures + 1;
      if (consecutive_failures > options_.max_retries) {
        throw RetriesExhaustedError(
            "serve: " + std::to_string(consecutive_failures) +
            " consecutive recoverable failures without progress (budget " +
            std::to_string(options_.max_retries) + "); last: " + e.what());
      }
      const int exponent = std::min(consecutive_failures - 1, 20);
      const std::int64_t backoff_ms =
          std::min(options_.backoff_cap_ms,
                   options_.backoff_base_ms << exponent);
      note("serve: attempt " + std::to_string(attempts_) +
           ": transient I/O failure (" + e.what() + "); retrying in " +
           std::to_string(backoff_ms) + " ms");
      options_.sleep_ms(backoff_ms);
    }
    // Any other sim::SimError is a model/config error: deliberately not
    // caught — it propagates to the caller as fatal.
  }
}

}  // namespace serve
