// Canonical multi-hop scenario generators.
//
// The 3-stage Clos network is the shape the ROADMAP's "switching for
// millions of users" question is really about: r external ports per leaf,
// m ingress leaves fanning out over n spines and back down to m egress
// leaves.  Every node is one registered fabric — so the per-hop RQD of a
// PPS (the paper's subject) composes with the fan-out/load geometry of
// the network around it.
#pragma once

#include <string>

#include "sim/types.h"
#include "switch/config.h"
#include "topo/topology.h"

namespace topo {

// Builds a 3-stage Clos scenario:
//
//   * `leaves`   ingress leaf switches and the same number of egress leaf
//     switches (named in0..in{m-1} / out0..out{m-1});
//   * `spines`   middle-stage switches (sp0..sp{n-1}), each connected to
//     every leaf on both sides;
//   * `externals_per_leaf` external ports per leaf: ingress leaf i serves
//     external ingress ports [i*r, (i+1)*r), egress leaf j serves external
//     egress ports [j*r, (j+1)*r);
//   * every node runs `fabric` (a fabric::Make registry name) with `base`'s
//     config, its num_ports overridden to the stage's geometry — ingress
//     leaves are max(r, n)-port, spines are m-port, egress leaves are
//     max(n, r)-port;
//   * all inter-stage links carry `link_delay` extra propagation slots;
//   * routing spreads egress e over spine e mod n at the ingress leaf
//     (deterministic per-destination spraying), down to leaf e / r at the
//     spine, out port e mod r at the egress leaf.
//
// The returned scenario carries default (uniform Bernoulli) traffic;
// callers adjust scenario.traffic before Topology::Build.
Scenario MakeClos3(int leaves, int spines, int externals_per_leaf,
                   const std::string& fabric, const pps::SwitchConfig& base,
                   sim::Slot link_delay = 0);

}  // namespace topo
