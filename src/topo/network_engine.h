// The slot-synchronous network run loop: every node of a Topology driven
// in lockstep, with end-to-end relative queuing delay measured against a
// single network-wide shadow OQ switch spanning the external ports.
//
// The paper's shadow-switch methodology (Section 1.1) lifts to networks
// unchanged: the ideal reference for a whole fabric of switches is still
// one output-queued switch over the external ingress/egress ports —
// cells reach their egress queue the instant they enter the network.
// Every slot the engine offers identical cells to the real topology and
// the shadow; end-to-end RQD is the (network delay - shadow delay) gap,
// which is exactly the queuing penalty of *distributing* the switching
// over multiple hops (per-hop RQD compounding plus wire latency).
//
// Structure reuses the SlotEngine stage decomposition: the same
// ArrivalFeeder stamps and meters edge arrivals, the same
// RelativeDelayLedger finalizes relative delays over edge-view cells, the
// same DrainController decides the stop, and core::ShardPool runs one
// lane per node.  Node advancement is embarrassingly parallel within a
// slot (a departure is offered to the next hop no earlier than t + 1),
// and all cross-node splicing — link pushes, edge departures, stats —
// happens serially in fixed node order between the barriers, so
// threads = T is bit-identical to threads = 1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "audit/invariant_auditor.h"
#include "ckpt/io.h"
#include "fault/loss.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "topo/node.h"
#include "topo/topology.h"
#include "traffic/source.h"

namespace topo {

struct NetworkRunOptions {
  // Hard cap on simulated slots (safety against non-draining runs).
  sim::Slot max_slots = 1'000'000;
  // Worker lanes, one node per lane per slot (clamped by the process-wide
  // core::ThreadBudget).  Results are byte-identical for every lane count.
  unsigned threads = 1;
  // Stop offering arrivals at this slot (0 = pull until the source
  // reports Exhausted).
  sim::Slot source_cutoff = 0;
  // Stop this many slots after exhaustion even if not drained (0 = run
  // until drained or max_slots).
  sim::Slot drain_grace = 0;
  // Edge-view auditor: observes external-ingress injects, external-egress
  // departs, finalized end-to-end relative delays, and per-slot network
  // cell conservation via OnNetworkSlotEnd.  When null and the tree is
  // built with -DPPS_AUDIT=ON, the engine arms its own edge + shadow
  // auditor pair and throws if any detector fires.
  audit::InvariantAuditor* auditor = nullptr;

  // Whole-topology exact-state checkpointing, same contract as the
  // single-switch engine (core/harness.h): every node's fabric, the link
  // queues in flight, the shadow OQ, the source, and every measurement
  // accumulator travel in one snapshot; resume is byte-identical.
  // Requires every node fabric and the source to be checkpointable, and
  // no externally attached auditor.
  sim::Slot checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_from;
  ckpt::Io* checkpoint_io = nullptr;  // null = the real filesystem
  // Graceful-shutdown flag, polled at slot boundaries.
  const std::atomic<bool>* stop_flag = nullptr;
};

struct NetworkRunResult {
  std::uint64_t cells = 0;   // cells offered at the network edge
  sim::Slot duration = 0;    // slots simulated
  bool drained = false;      // nodes, links and shadow all empty
  bool interrupted = false;  // stop_flag raised
  std::uint64_t delivered = 0;  // cells that reached their egress port
  std::uint64_t dropped = 0;    // cells lost somewhere in the network
  fault::LossBreakdown losses;  // summed node loss taxonomy
  std::int32_t max_hops = 0;    // longest fabric path any cell traversed

  // End-to-end relative measurements against the network-wide shadow OQ.
  sim::Slot max_relative_delay = 0;
  sim::Slot max_relative_jitter = 0;
  sim::OnlineStats relative_delay;  // per delivered cell
  sim::OnlineStats net_delay;       // measured end-to-end delay
  sim::OnlineStats shadow_delay;    // shadow OQ delay
  bool order_preserved = true;      // per net-flow egress order

  std::uint64_t audit_violations = 0;
  std::int64_t node_backlog = 0;  // cells inside fabrics at run end
  std::int64_t link_cells = 0;    // cells in flight on links at run end

  // Per-hop latency attribution, indexed like Topology::node().
  std::vector<NodeStats> node_stats;
};

class NetworkEngine {
 public:
  NetworkRunResult Run(const Topology& topo, traffic::TrafficSource& source,
                       const NetworkRunOptions& options = {});
};

// Convenience: builds the scenario's traffic source (topology.h) and runs
// it.  A zero options.source_cutoff takes the scenario traffic's cutoff.
NetworkRunResult RunScenario(const Topology& topo,
                             const NetworkRunOptions& options = {});

// Human-readable one-line summary.
std::string Summarize(const NetworkRunResult& result);

}  // namespace topo
