#include "topo/network_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "audit/enabled.h"
#include "ckpt/serializer.h"
#include "core/shard_pool.h"
#include "core/slot_engine.h"
#include "sim/error.h"
#include "switch/output_queued.h"

namespace topo {

namespace {

// A cell crossing an inter-node link: offered to the downstream node in
// slot `due`.  Due slots are non-decreasing per link (every link has one
// fixed delay and one upstream port), so delivery is a front-of-deque
// check, and each link carries at most one cell per slot.
struct InFlight {
  sim::Slot due = sim::kNoSlot;
  sim::Cell cell;
};

// The "edge view" of a delivered cell: the network-level identity the
// ledger, recorders and auditors measure.  The per-hop fields (input,
// output, seq, arrival) are the *last* node's local identity at this
// point; the net_* fields carry the identity the cell entered the edge
// with, which is what end-to-end delay and flow order are defined over.
sim::Cell EdgeView(const sim::Cell& cell) {
  sim::Cell edge = cell;
  edge.input = cell.net_ingress;
  edge.output = cell.net_egress;
  edge.seq = cell.net_seq;
  edge.arrival = cell.net_arrival;
  return edge;  // departure stays: last-hop departure IS the network exit
}

// The network edge's audit tap points: mirrors core::AuditTaps but feeds
// the per-slot conservation check through OnNetworkSlotEnd, where the
// in-network backlog decomposes into node backlog + link cells.
class EdgeTaps final : public core::RelativeDelayObserver {
 public:
  EdgeTaps(sim::PortId num_edge_ports, bool flow_order_promised,
           const NetworkRunOptions& options) {
    aud_ = options.auditor;
#if PPS_AUDIT_ENABLED
    // Same engagement rule as the single-switch auto pair: fresh nodes
    // start empty (they are built per run), so only a resumed run — which
    // is mid-flight by definition — keeps the auto pair off.
    if (aud_ == nullptr && options.resume_from.empty()) {
      audit::InvariantAuditor::Options aopts;
      // Edge flow order is promised iff every node promises local flow
      // order: a network flow follows one deterministic path, links are
      // FIFO, and at each node it is a subsequence of a local flow.
      aopts.check_flow_order = flow_order_promised;
      auto_aud_.emplace(num_edge_ports, aopts);
      aud_ = &*auto_aud_;
      audit::InvariantAuditor::Options sopts;
      sopts.check_work_conservation = true;  // the reference discipline
      auto_shadow_aud_.emplace(num_edge_ports, sopts);
      shadow_aud_ = &*auto_shadow_aud_;
    }
#else
    (void)num_edge_ports;
    (void)flow_order_promised;
#endif
  }

  void OnInject(const sim::Cell& cell, sim::Slot t) {
    if (aud_ != nullptr) aud_->OnInject(cell, t);
    if (shadow_aud_ != nullptr) shadow_aud_->OnInject(cell, t);
  }

  void OnMeasuredDepart(const sim::Cell& cell, sim::Slot t) {
    if (aud_ != nullptr) aud_->OnDepart(cell, t);
  }

  void OnShadowDepart(const sim::Cell& cell, sim::Slot t) {
    if (shadow_aud_ != nullptr) shadow_aud_->OnDepart(cell, t);
  }

  void OnRelativeDelay(sim::PortId input, sim::PortId output,
                       sim::Slot arrival, sim::Slot relative_delay) override {
    if (aud_ != nullptr) {
      aud_->OnRelativeDelay(input, output, arrival, relative_delay);
    }
  }

  void OnNetworkSlotEnd(sim::Slot t, std::int64_t node_backlog,
                        std::int64_t link_cells, std::uint64_t lost,
                        std::int64_t shadow_backlog) {
    if (aud_ != nullptr) {
      aud_->OnNetworkSlotEnd(t, node_backlog, link_cells, lost);
    }
    if (shadow_aud_ != nullptr) shadow_aud_->OnSlotEnd(t, shadow_backlog);
  }

  // Mirrors core::AuditTaps::Finish over the edge accumulator (the caller
  // fills edge.drained / edge.losses / edge.dropped first).
  void Finish(core::RunResult& edge, sim::Slot t, std::int64_t network_backlog,
              std::uint64_t lost, std::int64_t shadow_backlog) {
    if (aud_ != nullptr) {
      if (edge.drained) {
        aud_->OnLossTaxonomy(edge.losses, edge.dropped, t);
      }
      aud_->OnRunEnd(t, network_backlog, lost);
      edge.audit_violations += aud_->report().total();
    }
    if (shadow_aud_ != nullptr) {
      shadow_aud_->OnRunEnd(t, shadow_backlog);
      edge.audit_violations += shadow_aud_->report().total();
    }
#if PPS_AUDIT_ENABLED
    if (auto_aud_.has_value()) {
      SIM_CHECK(auto_aud_->clean() && auto_shadow_aud_->clean(),
                "network edge: " << auto_aud_->report().Summary()
                                 << "; shadow: "
                                 << auto_shadow_aud_->report().Summary());
    }
#endif
  }

 private:
  audit::InvariantAuditor* aud_ = nullptr;
  audit::InvariantAuditor* shadow_aud_ = nullptr;
#if PPS_AUDIT_ENABLED
  std::optional<audit::InvariantAuditor> auto_aud_;
  std::optional<audit::InvariantAuditor> auto_shadow_aud_;
#endif
};

// Whole-topology snapshot, same discipline as the single-switch engine's:
// a header pinning the network's identity, the in-place accumulators, then
// every stateful component in fixed order, each behind its own marker.
void WriteNetCheckpoint(const NetworkRunOptions& options, const Topology& topo,
                        const std::vector<std::unique_ptr<Node>>& nodes,
                        const std::vector<std::deque<InFlight>>& link_q,
                        const pps::OutputQueuedSwitch& shadow,
                        const traffic::TrafficSource& source,
                        const core::ArrivalFeeder& feeder,
                        const core::RelativeDelayLedger& ledger,
                        const core::DrainController& drain,
                        const core::RunResult& edge,
                        const NetworkRunResult& result, sim::Slot next_slot,
                        bool stopping, ckpt::Io& io) {
  ckpt::Writer w;
  w.Marker("NET0");
  w.Str(topo.scenario().name);
  w.Size(nodes.size());
  w.Size(link_q.size());
  w.I32(topo.num_ingress());
  w.I32(topo.num_egress());
  w.I64(next_slot);
  w.Bool(stopping);
  // The in-place accumulators the loop owns (everything else is
  // recomputed at Finish from restored component state).
  w.Marker("RES0");
  w.U64(edge.cells);
  w.U64(edge.dropped);
  w.U64(result.delivered);
  w.I32(result.max_hops);
  w.I64(edge.max_relative_delay);
  edge.relative_delay.SaveState(w);
  for (const std::unique_ptr<Node>& node : nodes) node->SaveState(w);
  w.Marker("LNK0");
  for (const std::deque<InFlight>& q : link_q) {
    w.Size(q.size());
    for (const InFlight& f : q) {
      w.I64(f.due);
      ckpt::SaveCell(w, f.cell);
    }
  }
  w.Marker("SHQ0");
  shadow.SaveState(w);
  w.Marker("SRC0");
  source.SaveState(w);
  feeder.SaveState(w);
  ledger.SaveState(w);
  drain.SaveState(w);
  ckpt::WriteFile(options.checkpoint_path, w, io);
}

// Returns next_slot; sets `stopping` when the saving run stopped in the
// checkpointed slot.
sim::Slot LoadNetCheckpoint(const NetworkRunOptions& options,
                            const Topology& topo,
                            std::vector<std::unique_ptr<Node>>& nodes,
                            std::vector<std::deque<InFlight>>& link_q,
                            pps::OutputQueuedSwitch& shadow,
                            traffic::TrafficSource& source,
                            core::ArrivalFeeder& feeder,
                            core::RelativeDelayLedger& ledger,
                            core::DrainController& drain,
                            core::RunResult& edge, NetworkRunResult& result,
                            bool& stopping, ckpt::Io& io) {
  const std::string payload = ckpt::ReadFile(options.resume_from, io);
  ckpt::Reader r(payload);
  r.ExpectMarker("NET0");
  const std::string saved_name = r.Str();
  SIM_CHECK(saved_name == topo.scenario().name,
            "topology checkpoint was taken on scenario '"
                << saved_name << "', resuming on '" << topo.scenario().name
                << "'");
  SIM_CHECK(r.Size() == nodes.size(),
            "topology checkpoint has a different node count");
  SIM_CHECK(r.Size() == link_q.size(),
            "topology checkpoint has a different link count");
  SIM_CHECK(r.I32() == topo.num_ingress(),
            "topology checkpoint has a different ingress count");
  SIM_CHECK(r.I32() == topo.num_egress(),
            "topology checkpoint has a different egress count");
  const sim::Slot next_slot = r.I64();
  SIM_CHECK(next_slot >= 0,
            "topology checkpoint resume slot " << next_slot
                                               << " is not a slot");
  stopping = r.Bool();
  r.ExpectMarker("RES0");
  edge.cells = r.U64();
  edge.dropped = r.U64();
  result.delivered = r.U64();
  result.max_hops = r.I32();
  SIM_CHECK(result.max_hops >= 0, "topology checkpoint max_hops "
                                      << result.max_hops << " is negative");
  edge.max_relative_delay = r.I64();
  edge.relative_delay.LoadState(r);
  // Node sections pin each node's identity (name, fabric, ports) and
  // replace any link-fault windows the constructors armed, wholesale.
  for (std::unique_ptr<Node>& node : nodes) node->LoadState(r);
  r.ExpectMarker("LNK0");
  for (std::size_t li = 0; li < link_q.size(); ++li) {
    std::deque<InFlight>& q = link_q[li];
    q.clear();
    const std::size_t depth = r.Count();
    // An in-flight cell still carries the *upstream* node's local
    // identity (StampArrival runs at delivery), so its port bound is the
    // from-node's.
    const Topology::CompiledLink& link =
        topo.links()[li];
    const sim::PortId from_ports = topo.node(link.from_node).config.num_ports;
    sim::Slot prev_due = sim::kNoSlot;
    for (std::size_t i = 0; i < depth; ++i) {
      InFlight f;
      f.due = r.I64();
      SIM_CHECK(f.due >= next_slot,
                "topology checkpoint link " << li << " has a cell due at "
                                            << f.due << " before resume slot "
                                            << next_slot);
      SIM_CHECK(prev_due == sim::kNoSlot || f.due >= prev_due,
                "topology checkpoint link " << li
                                            << " queue is not due-ordered");
      prev_due = f.due;
      f.cell = ckpt::LoadCell(r, from_ports);
      q.push_back(f);
    }
  }
  r.ExpectMarker("SHQ0");
  shadow.LoadState(r);
  r.ExpectMarker("SRC0");
  source.LoadState(r);
  feeder.LoadState(r);
  ledger.LoadState(r);
  drain.LoadState(r);
  SIM_CHECK(r.AtEnd(),
            "topology checkpoint has " << r.remaining() << " trailing bytes");
  return next_slot;
}

}  // namespace

NetworkRunResult NetworkEngine::Run(const Topology& topo,
                                    traffic::TrafficSource& source,
                                    const NetworkRunOptions& options) {
  const int num_nodes = topo.num_nodes();
  const sim::PortId e_in = topo.num_ingress();
  const sim::PortId e_out = topo.num_egress();
  const sim::PortId n_ext = topo.num_edge_ports();
  const std::size_t num_links = topo.links().size();

  NetworkRunResult result;
  // The ledger/taps accumulator over edge-view cells; mapped into the
  // NetworkRunResult at the end.  keep_timeline stays off: the network
  // engine reports distributions, not per-cell timelines.
  core::RunResult edge;

  // Fresh nodes per run: each builds its registry fabric and arms its
  // fault schedule (loss baselines therefore start at zero).
  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(static_cast<std::size_t>(num_nodes));
  for (int k = 0; k < num_nodes; ++k) {
    nodes.push_back(std::make_unique<Node>(topo.node(k), topo.node_faults(k)));
  }

  // The network-wide shadow: one ideal OQ switch over the external port
  // space.  A cell reaches its egress queue the instant it enters the
  // network; end-to-end RQD is measured against this.
  pps::OutputQueuedSwitch shadow(n_ext);

  const bool checkpointing = options.checkpoint_every > 0;
  const bool resuming = !options.resume_from.empty();
  if (checkpointing) {
    SIM_CHECK(!options.checkpoint_path.empty(),
              "checkpoint_every needs a checkpoint_path");
  }
  ckpt::Io& io =
      options.checkpoint_io ? *options.checkpoint_io : ckpt::DefaultIo();
  if (checkpointing || resuming) {
    for (const std::unique_ptr<Node>& node : nodes) {
      SIM_CHECK(node->fabric().checkpointable(),
                "node '" << node->name() << "': fabric '"
                         << node->fabric().name()
                         << "' does not support exact-state checkpointing");
    }
    SIM_CHECK(source.checkpointable(),
              "this traffic source does not support exact-state "
              "checkpointing (TrafficSource::checkpointable)");
    SIM_CHECK(options.auditor == nullptr,
              "an externally attached auditor cannot be checkpointed");
  }

  bool flow_order_promised = true;
  for (const std::unique_ptr<Node>& node : nodes) {
    flow_order_promised =
        flow_order_promised && node->fabric().flow_order_promised();
  }

  EdgeTaps taps(n_ext, flow_order_promised, options);
  core::ArrivalFeeder feeder(source, n_ext, options.source_cutoff);
  core::RelativeDelayLedger ledger(n_ext, /*keep_timeline=*/false, taps);
  core::DrainController drain(options.drain_grace);

  std::vector<std::deque<InFlight>> link_q(num_links);

  sim::Slot start_slot = 0;
  bool resumed_stopping = false;
  if (resuming) {
    start_slot = LoadNetCheckpoint(options, topo, nodes, link_q, shadow,
                                   source, feeder, ledger, drain, edge, result,
                                   resumed_stopping, io);
  }

  // Per-node cumulative loss watermark for synchronous inject-drop
  // attribution (a nonzero delta after one Inject names the dropped cell).
  std::vector<std::uint64_t> known_lost(static_cast<std::size_t>(num_nodes));
  for (int k = 0; k < num_nodes; ++k) {
    known_lost[static_cast<std::size_t>(k)] =
        nodes[static_cast<std::size_t>(k)]->fabric().losses().total();
  }

  // One worker pool for the run, one node per lane per slot.  Node
  // advancement within a slot touches only that node's state (the gather
  // and splice phases on either side are serial, in fixed node/link
  // order), so any lane count — including a budget-degraded serial grant —
  // produces byte-identical results.
  std::optional<core::ShardPool> pool;
  if (options.threads > 1 && num_nodes > 1) pool.emplace(options.threads);

  // Per-slot scratch, indexed by node; cleared every slot.
  std::vector<std::vector<sim::Cell>> offered(
      static_cast<std::size_t>(num_nodes));
  std::vector<std::vector<sim::Cell>> departed(
      static_cast<std::size_t>(num_nodes));
  std::vector<std::vector<sim::CellId>> drops(
      static_cast<std::size_t>(num_nodes));

  sim::Slot t = start_slot;
  for (; !resumed_stopping && t < options.max_slots; ++t) {
    // 1. Fault timelines, serial per node in index order.
    for (int k = 0; k < num_nodes; ++k) {
      const std::size_t ki = static_cast<std::size_t>(k);
      if (nodes[ki]->faults().ApplyDue(t)) {
        known_lost[ki] = nodes[ki]->fabric().losses().total();
      }
    }

    // 2. Serial gather: link deliveries first (link index order), then
    // external arrivals.  Each delivery is restamped with this node's
    // local identity; the network identity (id, net_*) rides along.
    for (std::size_t ki = 0; ki < offered.size(); ++ki) offered[ki].clear();
    for (std::size_t li = 0; li < num_links; ++li) {
      std::deque<InFlight>& q = link_q[li];
      const Topology::CompiledLink& link = topo.links()[li];
      while (!q.empty() && q.front().due == t) {
        sim::Cell cell = q.front().cell;
        q.pop_front();
        const sim::PortId out = topo.Route(link.to_node, cell.net_egress);
        SIM_CHECK(out != sim::kNoPort,
                  "no route from node '" << topo.node(link.to_node).name
                                         << "' to egress "
                                         << cell.net_egress);
        nodes[static_cast<std::size_t>(link.to_node)]->StampArrival(
            cell, link.to_port, out, t);
        offered[static_cast<std::size_t>(link.to_node)].push_back(cell);
      }
    }
    for (const sim::Cell& cell : feeder.CellsAt(t)) {
      // The feeder validates against the edge space [0, n_ext); rectangular
      // edges need the tight per-side bounds too.
      SIM_CHECK(cell.input < e_in && cell.output < e_out,
                "source emitted edge ports (" << cell.input << " -> "
                                              << cell.output
                                              << ") outside " << e_in << "x"
                                              << e_out << " in slot " << t);
      ledger.Track(cell);
      taps.OnInject(cell, t);
      shadow.Inject(cell, t);
      ++edge.cells;
      sim::Cell net = cell;
      net.net_ingress = cell.input;
      net.net_egress = cell.output;
      net.net_seq = cell.seq;
      net.net_arrival = t;
      net.hop = 0;
      const Topology::CompiledEndpoint& in = topo.ingress(net.net_ingress);
      const sim::PortId out = topo.Route(in.node, net.net_egress);
      SIM_CHECK(out != sim::kNoPort,
                "no route from ingress node '" << topo.node(in.node).name
                                               << "' to egress "
                                               << net.net_egress);
      nodes[static_cast<std::size_t>(in.node)]->StampArrival(net, in.port, out,
                                                             t);
      offered[static_cast<std::size_t>(in.node)].push_back(net);
    }
    // Fabrics take arrivals in increasing input-port order.  At most one
    // cell lands per local input per slot by construction (each input
    // port is fed by exactly one link or one ingress, links deliver at
    // most one cell per slot, and the feeder enforces the external line
    // rate), which the adjacency check pins.
    for (std::size_t ki = 0; ki < offered.size(); ++ki) {
      std::vector<sim::Cell>& cells = offered[ki];
      std::sort(cells.begin(), cells.end(),
                [](const sim::Cell& a, const sim::Cell& b) {
                  return a.input < b.input;
                });
      for (std::size_t i = 1; i < cells.size(); ++i) {
        SIM_CHECK(cells[i].input != cells[i - 1].input,
                  "two cells on node " << ki << " input " << cells[i].input
                                       << " in slot " << t);
      }
    }

    // 3. Advance every node — the parallel region.  Each task reads and
    // writes only node k's fabric, its drop/departure scratch and its
    // loss watermark; no shared state.
    auto advance_node = [&](std::size_t ki, unsigned /*lane*/) {
      fabric::Fabric& fab = nodes[ki]->fabric();
      drops[ki].clear();
      for (const sim::Cell& cell : offered[ki]) {
        fab.Inject(cell, t);
        const std::uint64_t lost = fab.losses().total();
        if (lost != known_lost[ki]) {
          known_lost[ki] = lost;
          drops[ki].push_back(cell.id);
        }
      }
      departed[ki] = fab.Advance(t);
      // Advance-time losses (overflows, stranded cells) carry no ids;
      // fold them into the watermark so the next Inject is not blamed.
      known_lost[ki] = fab.losses().total();
    };
    if (pool.has_value()) {
      pool->Run(static_cast<std::size_t>(num_nodes), advance_node);
    } else {
      for (int k = 0; k < num_nodes; ++k) {
        advance_node(static_cast<std::size_t>(k), 0);
      }
    }

    // 4. Serial splice in node order: drop attribution, departure
    // hand-off to the next hop or the network edge.
    for (int k = 0; k < num_nodes; ++k) {
      const std::size_t ki = static_cast<std::size_t>(k);
      for (const sim::CellId id : drops[ki]) {
        ledger.MarkInjectDropped(id, edge);
      }
      for (const sim::Cell& d : departed[ki]) {
        nodes[ki]->RecordDeparture(d);
        const int eg = topo.EgressAt(k, d.output);
        if (eg >= 0) {
          SIM_CHECK(eg == d.net_egress,
                    d << " left the network at egress " << eg
                      << " but was addressed to " << d.net_egress);
          result.max_hops = std::max(result.max_hops, d.hop + 1);
          const sim::Cell ev = EdgeView(d);
          taps.OnMeasuredDepart(ev, t);
          ledger.OnMeasuredDepart(ev, edge);
          ++result.delivered;
        } else {
          const int li = topo.OutLink(k, d.output);
          SIM_CHECK(li >= 0, d << " departed node '" << nodes[ki]->name()
                               << "' on unlinked output " << d.output);
          InFlight f;
          f.due = sim::SlotPlus(sim::SlotPlus(t, 1),
                                topo.links()[static_cast<std::size_t>(li)]
                                    .delay);
          f.cell = d;
          f.cell.hop = d.hop + 1;
          link_q[static_cast<std::size_t>(li)].push_back(f);
        }
      }
    }

    // 5. The shadow sees the same slot.
    for (const sim::Cell& cell : shadow.Advance(t)) {
      taps.OnShadowDepart(cell, t);
      ledger.OnShadowDepart(cell, edge);
    }

    // 6. Slot-end bookkeeping: network cell conservation decomposed into
    // node backlog + cells in flight on links.
    std::int64_t node_backlog = 0;
    std::uint64_t lost_total = 0;
    bool nodes_drained = true;
    for (int k = 0; k < num_nodes; ++k) {
      const std::size_t ki = static_cast<std::size_t>(k);
      node_backlog += nodes[ki]->fabric().TotalBacklog();
      lost_total += known_lost[ki];
      nodes_drained = nodes_drained && nodes[ki]->fabric().Drained();
    }
    std::int64_t link_cells = 0;
    for (const std::deque<InFlight>& q : link_q) {
      link_cells += static_cast<std::int64_t>(q.size());
    }
    taps.OnNetworkSlotEnd(t, node_backlog, link_cells, lost_total,
                          shadow.TotalBacklog());

    // Periodic loss reconciliation, same cadence as the single-switch
    // engine: once the measured side is drained, a pending entry whose
    // shadow copy departed can never be finalized.
    constexpr sim::Slot kReconcilePeriod = 1024;
    if (lost_total > 0 && sim::SlotPlus(t, 1) % kReconcilePeriod == 0 &&
        nodes_drained && link_cells == 0) {
      ledger.SweepLossLeaks(edge);
    }

    if (!drain.exhausted() && feeder.ExhaustedAfter(t)) {
      drain.NoteExhausted(sim::SlotPlus(t, 1));
    }
    const bool all_drained =
        nodes_drained && link_cells == 0 && shadow.Drained();
    const bool stop = drain.ShouldStop(t, all_drained);
    const bool interrupted = !stop && options.stop_flag &&
                             options.stop_flag->load(std::memory_order_acquire);
    const bool boundary =
        checkpointing && sim::SlotPlus(t, 1) % options.checkpoint_every == 0;
    if (boundary || (checkpointing && interrupted)) {
      WriteNetCheckpoint(options, topo, nodes, link_q, shadow, source, feeder,
                         ledger, drain, edge, result, sim::SlotPlus(t, 1),
                         stop, io);
    }
    if (stop || interrupted) {
      result.interrupted = interrupted;
      ++t;
      break;
    }
  }
  result.duration = t;

  // Run-end reconciliation, mirroring SlotEngine::Run's epilogue.
  bool nodes_drained = true;
  std::int64_t node_backlog = 0;
  std::uint64_t lost_total = 0;
  for (int k = 0; k < num_nodes; ++k) {
    const std::size_t ki = static_cast<std::size_t>(k);
    nodes_drained = nodes_drained && nodes[ki]->fabric().Drained();
    node_backlog += nodes[ki]->fabric().TotalBacklog();
    lost_total += nodes[ki]->fabric().losses().total();
    result.losses = result.losses + nodes[ki]->fabric().losses();
  }
  std::int64_t link_cells = 0;
  for (const std::deque<InFlight>& q : link_q) {
    link_cells += static_cast<std::int64_t>(q.size());
  }
  const bool measured_drained = nodes_drained && link_cells == 0;
  result.drained = measured_drained && shadow.Drained();
  if (measured_drained) {
    ledger.ReconcileUndeparted(edge);
  }
  ledger.Finish(edge);
  edge.drained = result.drained;
  edge.losses = result.losses;
  taps.Finish(edge, t, node_backlog + link_cells, lost_total,
              shadow.TotalBacklog());

  result.cells = edge.cells;
  result.dropped = edge.dropped;
  result.max_relative_delay = edge.max_relative_delay;
  result.max_relative_jitter = edge.max_relative_jitter;
  result.relative_delay = edge.relative_delay;
  result.net_delay = edge.pps_delay;
  result.shadow_delay = edge.shadow_delay;
  result.order_preserved = edge.order_preserved;
  result.audit_violations = edge.audit_violations;
  result.node_backlog = node_backlog;
  result.link_cells = link_cells;
  result.node_stats.reserve(static_cast<std::size_t>(num_nodes));
  for (int k = 0; k < num_nodes; ++k) {
    result.node_stats.push_back(
        nodes[static_cast<std::size_t>(k)]->Stats());
  }
  return result;
}

NetworkRunResult RunScenario(const Topology& topo,
                             const NetworkRunOptions& options) {
  traffic::SourcePtr source = MakeTrafficSource(
      topo.scenario(), topo.num_ingress(), topo.num_egress());
  NetworkRunOptions opts = options;
  if (opts.source_cutoff == 0) {
    opts.source_cutoff = topo.scenario().traffic.cutoff;
  }
  return NetworkEngine().Run(topo, *source, opts);
}

std::string Summarize(const NetworkRunResult& result) {
  std::ostringstream os;
  os << "cells=" << result.cells << " delivered=" << result.delivered
     << " dropped=" << result.dropped << " slots=" << result.duration
     << (result.drained ? " drained" : " UNDRAINED") << " hops<="
     << result.max_hops << " rqd_mean=" << result.relative_delay.mean()
     << " rqd_max=" << result.max_relative_delay
     << " net_delay_mean=" << result.net_delay.mean()
     << " shadow_delay_mean=" << result.shadow_delay.mean()
     << (result.order_preserved ? "" : " REORDERED");
  return os.str();
}

}  // namespace topo
