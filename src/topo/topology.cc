#include "topo/topology.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <map>
#include <sstream>
#include <utility>

#include "fabric/registry.h"
#include "sim/error.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace topo {

// --- JSON ------------------------------------------------------------------
//
// Hand-rolled for the same reason fault_schedule.cc's is: the scenario
// format must be readable below core::json in the dependency graph, and
// the shape is fixed.  Fault schedules embed as verbatim sub-objects and
// are delegated to fault::FaultSchedule::FromJson/ToJson.

namespace {

void AppendNumber(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);  // shortest round-trip form, byte-stable
}

// Minimal recursive-descent JSON reader for the scenario shape.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Scenario ParseScenario() {
    Scenario s;
    ExpectObject([&](std::string_view key) {
      if (key == "name") {
        s.name = std::string(ParseString());
      } else if (key == "nodes") {
        ParseArray([&] { s.nodes.push_back(ParseNode()); });
      } else if (key == "links") {
        ParseArray([&] { s.links.push_back(ParseLink()); });
      } else if (key == "ingress") {
        ParseArray([&] { s.ingress.push_back(ParsePortRef("ingress")); });
      } else if (key == "egress") {
        ParseArray([&] { s.egress.push_back(ParsePortRef("egress")); });
      } else if (key == "routes") {
        ParseArray([&] { s.routes.push_back(ParseRoute()); });
      } else if (key == "traffic") {
        s.traffic = ParseTraffic();
      } else if (key == "faults") {
        ParseArray([&] { s.faults.push_back(ParseFault()); });
      } else {
        Fail("unknown scenario key '" + std::string(key) + "'");
      }
    });
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return s;
  }

 private:
  NodeSpec ParseNode() {
    NodeSpec n;
    n.config.num_planes = 1;  // sensible for non-PPS fabrics; override via key
    ExpectObject([&](std::string_view key) {
      if (key == "name") {
        n.name = std::string(ParseString());
      } else if (key == "fabric") {
        n.fabric = std::string(ParseString());
      } else if (key == "ports") {
        n.config.num_ports = static_cast<sim::PortId>(ParseInt());
      } else if (key == "planes") {
        n.config.num_planes = static_cast<int>(ParseInt());
      } else if (key == "rate_ratio") {
        n.config.rate_ratio = static_cast<int>(ParseInt());
      } else if (key == "input_buffer") {
        n.config.input_buffer_size = static_cast<int>(ParseInt());
      } else if (key == "reseq_timeout") {
        n.config.reseq_timeout = static_cast<int>(ParseInt());
      } else {
        Fail("unknown node key '" + std::string(key) + "'");
      }
    });
    return n;
  }

  LinkSpec ParseLink() {
    LinkSpec l;
    ExpectObject([&](std::string_view key) {
      if (key == "from") {
        l.from = std::string(ParseString());
      } else if (key == "from_port") {
        l.from_port = static_cast<sim::PortId>(ParseInt());
      } else if (key == "to") {
        l.to = std::string(ParseString());
      } else if (key == "to_port") {
        l.to_port = static_cast<sim::PortId>(ParseInt());
      } else if (key == "delay") {
        l.delay = ParseInt();
      } else {
        Fail("unknown link key '" + std::string(key) + "'");
      }
    });
    return l;
  }

  PortRef ParsePortRef(const char* what) {
    PortRef ref;
    ExpectObject([&](std::string_view key) {
      if (key == "node") {
        ref.node = std::string(ParseString());
      } else if (key == "port") {
        ref.port = static_cast<sim::PortId>(ParseInt());
      } else {
        Fail("unknown " + std::string(what) + " key '" + std::string(key) +
             "'");
      }
    });
    return ref;
  }

  RouteSpec ParseRoute() {
    RouteSpec r;
    ExpectObject([&](std::string_view key) {
      if (key == "node") {
        r.node = std::string(ParseString());
      } else if (key == "table") {
        ParseArray(
            [&] { r.table.push_back(static_cast<sim::PortId>(ParseInt())); });
      } else {
        Fail("unknown route key '" + std::string(key) + "'");
      }
    });
    return r;
  }

  TrafficSpec ParseTraffic() {
    TrafficSpec t;
    ExpectObject([&](std::string_view key) {
      if (key == "kind") {
        t.kind = std::string(ParseString());
      } else if (key == "pattern") {
        t.pattern = std::string(ParseString());
      } else if (key == "load") {
        t.load = ParseDouble();
      } else if (key == "hotspot_fraction") {
        t.hotspot_fraction = ParseDouble();
      } else if (key == "rows") {
        ParseArray([&] {
          std::vector<double> row;
          ParseArray([&] { row.push_back(ParseDouble()); });
          t.rows.push_back(std::move(row));
        });
      } else if (key == "seed") {
        t.seed = static_cast<std::uint64_t>(ParseInt());
      } else if (key == "cutoff") {
        t.cutoff = ParseInt();
      } else {
        Fail("unknown traffic key '" + std::string(key) + "'");
      }
    });
    return t;
  }

  FaultSpec ParseFault() {
    FaultSpec f;
    ExpectObject([&](std::string_view key) {
      if (key == "node") {
        f.node = std::string(ParseString());
      } else if (key == "schedule") {
        // The schedule is a verbatim fault::FaultSchedule document; capture
        // the balanced object and delegate to its own parser.
        f.schedule = fault::FaultSchedule::FromJson(CaptureObject());
      } else {
        Fail("unknown fault key '" + std::string(key) + "'");
      }
    });
    return f;
  }

  // Captures a balanced {...} sub-document (strings respected; the house
  // JSON style uses no escapes) and advances past it.
  std::string_view CaptureObject() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '{') Fail("expected object");
    const std::size_t start = pos_;
    int depth = 0;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
          if (text_[pos_] == '\\') Fail("escapes are not used in scenarios");
          ++pos_;
        }
        if (pos_ >= text_.size()) Fail("unterminated string");
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++pos_;
          return text_.substr(start, pos_ - start);
        }
      }
      ++pos_;
    }
    Fail("unterminated object");
  }

  template <typename ElemFn>
  void ParseArray(ElemFn&& on_elem) {
    Expect('[');
    SkipSpace();
    if (Consume(']')) return;
    do {
      on_elem();
    } while (Consume(','));
    Expect(']');
  }

  template <typename KeyFn>
  void ExpectObject(KeyFn&& on_key) {
    Expect('{');
    SkipSpace();
    if (Consume('}')) return;
    do {
      const std::string_view key = ParseString();
      Expect(':');
      on_key(key);
    } while (Consume(','));
    Expect('}');
  }

  std::string_view ParseString() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') Fail("expected string");
    const std::size_t start = ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') Fail("escapes are not used in scenarios");
      ++pos_;
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    return text_.substr(start, pos_++ - start);
  }

  std::int64_t ParseInt() {
    const std::string_view tok = NumberToken();
    std::int64_t v = 0;
    const auto res = std::from_chars(tok.begin(), tok.end(), v);
    if (res.ec != std::errc{} || res.ptr != tok.end()) {
      Fail("expected integer, got '" + std::string(tok) + "'");
    }
    return v;
  }

  double ParseDouble() {
    const std::string_view tok = NumberToken();
    double v = 0;
    const auto res = std::from_chars(tok.begin(), tok.end(), v);
    if (res.ec != std::errc{} || res.ptr != tok.end()) {
      Fail("expected number, got '" + std::string(tok) + "'");
    }
    return v;
  }

  std::string_view NumberToken() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected number");
    return text_.substr(start, pos_ - start);
  }

  void Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[noreturn]] void Fail(const std::string& what) const {
    std::ostringstream os;
    os << "topology JSON: " << what << " at offset " << pos_;
    throw sim::SimError(os.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void AppendPortRefs(std::string& out, const std::vector<PortRef>& refs,
                    const std::string& nl, const std::string& pad) {
  out += "[";
  for (std::size_t i = 0; i < refs.size(); ++i) {
    out += (i == 0 ? nl : "," + nl) + pad;
    out += "{\"node\": \"" + refs[i].node +
           "\", \"port\": " + std::to_string(refs[i].port) + "}";
  }
  if (!refs.empty()) out += nl + pad.substr(0, pad.size() / 2);
  out += "]";
}

}  // namespace

std::string ToJson(const Scenario& s, int indent) {
  const std::string nl = indent >= 0 ? "\n" : "";
  const std::string pad1 = indent >= 0 ? std::string(indent, ' ') : "";
  const std::string pad2 = pad1 + pad1;
  std::string out = "{" + nl;
  out += pad1 + "\"name\": \"" + s.name + "\"," + nl;

  out += pad1 + "\"nodes\": [";
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    const NodeSpec& n = s.nodes[i];
    out += (i == 0 ? nl : "," + nl) + pad2;
    out += "{\"name\": \"" + n.name + "\", \"fabric\": \"" + n.fabric +
           "\", \"ports\": " + std::to_string(n.config.num_ports) +
           ", \"planes\": " + std::to_string(n.config.num_planes) +
           ", \"rate_ratio\": " + std::to_string(n.config.rate_ratio) +
           ", \"input_buffer\": " + std::to_string(n.config.input_buffer_size) +
           ", \"reseq_timeout\": " + std::to_string(n.config.reseq_timeout) +
           "}";
  }
  if (!s.nodes.empty()) out += nl + pad1;
  out += "]," + nl;

  out += pad1 + "\"links\": [";
  for (std::size_t i = 0; i < s.links.size(); ++i) {
    const LinkSpec& l = s.links[i];
    out += (i == 0 ? nl : "," + nl) + pad2;
    out += "{\"from\": \"" + l.from +
           "\", \"from_port\": " + std::to_string(l.from_port) +
           ", \"to\": \"" + l.to +
           "\", \"to_port\": " + std::to_string(l.to_port) +
           ", \"delay\": " + std::to_string(l.delay) + "}";
  }
  if (!s.links.empty()) out += nl + pad1;
  out += "]," + nl;

  out += pad1 + "\"ingress\": ";
  AppendPortRefs(out, s.ingress, nl, pad2);
  out += "," + nl;
  out += pad1 + "\"egress\": ";
  AppendPortRefs(out, s.egress, nl, pad2);
  out += "," + nl;

  out += pad1 + "\"routes\": [";
  for (std::size_t i = 0; i < s.routes.size(); ++i) {
    const RouteSpec& r = s.routes[i];
    out += (i == 0 ? nl : "," + nl) + pad2;
    out += "{\"node\": \"" + r.node + "\", \"table\": [";
    for (std::size_t j = 0; j < r.table.size(); ++j) {
      if (j != 0) out += ", ";
      out += std::to_string(r.table[j]);
    }
    out += "]}";
  }
  if (!s.routes.empty()) out += nl + pad1;
  out += "]," + nl;

  out += pad1 + "\"traffic\": {\"kind\": \"" + s.traffic.kind +
         "\", \"pattern\": \"" + s.traffic.pattern + "\", \"load\": ";
  AppendNumber(out, s.traffic.load);
  out += ", \"hotspot_fraction\": ";
  AppendNumber(out, s.traffic.hotspot_fraction);
  out += ", \"rows\": [";
  for (std::size_t i = 0; i < s.traffic.rows.size(); ++i) {
    if (i != 0) out += ", ";
    out += "[";
    for (std::size_t j = 0; j < s.traffic.rows[i].size(); ++j) {
      if (j != 0) out += ", ";
      AppendNumber(out, s.traffic.rows[i][j]);
    }
    out += "]";
  }
  out += "], \"seed\": " + std::to_string(s.traffic.seed) +
         ", \"cutoff\": " + std::to_string(s.traffic.cutoff) + "}," + nl;

  out += pad1 + "\"faults\": [";
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    out += (i == 0 ? nl : "," + nl) + pad2;
    out += "{\"node\": \"" + s.faults[i].node +
           "\", \"schedule\": " + s.faults[i].schedule.ToJson(-1) + "}";
  }
  if (!s.faults.empty()) out += nl + pad1;
  out += "]" + nl + "}" + nl;
  return out;
}

Scenario FromJson(std::string_view json) {
  JsonReader reader(json);
  return reader.ParseScenario();
}

traffic::SourcePtr MakeTrafficSource(const Scenario& scenario,
                                     sim::PortId num_ingress,
                                     sim::PortId num_egress) {
  const TrafficSpec& t = scenario.traffic;
  SIM_CHECK(num_ingress > 0 && num_egress > 0,
            "topology traffic needs external ports");
  if (t.kind == "matrix") {
    SIM_CHECK(t.rows.size() == static_cast<std::size_t>(num_ingress),
              "traffic matrix has " << t.rows.size() << " rows for "
                                    << num_ingress << " ingress ports");
    for (const std::vector<double>& row : t.rows) {
      SIM_CHECK(row.size() == static_cast<std::size_t>(num_egress),
                "traffic matrix row has " << row.size() << " columns for "
                                          << num_egress << " egress ports");
    }
    return std::make_unique<traffic::RateMatrixSource>(t.rows,
                                                       sim::Rng(t.seed));
  }
  SIM_CHECK(t.kind == "bernoulli",
            "unknown traffic kind '" << t.kind << "' (bernoulli | matrix)");
  SIM_CHECK(t.load >= 0.0 && t.load <= 1.0, "traffic load must be in [0,1]");
  if (t.pattern == "uniform" || t.pattern == "hotspot") {
    // Uniform/hotspot Bernoulli generalises to rectangular edge spaces as a
    // rate matrix: emit w.p. `load`, destination proportional to the row.
    const double hot = t.pattern == "hotspot" ? t.hotspot_fraction : 0.0;
    SIM_CHECK(hot >= 0.0 && hot <= 1.0, "hotspot fraction must be in [0,1]");
    std::vector<std::vector<double>> rows(
        static_cast<std::size_t>(num_ingress),
        std::vector<double>(static_cast<std::size_t>(num_egress),
                            t.load * (1.0 - hot) /
                                static_cast<double>(num_egress)));
    for (std::vector<double>& row : rows) row[0] += t.load * hot;
    return std::make_unique<traffic::RateMatrixSource>(std::move(rows),
                                                       sim::Rng(t.seed));
  }
  // Port-permutation patterns only make sense on a square edge.
  SIM_CHECK(num_ingress == num_egress,
            "traffic pattern '" << t.pattern << "' needs ingress count == "
                                << "egress count (got " << num_ingress
                                << " x " << num_egress << ")");
  traffic::Pattern pattern = traffic::Pattern::kDiagonal;
  if (t.pattern == "diagonal") {
    pattern = traffic::Pattern::kDiagonal;
  } else if (t.pattern == "transpose") {
    pattern = traffic::Pattern::kTranspose;
  } else {
    SIM_CHECK(false, "unknown traffic pattern '" << t.pattern << "'");
  }
  return std::make_unique<traffic::BernoulliSource>(
      num_ingress, t.load, pattern, sim::Rng(t.seed), t.hotspot_fraction);
}

// --- Topology --------------------------------------------------------------

int Topology::NodeIndex(std::string_view name) const {
  for (std::size_t k = 0; k < scenario_.nodes.size(); ++k) {
    if (scenario_.nodes[k].name == name) return static_cast<int>(k);
  }
  return -1;
}

Topology Topology::Build(Scenario scenario) {
  Topology topo;
  topo.scenario_ = std::move(scenario);
  const Scenario& s = topo.scenario_;

  // --- nodes: unique names, positive ports, instantiable fabrics ---
  SIM_CHECK(!s.nodes.empty(), "topology: needs at least one node");
  std::map<std::string, int> index;
  for (std::size_t k = 0; k < s.nodes.size(); ++k) {
    const NodeSpec& n = s.nodes[k];
    SIM_CHECK(!n.name.empty(), "topology: node " << k << " has no name");
    SIM_CHECK(index.emplace(n.name, static_cast<int>(k)).second,
              "topology: duplicate node name '" << n.name << "'");
    SIM_CHECK(n.config.num_ports > 0, "topology: node '"
                                          << n.name
                                          << "' needs a positive port count");
    try {
      (void)fabric::Make(n.fabric, n.config);  // validates name and config
    } catch (const sim::SimError& e) {
      throw sim::SimError("topology: node '" + n.name + "': " + e.what());
    }
  }
  const auto node_of = [&](const std::string& name, const char* what,
                           std::size_t at) -> int {
    const auto it = index.find(name);
    SIM_CHECK(it != index.end(), "topology: " << what << " " << at
                                              << ": unknown node '" << name
                                              << "'");
    return it->second;
  };
  const auto ports_of = [&](int node) {
    return s.nodes[static_cast<std::size_t>(node)].config.num_ports;
  };

  // --- faults: every schedule names a known node, at most one each ---
  topo.node_faults_.resize(s.nodes.size());
  std::vector<char> has_faults(s.nodes.size(), 0);
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    const int k = node_of(s.faults[i].node, "fault schedule", i);
    const auto ki = static_cast<std::size_t>(k);
    SIM_CHECK(!has_faults[ki], "topology: duplicate fault schedule for node '"
                                   << s.faults[i].node << "'");
    has_faults[ki] = 1;
    topo.node_faults_[ki] = s.faults[i].schedule;
  }

  // --- links and external ports: every port used at most once per side ---
  // Input side: 0 = free, 1 = link-fed, 2 = ingress.  Output side is
  // covered by out_link_ / egress_at_ themselves.
  std::vector<std::vector<char>> in_use(s.nodes.size());
  topo.out_link_.resize(s.nodes.size());
  topo.egress_at_.resize(s.nodes.size());
  for (std::size_t k = 0; k < s.nodes.size(); ++k) {
    const auto ports = static_cast<std::size_t>(ports_of(static_cast<int>(k)));
    in_use[k].assign(ports, 0);
    topo.out_link_[k].assign(ports, -1);
    topo.egress_at_[k].assign(ports, -1);
  }
  const auto check_port = [&](int node, sim::PortId port, const char* what,
                              std::size_t at) {
    SIM_CHECK(port >= 0 && port < ports_of(node),
              "topology: " << what << " " << at << ": port " << port
                           << " out of range for node '"
                           << s.nodes[static_cast<std::size_t>(node)].name
                           << "' (" << ports_of(node) << " ports)");
  };
  for (std::size_t i = 0; i < s.links.size(); ++i) {
    const LinkSpec& l = s.links[i];
    const int from = node_of(l.from, "link", i);
    const int to = node_of(l.to, "link", i);
    check_port(from, l.from_port, "link", i);
    check_port(to, l.to_port, "link", i);
    SIM_CHECK(l.delay >= 0,
              "topology: link " << i << ": negative delay " << l.delay);
    int& out_slot = topo.out_link_[static_cast<std::size_t>(from)]
                                  [static_cast<std::size_t>(l.from_port)];
    SIM_CHECK(out_slot == -1, "topology: output port "
                                  << l.from_port << " of node '" << l.from
                                  << "' feeds two links");
    out_slot = static_cast<int>(i);
    char& in_slot = in_use[static_cast<std::size_t>(to)]
                          [static_cast<std::size_t>(l.to_port)];
    SIM_CHECK(in_slot == 0, "topology: input port " << l.to_port
                                                    << " of node '" << l.to
                                                    << "' is fed twice");
    in_slot = 1;
    topo.links_.push_back({from, l.from_port, to, l.to_port, l.delay});
  }
  SIM_CHECK(!s.ingress.empty(), "topology: needs at least one ingress port");
  SIM_CHECK(!s.egress.empty(), "topology: needs at least one egress port");
  for (std::size_t e = 0; e < s.ingress.size(); ++e) {
    const PortRef& ref = s.ingress[e];
    const int k = node_of(ref.node, "ingress", e);
    check_port(k, ref.port, "ingress", e);
    char& in_slot = in_use[static_cast<std::size_t>(k)]
                          [static_cast<std::size_t>(ref.port)];
    SIM_CHECK(in_slot != 1, "topology: ingress " << e << ": input port "
                                                 << ref.port << " of node '"
                                                 << ref.node
                                                 << "' is also fed by a link");
    SIM_CHECK(in_slot != 2, "topology: ingress " << e << ": input port "
                                                 << ref.port << " of node '"
                                                 << ref.node
                                                 << "' is already an ingress");
    in_slot = 2;
    topo.ingress_.push_back({k, ref.port});
  }
  for (std::size_t e = 0; e < s.egress.size(); ++e) {
    const PortRef& ref = s.egress[e];
    const int k = node_of(ref.node, "egress", e);
    check_port(k, ref.port, "egress", e);
    SIM_CHECK(topo.out_link_[static_cast<std::size_t>(k)]
                            [static_cast<std::size_t>(ref.port)] == -1,
              "topology: egress " << e << ": output port " << ref.port
                                  << " of node '" << ref.node
                                  << "' also feeds a link");
    int& eg_slot = topo.egress_at_[static_cast<std::size_t>(k)]
                                  [static_cast<std::size_t>(ref.port)];
    SIM_CHECK(eg_slot == -1, "topology: egress " << e << ": output port "
                                                 << ref.port << " of node '"
                                                 << ref.node
                                                 << "' is already an egress");
    eg_slot = static_cast<int>(e);
    topo.egress_.push_back({k, ref.port});
  }

  // --- routes: one table per routing node, entries in range ---
  const auto num_egress = static_cast<std::size_t>(topo.num_egress());
  topo.route_.assign(s.nodes.size(),
                     std::vector<sim::PortId>(num_egress, sim::kNoPort));
  std::vector<char> has_routes(s.nodes.size(), 0);
  for (std::size_t i = 0; i < s.routes.size(); ++i) {
    const RouteSpec& r = s.routes[i];
    const int k = node_of(r.node, "route table", i);
    const auto ki = static_cast<std::size_t>(k);
    SIM_CHECK(!has_routes[ki],
              "topology: duplicate route table for node '" << r.node << "'");
    has_routes[ki] = 1;
    SIM_CHECK(r.table.size() == num_egress,
              "topology: route table for node '"
                  << r.node << "' has " << r.table.size() << " entries for "
                  << num_egress << " egress ports");
    for (std::size_t e = 0; e < r.table.size(); ++e) {
      const sim::PortId p = r.table[e];
      SIM_CHECK(p == sim::kNoPort || (p >= 0 && p < ports_of(k)),
                "topology: route table for node '"
                    << r.node << "': entry " << e << " is port " << p
                    << ", out of range (" << ports_of(k) << " ports)");
      topo.route_[ki][e] = p;
    }
  }

  // --- routing sanity: egress nodes route their own egress ports; every
  // routed path reaches its egress without dead ends or cycles; every
  // egress is reachable from every ingress node ---
  for (std::size_t e = 0; e < topo.egress_.size(); ++e) {
    const CompiledEndpoint& eg = topo.egress_[e];
    const sim::PortId routed =
        topo.route_[static_cast<std::size_t>(eg.node)][e];
    SIM_CHECK(routed == eg.port,
              "topology: node '"
                  << s.nodes[static_cast<std::size_t>(eg.node)].name
                  << "' must route egress " << e << " to its local port "
                  << eg.port << " (route table says "
                  << (routed == sim::kNoPort ? std::string("unreachable")
                                             : std::to_string(routed))
                  << ")");
  }
  std::vector<char> visited(s.nodes.size());
  for (int k = 0; k < topo.num_nodes(); ++k) {
    for (std::size_t e = 0; e < num_egress; ++e) {
      if (topo.route_[static_cast<std::size_t>(k)][e] == sim::kNoPort) {
        continue;
      }
      std::fill(visited.begin(), visited.end(), 0);
      int cur = k;
      for (;;) {
        const auto ci = static_cast<std::size_t>(cur);
        SIM_CHECK(!visited[ci], "topology: routing cycle for egress "
                                    << e << " through node '"
                                    << s.nodes[ci].name << "'");
        visited[ci] = 1;
        const sim::PortId p = topo.route_[ci][e];
        SIM_CHECK(p != sim::kNoPort,
                  "topology: route for egress "
                      << e << " dies at node '" << s.nodes[ci].name
                      << "' (no route entry; path started at node '"
                      << s.nodes[static_cast<std::size_t>(k)].name << "')");
        const int at_egress = topo.egress_at_[ci][static_cast<std::size_t>(p)];
        if (at_egress == static_cast<int>(e)) break;  // delivered
        SIM_CHECK(at_egress == -1, "topology: node '"
                                       << s.nodes[ci].name
                                       << "' routes egress " << e
                                       << " into egress " << at_egress
                                       << "'s port");
        const int li = topo.out_link_[ci][static_cast<std::size_t>(p)];
        SIM_CHECK(li >= 0, "topology: route for egress "
                               << e << " dead-ends at output port " << p
                               << " of node '" << s.nodes[ci].name
                               << "' (port is neither linked nor egress "
                               << e << ")");
        cur = topo.links_[static_cast<std::size_t>(li)].to_node;
      }
    }
  }
  for (std::size_t i = 0; i < topo.ingress_.size(); ++i) {
    const auto ki = static_cast<std::size_t>(topo.ingress_[i].node);
    for (std::size_t e = 0; e < num_egress; ++e) {
      SIM_CHECK(topo.route_[ki][e] != sim::kNoPort,
                "topology: egress " << e << " is unreachable from ingress "
                                    << i << " (node '" << s.nodes[ki].name
                                    << "')");
    }
  }
  return topo;
}

}  // namespace topo
