// Multi-hop networks of registered fabrics: scenario description and the
// validated topology graph.
//
// ROADMAP item 2 ("switching for millions of users"): the paper bounds the
// relative queuing delay of ONE parallel packet switch; datacenter-scale
// questions are about graphs of them — Clos/fat-tree stages, PPS-of-PPS
// recursion — where per-hop queuing delays compound.  A Scenario is the
// config-file form of such a graph (node fabric names, link table, routing,
// traffic matrix; hand-rolled JSON exactly like fault::FaultSchedule), and
// Topology is its validated, index-compiled form the NetworkEngine runs.
//
// Model:
//   * every node wraps one fabric::Make-registered fabric (an N x N switch
//     whose input ports and output ports are separate index spaces [0, N));
//   * a directed link connects (from-node, output port) to (to-node, input
//     port) with a propagation delay of `delay` extra slots — a cell
//     departing its node in slot t is offered to the next node in slot
//     t + 1 + delay (one slot of wire latency minimum, which keeps all
//     nodes independent within a slot and cyclic graphs well-defined);
//   * external ingress ports are unlinked (node, input-port) pairs and
//     external egress ports unlinked (node, output-port) pairs; traffic
//     enters and leaves the network only there;
//   * routing is destination-based and deterministic: per node, a table
//     mapping each egress index to the local output port toward it (-1 =
//     unreachable from this node).
//
// Validation (Topology::Build) throws a distinct sim::SimError for every
// config-error class: malformed JSON, unknown fabric names, dangling link
// endpoints, port-count mismatches (double-booked or double-fed ports,
// external ports also linked), and routing errors (missing tables, dead
// ends, cycles, egresses unreachable from an ingress node) — never a
// crash.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_schedule.h"
#include "sim/types.h"
#include "switch/config.h"
#include "traffic/source.h"

namespace topo {

// One switching element: a named instance of a registry fabric.
struct NodeSpec {
  std::string name;
  std::string fabric;  // fabric::Make registry name, e.g. "pps/round-robin"
  pps::SwitchConfig config;  // num_ports/num_planes/rate_ratio/buffers/...

  friend bool operator==(const NodeSpec& a, const NodeSpec& b) {
    return a.name == b.name && a.fabric == b.fabric &&
           a.config.num_ports == b.config.num_ports &&
           a.config.num_planes == b.config.num_planes &&
           a.config.rate_ratio == b.config.rate_ratio &&
           a.config.input_buffer_size == b.config.input_buffer_size &&
           a.config.reseq_timeout == b.config.reseq_timeout;
  }
};

// Directed link: output port `from_port` of `from` feeds input port
// `to_port` of `to`; a cell takes 1 + delay slots to cross.
struct LinkSpec {
  std::string from;
  sim::PortId from_port = 0;
  std::string to;
  sim::PortId to_port = 0;
  sim::Slot delay = 0;  // extra propagation slots beyond the 1-slot minimum

  friend bool operator==(const LinkSpec&, const LinkSpec&) = default;
};

// An external port of the network: `port` is an input port for ingress
// refs and an output port for egress refs.
struct PortRef {
  std::string node;
  sim::PortId port = 0;

  friend bool operator==(const PortRef&, const PortRef&) = default;
};

// Per-node destination-based route table, keyed by node name: table[e] is
// the local output port toward egress index e, or -1 when unreachable.
struct RouteSpec {
  std::string node;
  std::vector<sim::PortId> table;

  friend bool operator==(const RouteSpec&, const RouteSpec&) = default;
};

// The offered workload over the external ports.
struct TrafficSpec {
  std::string kind = "bernoulli";  // "bernoulli" | "matrix"
  // kind == "bernoulli": pattern over the external egress space.
  std::string pattern = "uniform";  // uniform | diagonal | hotspot | transpose
  double load = 0.5;
  double hotspot_fraction = 0.5;
  // kind == "matrix": rows[i][e] = load from ingress i to egress e.
  std::vector<std::vector<double>> rows;
  std::uint64_t seed = 1;
  sim::Slot cutoff = 20'000;  // stop offering arrivals at this slot

  friend bool operator==(const TrafficSpec&, const TrafficSpec&) = default;
};

// A fault timeline applied to one node's fabric.
struct FaultSpec {
  std::string node;
  fault::FaultSchedule schedule;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

// The config-file form of a network: what FromJson/ToJson round-trip.
struct Scenario {
  std::string name;
  std::vector<NodeSpec> nodes;
  std::vector<LinkSpec> links;
  std::vector<PortRef> ingress;
  std::vector<PortRef> egress;
  std::vector<RouteSpec> routes;
  TrafficSpec traffic;
  std::vector<FaultSpec> faults;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

// JSON round-trip, hand-rolled like fault::FaultSchedule's (no third-party
// parser; the fault schedules embed verbatim).  ToJson output parses back
// to an equal Scenario; FromJson throws sim::SimError on malformed input
// or unknown keys.
std::string ToJson(const Scenario& scenario, int indent = 2);
Scenario FromJson(std::string_view json);

// Constructs the scenario's traffic source over the external port spaces
// (arrivals carry ingress indices on `input`, egress indices on `output`).
// Throws sim::SimError on an unknown kind/pattern or a matrix whose shape
// does not match the scenario's external ports.
traffic::SourcePtr MakeTrafficSource(const Scenario& scenario,
                                     sim::PortId num_ingress,
                                     sim::PortId num_egress);

// The validated, index-compiled graph.  Node/link/external-port indices
// are positions in the scenario's vectors; all lookup tables are dense.
class Topology {
 public:
  // Validates and compiles; throws sim::SimError (see file comment for the
  // error classes) on any inconsistency.
  static Topology Build(Scenario scenario);

  const Scenario& scenario() const { return scenario_; }

  int num_nodes() const { return static_cast<int>(scenario_.nodes.size()); }
  const NodeSpec& node(int k) const {
    return scenario_.nodes[static_cast<std::size_t>(k)];
  }
  // The node's fault schedule from the scenario (empty if none declared).
  const fault::FaultSchedule& node_faults(int k) const {
    return node_faults_[static_cast<std::size_t>(k)];
  }

  sim::PortId num_ingress() const {
    return static_cast<sim::PortId>(scenario_.ingress.size());
  }
  sim::PortId num_egress() const {
    return static_cast<sim::PortId>(scenario_.egress.size());
  }
  // The edge port space the shadow OQ and edge flow ids run over.
  sim::PortId num_edge_ports() const {
    return std::max(num_ingress(), num_egress());
  }

  struct CompiledEndpoint {
    int node = -1;
    sim::PortId port = sim::kNoPort;
  };
  const CompiledEndpoint& ingress(sim::PortId e) const {
    return ingress_[static_cast<std::size_t>(e)];
  }
  const CompiledEndpoint& egress(sim::PortId e) const {
    return egress_[static_cast<std::size_t>(e)];
  }

  struct CompiledLink {
    int from_node = -1;
    sim::PortId from_port = sim::kNoPort;
    int to_node = -1;
    sim::PortId to_port = sim::kNoPort;
    sim::Slot delay = 0;
  };
  const std::vector<CompiledLink>& links() const { return links_; }

  // Link leaving (node, output port), or -1 when that port is not linked.
  int OutLink(int node, sim::PortId port) const {
    return out_link_[static_cast<std::size_t>(node)]
                    [static_cast<std::size_t>(port)];
  }
  // Egress index at (node, output port), or -1.
  int EgressAt(int node, sim::PortId port) const {
    return egress_at_[static_cast<std::size_t>(node)]
                     [static_cast<std::size_t>(port)];
  }
  // Local output port of `node` toward egress index e, or kNoPort when
  // unreachable from this node.
  sim::PortId Route(int node, sim::PortId e) const {
    return route_[static_cast<std::size_t>(node)][static_cast<std::size_t>(e)];
  }

  int NodeIndex(std::string_view name) const;  // -1 when unknown

 private:
  Topology() = default;

  Scenario scenario_;
  std::vector<fault::FaultSchedule> node_faults_;  // per node, maybe empty
  std::vector<CompiledEndpoint> ingress_;
  std::vector<CompiledEndpoint> egress_;
  std::vector<CompiledLink> links_;
  std::vector<std::vector<int>> out_link_;    // [node][output port]
  std::vector<std::vector<int>> egress_at_;   // [node][output port]
  std::vector<std::vector<sim::PortId>> route_;  // [node][egress]
};

}  // namespace topo
