// One switching element of a topology: a registry fabric plus the
// per-node run state the NetworkEngine needs — its fault applier, the
// local per-flow sequence counters used to stamp each hop's identity, and
// the per-hop latency attribution accumulators.
//
// The identity-rewrite contract: a cell crossing the network keeps its
// global id and net_* fields forever, but every node sees a *local*
// (input, output, seq, arrival) identity minted by StampArrival when the
// cell is offered to this node.  That is what lets any single-switch
// fabric — which resequences and audits in terms of its own N-port flow
// space — participate in a multi-hop network unchanged.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/slot_engine.h"
#include "fabric/fabric.h"
#include "fault/fault_schedule.h"
#include "fault/loss.h"
#include "sim/cell.h"
#include "sim/stats.h"
#include "sim/types.h"
#include "topo/topology.h"

namespace topo {

// Per-node attribution snapshot reported in NetworkRunResult: where the
// end-to-end delay was spent.
struct NodeStats {
  std::string name;
  std::uint64_t forwarded = 0;   // cells that departed this node
  sim::Slot max_hop_delay = 0;   // worst local queuing delay
  sim::OnlineStats hop_delay;    // distribution of local queuing delay
  std::int64_t backlog = 0;      // cells still queued at run end
  fault::LossBreakdown losses;   // this node's loss taxonomy
};

class Node {
 public:
  // Builds the spec's fabric via the registry and arms its fault schedule
  // (empty schedule = no-fault node).
  Node(const NodeSpec& spec, const fault::FaultSchedule& faults);

  const std::string& name() const { return spec_.name; }
  sim::PortId num_ports() const { return spec_.config.num_ports; }
  fabric::Fabric& fabric() { return *fabric_; }
  const fabric::Fabric& fabric() const { return *fabric_; }
  core::FaultScheduleApplier& faults() { return faults_; }

  // Rewrites the cell's local identity for this hop: local ports, a fresh
  // per-(input,output) sequence number, arrival slot t, and cleared
  // trajectory stamps.  Global id / hop / net_* fields are untouched.
  void StampArrival(sim::Cell& cell, sim::PortId input, sim::PortId output,
                    sim::Slot t);

  // Folds a departed cell's local queuing delay into the hop stats.
  void RecordDeparture(const sim::Cell& cell);

  // Attribution snapshot (name, hop delays, live backlog and losses).
  NodeStats Stats() const;

  void SaveState(ckpt::Writer& w) const;
  void LoadState(ckpt::Reader& r);

 private:
  // ckpt-skip: construction-time spec, identical on resume
  const NodeSpec spec_;
  std::unique_ptr<fabric::Fabric> fabric_;
  core::FaultScheduleApplier faults_;
  std::unordered_map<sim::FlowId, std::uint64_t> seq_;
  std::uint64_t forwarded_ = 0;
  sim::Slot max_hop_delay_ = 0;
  sim::OnlineStats hop_delay_;
};

}  // namespace topo
