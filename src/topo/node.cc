#include "topo/node.h"

#include <utility>

#include "ckpt/serializer.h"
#include "fabric/registry.h"
#include "sim/error.h"

namespace topo {

namespace {

core::RunOptions OptionsWith(const fault::FaultSchedule& schedule) {
  core::RunOptions options;
  options.fault_schedule = schedule;
  return options;
}

}  // namespace

Node::Node(const NodeSpec& spec, const fault::FaultSchedule& faults)
    : spec_(spec),
      fabric_(fabric::Make(spec.fabric, spec.config)),
      faults_(*fabric_, OptionsWith(faults)) {}

void Node::StampArrival(sim::Cell& cell, sim::PortId input, sim::PortId output,
                        sim::Slot t) {
  SIM_CHECK(input >= 0 && input < num_ports() && output >= 0 &&
                output < num_ports(),
            "node '" << spec_.name << "': hop identity " << input << "->"
                     << output << " outside " << num_ports() << " ports");
  cell.input = input;
  cell.output = output;
  cell.seq = seq_[sim::MakeFlowId(input, output, num_ports())]++;
  cell.arrival = t;
  // The previous hop's trajectory is history; this fabric starts fresh.
  cell.plane = sim::kNoPlane;
  cell.dispatched = sim::kNoSlot;
  cell.reached_output = sim::kNoSlot;
  cell.departure = sim::kNoSlot;
  cell.tag = sim::kNoSlot;
}

void Node::RecordDeparture(const sim::Cell& cell) {
  const sim::Slot delay = cell.delay();
  ++forwarded_;
  if (delay > max_hop_delay_) max_hop_delay_ = delay;
  hop_delay_.Add(static_cast<double>(delay));
}

NodeStats Node::Stats() const {
  NodeStats stats;
  stats.name = spec_.name;
  stats.forwarded = forwarded_;
  stats.max_hop_delay = max_hop_delay_;
  stats.hop_delay = hop_delay_;
  stats.backlog = fabric_->TotalBacklog();
  stats.losses = fabric_->losses();
  return stats;
}

void Node::SaveState(ckpt::Writer& w) const {
  w.Marker("NOD0");
  w.Str(spec_.name);
  w.Str(fabric_->name());
  w.I32(spec_.config.num_ports);
  fabric_->SaveState(w);
  faults_.SaveState(w);
  w.Size(seq_.size());
  for (const sim::FlowId flow : ckpt::SortedKeys(seq_)) {
    w.U64(flow);
    w.U64(seq_.at(flow));
  }
  w.U64(forwarded_);
  w.I64(max_hop_delay_);
  hop_delay_.SaveState(w);
}

void Node::LoadState(ckpt::Reader& r) {
  r.ExpectMarker("NOD0");
  const std::string name = r.Str();
  SIM_CHECK(name == spec_.name, "topology checkpoint: node '"
                                    << name << "' where '" << spec_.name
                                    << "' was expected");
  const std::string fabric_name = r.Str();
  SIM_CHECK(fabric_name == fabric_->name(),
            "topology checkpoint: node '" << spec_.name << "' ran fabric '"
                                          << fabric_name << "', this run has '"
                                          << fabric_->name() << "'");
  const sim::PortId ports = r.I32();
  SIM_CHECK(ports == num_ports(), "topology checkpoint: node '"
                                      << spec_.name << "' had " << ports
                                      << " ports, this run has "
                                      << num_ports());
  fabric_->LoadState(r);
  faults_.LoadState(r);
  seq_.clear();
  const std::size_t flows = r.Count();
  for (std::size_t i = 0; i < flows; ++i) {
    const sim::FlowId flow = r.U64();
    seq_[flow] = r.U64();
  }
  forwarded_ = r.U64();
  max_hop_delay_ = r.I64();
  hop_delay_.LoadState(r);
}

}  // namespace topo
