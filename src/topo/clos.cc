#include "topo/clos.h"

#include <algorithm>

#include "sim/error.h"

namespace topo {

Scenario MakeClos3(int leaves, int spines, int externals_per_leaf,
                   const std::string& fabric, const pps::SwitchConfig& base,
                   sim::Slot link_delay) {
  SIM_CHECK(leaves > 0 && spines > 0 && externals_per_leaf > 0,
            "MakeClos3 needs positive leaves/spines/externals, got "
                << leaves << "/" << spines << "/" << externals_per_leaf);
  SIM_CHECK(link_delay >= 0,
            "MakeClos3 link_delay " << link_delay << " is negative");
  const int m = leaves;
  const int n = spines;
  const int r = externals_per_leaf;
  const int num_egress = m * r;

  Scenario s;
  s.name = "clos3-" + std::to_string(m) + "x" + std::to_string(n) + "x" +
           std::to_string(r) + "-" + fabric;

  const auto add_node = [&](const std::string& name, int ports) {
    NodeSpec node;
    node.name = name;
    node.fabric = fabric;
    node.config = base;
    node.config.num_ports = ports;
    s.nodes.push_back(node);
  };
  for (int i = 0; i < m; ++i) {
    add_node("in" + std::to_string(i), std::max(r, n));
  }
  for (int k = 0; k < n; ++k) {
    add_node("sp" + std::to_string(k), m);
  }
  for (int j = 0; j < m; ++j) {
    add_node("out" + std::to_string(j), std::max(n, r));
  }

  const auto link = [&](const std::string& from, sim::PortId from_port,
                        const std::string& to, sim::PortId to_port) {
    LinkSpec l;
    l.from = from;
    l.from_port = from_port;
    l.to = to;
    l.to_port = to_port;
    l.delay = link_delay;
    s.links.push_back(l);
  };
  // Full bipartite wiring both stages: ingress leaf i's output k feeds
  // spine k's input i; spine k's output j feeds egress leaf j's input k.
  for (int i = 0; i < m; ++i) {
    for (int k = 0; k < n; ++k) {
      link("in" + std::to_string(i), k, "sp" + std::to_string(k), i);
    }
  }
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < m; ++j) {
      link("sp" + std::to_string(k), j, "out" + std::to_string(j), k);
    }
  }

  // External ports: r per leaf on each side, in leaf-major order.
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < r; ++p) {
      s.ingress.push_back(PortRef{"in" + std::to_string(i), p});
      s.egress.push_back(PortRef{"out" + std::to_string(i), p});
    }
  }

  // Routing: per-destination spine spraying at the ingress leaf, then
  // destination-leaf selection at the spine, then the local egress port.
  for (int i = 0; i < m; ++i) {
    RouteSpec route;
    route.node = "in" + std::to_string(i);
    for (int e = 0; e < num_egress; ++e) {
      route.table.push_back(e % n);
    }
    s.routes.push_back(route);
  }
  for (int k = 0; k < n; ++k) {
    RouteSpec route;
    route.node = "sp" + std::to_string(k);
    for (int e = 0; e < num_egress; ++e) {
      route.table.push_back(e / r);
    }
    s.routes.push_back(route);
  }
  for (int j = 0; j < m; ++j) {
    RouteSpec route;
    route.node = "out" + std::to_string(j);
    for (int e = 0; e < num_egress; ++e) {
      route.table.push_back(e / r == j ? e % r : sim::kNoPort);
    }
    s.routes.push_back(route);
  }
  return s;
}

}  // namespace topo
