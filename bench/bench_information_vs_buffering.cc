// E19 — information vs buffering: the input-buffered PPS summary figure.
//
// Section 4's message in one sweep: buffers are only as useful as the
// information that schedules them.  For the same switch, the same buffers
// and the same traffic, relative queuing delay as a function of the
// information delay u:
//   * cpa-emulation-u<U>  — u-RT with the right algorithm: RQD = u exactly
//     (Theorem 12's upper bound, linear in u, independent of N);
//   * request-grant-u<U>  — a practical arbitrated crossbar: RQD tracks u
//     plus contention;
//   * buffered-rr         — fully distributed: flat, stuck at the
//     Theorem-13 floor no matter how large the buffers are (u on the x
//     axis is meaningless to it — it uses no global information at all).

#include "bench_common.h"

#include "demux/buffered.h"
#include "sim/rng.h"
#include "switch/input_buffered_pps.h"
#include "traffic/random_sources.h"

namespace {

core::RunResult RunBuffered(const std::string& name, int u) {
  pps::SwitchConfig cfg;
  cfg.num_ports = 16;
  cfg.rate_ratio = 2;
  cfg.num_planes = 4;  // S = 2
  cfg.input_buffer_size = 256;
  const auto needs = demux::NeedsOf(name);
  if (needs.booked_planes) {
    cfg.plane_scheduling = pps::PlaneScheduling::kBooked;
  }
  cfg.snapshot_history = std::max(1, u + 1);
  pps::InputBufferedPps sw(cfg, demux::MakeBufferedFactory(name));
  traffic::BernoulliSource src(16, 0.9, traffic::Pattern::kUniform,
                               sim::Rng(606));
  core::RunOptions opt;
  opt.max_slots = 40'000;
  opt.source_cutoff = 10'000;
  return core::RunRelative(sw, src, opt);
}

void RunExperiment() {
  const std::vector<int> staleness = {0, 1, 2, 4, 8, 16};
  core::Sweep sweep(
      {.bench = "bench_information_vs_buffering",
       .title = "Information vs buffering (N = 16, S = 2, buffers = 256, "
                "uniform load 0.9): max/mean RQD vs information delay u",
       .columns = {"u", "cpa-emulation max", "cpa-emulation mean",
                   "request-grant max", "request-grant mean",
                   "buffered-rr max", "buffered-rr mean"}});
  for (const int u : staleness) {
    sweep.Add(core::json::Obj({{"u", u}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const int u = staleness[pt.index];
        const auto emu =
            RunBuffered("cpa-emulation-u" + std::to_string(u), u);
        const auto arb =
            RunBuffered("request-grant-u" + std::to_string(u), u);
        // The fully-distributed baseline ignores u; recomputed per point so
        // each point stays self-contained under parallel execution.
        const auto flat = RunBuffered("buffered-rr", 0);
        core::PointResult out;
        out.cells = {core::Fmt(u), core::Fmt(emu.max_relative_delay),
                     core::Fmt(emu.relative_delay.mean(), 2),
                     core::Fmt(arb.max_relative_delay),
                     core::Fmt(arb.relative_delay.mean(), 2),
                     core::Fmt(flat.max_relative_delay),
                     core::Fmt(flat.relative_delay.mean(), 2)};
        out.metrics = core::json::Obj(
            {{"cpa_emulation_max", emu.max_relative_delay},
             {"cpa_emulation_mean", emu.relative_delay.mean()},
             {"request_grant_max", arb.max_relative_delay},
             {"request_grant_mean", arb.relative_delay.mean()},
             {"buffered_rr_max", flat.max_relative_delay},
             {"buffered_rr_mean", flat.relative_delay.mean()}});
        return out;
      },
      std::cout,
      "(the emulation column IS the identity line RQD = u — "
      "Theorem 12; the arbitrated crossbar adds contention on "
      "top; the fully-distributed column ignores u entirely: "
      "buffers without information buy nothing, exactly the "
      "Theorem-12/Theorem-13 dichotomy)");
}

void BM_InformationVsBuffering(benchmark::State& state) {
  const int u = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunBuffered("cpa-emulation-u" + std::to_string(u), u)
            .max_relative_delay);
  }
}
BENCHMARK(BM_InformationVsBuffering)->Arg(1)->Arg(8);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
