// E9 — tightness of Corollary 7: the fully-distributed per-output
// round-robin demultiplexor (the shape of Iyer & McKeown's distributed
// algorithm [15]) never exceeds N * R/r relative queuing delay, while the
// Corollary-7 adversary forces (R/r - 1) * N; together,
// Theta(N * R/r) is tight for bufferless fully-distributed PPS.
//
// The sweep reports, per (N, r'): the lower-bound traffic's measured RQD,
// the worst RQD seen over a battery of stress workloads, and both
// analytical brackets.

#include "bench_common.h"

#include "core/adversary_alignment.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

sim::Slot WorstOverStressWorkloads(const pps::SwitchConfig& cfg) {
  sim::Slot worst = 0;
  for (const auto pattern :
       {traffic::Pattern::kUniform, traffic::Pattern::kHotspot,
        traffic::Pattern::kTranspose}) {
    pps::BufferlessPps sw(cfg, demux::MakeFactory("rr-per-output"));
    traffic::BernoulliSource src(cfg.num_ports, 0.95, pattern, sim::Rng(17),
                                 0.4);
    core::RunOptions opt;
    opt.max_slots = 10'000;
    opt.drain_grace = 4'000;
    const auto result = core::RunRelative(sw, src, opt);
    worst = std::max(worst, result.max_relative_delay);
  }
  return worst;
}

void RunExperiment() {
  struct Case {
    int rate_ratio;
    sim::PortId n;
  };
  std::vector<Case> cases;
  for (const int rate_ratio : {2, 4}) {
    for (const sim::PortId n : {8, 16, 32}) {
      cases.push_back({rate_ratio, n});
    }
  }

  core::Sweep sweep(
      {.bench = "bench_distributed_upper",
       .title = "Tightness of Theta(N * R/r): rr-per-output between "
                "Corollary 7 and the [15] upper bound",
       .columns = {"N", "r'", "S", "lower=(r'-1)N", "adversarial RQD",
                   "stress RQD", "upper=N*r'"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj({{"N", c.n}, {"rate_ratio", c.rate_ratio}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        const auto cfg =
            bench::MakeConfig(c.n, c.rate_ratio, 2.0, "rr-per-output");
        const auto plan = core::BuildAlignmentTraffic(
            cfg, demux::MakeFactory("rr-per-output"));
        const auto adv = bench::ReplayTrace(cfg, "rr-per-output", plan.trace);
        const sim::Slot stress = WorstOverStressWorkloads(cfg);
        const double lower = core::bounds::Corollary7(c.rate_ratio, c.n);
        const double upper = core::bounds::IyerMcKeownUpper(c.rate_ratio, c.n);
        core::PointResult out;
        out.cells = {core::Fmt(c.n), core::Fmt(c.rate_ratio),
                     core::Fmt(cfg.speedup(), 1), core::Fmt(lower, 0),
                     core::Fmt(adv.max_relative_delay), core::Fmt(stress),
                     core::Fmt(upper, 0)};
        out.metrics = bench::RelativeMetrics(lower, adv);
        out.metrics.Set("stress_rqd", stress).Set("upper", upper);
        return out;
      },
      std::cout,
      "(adversarial >= lower - slack and <= upper; random stress "
      "traffic stays well below the adversarial worst case — the "
      "lower bound needs construction, not luck)");
}

void BM_DistributedUpper(benchmark::State& state) {
  const auto cfg = bench::MakeConfig(
      static_cast<sim::PortId>(state.range(0)), 2, 2.0, "rr-per-output");
  for (auto _ : state) {
    benchmark::DoNotOptimize(WorstOverStressWorkloads(cfg));
  }
}
BENCHMARK(BM_DistributedUpper)->Arg(16);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
