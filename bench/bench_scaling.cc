// E10 — the headline claim: "the PPS architecture does not scale with an
// increasing number of external ports."  Two series:
//   (a) worst-case RQD vs N at fixed speedup, for each algorithm class —
//       linear in N for every distributed class, flat only for CPA;
//   (b) worst-case RQD vs S at fixed N — speedup buys delay back only
//       linearly (N/S), while its hardware cost is K = S * r' planes.

#include "bench_common.h"

#include "core/adversary_alignment.h"
#include "core/adversary_bursts.h"
#include "core/parallel.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

sim::Slot AdversarialRqd(const std::string& algorithm, sim::PortId n,
                         int rate_ratio, double speedup) {
  const auto cfg = bench::MakeConfig(n, rate_ratio, speedup, algorithm);
  if (algorithm.rfind("stale-jsq", 0) == 0) {
    core::StaleBurstOptions opt;
    opt.u = 4;
    const auto plan = BuildStaleBurstTraffic(cfg, opt);
    return bench::ReplayTrace(cfg, algorithm, plan.trace).max_relative_delay;
  }
  if (algorithm == "cpa") {
    // No adversary exists (zero RQD); stress with heavy random traffic.
    pps::BufferlessPps sw(cfg, demux::MakeFactory(algorithm));
    traffic::BernoulliSource src(n, 0.95, traffic::Pattern::kUniform,
                                 sim::Rng(3));
    core::RunOptions opt;
    opt.max_slots = 5'000;
    opt.drain_grace = 2'000;
    return core::RunRelative(sw, src, opt).max_relative_delay;
  }
  const auto plan =
      core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
  return bench::ReplayTrace(cfg, algorithm, plan.trace).max_relative_delay;
}

void RunExperiment() {
  const int rate_ratio = 2;
  {
    core::Table table(
        "Scaling in N (S = 2, r' = 2): worst-case relative queuing delay",
        {"algorithm", "info model", "N=16", "N=64", "N=256", "N=1024"});
    struct Row {
      std::string algorithm;
      std::string model;
    };
    const std::vector<Row> rows = {
        Row{"rr-per-output", "fully-distributed"},
        Row{"static-partition-d2", "fully-distributed"},
        Row{"stale-jsq-u4", "4-RT"},
        Row{"cpa", "centralized"}};
    const std::vector<sim::PortId> sizes = {16, 64, 256, 1024};
    // Grid points are independent simulations: sweep them in parallel.
    const auto grid = core::ParallelMap<sim::Slot>(
        rows.size() * sizes.size(), [&](std::size_t idx) {
          const Row& row = rows[idx / sizes.size()];
          const sim::PortId n = sizes[idx % sizes.size()];
          return AdversarialRqd(row.algorithm, n, rate_ratio, 2.0);
        });
    for (std::size_t r = 0; r < rows.size(); ++r) {
      std::vector<std::string> cells = {rows[r].algorithm, rows[r].model};
      for (std::size_t s = 0; s < sizes.size(); ++s) {
        cells.push_back(core::Fmt(grid[r * sizes.size() + s]));
      }
      table.AddRow(cells);
    }
    table.Print(std::cout);
    std::cout << "(distributed classes grow linearly in N; only the "
               "impractical centralized CPA stays at 0 — at N = 1024, r'=2 "
               "the fully-distributed worst case exceeds a thousand cell "
               "times)\n\n";
  }
  {
    core::Table table(
        "Scaling in S (N = 64, r' = 2): worst-case relative queuing delay",
        {"algorithm", "S=1", "S=2", "S=4", "S=8"});
    for (const std::string& algorithm :
         {std::string("rr-per-output"), std::string("static-partition-d2")}) {
      std::vector<std::string> cells = {algorithm};
      for (const double speedup : {1.0, 2.0, 4.0, 8.0}) {
        cells.push_back(
            core::Fmt(AdversarialRqd(algorithm, 64, rate_ratio, speedup)));
      }
      table.AddRow(cells);
    }
    table.Print(std::cout);
    std::cout << "(unpartitioned round-robin cannot be saved by speedup — "
               "the adversary aligns all N inputs regardless of K; the "
               "partitioned bound follows N/S as Theorem 8 predicts)\n\n";
  }
}

void BM_Scaling1024(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AdversarialRqd("rr-per-output",
                       static_cast<sim::PortId>(state.range(0)), 2, 2.0));
  }
}
BENCHMARK(BM_Scaling1024)->Arg(256)->Arg(1024)->Iterations(1);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
