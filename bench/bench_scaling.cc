// E10 — the headline claim: "the PPS architecture does not scale with an
// increasing number of external ports."  Two series:
//   (a) worst-case RQD vs N at fixed speedup, for each algorithm class —
//       linear in N for every distributed class, flat only for CPA;
//   (b) worst-case RQD vs S at fixed N — speedup buys delay back only
//       linearly (N/S), while its hardware cost is K = S * r' planes.
//
// Both series are long-format sweeps (one grid point per row), so the
// sweep runner parallelizes the N = 1024 simulations and the JSON output
// carries one {params, metrics} record per point.

#include "bench_common.h"

#include "core/adversary_alignment.h"
#include "core/adversary_bursts.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

sim::Slot AdversarialRqd(const std::string& algorithm, sim::PortId n,
                         int rate_ratio, double speedup) {
  const auto cfg = bench::MakeConfig(n, rate_ratio, speedup, algorithm);
  if (algorithm.rfind("stale-jsq", 0) == 0) {
    core::StaleBurstOptions opt;
    opt.u = 4;
    const auto plan = BuildStaleBurstTraffic(cfg, opt);
    return bench::ReplayTrace(cfg, algorithm, plan.trace).max_relative_delay;
  }
  if (algorithm == "cpa") {
    // No adversary exists (zero RQD); stress with heavy random traffic.
    pps::BufferlessPps sw(cfg, demux::MakeFactory(algorithm));
    traffic::BernoulliSource src(n, 0.95, traffic::Pattern::kUniform,
                                 sim::Rng(3));
    core::RunOptions opt;
    opt.max_slots = 5'000;
    opt.drain_grace = 2'000;
    return core::RunRelative(sw, src, opt).max_relative_delay;
  }
  const auto plan =
      core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
  return bench::ReplayTrace(cfg, algorithm, plan.trace).max_relative_delay;
}

void RunExperiment() {
  const int rate_ratio = 2;
  {
    struct Row {
      std::string algorithm;
      std::string model;
    };
    const std::vector<Row> rows = {
        Row{"rr-per-output", "fully-distributed"},
        Row{"static-partition-d2", "fully-distributed"},
        Row{"stale-jsq-u4", "4-RT"},
        Row{"cpa", "centralized"}};
    const std::vector<sim::PortId> sizes = {16, 64, 256, 1024};

    core::Sweep sweep(
        {.bench = "bench_scaling",
         .title = "Scaling in N (S = 2, r' = 2): worst-case relative "
                  "queuing delay",
         .columns = {"algorithm", "info model", "N", "RQD"}});
    for (const Row& row : rows) {
      for (const sim::PortId n : sizes) {
        sweep.Add(core::json::Obj({{"algorithm", row.algorithm},
                                   {"info_model", row.model},
                                   {"N", n}}));
      }
    }
    sweep.Run(
        [&](const core::SweepPoint& pt) {
          const Row& row = rows[pt.index / sizes.size()];
          const sim::PortId n = sizes[pt.index % sizes.size()];
          const sim::Slot rqd =
              AdversarialRqd(row.algorithm, n, rate_ratio, 2.0);
          core::PointResult out;
          out.cells = {row.algorithm, row.model, core::Fmt(n),
                       core::Fmt(rqd)};
          out.metrics = core::json::Obj({{"rqd", rqd}});
          return out;
        },
        std::cout,
        "(distributed classes grow linearly in N; only the "
        "impractical centralized CPA stays at 0 — at N = 1024, r'=2 "
        "the fully-distributed worst case exceeds a thousand cell "
        "times)");
  }
  {
    const std::vector<std::string> algorithms = {"rr-per-output",
                                                 "static-partition-d2"};
    const std::vector<double> speedups = {1.0, 2.0, 4.0, 8.0};
    core::Sweep sweep(
        {.bench = "bench_scaling_speedup",
         .title = "Scaling in S (N = 64, r' = 2): worst-case relative "
                  "queuing delay",
         .columns = {"algorithm", "S", "RQD"}});
    for (const std::string& algorithm : algorithms) {
      for (const double speedup : speedups) {
        sweep.Add(core::json::Obj(
            {{"algorithm", algorithm}, {"speedup", speedup}, {"N", 64}}));
      }
    }
    sweep.Run(
        [&](const core::SweepPoint& pt) {
          const std::string& algorithm =
              algorithms[pt.index / speedups.size()];
          const double speedup = speedups[pt.index % speedups.size()];
          const sim::Slot rqd =
              AdversarialRqd(algorithm, 64, rate_ratio, speedup);
          core::PointResult out;
          out.cells = {algorithm, core::Fmt(speedup, 1), core::Fmt(rqd)};
          out.metrics = core::json::Obj({{"rqd", rqd}});
          return out;
        },
        std::cout,
        "(unpartitioned round-robin cannot be saved by speedup — "
        "the adversary aligns all N inputs regardless of K; the "
        "partitioned bound follows N/S as Theorem 8 predicts)");
  }
}

void BM_Scaling1024(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AdversarialRqd("rr-per-output",
                       static_cast<sim::PortId>(state.range(0)), 2, 2.0));
  }
}
BENCHMARK(BM_Scaling1024)->Arg(256)->Arg(1024)->Iterations(1);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
