// E18 — chaos sweep: graceful degradation under plane flap storms with
// stale failure visibility.
//
// Section 3 of the paper: "Statically partitioning the planes among the
// different demultiplexors is failure-prone ... fault tolerance dictates
// each demultiplexor may send a cell destined for any output through any
// plane."  This bench drives the fault subsystem (src/fault/) across a
// grid of flap rate x notification lag x plane count: every plane
// independently fails and recovers on a seeded FaultSchedule (capped so
// the survivors always sustain line rate, K' >= r'), demultiplexors learn
// of each transition `lag` slots late (the u-RT information model applied
// to failure knowledge), and one flaky-link window drops dispatches on
// plane 0 mid-run.  The table reports the full loss taxonomy — stranded
// cells, stale dispatches, link drops, input drops — which the harness
// reconciles exactly against RunResult::dropped on drained runs, plus the
// worst relative queuing delay and harness throughput.
//
// cells_per_sec (like wall_ms) is timing and therefore exempt from the
// sweep determinism contract; everything else in the JSON stays
// byte-identical.

#include "bench_common.h"

#include <chrono>

#include "fault/fault_schedule.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

struct ChaosCase {
  int num_planes;        // K (r' = 2, so S = K/2)
  sim::Slot flap_period; // mean up-time; mean down-time is a quarter of it
  int lag;               // failure-notification lag in slots
};

struct ChaosOutcome {
  core::RunResult result;
  fault::FaultSchedule schedule;
};

constexpr sim::PortId kPorts = 16;
constexpr int kRateRatio = 2;
constexpr sim::Slot kCutoff = 8'000;

ChaosOutcome RunChaos(const ChaosCase& c, std::uint64_t seed) {
  pps::SwitchConfig cfg;
  cfg.num_ports = kPorts;
  cfg.num_planes = c.num_planes;
  cfg.rate_ratio = kRateRatio;
  cfg.reseq_timeout = 32;  // reassembly timer: skip gaps from lost cells
  cfg.fault_visibility_lag = c.lag;

  ChaosOutcome out;
  // Flap storm over the arrival window, never dipping below K' = r'
  // surviving planes, plus one flaky-link window on plane 0 mid-run.
  out.schedule = fault::FaultSchedule::RandomFlaps(
      c.num_planes, kCutoff, static_cast<double>(c.flap_period),
      static_cast<double>(c.flap_period) / 4.0, seed,
      /*max_down=*/c.num_planes - kRateRatio);
  out.schedule.DropLink(sim::kNoPort, 0, 0.02, 3'000, 512);

  pps::BufferlessPps sw(cfg, demux::MakeFactory("rr-per-output"));
  traffic::BernoulliSource src(cfg.num_ports, 0.9,
                               traffic::Pattern::kUniform, sim::Rng(55));
  core::RunOptions opt;
  opt.fault_schedule = out.schedule;
  // Degraded epochs (K' = r', speedup 1) can leave a ~10k-slot backlog
  // behind the shadow; give the drain room so every point reconciles.
  opt.source_cutoff = kCutoff;
  opt.drain_grace = 24'000;
  opt.max_slots = 32'000;
  out.result = core::RunRelative(sw, src, opt);
  return out;
}

void RunExperiment() {
  std::vector<ChaosCase> cases;
  for (const int k : {4, 8}) {
    for (const sim::Slot flap : {sim::Slot{400}, sim::Slot{1600}}) {
      for (const int lag : {0, 16}) {
        cases.push_back({k, flap, lag});
      }
    }
  }

  core::Sweep sweep(
      {.bench = "bench_fault",
       .title = "Chaos sweep: plane flap storms with stale failure "
                "visibility (N = 16, r' = 2, rr-per-output, load 0.9; "
                "losses by category, reconciled)",
       .columns = {"K", "flap", "lag", "events", "dropped", "stranded",
                   "stale", "link", "late", "maxRQD", "cells/s"}});
  for (const ChaosCase& c : cases) {
    sweep.Add(core::json::Obj({{"K", c.num_planes},
                               {"flap_period", c.flap_period},
                               {"visibility_lag", c.lag}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const ChaosCase& c = cases[pt.index];
        const auto start = std::chrono::steady_clock::now();
        const auto out = RunChaos(c, /*seed=*/2024 + pt.index);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const auto& r = out.result;
        const double cells_per_sec =
            secs > 0.0 ? static_cast<double>(r.cells) / secs : 0.0;
        core::PointResult res;
        res.cells = {core::Fmt(c.num_planes),
                     core::Fmt(c.flap_period),
                     core::Fmt(c.lag),
                     core::Fmt(static_cast<std::uint64_t>(
                         out.schedule.size())),
                     core::Fmt(r.dropped),
                     core::Fmt(r.losses.stranded_cells),
                     core::Fmt(r.losses.stale_dispatches),
                     core::Fmt(r.losses.link_drops),
                     core::Fmt(r.losses.late_arrivals),
                     core::Fmt(r.max_relative_delay),
                     core::Fmt(static_cast<std::uint64_t>(cells_per_sec))};
        res.metrics = core::json::Obj(
            {{"injected", r.cells},
             {"dropped", r.dropped},
             {"input_drops", r.losses.input_drops},
             {"stranded_cells", r.losses.stranded_cells},
             {"stale_dispatches", r.losses.stale_dispatches},
             {"link_drops", r.losses.link_drops},
             {"late_arrivals", r.losses.late_arrivals},
             {"fault_events", static_cast<std::uint64_t>(
                  out.schedule.size())},
             {"drained", r.drained},
             {"max_rqd", r.max_relative_delay}});
        res.metrics.Set("cells_per_sec", cells_per_sec);
        return res;
      },
      std::cout,
      "(with lag = 0 every loss is a stranded or flaky-link cell; a "
      "nonzero notification lag adds stale dispatches — cells launched "
      "into planes that were already dead, the price of distributing "
      "failure knowledge late, exactly as u-RT prices stale queue "
      "knowledge.  Faster flapping strands more cells; the capped storm "
      "keeps K' >= r' so the inputs themselves never drop.  `late` counts "
      "cells delayed past the reassembly window in a congested degraded "
      "plane and dropped by the resequencer on arrival.)");
}

void BM_ChaosRun(benchmark::State& state) {
  const ChaosCase c{8, 400, 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunChaos(c, 2024).result.cells);
  }
}
BENCHMARK(BM_ChaosRun)->Unit(benchmark::kMillisecond);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
