// E18 — fault tolerance: the flip side of Theorem 6's d-partition knob.
//
// Section 3 of the paper: "Statically partitioning the planes among the
// different demultiplexors is failure-prone ... fault tolerance dictates
// each demultiplexor may send a cell destined for any output through any
// plane" — which is exactly the unpartitioned regime whose worst-case
// delay Corollary 7 shows is the largest.  This bench quantifies the
// trade: one plane fails mid-run at full offered load; the table reports
// cells lost at the inputs (partition exhausted), cells stranded inside
// the failed plane, and delivery rate — against the worst-case relative
// delay each design pays when healthy.
//
// The faulted runs use the harness's fault-injection options
// (RunOptions::fail_plane_at) and its reconciled RunResult::dropped
// accounting, so the loss numbers here and the harness's delay statistics
// come from the same book-keeping.

#include "bench_common.h"

#include "core/adversary_alignment.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

struct FaultOutcome {
  core::RunResult result;
  std::uint64_t input_drops = 0;
  std::uint64_t plane_losses = 0;
};

FaultOutcome RunWithFailure(const std::string& algorithm,
                            const pps::SwitchConfig& cfg) {
  pps::BufferlessPps sw(cfg, demux::MakeFactory(algorithm));
  traffic::BernoulliSource src(cfg.num_ports, 1.0,
                               traffic::Pattern::kUniform, sim::Rng(55));
  core::RunOptions opt;
  opt.fail_plane_at = 2'000;
  opt.fail_plane = 0;
  opt.source_cutoff = 10'000;
  opt.drain_grace = 4'000;
  opt.max_slots = 14'000;
  FaultOutcome out;
  out.result = core::RunRelative(sw, src, opt);
  out.input_drops = sw.input_drops();
  out.plane_losses = sw.failed_plane_losses();
  return out;
}

sim::Slot HealthyWorstCase(const std::string& algorithm,
                           const pps::SwitchConfig& cfg) {
  const auto plan =
      core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
  return bench::ReplayTrace(cfg, algorithm, plan.trace).max_relative_delay;
}

void RunExperiment() {
  const std::vector<std::string> algorithms = {
      "static-partition-d2", "static-partition-d4", "rr-per-output", "rr",
      "ftd-h2"};
  pps::SwitchConfig cfg;
  cfg.num_ports = 16;
  cfg.num_planes = 8;
  cfg.rate_ratio = 2;
  cfg.reseq_timeout = 32;  // reassembly timer: skip gaps from lost cells

  core::Sweep sweep(
      {.bench = "bench_fault",
       .title = "Fault tolerance vs inherent delay: one plane fails at full "
                "load (N = 16, K = 8, r' = 2)",
       .columns = {"algorithm", "healthy worst RQD", "input drops",
                   "plane losses", "delivered", "loss %"}});
  for (const std::string& algorithm : algorithms) {
    sweep.Add(core::json::Obj({{"algorithm", algorithm},
                               {"N", cfg.num_ports},
                               {"K", cfg.num_planes}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const std::string& algorithm = algorithms[pt.index];
        const auto out = RunWithFailure(algorithm, cfg);
        const auto healthy = HealthyWorstCase(algorithm, cfg);
        const auto lost = out.input_drops + out.plane_losses;
        const std::uint64_t delivered = out.result.cells - out.result.dropped;
        const double loss_pct = 100.0 * static_cast<double>(lost) /
                                static_cast<double>(out.result.cells);
        core::PointResult res;
        res.cells = {algorithm, core::Fmt(healthy),
                     core::Fmt(out.input_drops), core::Fmt(out.plane_losses),
                     core::Fmt(delivered), core::Fmt(loss_pct, 3)};
        res.metrics = core::json::Obj(
            {{"healthy_worst_rqd", healthy},
             {"injected", out.result.cells},
             {"dropped", out.result.dropped},
             {"input_drops", out.input_drops},
             {"plane_losses", out.plane_losses},
             {"delivered", delivered},
             {"loss_pct", loss_pct}});
        return res;
      },
      std::cout,
      "(the d = r' partition minimises the Theorem-6 delay "
      "exposure but drops cells steadily once a plane dies; "
      "unpartitioned designs lose only the stranded cells and "
      "keep the line rate — at the price of the Corollary-7 "
      "worst case.  This is the delay/fault-tolerance trade the "
      "paper's Section 3 describes.)");
}

void BM_FaultRun(benchmark::State& state) {
  pps::SwitchConfig cfg;
  cfg.num_ports = 16;
  cfg.num_planes = 8;
  cfg.rate_ratio = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWithFailure("rr-per-output", cfg).result.cells);
  }
}
BENCHMARK(BM_FaultRun);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
