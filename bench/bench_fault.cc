// E18 — fault tolerance: the flip side of Theorem 6's d-partition knob.
//
// Section 3 of the paper: "Statically partitioning the planes among the
// different demultiplexors is failure-prone ... fault tolerance dictates
// each demultiplexor may send a cell destined for any output through any
// plane" — which is exactly the unpartitioned regime whose worst-case
// delay Corollary 7 shows is the largest.  This bench quantifies the
// trade: one plane fails mid-run at full offered load; the table reports
// cells lost at the inputs (partition exhausted), cells stranded inside
// the failed plane, and delivery rate — against the worst-case relative
// delay each design pays when healthy.

#include "bench_common.h"

#include "core/adversary_alignment.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

struct FaultOutcome {
  std::uint64_t injected = 0;
  std::uint64_t departed = 0;
  std::uint64_t input_drops = 0;
  std::uint64_t plane_losses = 0;
};

FaultOutcome RunWithFailure(const std::string& algorithm,
                            const pps::SwitchConfig& cfg) {
  pps::BufferlessPps sw(cfg, demux::MakeFactory(algorithm));
  traffic::BernoulliSource src(cfg.num_ports, 1.0,
                               traffic::Pattern::kUniform, sim::Rng(55));
  FaultOutcome out;
  const sim::Slot fail_at = 2'000, stop_at = 10'000;
  sim::CellId id = 0;
  std::unordered_map<sim::FlowId, std::uint64_t> seq;
  for (sim::Slot t = 0; t < stop_at + 4'000; ++t) {
    if (t == fail_at) sw.FailPlane(0);
    if (t < stop_at) {
      for (const auto& a : src.ArrivalsAt(t)) {
        sim::Cell cell;
        cell.id = id++;
        cell.input = a.input;
        cell.output = a.output;
        cell.seq = seq[sim::MakeFlowId(a.input, a.output,
                                       cfg.num_ports)]++;
        sw.Inject(cell, t);
        ++out.injected;
      }
    }
    out.departed += sw.Advance(t).size();
    if (t > stop_at && sw.Drained()) break;
  }
  out.input_drops = sw.input_drops();
  out.plane_losses = sw.failed_plane_losses();
  return out;
}

sim::Slot HealthyWorstCase(const std::string& algorithm,
                           const pps::SwitchConfig& cfg) {
  const auto plan =
      core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
  return bench::ReplayTrace(cfg, algorithm, plan.trace).max_relative_delay;
}

void RunExperiment() {
  core::Table table(
      "Fault tolerance vs inherent delay: one plane fails at full load "
      "(N = 16, K = 8, r' = 2)",
      {"algorithm", "healthy worst RQD", "input drops", "plane losses",
       "delivered", "loss %"});
  pps::SwitchConfig cfg;
  cfg.num_ports = 16;
  cfg.num_planes = 8;
  cfg.rate_ratio = 2;
  cfg.reseq_timeout = 32;  // reassembly timer: skip gaps from lost cells
  for (const std::string& algorithm :
       {std::string("static-partition-d2"), std::string("static-partition-d4"),
        std::string("rr-per-output"), std::string("rr"),
        std::string("ftd-h2")}) {
    const auto out = RunWithFailure(algorithm, cfg);
    const auto lost = out.input_drops + out.plane_losses;
    table.AddRow(
        {algorithm, core::Fmt(HealthyWorstCase(algorithm, cfg)),
         core::Fmt(out.input_drops), core::Fmt(out.plane_losses),
         core::Fmt(out.departed),
         core::Fmt(100.0 * static_cast<double>(lost) /
                       static_cast<double>(out.injected),
                   3)});
  }
  table.Print(std::cout);
  std::cout << "(the d = r' partition minimises the Theorem-6 delay "
               "exposure but drops cells steadily once a plane dies; "
               "unpartitioned designs lose only the stranded cells and "
               "keep the line rate — at the price of the Corollary-7 "
               "worst case.  This is the delay/fault-tolerance trade the "
               "paper's Section 3 describes.)\n\n";
}

void BM_FaultRun(benchmark::State& state) {
  pps::SwitchConfig cfg;
  cfg.num_ports = 16;
  cfg.num_planes = 8;
  cfg.rate_ratio = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWithFailure("rr-per-output", cfg).departed);
  }
}
BENCHMARK(BM_FaultRun);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
