// E16 — ablations of the design choices DESIGN.md calls out:
//   (a) output-multiplexer policy: FCFS-by-delivery vs per-flow
//       resequencing — FCFS can reorder a flow whose cells crossed planes
//       with different queue depths (a correctness failure the paper's
//       model forbids), while resequencing pays occasional stall slots;
//   (b) plane scheduling: exact booked delivery (CPA) vs greedy eager
//       planes with the same full information (fresh JSQ) — booking, not
//       information alone, is what buys zero relative delay;
//   (c) extended-FTD block parameter h vs fabric speedup: Theorem 14's
//       premise is that the h-parameterised algorithm requires S >= h —
//       below that, the two-cells-per-block-per-plane property cannot be
//       maintained (measured as block violations).

#include "bench_common.h"

#include "core/adversary_bursts.h"
#include "demux/ftd.h"
#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

core::RunResult RunWithMux(pps::MuxPolicy policy) {
  pps::SwitchConfig cfg;
  cfg.num_ports = 16;
  cfg.num_planes = 4;
  cfg.rate_ratio = 2;
  cfg.mux_policy = policy;
  pps::BufferlessPps sw(cfg, demux::MakeFactory("rr"));
  // Bursty on-off traffic piles different plane-queue depths per flow,
  // the reordering trigger.
  traffic::OnOffSource src(16, 0.8, 24.0, sim::Rng(2));
  core::RunOptions opt;
  opt.max_slots = 60'000;
  opt.source_cutoff = 20'000;
  auto result = core::RunRelative(sw, src, opt);
  result.resequencing_stalls = sw.resequencing_stalls();
  return result;
}

void MuxAblation() {
  struct Case {
    pps::MuxPolicy policy;
    const char* name;
  };
  const std::vector<Case> cases = {
      {pps::MuxPolicy::kFcfsArrival, "fcfs-arrival"},
      {pps::MuxPolicy::kOldestCellReseq, "oldest-reseq"}};
  core::Sweep sweep(
      {.bench = "bench_ablation",
       .title = "Ablation (a): output multiplexer policy (rr demux, bursty "
                "on-off traffic)",
       .columns = {"policy", "cells", "flow order", "maxRQD", "maxRDJ",
                   "stalls"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj({{"policy", c.name}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        const auto result = RunWithMux(c.policy);
        core::PointResult out;
        out.cells = {c.name, core::Fmt(result.cells),
                     result.order_preserved ? "preserved" : "VIOLATED",
                     core::Fmt(result.max_relative_delay),
                     core::Fmt(result.max_relative_jitter),
                     core::Fmt(result.resequencing_stalls)};
        out.metrics = bench::RelativeMetrics(0.0, result);
        out.metrics.Set("order_preserved", result.order_preserved)
            .Set("stalls", result.resequencing_stalls);
        return out;
      },
      std::cout,
      "(fcfs-arrival reorders flows — disallowed by the model; "
      "resequencing preserves order for a measured stall cost)");
}

void BookingAblation() {
  const std::vector<std::string> algorithms = {"cpa", "stale-jsq-u0"};
  core::Sweep sweep(
      {.bench = "bench_ablation_booking",
       .title = "Ablation (b): booked planes (cpa) vs eager planes with "
                "fresh information (stale-jsq-u0)",
       .columns = {"scheduler", "plane mode", "maxRQD", "meanRQD",
                   "maxRDJ"}});
  for (const std::string& algorithm : algorithms) {
    sweep.Add(core::json::Obj({{"algorithm", algorithm}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const std::string& algorithm = algorithms[pt.index];
        const auto cfg = bench::MakeConfig(16, 2, 2.0, algorithm);
        pps::BufferlessPps sw(cfg, demux::MakeFactory(algorithm));
        traffic::BernoulliSource src(16, 0.95, traffic::Pattern::kUniform,
                                     sim::Rng(3));
        core::RunOptions opt;
        opt.max_slots = 40'000;
        opt.source_cutoff = 15'000;
        const auto result = core::RunRelative(sw, src, opt);
        core::PointResult out;
        out.cells = {algorithm, algorithm == "cpa" ? "booked" : "eager",
                     core::Fmt(result.max_relative_delay),
                     core::Fmt(result.relative_delay.mean(), 3),
                     core::Fmt(result.max_relative_jitter)};
        out.metrics = bench::RelativeMetrics(0.0, result);
        out.metrics.Set("mean_rqd", result.relative_delay.mean());
        return out;
      },
      std::cout,
      "(both see the full switch state; only exact booking of the "
      "shadow departure slot achieves zero relative delay)");
}

void FtdSpeedupAblation() {
  struct Case {
    int h;
    double speedup;
  };
  std::vector<Case> cases;
  for (const int h : {1, 2, 4}) {
    for (const double speedup : {1.0, 2.0, 4.0}) {
      cases.push_back({h, speedup});
    }
  }
  core::Sweep sweep(
      {.bench = "bench_ablation_ftd",
       .title = "Ablation (c): extended-FTD block integrity vs speedup "
                "(Theorem 14's premise: the h-parameterised algorithm "
                "requires S >= h)",
       .columns = {"h", "S", "cells", "block violations", "maxRQD"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj({{"h", c.h}, {"speedup", c.speedup}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        const std::string algorithm = "ftd-h" + std::to_string(c.h);
        const auto cfg = bench::MakeConfig(16, 2, c.speedup, algorithm);
        pps::BufferlessPps sw(cfg, demux::MakeFactory(algorithm));
        // Full-rate inputs with interleaved destinations: the hardest case
        // for keeping every block's cells on distinct planes.
        traffic::BernoulliSource src(16, 1.0, traffic::Pattern::kUniform,
                                     sim::Rng(6));
        core::RunOptions opt;
        opt.max_slots = 40'000;
        opt.source_cutoff = 10'000;
        const auto result = core::RunRelative(sw, src, opt);
        std::uint64_t violations = 0;
        for (sim::PortId i = 0; i < cfg.num_ports; ++i) {
          violations +=
              dynamic_cast<const demux::FtdDemux&>(sw.demux(i))
                  .block_violations();
        }
        core::PointResult out;
        out.cells = {core::Fmt(c.h), core::Fmt(cfg.speedup(), 1),
                     core::Fmt(result.cells), core::Fmt(violations),
                     core::Fmt(result.max_relative_delay)};
        out.metrics = bench::RelativeMetrics(0.0, result);
        out.metrics.Set("block_violations", violations);
        return out;
      },
      std::cout,
      "(block violations = cells that could not avoid a plane "
      "already used in their flow's current block; they drop by "
      "orders of magnitude as S reaches h and vanish with slack "
      "above it — Theorem 14's S >= h premise, measured)");
}

void RunExperiment() {
  MuxAblation();
  BookingAblation();
  FtdSpeedupAblation();
}

void BM_AblationMux(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunWithMux(state.range(0) == 0 ? pps::MuxPolicy::kFcfsArrival
                                       : pps::MuxPolicy::kOldestCellReseq)
            .max_relative_delay);
  }
}
BENCHMARK(BM_AblationMux)->Arg(0)->Arg(1);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
