// E14 — randomized demultiplexing (the paper's discussion question):
// "Our lower bounds present worst-case traffics also for randomized
// demultiplexing algorithms, but it would be interesting to study the
// distribution of the relative queuing delay when randomization is
// employed."
//
// Two sub-experiments:
//   (a) white-box: the alignment adversary knows the seed.  The
//       demultiplexor is then a plain deterministic state machine and the
//       Theorem-6 concentration goes through unchanged — randomization is
//       no defence against an adaptive adversary.
//   (b) oblivious: the same *shape* of traffic (an N-cell single-output
//       burst) is fixed first, then replayed against many seeds.  The
//       concentration per plane drops to Binomial(N, 1/K)-like and the
//       RQD distribution over seeds is reported (min / mean / p95 / max).

#include "bench_common.h"

#include "core/adversary_alignment.h"
#include "sim/stats.h"
#include "traffic/trace.h"

namespace {

// The oblivious burst: d cells for output 0, one per slot, fresh inputs.
traffic::Trace ObliviousBurst(sim::PortId n) {
  traffic::Trace trace;
  for (sim::PortId i = 0; i < n; ++i) trace.Add(i, i, 0);
  // Jitter probe after drain.
  trace.Add(8 * static_cast<sim::Slot>(n), n - 1, 0);
  trace.Normalize();
  return trace;
}

void RunExperiment() {
  const sim::PortId n = 32;
  const int rate_ratio = 2;

  {
    core::Table table(
        "Randomized demux, white-box adversary (seed known): Theorem 6 "
        "still bites",
        {"seed", "aligned d", "bound", "RQD", "RDJ"});
    for (const int seed : {1, 7, 1234}) {
      const std::string algorithm = "random-s" + std::to_string(seed);
      const auto cfg = bench::MakeConfig(n, rate_ratio, 2.0, algorithm);
      // Probing a clone consumes the same RNG draws as the real run, so
      // alignment works exactly as for deterministic algorithms.
      const auto plan = core::BuildAlignmentTraffic(
          cfg, demux::MakeFactory(algorithm));
      const auto result = bench::ReplayTrace(cfg, algorithm, plan.trace);
      table.AddRow({core::Fmt(seed), core::Fmt(plan.d()),
                    core::Fmt(core::bounds::Theorem6(rate_ratio, plan.d()), 0),
                    core::Fmt(result.max_relative_delay),
                    core::Fmt(result.max_relative_jitter)});
    }
    table.Print(std::cout);
    std::cout << "(adaptive adversaries defeat randomization: the seed is "
                 "part of the demultiplexor state the proofs quantify "
                 "over)\n\n";
  }

  {
    const auto trace = ObliviousBurst(n);
    sim::OnlineStats rqd;
    sim::QuantileSketch sketch;
    for (int seed = 1; seed <= 100; ++seed) {
      const std::string algorithm = "random-s" + std::to_string(seed);
      const auto cfg = bench::MakeConfig(n, rate_ratio, 2.0, algorithm);
      const auto result = bench::ReplayTrace(cfg, algorithm, trace);
      rqd.Add(result.max_relative_delay);
      sketch.Add(result.max_relative_delay);
    }
    // Deterministic baseline on the same oblivious burst.
    const auto cfg = bench::MakeConfig(n, rate_ratio, 2.0, "rr-per-output");
    const auto det = bench::ReplayTrace(cfg, "rr-per-output", trace);

    core::Table table(
        "Randomized demux, oblivious N-cell burst (100 seeds) vs "
        "deterministic round-robin",
        {"algorithm", "N", "K", "min RQD", "mean RQD", "p95 RQD", "max RQD",
         "det-bound"});
    table.AddRow({"random", core::Fmt(n), core::Fmt(cfg.num_planes),
                  core::Fmt(rqd.min()), core::Fmt(rqd.mean(), 2),
                  core::Fmt(sketch.Quantile(0.95)), core::Fmt(rqd.max()),
                  "-"});
    table.AddRow({"rr-per-output", core::Fmt(n), core::Fmt(cfg.num_planes),
                  core::Fmt(det.max_relative_delay),
                  core::Fmt(static_cast<double>(det.max_relative_delay), 0),
                  core::Fmt(det.max_relative_delay),
                  core::Fmt(det.max_relative_delay),
                  core::Fmt(core::bounds::Corollary7(rate_ratio, n), 0)});
    table.Print(std::cout);
    std::cout << "(against oblivious traffic the randomized concentration "
                 "is ~N/K + O(sqrt(N log K)) per plane, so the RQD "
                 "distribution sits far below the deterministic worst case "
                 "— quantifying the paper's open question)\n\n";
  }
}

void BM_RandomizedSeeds(benchmark::State& state) {
  const auto trace = ObliviousBurst(32);
  int seed = 1;
  for (auto _ : state) {
    const std::string algorithm = "random-s" + std::to_string(seed++);
    const auto cfg = bench::MakeConfig(32, 2, 2.0, algorithm);
    const auto result = bench::ReplayTrace(cfg, algorithm, trace);
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
}
BENCHMARK(BM_RandomizedSeeds);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
