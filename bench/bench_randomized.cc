// E14 — randomized demultiplexing (the paper's discussion question):
// "Our lower bounds present worst-case traffics also for randomized
// demultiplexing algorithms, but it would be interesting to study the
// distribution of the relative queuing delay when randomization is
// employed."
//
// Two sub-experiments:
//   (a) white-box: the alignment adversary knows the seed.  The
//       demultiplexor is then a plain deterministic state machine and the
//       Theorem-6 concentration goes through unchanged — randomization is
//       no defence against an adaptive adversary.
//   (b) oblivious: the same *shape* of traffic (an N-cell single-output
//       burst) is fixed first, then replayed against many seeds.  The
//       concentration per plane drops to Binomial(N, 1/K)-like and the
//       RQD distribution over seeds is reported (min / mean / p95 / max).

#include "bench_common.h"

#include "core/adversary_alignment.h"
#include "sim/stats.h"
#include "traffic/trace.h"

namespace {

// The oblivious burst: d cells for output 0, one per slot, fresh inputs.
traffic::Trace ObliviousBurst(sim::PortId n) {
  traffic::Trace trace;
  for (sim::PortId i = 0; i < n; ++i) trace.Add(i, i, 0);
  // Jitter probe after drain.
  trace.Add(8 * static_cast<sim::Slot>(n), n - 1, 0);
  trace.Normalize();
  return trace;
}

void RunExperiment() {
  const sim::PortId n = 32;
  const int rate_ratio = 2;

  {
    const std::vector<int> seeds = {1, 7, 1234};
    core::Sweep sweep(
        {.bench = "bench_randomized",
         .title = "Randomized demux, white-box adversary (seed known): "
                  "Theorem 6 still bites",
         .columns = {"seed", "aligned d", "bound", "RQD", "RDJ"}});
    for (const int seed : seeds) {
      sweep.Add(core::json::Obj({{"seed", seed}, {"N", n}}));
    }
    sweep.Run(
        [&](const core::SweepPoint& pt) {
          const int seed = seeds[pt.index];
          const std::string algorithm = "random-s" + std::to_string(seed);
          const auto cfg = bench::MakeConfig(n, rate_ratio, 2.0, algorithm);
          // Probing a clone consumes the same RNG draws as the real run, so
          // alignment works exactly as for deterministic algorithms.
          const auto plan = core::BuildAlignmentTraffic(
              cfg, demux::MakeFactory(algorithm));
          const auto result = bench::ReplayTrace(cfg, algorithm, plan.trace);
          const double bound = core::bounds::Theorem6(rate_ratio, plan.d());
          core::PointResult out;
          out.cells = {core::Fmt(seed), core::Fmt(plan.d()),
                       core::Fmt(bound, 0),
                       core::Fmt(result.max_relative_delay),
                       core::Fmt(result.max_relative_jitter)};
          out.metrics = bench::RelativeMetrics(bound, result);
          out.metrics.Set("aligned_d", plan.d());
          return out;
        },
        std::cout,
        "(adaptive adversaries defeat randomization: the seed is "
        "part of the demultiplexor state the proofs quantify "
        "over)");
  }

  {
    const auto trace = ObliviousBurst(n);
    core::Sweep sweep(
        {.bench = "bench_randomized_oblivious",
         .title = "Randomized demux, oblivious N-cell burst (100 seeds) vs "
                  "deterministic round-robin",
         .columns = {"algorithm", "N", "K", "min RQD", "mean RQD", "p95 RQD",
                     "max RQD", "det-bound"}});
    sweep.Add(core::json::Obj({{"algorithm", "random"}, {"N", n}}));
    sweep.Add(core::json::Obj({{"algorithm", "rr-per-output"}, {"N", n}}));
    sweep.Run(
        [&](const core::SweepPoint& pt) {
          const auto cfg =
              bench::MakeConfig(n, rate_ratio, 2.0, "rr-per-output");
          core::PointResult out;
          if (pt.index == 0) {
            sim::OnlineStats rqd;
            sim::QuantileSketch sketch;
            for (int seed = 1; seed <= 100; ++seed) {
              const std::string algorithm =
                  "random-s" + std::to_string(seed);
              const auto rcfg =
                  bench::MakeConfig(n, rate_ratio, 2.0, algorithm);
              const auto result = bench::ReplayTrace(rcfg, algorithm, trace);
              rqd.Add(result.max_relative_delay);
              sketch.Add(result.max_relative_delay);
            }
            out.cells = {"random", core::Fmt(n), core::Fmt(cfg.num_planes),
                         core::Fmt(rqd.min()), core::Fmt(rqd.mean(), 2),
                         core::Fmt(sketch.Quantile(0.95)),
                         core::Fmt(rqd.max()), "-"};
            out.metrics = core::json::Obj(
                {{"min_rqd", rqd.min()},
                 {"mean_rqd", rqd.mean()},
                 {"p95_rqd", sketch.Quantile(0.95)},
                 {"max_rqd", rqd.max()},
                 {"seeds", 100}});
          } else {
            // Deterministic baseline on the same oblivious burst.
            const auto det =
                bench::ReplayTrace(cfg, "rr-per-output", trace);
            const double bound = core::bounds::Corollary7(rate_ratio, n);
            out.cells = {"rr-per-output", core::Fmt(n),
                         core::Fmt(cfg.num_planes),
                         core::Fmt(det.max_relative_delay),
                         core::Fmt(
                             static_cast<double>(det.max_relative_delay), 0),
                         core::Fmt(det.max_relative_delay),
                         core::Fmt(det.max_relative_delay),
                         core::Fmt(bound, 0)};
            out.metrics = bench::RelativeMetrics(bound, det);
          }
          return out;
        },
        std::cout,
        "(against oblivious traffic the randomized concentration "
        "is ~N/K + O(sqrt(N log K)) per plane, so the RQD "
        "distribution sits far below the deterministic worst case "
        "— quantifying the paper's open question)");
  }
}

void BM_RandomizedSeeds(benchmark::State& state) {
  const auto trace = ObliviousBurst(32);
  int seed = 1;
  for (auto _ : state) {
    const std::string algorithm = "random-s" + std::to_string(seed++);
    const auto cfg = bench::MakeConfig(32, 2, 2.0, algorithm);
    const auto result = bench::ReplayTrace(cfg, algorithm, trace);
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
}
BENCHMARK(BM_RandomizedSeeds);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
