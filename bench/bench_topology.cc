// E-topology — multi-hop composition of per-switch RQD: a 3-stage Clos
// of registered fabrics, swept over offered load and spine fan-out.
//
// The paper bounds the relative queuing delay of ONE parallel packet
// switch against its shadow OQ; this sweep measures how that penalty
// composes when switching is distributed over a network.  The reference
// is a single ideal OQ switch over the network's external ports, so the
// reported end-to-end RQD folds in per-hop queuing AND wire latency —
// the inherent cost of *being* a network instead of one big switch.
// More spines (larger fan-out) cut per-node contention but cannot cut
// the hop count: the load-dependent part shrinks, the floor stays.

#include "bench_common.h"

#include "topo/clos.h"
#include "topo/network_engine.h"

namespace {

void RunExperiment() {
  struct Case {
    int spines;
    std::string fabric;
    double load;
  };
  std::vector<Case> cases;
  for (const int spines : {2, 4}) {
    for (const double load : {0.6, 0.9}) {
      cases.push_back({spines, "cioq/islip-s2", load});
      cases.push_back({spines, "pps/rr-per-output", load});
    }
  }

  const int leaves = 4;
  const int externals = 2;

  core::Sweep sweep(
      {.bench = "bench_topology",
       .title = "3-stage Clos of registered fabrics (4 leaves x 2 external "
                "ports, uniform Bernoulli)",
       .columns = {"spines", "node fabric", "load", "hops", "maxRQD",
                   "meanRQD", "mean net delay", "mean shadow delay",
                   "worst hop (mean)"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj({{"spines", c.spines},
                               {"fabric", c.fabric},
                               {"load", c.load}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        pps::SwitchConfig base;
        base.num_ports = 1;  // MakeClos3 overrides per stage
        base.num_planes = 2;
        base.rate_ratio = 2;
        topo::Scenario scenario =
            topo::MakeClos3(leaves, c.spines, externals, c.fabric, base);
        scenario.traffic.load = c.load;
        scenario.traffic.seed = pt.seed;
        scenario.traffic.cutoff = 10'000;
        const topo::Topology topology = topo::Topology::Build(scenario);
        topo::NetworkRunOptions opt;
        opt.max_slots = 40'000;
        const topo::NetworkRunResult result =
            topo::RunScenario(topology, opt);
        double worst_hop = 0.0;
        for (const topo::NodeStats& ns : result.node_stats) {
          worst_hop = std::max(worst_hop, ns.hop_delay.mean());
        }
        core::PointResult out;
        out.cells = {core::Fmt(c.spines), c.fabric, core::Fmt(c.load, 2),
                     core::Fmt(result.max_hops),
                     core::Fmt(result.max_relative_delay),
                     core::Fmt(result.relative_delay.mean(), 3),
                     core::Fmt(result.net_delay.mean(), 3),
                     core::Fmt(result.shadow_delay.mean(), 3),
                     core::Fmt(worst_hop, 3)};
        out.metrics = core::json::Value::MakeObject();
        out.metrics.Set("measured", result.max_relative_delay);
        out.metrics.Set("mean_rqd", result.relative_delay.mean());
        out.metrics.Set("mean_net_delay", result.net_delay.mean());
        out.metrics.Set("max_hops", result.max_hops);
        out.metrics.Set("delivered", result.delivered);
        out.metrics.Set("cells", result.cells);
        out.metrics.Set("slots", result.duration);
        out.metrics.Set("drained", result.drained);
        out.metrics.Set("order_preserved", result.order_preserved);
        return out;
      },
      std::cout,
      "(end-to-end RQD vs one ideal OQ switch over the external ports: "
      "the hop-count floor survives any fan-out, only the contention "
      "term responds to spines/load — the multi-hop analogue of the "
      "paper's inherent single-switch penalty)");
}

void BM_NetworkSlot(benchmark::State& state) {
  pps::SwitchConfig base;
  base.num_ports = 1;
  base.num_planes = 2;
  base.rate_ratio = 2;
  topo::Scenario scenario =
      topo::MakeClos3(2, 2, 2, "cioq/islip-s2", base);
  scenario.traffic.cutoff = 2'000;
  const topo::Topology topology = topo::Topology::Build(scenario);
  for (auto _ : state) {
    topo::NetworkRunOptions opt;
    opt.max_slots = 5'000;
    const auto result = topo::RunScenario(topology, opt);
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
}
BENCHMARK(BM_NetworkSlot);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
