// E8 — the CPA upper bound [14]: a bufferless PPS with the centralized
// demultiplexing algorithm and speedup S >= 2 exactly mimics a FCFS
// output-queued switch — zero relative queuing delay and zero relative
// jitter, on every workload.  This brackets all the lower bounds from
// above: the queuing delay of the PPS is *inherent to the information
// model of the demultiplexor*, not to the three-stage fabric.

#include "bench_common.h"

#include "sim/rng.h"
#include "traffic/leaky_bucket.h"
#include "traffic/random_sources.h"

namespace {

core::RunResult RunCpa(sim::PortId n, int rate_ratio,
                       traffic::SourcePtr source) {
  const auto cfg = bench::MakeConfig(n, rate_ratio, 2.0, "cpa");
  pps::BufferlessPps sw(cfg, demux::MakeFactory("cpa"));
  core::RunOptions opt;
  opt.max_slots = 20'000;
  opt.drain_grace = 4'000;
  return core::RunRelative(sw, *source, opt);
}

traffic::SourcePtr MakeWorkload(const std::string& name, sim::PortId n) {
  if (name == "uniform-0.9") {
    return std::make_unique<traffic::BernoulliSource>(
        n, 0.9, traffic::Pattern::kUniform, sim::Rng(7));
  }
  if (name == "hotspot-0.6") {
    return std::make_unique<traffic::BernoulliSource>(
        n, 0.6, traffic::Pattern::kHotspot, sim::Rng(7), 0.5);
  }
  if (name == "onoff-0.7") {
    return std::make_unique<traffic::OnOffSource>(n, 0.7, 16.0, sim::Rng(7));
  }
  // Policed bursty traffic: hard (1, 8) leaky-bucket envelope.
  auto inner = std::make_unique<traffic::OnOffSource>(n, 0.8, 32.0,
                                                      sim::Rng(7));
  return std::make_unique<traffic::PolicedSource>(std::move(inner), n, 8);
}

void RunExperiment() {
  struct Case {
    sim::PortId n;
    int rate_ratio;
    std::string workload;
  };
  std::vector<Case> cases;
  for (const sim::PortId n : {8, 16, 32}) {
    for (const int rate_ratio : {2, 4}) {
      for (const std::string& workload :
           {std::string("uniform-0.9"), std::string("hotspot-0.6"),
            std::string("onoff-0.7"), std::string("policed-onoff")}) {
        cases.push_back({n, rate_ratio, workload});
      }
    }
  }

  core::Sweep sweep(
      {.bench = "bench_cpa_upper",
       .title = "CPA [14]: centralized demultiplexing, S >= 2 => zero "
                "RQD/RDJ (exact FCFS-OQ mimicking)",
       .columns = {"N", "r'", "S", "workload", "cells", "B", "maxRQD",
                   "maxRDJ", "PPS mean delay", "OQ mean delay"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj({{"N", c.n},
                               {"rate_ratio", c.rate_ratio},
                               {"workload", c.workload}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        auto result = RunCpa(c.n, c.rate_ratio, MakeWorkload(c.workload, c.n));
        core::PointResult out;
        out.cells = {core::Fmt(c.n), core::Fmt(c.rate_ratio), "2.0",
                     c.workload, core::Fmt(result.cells),
                     core::Fmt(result.traffic_burstiness),
                     core::Fmt(result.max_relative_delay),
                     core::Fmt(result.max_relative_jitter),
                     core::Fmt(result.pps_delay.mean(), 3),
                     core::Fmt(result.shadow_delay.mean(), 3)};
        out.metrics = bench::RelativeMetrics(0.0, result);
        out.metrics.Set("burstiness", result.traffic_burstiness)
            .Set("pps_mean_delay", result.pps_delay.mean())
            .Set("shadow_mean_delay", result.shadow_delay.mean());
        return out;
      },
      std::cout,
      "(every row must show maxRQD = maxRDJ = 0 and identical mean "
      "delays: the PPS and the shadow switch emit every cell in "
      "the same slot)");
}

void BM_CpaUpper(benchmark::State& state) {
  const auto n = static_cast<sim::PortId>(state.range(0));
  for (auto _ : state) {
    auto result = RunCpa(n, 2, MakeWorkload("uniform-0.9", n));
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
}
BENCHMARK(BM_CpaUpper)->Arg(8)->Arg(32);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
