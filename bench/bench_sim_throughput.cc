// E13 — simulator substrate performance: cells/second through the full
// PPS + shadow harness, per algorithm and switch size.  This is the
// engineering table that justifies the "fast execution" claim: every
// lower-bound experiment in this repo runs in milliseconds.
//
// Two workload families:
//   * uniform  — Bernoulli load 0.8, every output equally busy (the shape
//     all the theorem benches run);
//   * congested — N = 64 with a sustained overload of one output (hotspot
//     Bernoulli), the regime the paper's adversaries create.  The output
//     multiplexer backlog grows linearly for the whole run, so this point
//     is the stress test for the mux hot path: the pre-indexed mux scanned
//     every staged cell per slot (O(backlog) per departure, O(backlog^2)
//     aggregate); the per-flow indexed mux is O(log F).
//
// Every point reports cells_per_sec = cells offered / point wall-clock in
// the table and in bench_results/bench_sim_throughput.json — the committed
// throughput baseline for the perf trajectory.  cells_per_sec (like
// wall_ms) is timing and therefore exempt from the sweep determinism
// contract; everything else in the JSON stays byte-identical.

#include "bench_common.h"

#include <chrono>

#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

core::RunResult RunUniform(const std::string& algorithm, sim::PortId n) {
  // r' = 2 at speedup 2 (K = 4); the registry folds the algorithm's
  // booked/snapshot needs on top of the floor of one snapshot slot.
  pps::SwitchConfig config;
  config.num_ports = n;
  config.num_planes = 2 * 2;
  config.rate_ratio = 2;
  config.snapshot_history = 1;
  traffic::BernoulliSource source(n, 0.8, traffic::Pattern::kUniform,
                                  sim::Rng(7));
  core::RunOptions options;
  options.max_slots = 2'000;
  options.drain_grace = 500;
  return bench::RunFabric("pps/" + algorithm, config, source, options);
}

// Sustained overload of output 0: hotspot Bernoulli at load 0.5 with 30%
// of cells aimed at output 0 gives it ~10 cells/slot against a 1
// cell/slot line.  The geometry is K = 8, r' = 1 so the planes forward
// essentially all of it (up to 8 cells/slot across the plane->output
// lines) and the backlog piles up *in the output multiplexer* (~9
// cells/slot for the whole run) rather than inside the planes — this is
// the mux stress test.  drain_grace is small on purpose: the run measures
// the congested regime, not the (equally backlogged) drain tail.
core::RunResult RunCongested(const std::string& algorithm, sim::PortId n) {
  pps::SwitchConfig config;
  config.num_ports = n;
  config.num_planes = 8;
  config.rate_ratio = 1;
  config.snapshot_history = 1;
  traffic::BernoulliSource source(n, 0.5, traffic::Pattern::kHotspot,
                                  sim::Rng(11), /*hotspot_fraction=*/0.3);
  core::RunOptions options;
  options.max_slots = 8'000;
  options.source_cutoff = 8'000;
  options.drain_grace = 200;
  return bench::RunFabric("pps/" + algorithm, config, source, options);
}

void RunExperiment() {
  struct Case {
    std::string algorithm;
    sim::PortId n;
    bool congested;
  };
  std::vector<Case> cases;
  for (const std::string& algorithm :
       {std::string("rr-per-output"), std::string("cpa"),
        std::string("ftd-h2"), std::string("stale-jsq-u4")}) {
    for (const sim::PortId n : {8, 32, 64}) {
      cases.push_back({algorithm, n, false});
    }
  }
  // The congested-output headline: one overloaded output at N = 64.
  cases.push_back({"rr-per-output", 64, true});
  cases.push_back({"ftd-h2", 64, true});

  core::Sweep sweep(
      {.bench = "bench_sim_throughput",
       .title = "Harness throughput per algorithm, size and workload "
                "(uniform load 0.8 / one-output overload; cells/s is the "
                "headline, wall_ms in the JSON is the trajectory)",
       .columns = {"algorithm", "N", "workload", "cells", "slots", "maxRQD",
                   "cells/s"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj(
        {{"algorithm", c.algorithm},
         {"N", c.n},
         {"workload", c.congested ? std::string("congested-1-output")
                                  : std::string("uniform-0.8")}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        const auto start = std::chrono::steady_clock::now();
        const auto result =
            c.congested ? RunCongested(c.algorithm, c.n)
                        : RunUniform(c.algorithm, c.n);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        const double cells_per_sec =
            secs > 0.0 ? static_cast<double>(result.cells) / secs : 0.0;
        core::PointResult out;
        out.cells = {c.algorithm,
                     core::Fmt(c.n),
                     c.congested ? "congested" : "uniform",
                     core::Fmt(result.cells),
                     core::Fmt(result.duration),
                     core::Fmt(result.max_relative_delay),
                     core::Fmt(static_cast<std::uint64_t>(cells_per_sec))};
        out.metrics = bench::RelativeMetrics(0.0, result);
        out.metrics.Set("cells_per_sec", cells_per_sec);
        return out;
      },
      std::cout,
      "(cells_per_sec and per-point wall_ms in "
      "bench_results/bench_sim_throughput.json are the timing headline; "
      "the calibrated google-benchmark rates follow below)");
}

void RunThroughput(benchmark::State& state, const std::string& algorithm,
                   bool congested) {
  const auto n = static_cast<sim::PortId>(state.range(0));
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto result =
        congested ? RunCongested(algorithm, n) : RunUniform(algorithm, n);
    cells += result.cells;
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}

void BM_Harness_RR(benchmark::State& state) {
  RunThroughput(state, "rr-per-output", false);
}
void BM_Harness_Cpa(benchmark::State& state) {
  RunThroughput(state, "cpa", false);
}
void BM_Harness_Ftd(benchmark::State& state) {
  RunThroughput(state, "ftd-h2", false);
}
void BM_Harness_StaleJsq(benchmark::State& state) {
  RunThroughput(state, "stale-jsq-u4", false);
}
void BM_Harness_RR_Congested(benchmark::State& state) {
  RunThroughput(state, "rr-per-output", true);
}

BENCHMARK(BM_Harness_RR)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_Cpa)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_Ftd)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_StaleJsq)->Arg(8)->Arg(32);
BENCHMARK(BM_Harness_RR_Congested)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
