// E13 — simulator substrate performance: cells/second through the full
// PPS + shadow harness, per algorithm and switch size.  This is the
// engineering table that justifies the "fast execution" claim: every
// lower-bound experiment in this repo runs in milliseconds.
//
// The sweep records the deterministic run shape (cells, slots, maxRQD) per
// point — the per-point wall_ms in bench_results/bench_sim_throughput.json
// is the throughput trajectory; google-benchmark then reports calibrated
// cells/s rates.

#include "bench_common.h"

#include "sim/rng.h"
#include "traffic/random_sources.h"

namespace {

pps::SwitchConfig ThroughputConfig(const std::string& algorithm,
                                   sim::PortId n) {
  pps::SwitchConfig config;
  config.num_ports = n;
  config.num_planes = 2 * 2;  // r' = 2, S = 2
  config.rate_ratio = 2;
  const auto needs = demux::NeedsOf(algorithm);
  if (needs.booked_planes) {
    config.plane_scheduling = pps::PlaneScheduling::kBooked;
  }
  config.snapshot_history = std::max(1, needs.snapshot_history);
  return config;
}

core::RunResult RunOnce(const std::string& algorithm, sim::PortId n) {
  pps::BufferlessPps sw(ThroughputConfig(algorithm, n),
                        demux::MakeFactory(algorithm));
  traffic::BernoulliSource source(n, 0.8, traffic::Pattern::kUniform,
                                  sim::Rng(7));
  core::RunOptions options;
  options.max_slots = 2'000;
  options.drain_grace = 500;
  return core::RunRelative(sw, source, options);
}

void RunExperiment() {
  struct Case {
    std::string algorithm;
    sim::PortId n;
  };
  std::vector<Case> cases;
  for (const std::string& algorithm :
       {std::string("rr-per-output"), std::string("cpa"),
        std::string("ftd-h2"), std::string("stale-jsq-u4")}) {
    for (const sim::PortId n : {8, 32, 64}) {
      cases.push_back({algorithm, n});
    }
  }

  core::Sweep sweep(
      {.bench = "bench_sim_throughput",
       .title = "Harness run shape per algorithm and size (uniform load "
                "0.8, 2000 slots; wall_ms in the JSON is the throughput "
                "trajectory)",
       .columns = {"algorithm", "N", "cells", "slots", "maxRQD"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj({{"algorithm", c.algorithm}, {"N", c.n}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        const auto result = RunOnce(c.algorithm, c.n);
        core::PointResult out;
        out.cells = {c.algorithm, core::Fmt(c.n), core::Fmt(result.cells),
                     core::Fmt(result.duration),
                     core::Fmt(result.max_relative_delay)};
        out.metrics = bench::RelativeMetrics(0.0, result);
        return out;
      },
      std::cout,
      "(per-point wall-clock time is recorded in "
      "bench_results/bench_sim_throughput.json; the calibrated cells/s "
      "rates follow from the google-benchmark section below)");
}

void RunThroughput(benchmark::State& state, const std::string& algorithm) {
  const auto n = static_cast<sim::PortId>(state.range(0));
  std::uint64_t cells = 0;
  for (auto _ : state) {
    const auto result = RunOnce(algorithm, n);
    cells += result.cells;
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}

void BM_Harness_RR(benchmark::State& state) {
  RunThroughput(state, "rr-per-output");
}
void BM_Harness_Cpa(benchmark::State& state) { RunThroughput(state, "cpa"); }
void BM_Harness_Ftd(benchmark::State& state) {
  RunThroughput(state, "ftd-h2");
}
void BM_Harness_StaleJsq(benchmark::State& state) {
  RunThroughput(state, "stale-jsq-u4");
}

BENCHMARK(BM_Harness_RR)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_Cpa)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_Ftd)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_StaleJsq)->Arg(8)->Arg(32);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
