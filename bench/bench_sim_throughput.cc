// E13 — simulator substrate performance: cells/second through the full
// PPS + shadow harness, per algorithm and switch size.  This is the
// engineering table that justifies the "fast execution" claim: every
// lower-bound experiment in this repo runs in milliseconds.

#include <benchmark/benchmark.h>

#include "core/harness.h"
#include "demux/registry.h"
#include "sim/rng.h"
#include "switch/pps.h"
#include "traffic/random_sources.h"

namespace {

void RunThroughput(benchmark::State& state, const std::string& algorithm) {
  const auto n = static_cast<sim::PortId>(state.range(0));
  pps::SwitchConfig config;
  config.num_ports = n;
  config.num_planes = 2 * 2;  // r' = 2, S = 2
  config.rate_ratio = 2;
  const auto needs = demux::NeedsOf(algorithm);
  if (needs.booked_planes) {
    config.plane_scheduling = pps::PlaneScheduling::kBooked;
  }
  config.snapshot_history = std::max(1, needs.snapshot_history);

  std::uint64_t cells = 0;
  for (auto _ : state) {
    pps::BufferlessPps sw(config, demux::MakeFactory(algorithm));
    traffic::BernoulliSource source(n, 0.8, traffic::Pattern::kUniform,
                                    sim::Rng(7));
    core::RunOptions options;
    options.max_slots = 2'000;
    options.drain_grace = 500;
    const auto result = core::RunRelative(sw, source, options);
    cells += result.cells;
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
  state.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(cells), benchmark::Counter::kIsRate);
}

void BM_Harness_RR(benchmark::State& state) {
  RunThroughput(state, "rr-per-output");
}
void BM_Harness_Cpa(benchmark::State& state) { RunThroughput(state, "cpa"); }
void BM_Harness_Ftd(benchmark::State& state) {
  RunThroughput(state, "ftd-h2");
}
void BM_Harness_StaleJsq(benchmark::State& state) {
  RunThroughput(state, "stale-jsq-u4");
}

}  // namespace

BENCHMARK(BM_Harness_RR)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_Cpa)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_Ftd)->Arg(8)->Arg(32)->Arg(64);
BENCHMARK(BM_Harness_StaleJsq)->Arg(8)->Arg(32);

BENCHMARK_MAIN();
