// E3 — Theorem 8: *any* bufferless fully-distributed demultiplexing
// algorithm — even a failure-prone static partition — has relative queuing
// delay and relative delay jitter of (R/r - 1) * N / S time slots.
//
// Mechanism: the input constraint forces every demultiplexor to use at
// least r' planes, so some plane is shared by at least r'N/K = N/S
// demultiplexors (pigeonhole), and the alignment adversary concentrates
// exactly those.  The sweep varies the speedup S at fixed N and the port
// count N at fixed S, using the minimal partition d = r' (the
// best case for the switch).

#include "bench_common.h"

#include "core/adversary_alignment.h"

namespace {

void RunExperiment() {
  struct Case {
    sim::PortId n;
    int rate_ratio;
    double speedup;
  };
  std::vector<Case> cases;
  // Sweep S at fixed N = 32, r' = 2.
  for (const double speedup : {1.0, 2.0, 4.0, 8.0}) {
    cases.push_back({32, 2, speedup});
  }
  // Sweep N at fixed S = 2.
  for (const sim::PortId n : {8, 16, 64, 128}) {
    cases.push_back({n, 2, 2.0});
  }
  // Higher rate ratio.
  cases.push_back({32, 4, 2.0});

  core::Sweep sweep(
      {.bench = "bench_theorem8",
       .title = "Theorem 8: RQD/RDJ >= (R/r - 1) * N/S   [bufferless, any "
                "fully-distributed algorithm; B = 0]",
       .columns = {"algorithm", "N", "K", "r'", "S", "plane-share", "bound",
                   "RQD", "RDJ", "RQD/bound"}});
  for (const Case& c : cases) {
    sweep.Add(core::json::Obj({{"N", c.n},
                               {"rate_ratio", c.rate_ratio},
                               {"speedup", c.speedup}}));
  }
  sweep.Run(
      [&](const core::SweepPoint& pt) {
        const Case& c = cases[pt.index];
        const std::string algorithm =
            "static-partition-d" + std::to_string(c.rate_ratio);
        const auto cfg =
            bench::MakeConfig(c.n, c.rate_ratio, c.speedup, algorithm);
        const auto plan =
            core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
        const auto result = bench::ReplayTrace(cfg, algorithm, plan.trace);
        const double bound =
            core::bounds::Theorem8(c.rate_ratio, c.n, cfg.speedup());
        core::PointResult out;
        out.cells = {algorithm, core::Fmt(c.n), core::Fmt(cfg.num_planes),
                     core::Fmt(c.rate_ratio), core::Fmt(cfg.speedup(), 2),
                     core::Fmt(plan.d()), core::Fmt(bound, 1),
                     core::Fmt(result.max_relative_delay),
                     core::Fmt(result.max_relative_jitter),
                     core::FmtRatio(
                         static_cast<double>(result.max_relative_delay),
                         bound)};
        out.metrics = bench::RelativeMetrics(bound, result);
        out.metrics.Set("plane_share", plan.d());
        return out;
      },
      std::cout,
      "(plane-share = inputs sharing the worst plane, >= N/S by "
      "pigeonhole; increasing S buys delay back linearly but "
      "costs K = S*r' planes)");
}

void BM_Theorem8(benchmark::State& state) {
  const auto n = static_cast<sim::PortId>(state.range(0));
  const std::string algorithm = "static-partition-d2";
  const auto cfg = bench::MakeConfig(n, 2, 2.0, algorithm);
  for (auto _ : state) {
    const auto plan =
        core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
    const auto result = bench::ReplayTrace(cfg, algorithm, plan.trace);
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
}
BENCHMARK(BM_Theorem8)->Arg(32)->Arg(128)->Iterations(2);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
