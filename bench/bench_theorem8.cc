// E3 — Theorem 8: *any* bufferless fully-distributed demultiplexing
// algorithm — even a failure-prone static partition — has relative queuing
// delay and relative delay jitter of (R/r - 1) * N / S time slots.
//
// Mechanism: the input constraint forces every demultiplexor to use at
// least r' planes, so some plane is shared by at least r'N/K = N/S
// demultiplexors (pigeonhole), and the alignment adversary concentrates
// exactly those.  The table sweeps the speedup S at fixed N and the port
// count N at fixed S, using the minimal partition d = r' (the
// best case for the switch).

#include "bench_common.h"

#include "core/adversary_alignment.h"

namespace {

void AddRows(core::Table& table, sim::PortId n, int rate_ratio,
             double speedup) {
  const std::string algorithm =
      "static-partition-d" + std::to_string(rate_ratio);
  const auto cfg = bench::MakeConfig(n, rate_ratio, speedup, algorithm);
  const auto plan =
      core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
  const auto result = bench::ReplayTrace(cfg, algorithm, plan.trace);
  const double bound =
      core::bounds::Theorem8(rate_ratio, n, cfg.speedup());
  table.AddRow({algorithm, core::Fmt(n), core::Fmt(cfg.num_planes),
                core::Fmt(rate_ratio), core::Fmt(cfg.speedup(), 2),
                core::Fmt(plan.d()), core::Fmt(bound, 1),
                core::Fmt(result.max_relative_delay),
                core::Fmt(result.max_relative_jitter),
                core::FmtRatio(static_cast<double>(result.max_relative_delay),
                               bound)});
}

void RunExperiment() {
  core::Table table(
      "Theorem 8: RQD/RDJ >= (R/r - 1) * N/S   [bufferless, any "
      "fully-distributed algorithm; B = 0]",
      {"algorithm", "N", "K", "r'", "S", "plane-share", "bound", "RQD",
       "RDJ", "RQD/bound"});

  // Sweep S at fixed N = 32, r' = 2.
  for (const double speedup : {1.0, 2.0, 4.0, 8.0}) {
    AddRows(table, 32, 2, speedup);
  }
  // Sweep N at fixed S = 2.
  for (const sim::PortId n : {8, 16, 64, 128}) {
    AddRows(table, n, 2, 2.0);
  }
  // Higher rate ratio.
  AddRows(table, 32, 4, 2.0);
  table.Print(std::cout);
  std::cout << "(plane-share = inputs sharing the worst plane, >= N/S by "
               "pigeonhole; increasing S buys delay back linearly but "
               "costs K = S*r' planes)\n\n";
}

void BM_Theorem8(benchmark::State& state) {
  const auto n = static_cast<sim::PortId>(state.range(0));
  const std::string algorithm = "static-partition-d2";
  const auto cfg = bench::MakeConfig(n, 2, 2.0, algorithm);
  for (auto _ : state) {
    const auto plan =
        core::BuildAlignmentTraffic(cfg, demux::MakeFactory(algorithm));
    const auto result = bench::ReplayTrace(cfg, algorithm, plan.trace);
    benchmark::DoNotOptimize(result.max_relative_delay);
  }
}
BENCHMARK(BM_Theorem8)->Arg(32)->Arg(128)->Iterations(2);

}  // namespace

PPS_BENCH_MAIN(RunExperiment)
